"""Paper Fig. 8(a): MPI_Reduce k-nomial radix sweep on Frontier-sim."""

from conftest import run_and_check
from repro.bench.experiments import fig8a_reduce_knomial


def test_fig8a(benchmark):
    run_and_check(benchmark, fig8a_reduce_knomial)
