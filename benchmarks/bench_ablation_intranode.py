"""Ablation: the intranode link advantage is what k-ring converts into
speedup (isolates the §II-B3 / Fig. 8c mechanism)."""

from conftest import run_and_check
from repro.bench.ablations import ablation_intranode_ratio


def test_ablation_intranode(benchmark):
    run_and_check(benchmark, ablation_intranode_ratio)
