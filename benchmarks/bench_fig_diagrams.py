"""Paper Figs. 1-6: the algorithm-structure diagrams, regenerated from
the verified schedules themselves."""

from conftest import run_and_check
from repro.bench.experiments import fig_diagrams


def test_fig_diagrams(benchmark):
    run_and_check(benchmark, fig_diagrams)
