"""Paper Fig. 10(b): MPI_Allgather recursive multiplying at 1024 nodes."""

from conftest import run_and_check
from repro.bench.experiments import fig10bc_scale_recmul


def test_fig10b(benchmark):
    run_and_check(benchmark, lambda: fig10bc_scale_recmul("allgather"))
