"""Ablation (extension): the chain bcast's segment count is a tunable
with a closed-form optimum, mirroring the paper's radix methodology."""

from conftest import run_and_check
from repro.bench.ablations import ablation_pipeline_segments


def test_ablation_pipeline(benchmark):
    run_and_check(benchmark, ablation_pipeline_segments)
