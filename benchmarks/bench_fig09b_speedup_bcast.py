"""Paper Fig. 9(b): MPI_Bcast best-algorithm speedup vs default/vendor."""

from conftest import run_and_check
from repro.bench.experiments import fig9_speedup


def test_fig9b(benchmark):
    run_and_check(benchmark, lambda: fig9_speedup("bcast"))
