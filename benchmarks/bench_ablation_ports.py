"""Ablation: NIC port count causally determines recursive multiplying's
optimal radix (isolates the §VI-C2 mechanism)."""

from conftest import run_and_check
from repro.bench.ablations import ablation_nic_ports


def test_ablation_ports(benchmark):
    run_and_check(benchmark, ablation_nic_ports)
