"""Paper Fig. 11(a): MPI_Reduce k-nomial on Polaris-sim — the Frontier
trends replicate on different exascale hardware."""

from conftest import run_and_check
from repro.bench.experiments import fig11a_polaris_knomial


def test_fig11a(benchmark):
    run_and_check(benchmark, fig11a_polaris_knomial)
