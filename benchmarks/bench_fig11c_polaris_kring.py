"""Paper Fig. 11(c): MPI_Bcast k-ring on Polaris-sim — the radix shows
minimal effect on flat (fully connected NVLink) nodes."""

from conftest import run_and_check
from repro.bench.experiments import fig11c_polaris_kring


def test_fig11c(benchmark):
    run_and_check(benchmark, fig11c_polaris_kring)
