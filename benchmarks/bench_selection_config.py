"""Paper §VI-G: the generated selection configuration beats both fixed
policies across the sweep."""

from conftest import run_and_check
from repro.bench.experiments import selection_config


def test_selection(benchmark):
    run_and_check(benchmark, selection_config)
