"""Ablation (extension): the k-port Bruck exchange avoids the butterfly's
fold/unfold latency on awkward process counts."""

from conftest import run_and_check
from repro.bench.ablations import ablation_bruck_vs_recmul


def test_ablation_bruck(benchmark):
    run_and_check(benchmark, ablation_bruck_vs_recmul)
