"""Ablation: dispersed rank placement eliminates k-ring's neighbor
advantage (the paper's §VI-C3 explanation, tested causally)."""

from conftest import run_and_check
from repro.bench.ablations import ablation_placement


def test_ablation_placement(benchmark):
    run_and_check(benchmark, ablation_placement)
