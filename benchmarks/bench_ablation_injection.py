"""Ablation: per-message software overhead bounds the useful k-nomial
radix (isolates the Fig. 10a mechanism)."""

from conftest import run_and_check
from repro.bench.ablations import ablation_injection_overhead


def test_ablation_injection(benchmark):
    run_and_check(benchmark, ablation_injection_overhead)
