"""Paper Table I: the kernel → generalized kernel → collective matrix."""

from conftest import run_and_check
from repro.bench.experiments import table1_capability


def test_table1(benchmark):
    run_and_check(benchmark, table1_capability)
