"""Paper eqs. (13)/(14): k-ring inter-group data volume, byte-exact."""

from conftest import run_and_check
from repro.bench.experiments import eq13_data_volume


def test_eq13(benchmark):
    run_and_check(benchmark, eq13_data_volume)
