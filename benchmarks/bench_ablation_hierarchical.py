"""Ablation (extension): hierarchical two-level allreduce (cited [17])
vs the paper's flat generalized algorithms on the 8-ppn machine."""

from conftest import run_and_check
from repro.bench.ablations import ablation_hierarchical


def test_ablation_hierarchical(benchmark):
    run_and_check(benchmark, ablation_hierarchical)
