"""Paper §VI-H: run-to-run variance changes optimal parameter values."""

from conftest import run_and_check
from repro.bench.experiments import variance_study


def test_variance(benchmark):
    run_and_check(benchmark, variance_study)
