"""Paper eqs. (1)–(9): analytical models against the reference machine."""

from conftest import run_and_check
from repro.bench.experiments import models_vs_sim


def test_models(benchmark):
    run_and_check(benchmark, models_vs_sim)
