"""Paper Fig. 10(a): MPI_Reduce k-nomial at 1024 nodes — the radix has an
upper bound at scale (k = p loses to k = 128)."""

from conftest import run_and_check
from repro.bench.experiments import fig10a_scale_reduce


def test_fig10a(benchmark):
    run_and_check(benchmark, fig10a_scale_reduce)
