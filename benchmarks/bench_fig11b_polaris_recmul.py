"""Paper Fig. 11(b): MPI_Allreduce recursive multiplying on Polaris-sim —
optimal radix tracks the (two) NIC ports."""

from conftest import run_and_check
from repro.bench.experiments import fig11b_polaris_recmul


def test_fig11b(benchmark):
    run_and_check(benchmark, fig11b_polaris_recmul)
