"""Ablation (extension, [12] lineage): Bruck digit routing vs pairwise
exchange for all-to-all, and how the k-port radix moves the crossover."""

from conftest import run_and_check
from repro.bench.ablations import ablation_alltoall_crossover


def test_ablation_alltoall(benchmark):
    run_and_check(benchmark, ablation_alltoall_crossover)
