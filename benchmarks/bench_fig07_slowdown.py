"""Paper Fig. 7: generalized algorithms at their default radix are not
slower than the classic fixed-radix implementations."""

from conftest import run_and_check
from repro.bench.experiments import fig7_slowdown


def test_fig7(benchmark):
    run_and_check(benchmark, fig7_slowdown)
