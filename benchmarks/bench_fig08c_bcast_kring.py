"""Paper Fig. 8(c): MPI_Bcast k-ring radix sweep, 8 processes per node."""

from conftest import run_and_check
from repro.bench.experiments import fig8c_bcast_kring


def test_fig8c(benchmark):
    run_and_check(benchmark, fig8c_bcast_kring)
