"""Shared machinery for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures via
:mod:`repro.bench.experiments` and

* prints the figure's rows/series (captured with ``-s`` or in the
  pytest-benchmark summary),
* asserts the paper's qualitative claims (the experiment's shape checks),
* reports wall-clock cost through pytest-benchmark (one round — the
  experiments are deterministic simulations, so statistical repetition
  would only re-measure the same arithmetic).

Run them with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ExperimentResult


def run_and_check(benchmark, fn, *, allow_divergences: int = 0) -> ExperimentResult:
    """Benchmark one experiment and enforce its shape checks.

    ``allow_divergences`` > 0 marks experiments with documented
    divergences from the paper (see EXPERIMENTS.md); anything beyond the
    allowance fails the bench.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    print(result.summary())
    failures = [name for name, ok, _ in result.checks if not ok]
    assert len(failures) <= allow_divergences, (
        f"{result.exp_id}: unexpected divergences from the paper: {failures}"
    )
    return result
