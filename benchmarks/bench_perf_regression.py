"""Perf-regression gate: smoke perf run checked against BENCH_perf.json.

The committed ``BENCH_perf.json`` at the repo root (written by
``repro-bench-perf -o BENCH_perf.json``) is the performance baseline.
This bench re-measures the smoke grid and fails if schedule-build time
regressed beyond the allowed factor, or if the caches stopped paying for
themselves — the same gate CI runs via
``repro-bench-perf --smoke --baseline BENCH_perf.json``.

The factor is deliberately generous (2x): wall clock varies across
hosts, and the gate exists to catch algorithmic regressions (a cache
that stopped caching, a builder that went quadratic), not scheduler
jitter.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.perf import check_regression, load_report, run_perf

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def test_perf_regression(benchmark):
    baseline = load_report(BASELINE)
    report = benchmark.pedantic(
        lambda: run_perf(smoke=True, jobs_levels=()), rounds=1, iterations=1
    )
    failures = check_regression(report, baseline, factor=2.0)
    assert not failures, "; ".join(failures)

    # The headline claims the committed baseline makes: the cached sweep
    # path beats the cold path and most builds are served from cache.
    # Re-assert them on the fresh measurement so they can never silently
    # rot in the JSON.
    sweep = report["full_sweep"]
    assert sweep["speedup"] > 1.0
    assert sweep["build_hit_rate"] > 0.5
    assert sweep["results_identical"]


def test_committed_baseline_claims():
    """The committed report itself must back the README's numbers."""
    baseline = load_report(BASELINE)
    sweep = baseline["full_sweep"]
    assert sweep["speedup"] >= 2.0, (
        "committed BENCH_perf.json no longer shows the >=2x full-sweep "
        "speedup — regenerate it with: repro-bench-perf -o BENCH_perf.json"
    )
    assert sweep["build_hit_rate"] > 0.5
    assert sweep["results_identical"]
    assert "4" in sweep["jobs"], "baseline must include a --jobs 4 timing"


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-s"]))
