"""Paper Fig. 8(b): MPI_Allreduce recursive multiplying radix sweep.

Documented divergence (EXPERIMENTS.md): at sizes below 16 KiB our
simulator's optimum sits at 4x the port count rather than the port count
itself; the corresponding check is phrased accordingly, so no divergence
allowance is needed here.
"""

from conftest import run_and_check
from repro.bench.experiments import fig8b_allreduce_recmul


def test_fig8b(benchmark):
    run_and_check(benchmark, fig8b_allreduce_recmul)
