"""Paper Fig. 10(c): MPI_Allreduce recursive multiplying at 1024 nodes."""

from conftest import run_and_check
from repro.bench.experiments import fig10bc_scale_recmul


def test_fig10c(benchmark):
    run_and_check(benchmark, lambda: fig10bc_scale_recmul("allreduce"))
