"""Unit tests for the rank-equivalence partition (:mod:`repro.compile.classes`).

The partition is the soundness core of the collapsed engine: every rank
in a class must be timing-indistinguishable from its representative up
to peer relabeling, and the class graph must stay a bijection (class-c
sends land 1:1 on a single receiving class).  These tests pin the
partition's shape on known-symmetric and known-degenerate schedules, the
cache behavior of :func:`repro.compile.get_or_classify`, and the machine
preconditions.
"""

import numpy as np
import pytest

from repro.compile import compile_schedule, get_or_classify
from repro.compile.classes import classify, machine_asymmetry
from repro.core.registry import build_schedule
from repro.errors import ClassAnalysisError
from repro.simnet.machines import frontier, reference


def _classify(coll, alg, p, *, k=None, nbytes=4096):
    schedule = build_schedule(coll, alg, p, k=k)
    return classify(compile_schedule(schedule), reference(p), nbytes)


class TestPartitionShape:
    def test_ring_allgather_is_one_class(self):
        c = _classify("allgather", "ring", 8)
        assert c.nclasses == 1
        assert c.labels.tolist() == [0] * 8
        assert c.classes[0].size == 8
        assert c.classes[0].rep == 0

    def test_symmetric_butterflies_are_one_class(self):
        for coll, alg, k in [
            ("allreduce", "recursive_multiplying", 2),
            ("allgather", "recursive_multiplying", 3),
            ("allreduce", "kring", 2),
            ("allgather", "kring", 1),
            ("allreduce", "recursive_doubling", None),
        ]:
            c = _classify(coll, alg, 8, k=k)
            assert c.nclasses == 1, (coll, alg, k)

    def test_rooted_trees_stay_degenerate(self):
        # Every rank of a rooted k-nomial tree has a distinct timing
        # role (depth, fan-out slot), so the only sound partition is the
        # trivial one.  A coarser merge here would fake symmetry and
        # corrupt simulated costs.
        for coll in ("bcast", "reduce"):
            c = _classify(coll, "knomial", 8, k=2)
            assert c.nclasses == 8
            assert sorted(c.reps) == list(range(8))

    def test_labels_partition_every_rank(self):
        c = _classify("allreduce", "knomial", 16, k=4)
        assert len(c.labels) == 16
        sizes = np.bincount(c.labels, minlength=c.nclasses)
        assert int(sizes.sum()) == 16
        assert all(cls.size == int(sizes[i]) for i, cls in
                   enumerate(c.classes))

    def test_rep_is_lowest_member(self):
        c = _classify("allgather", "ring", 12)
        for label, cls in enumerate(c.classes):
            members = np.where(c.labels == label)[0]
            assert cls.rep == int(members[0])


class TestFingerprint:
    def test_deterministic(self):
        a = _classify("allreduce", "ring", 8)
        b = _classify("allreduce", "ring", 8)
        assert a.fingerprint() == b.fingerprint()

    def test_distinguishes_schedules(self):
        a = _classify("allgather", "ring", 8)
        b = _classify("allgather", "ring", 12)
        assert a.fingerprint() != b.fingerprint()


class TestClassCache:
    def test_same_residue_shares_entry(self):
        # The partition depends on nbytes only through the block residue
        # (nbytes % nblocks): two sizes with equal residue must be
        # served by one cached object.
        schedule = build_schedule("allgather", "ring", 8)
        m = reference(8)
        a = get_or_classify(schedule, m, 1024)
        b = get_or_classify(schedule, m, 2048)
        assert a is b

    def test_distinct_residue_distinct_entry(self):
        schedule = build_schedule("allgather", "ring", 8)
        m = reference(8)
        a = get_or_classify(schedule, m, 1024)   # residue 0
        b = get_or_classify(schedule, m, 1027)   # residue 3
        assert a is not b
        assert a.residue == 0 and b.residue == 3


class TestMachinePreconditions:
    def test_multirank_nodes_are_asymmetric(self):
        m = frontier(4, 2)
        assert machine_asymmetry(m) is not None
        with pytest.raises(ClassAnalysisError):
            classify(compile_schedule(build_schedule("allgather", "ring", 8)),
                     m, 4096)

    def test_reference_is_symmetric(self):
        assert machine_asymmetry(reference(8)) is None

    def test_rank_count_mismatch_rejected(self):
        with pytest.raises(ClassAnalysisError):
            classify(compile_schedule(build_schedule("allgather", "ring", 8)),
                     reference(16), 4096)
