"""The observability contract, stated as properties.

* **Cost transparency** — enabling full instrumentation (metrics +
  spans + timelines) changes no simulated cost bit-for-bit, on the
  serial path and through the process pool (``jobs=2``), and therefore
  cannot change a tuner's winners either.

* **Worker envelopes** — a pool worker joining an observed sweep ships
  its spans, timelines, and metrics home in an
  :class:`~repro.bench.sweep._ObsEnvelope`; the parent splices them
  into one merged trace with the parent's trace id.

The pool tests patch :func:`repro.parallel._available_cpus` (the same
trick as ``test_schedule_cache.py``) so single-core CI runners exercise
the real ``ProcessPoolExecutor`` instead of the serial clamp.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.parallel
from repro.bench.sweep import (
    SweepPoint,
    _chunk_points,
    _ObsEnvelope,
    _run_chunk,
    clear_sim_memo,
    run_sweep,
)
from repro.core.cache import global_schedule_cache
from repro.core.registry import GENERALIZED_ALGORITHMS
from repro.obs import OBS
from repro.selection.tuner import tune
from repro.simnet.machines import reference


@pytest.fixture(autouse=True)
def clean_state():
    OBS.disable()
    OBS.reset()
    clear_sim_memo()
    global_schedule_cache().clear()
    yield
    OBS.disable()
    OBS.reset()
    clear_sim_memo()
    global_schedule_cache().clear()


def _force_pool(monkeypatch, workers: int = 8) -> None:
    """Defeat the single-core clamp so jobs>=2 really uses the pool."""
    monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: workers)


def _workload():
    machine = reference(8)
    points = [
        SweepPoint(coll, alg, nbytes, k=2)
        for coll, alg in GENERALIZED_ALGORITHMS[:4]
        for nbytes in (256, 4096, 65536)
    ]
    return machine, points


class TestCostTransparency:
    def test_serial_costs_bit_identical_with_obs(self):
        machine, points = _workload()
        plain = run_sweep(points, machine)
        clear_sim_memo()
        global_schedule_cache().clear()
        OBS.enable()
        observed = run_sweep(points, machine)
        OBS.disable()
        assert [r.time for r in plain] == [r.time for r in observed]
        assert [r.error for r in plain] == [r.error for r in observed]

    def test_parallel_costs_bit_identical_with_obs(self, monkeypatch):
        _force_pool(monkeypatch)
        machine, points = _workload()
        plain = run_sweep(points, machine, jobs=2)
        clear_sim_memo()
        global_schedule_cache().clear()
        OBS.enable()
        observed = run_sweep(points, machine, jobs=2)
        OBS.disable()
        assert [r.time for r in plain] == [r.time for r in observed]

    def test_tuner_winners_invariant_under_obs(self):
        machine = reference(8)
        sizes = [64, 4096, 262144]
        baseline = tune(machine, sizes).to_json()
        clear_sim_memo()
        global_schedule_cache().clear()
        OBS.enable()
        observed = tune(machine, sizes).to_json()
        OBS.disable()
        assert baseline == observed

    def test_tuner_winners_invariant_under_obs_jobs2(self, monkeypatch):
        _force_pool(monkeypatch)
        machine = reference(8)
        sizes = [64, 262144]
        baseline = tune(machine, sizes, jobs=2).to_json()
        clear_sim_memo()
        global_schedule_cache().clear()
        OBS.enable()
        observed = tune(machine, sizes, jobs=2).to_json()
        OBS.disable()
        assert baseline == observed


class TestWorkerEnvelope:
    """Drive the worker-side path of :func:`_run_chunk` directly, so it
    is covered even where the cpu clamp degenerates ``jobs=2`` to
    serial."""

    def _worker_chunk(self):
        machine, points = _workload()
        OBS.enable()
        with OBS.span("sweep"):
            ctx = OBS.tracer.context()
        OBS.disable()
        # Pretend the chunk landed in another process: _run_chunk keys
        # worker mode off the context's origin pid, not the obs flag.
        ctx = dataclasses.replace(ctx, origin_pid=-1)
        (chunk,) = _chunk_points(
            machine, None, None, True, True, "auto", points[:3], ctx
        )
        out = _run_chunk(chunk)
        return ctx, points[:3], out

    def test_worker_returns_envelope(self):
        ctx, points, out = self._worker_chunk()
        assert len(out) == 1 and isinstance(out[0], _ObsEnvelope)
        env = out[0]
        assert len(env.results) == len(points)
        assert any(s.name == "sweep_chunk" for s in env.spans)
        assert env.busy_s >= 0.0
        assert env.metrics.total("repro_sweep_points_total") == len(points)

    def test_worker_leaves_global_scope_clean(self):
        self._worker_chunk()
        assert not OBS.enabled
        assert not OBS.tracer.spans()

    def test_parent_splices_envelope_into_one_trace(self):
        ctx, points, out = self._worker_chunk()
        env = out[0]
        OBS.enable()
        OBS.tracer.adopt(env.spans, env.timelines)
        OBS.metrics.merge(env.metrics)
        spans = OBS.tracer.spans()
        assert any(s.name == "sweep_chunk" for s in spans)
        assert all(s.trace_id == OBS.tracer.trace_id for s in spans)
        assert (
            OBS.metrics.snapshot().total("repro_sweep_points_total")
            == len(points)
        )

    def test_parent_process_chunk_stays_plain(self):
        """With ctx=None (serial sweep) results come back bare, not
        enveloped."""
        machine, points = _workload()
        (chunk,) = _chunk_points(
            machine, None, None, True, True, "auto", points[:2]
        )
        out = _run_chunk(chunk)
        assert len(out) == 2
        assert not isinstance(out[0], _ObsEnvelope)


class TestMergedParallelTrace:
    def test_jobs2_sweep_yields_one_merged_trace(self, monkeypatch):
        _force_pool(monkeypatch)
        machine, points = _workload()
        OBS.enable()
        run_sweep(points, machine, jobs=2)
        spans = OBS.tracer.spans()
        OBS.disable()
        names = [s.name for s in spans]
        assert "sweep" in names
        assert names.count("sweep_chunk") >= 2  # one per worker chunk
        assert len({s.trace_id for s in spans}) == 1
        busy = OBS.metrics.snapshot().total(
            "repro_sweep_worker_busy_seconds_total"
        )
        assert busy > 0.0
