"""Property tests of the schedule cache and the parallel sweep engine.

The two contracts PR 2 introduces, stated as properties:

* **Cache transparency** — a schedule served by the content-addressed
  :class:`~repro.core.cache.ScheduleCache` is step-for-step identical to
  a fresh builder call for the same normalized key, across the whole
  (collective, algorithm, p, k, root) space; and reusing cached
  schedules / memoized simulations never changes a simulated time.

* **Parallelism transparency** — ``run_sweep`` at any ``jobs`` level
  returns results bit-identical to the serial run, in the same order,
  including when a seeded :class:`~repro.faults.plan.FaultPlan` is
  active (fault injection is derived deterministically from the plan,
  so it too must be invariant to how the sweep is scheduled).

The pool tests patch :func:`repro.parallel._available_cpus` so the
worker-count clamp cannot silently turn the parallel path into the
serial one on single-core CI runners — they must exercise the real
``ProcessPoolExecutor``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

import repro.parallel
from repro.bench.sweep import (
    SweepPoint,
    clear_sim_memo,
    run_sweep,
    simulate_point,
)
from repro.core.cache import ScheduleCache, schedule_key
from repro.core.registry import GENERALIZED_ALGORITHMS, info
from repro.faults.plan import FaultPlan
from repro.simnet.machines import reference

PS = st.integers(min_value=1, max_value=20)


@st.composite
def cache_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    p = draw(PS)
    entry = info(coll, alg)
    k = max(entry.min_k, draw(st.integers(min_value=1, max_value=24)))
    root = draw(st.integers(min_value=0, max_value=p - 1))
    return coll, alg, p, k, root if entry.takes_root else 0


@settings(max_examples=60, deadline=None)
@given(cache_configs())
def test_cached_schedule_is_step_for_step_fresh(cfg):
    """A cache hit returns exactly what a fresh build would have."""
    coll, alg, p, k, root = cfg
    cache = ScheduleCache()
    first, hit1 = cache.get_or_build(coll, alg, p, k=k, root=root)
    second, hit2 = cache.get_or_build(coll, alg, p, k=k, root=root)
    assert (hit1, hit2) == (False, True)
    assert second is first  # a hit is the same object, not a rebuild

    fresh = info(coll, alg).build(p, k=k, root=root)
    assert first.fingerprint() == fresh.fingerprint()
    assert first.nranks == fresh.nranks
    assert first.nblocks == fresh.nblocks
    assert first.programs == fresh.programs  # ops compare by value


@settings(max_examples=60, deadline=None)
@given(cache_configs())
def test_schedule_key_normalization_matches_builder(cfg):
    """Keys collapse exactly the configs the builder treats as equal:
    the default radix and the explicit one, and every root of an
    unrooted collective."""
    coll, alg, p, k, root = cfg
    entry = info(coll, alg)
    key = schedule_key(coll, alg, p, k=k, root=root)
    assert key == schedule_key(coll, alg, p, k=k, root=root)
    if not entry.takes_root:
        assert key == schedule_key(coll, alg, p, k=k, root=p - 1)
    if entry.default_k is not None and k == entry.default_k:
        assert key == schedule_key(coll, alg, p, k=None, root=root)


@settings(max_examples=40, deadline=None)
@given(
    cache_configs(),
    st.sampled_from([64, 4096, 1 << 18]),
    st.integers(min_value=0, max_value=2**16),
)
def test_reuse_never_changes_a_result(cfg, nbytes, seed):
    """Cold path == cached path == memoized path, to the bit — with and
    without an active fault plan."""
    coll, alg, p, k, root = cfg
    machine = reference(p)
    for faults in (None, FaultPlan(delay_rate=0.3, seed=seed)):
        point = SweepPoint(coll, alg, nbytes, k=k, root=root)
        cold = simulate_point(machine, point, faults=faults, reuse=False)
        clear_sim_memo()
        cached = simulate_point(machine, point, faults=faults)
        memoized = simulate_point(machine, point, faults=faults)
        assert cold.time == cached.time == memoized.time
        assert cold.error is cached.error is memoized.error is None
        assert memoized.sim_hit and not cold.sim_hit


def _force_pool(monkeypatch, workers: int = 8) -> None:
    """Defeat the core-count clamp so jobs>=2 uses a real process pool."""
    monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: workers)


def _grid_points(p: int):
    points = []
    for coll, alg in GENERALIZED_ALGORITHMS[:4]:
        entry = info(coll, alg)
        k = max(entry.min_k, 2)
        for nbytes in (64, 4096, 1 << 16):
            points.append(SweepPoint(coll, alg, nbytes, k=k, root=0))
    # One deliberately broken point: error isolation must hold in every
    # execution mode and errors must come back in position, not raise.
    points.insert(3, SweepPoint("bcast", "knomial", 1024, k=0, root=0))
    return points


@pytest.mark.parametrize("jobs", [2, 4])
@pytest.mark.parametrize(
    "faults", [None, FaultPlan(delay_rate=0.5, delay_factor=3.0, seed=7)]
)
def test_parallel_sweep_bit_identical_to_serial(monkeypatch, jobs, faults):
    _force_pool(monkeypatch)
    machine = reference(8)
    points = _grid_points(8)

    clear_sim_memo()
    serial = run_sweep(points, machine, jobs=0, faults=faults)
    clear_sim_memo()
    parallel = run_sweep(points, machine, jobs=jobs, faults=faults)

    assert [r.point for r in serial] == points
    assert [r.point for r in parallel] == points
    assert [r.time for r in parallel] == [r.time for r in serial]
    assert [r.error for r in parallel] == [r.error for r in serial]
    bad = [r for r in serial if r.error is not None]
    assert len(bad) == 1 and bad[0].point.k == 0


def test_parallel_sweep_matches_cold_serial(monkeypatch):
    """jobs=2 with reuse beats nothing if it drifts from the ground
    truth: compare against the cold serial path, not just serial reuse."""
    _force_pool(monkeypatch)
    machine = reference(8)
    points = [
        pt for pt in _grid_points(8) if pt.k  # drop the poisoned point
    ]
    cold = run_sweep(points, machine, jobs=0, reuse=False)
    clear_sim_memo()
    warm = run_sweep(points, machine, jobs=2, reuse=True)
    assert [r.time for r in warm] == [r.time for r in cold]
