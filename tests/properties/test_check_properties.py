"""Property-based tests for the static-analysis suite (:mod:`repro.check`).

Two families of guarantees:

* **Registry cleanliness** — every schedule the registry can build passes
  the full check suite with zero error findings, at any radix, process
  count, or root.  This is the property the ``repro-check --all`` CI gate
  pins over a fixed grid; here hypothesis explores the space between the
  grid points.
* **Static/dynamic agreement** — :func:`repro.core.analysis.dependency_rounds`
  (the simulator-free longest-chain walk the model lint uses) equals
  :func:`repro.core.analysis.critical_path_rounds` (the DES-measured
  makespan at α=1, β=0) on every executable schedule.  This is what
  licenses the check suite to reason about timing without the engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckCache, run_checks
from repro.check.interp import interpret
from repro.core.analysis import critical_path_rounds, dependency_rounds
from repro.core.registry import GENERALIZED_ALGORITHMS, build_schedule, info

PS = st.integers(min_value=1, max_value=24)
KS = st.integers(min_value=1, max_value=26)


@st.composite
def generalized_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    p = draw(PS)
    entry = info(coll, alg)
    k = max(entry.min_k, draw(KS))
    root = draw(st.integers(min_value=0, max_value=p - 1))
    return coll, alg, p, k, root if entry.takes_root else 0


# One bounded cache for the whole module keeps repeated hypothesis draws
# of the same configuration from re-analyzing (and keeps the process
# global cache untouched by the test run).
_CACHE = CheckCache(maxsize=4096)


@settings(max_examples=100, deadline=None)
@given(generalized_configs())
def test_every_generalized_schedule_checks_clean(cfg):
    """No registry schedule deadlocks, races, or contradicts its model."""
    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    report = run_checks(sched, cache=_CACHE)
    assert report.ok, report.describe()


@settings(max_examples=100, deadline=None)
@given(generalized_configs())
def test_registry_schedules_are_rendezvous_safe(cfg):
    """Stronger than deadlock-free: every registry schedule completes
    under fully-rendezvous sends, so it is safe at ANY eager threshold
    (progress is monotone in the threshold)."""
    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    assert not interpret(sched, eager_threshold=0).deadlocked


@settings(max_examples=100, deadline=None)
@given(generalized_configs())
def test_dependency_rounds_matches_simulated_critical_path(cfg):
    """The static longest-chain walk agrees with the DES at α=1, β=0."""
    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    assert dependency_rounds(sched) == critical_path_rounds(sched)
