"""Property-based tests over the schedule IR and algorithm builders.

These sweep randomized (collective, algorithm, p, k, root) configurations
through the symbolic validator — the verification layer that the paper's
"many corner cases induced by our generalizations" (§VI-A) demands — plus
structural invariants that must hold for *every* buildable schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockMap, block_sizes
from repro.core.registry import GENERALIZED_ALGORITHMS, build_schedule, info
from repro.core.schedule import RecvOp, SendOp
from repro.core.validate import verify

# Keep individual examples fast: validation cost grows with p².
PS = st.integers(min_value=1, max_value=40)
KS = st.integers(min_value=1, max_value=44)


@st.composite
def generalized_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    p = draw(PS)
    entry = info(coll, alg)
    k = max(entry.min_k, draw(KS))
    root = draw(st.integers(min_value=0, max_value=p - 1))
    return coll, alg, p, k, root if entry.takes_root else 0


@settings(max_examples=120, deadline=None)
@given(generalized_configs())
def test_every_generalized_schedule_verifies(cfg):
    """Any radix, any process count, any root: the schedule satisfies its
    collective's postcondition with no double counting or deadlock."""
    coll, alg, p, k, root = cfg
    verify(build_schedule(coll, alg, p, k=k, root=root))


@settings(max_examples=120, deadline=None)
@given(generalized_configs())
def test_send_recv_counts_balance(cfg):
    """Global conservation: per channel, sends == receives."""
    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    balance = {}
    for prog in sched.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                key = (prog.rank, op.peer)
                balance[key] = balance.get(key, 0) + 1
            elif isinstance(op, RecvOp):
                key = (op.peer, prog.rank)
                balance[key] = balance.get(key, 0) - 1
    assert all(v == 0 for v in balance.values())


@settings(max_examples=120, deadline=None)
@given(generalized_configs())
def test_message_payloads_match_pairwise(cfg):
    """The i-th send on a channel names exactly the blocks the i-th
    receive expects (FIFO discipline makes this the wire contract)."""
    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    sends, recvs = {}, {}
    for prog in sched.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                sends.setdefault((prog.rank, op.peer), []).append(op.blocks)
            elif isinstance(op, RecvOp):
                recvs.setdefault((op.peer, prog.rank), []).append(op.blocks)
    assert sends.keys() == recvs.keys()
    for key in sends:
        assert sends[key] == recvs[key]


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=10_000),
    nblocks=st.integers(min_value=1, max_value=64),
)
def test_blockmap_partition_invariants(total, nblocks):
    bm = BlockMap(total, nblocks)
    sizes = bm.sizes
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    # ranges tile [0, total) in order with no gaps or overlaps
    pos = 0
    for b in range(nblocks):
        start, stop = bm.range_of(b)
        assert start == pos
        assert stop - start == sizes[b]
        pos = stop
    assert pos == total


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=10_000),
    nblocks=st.integers(min_value=1, max_value=64),
)
def test_block_sizes_mpich_convention(total, nblocks):
    """Larger blocks strictly precede smaller ones."""
    sizes = block_sizes(total, nblocks)
    assert list(sizes) == sorted(sizes, reverse=True)


@settings(max_examples=80, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=32),
    k=st.integers(min_value=1, max_value=36),
)
def test_kring_has_exactly_p_minus_1_logical_rounds(p, k):
    """Every rank in a k | p ring runs exactly p-1 steps (eq. (12))."""
    sched = build_schedule("allgather", "kring", p, k=max(1, min(k, p)))
    if p % max(1, min(k, p)) == 0:
        for prog in sched.programs:
            assert len(prog.steps) == p - 1


@settings(max_examples=60, deadline=None)
@given(generalized_configs())
def test_serialization_roundtrip_preserves_programs(cfg):
    """Any buildable schedule survives a JSON round trip bit-for-bit."""
    from repro.core.serialize import schedule_from_json, schedule_to_json

    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    restored = schedule_from_json(schedule_to_json(sched))
    assert [pr.steps for pr in restored.programs] == [
        pr.steps for pr in sched.programs
    ]
    assert restored.describe() == sched.describe()


@settings(max_examples=60, deadline=None)
@given(generalized_configs())
def test_critical_path_bounded_by_program_length(cfg):
    """The dependency chain can never exceed the longest rank program."""
    from repro.core.analysis import critical_path_rounds

    coll, alg, p, k, root = cfg
    sched = build_schedule(coll, alg, p, k=k, root=root)
    max_steps = max(
        (len(prog.steps) for prog in sched.programs), default=0
    )
    rounds = critical_path_rounds(sched)
    assert 0 <= rounds
    # each step can contribute at most one chained message latency, but
    # phases composed back to back may chain across programs, so the
    # global bound is the SUM of phase lengths ≤ total steps over ranks;
    # the per-rank bound still holds for single-phase symmetric schedules.
    assert rounds <= sum(len(prog.steps) for prog in sched.programs) + 1
