"""Property tests: chaos cases record the collapsed engine's exact fallback.

A :class:`~repro.faults.plan.FaultPlan` is always a collapse blocker —
rank-equivalence classes don't survive per-rank drops, stragglers, or
crashes — so *every* simulated chaos case run with ``engine="collapsed"``
must fall back to the materialized core and record the exact reason
(``"fault plan present"``) in :attr:`ChaosResult.fallback`.  Hypothesis
drives arbitrary plans through :func:`repro.faults.chaos.run_case`; the
classification itself must be engine-invariant, and the default
``engine="auto"`` path (which *declines* to collapse rather than falling
back) must record no fallback at all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import default_scenarios, run_case, run_chaos
from repro.faults.plan import (
    Crash,
    FaultPlan,
    LinkFault,
    RetryPolicy,
    Straggler,
)

P = 8
RETRY = RetryPolicy(max_retries=8, rto=0.01, backoff=2.0, max_rto=0.08)


@st.composite
def fault_plans(draw):
    """An arbitrary mixed plan over 8 ranks: loss, links, stragglers,
    crashes — in any combination, always with at least one fault."""
    drop = draw(st.sampled_from([0.0, 0.02, 0.1]))
    dup = draw(st.sampled_from([0.0, 0.05]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    links = ()
    if draw(st.booleans()):
        src = draw(st.integers(min_value=0, max_value=P - 1))
        dst = draw(st.integers(min_value=0, max_value=P - 1).filter(
            lambda d: d != src
        ))
        links = (LinkFault(src, dst, drop_rate=0.1, delay_factor=3.0),)
    stragglers = ()
    if draw(st.booleans()):
        stragglers = (
            Straggler(rank=draw(st.integers(min_value=0, max_value=P - 1)),
                      factor=8.0),
        )
    crashes = ()
    if draw(st.booleans()):
        crashes = (
            Crash(rank=draw(st.integers(min_value=0, max_value=P - 1)),
                  step=draw(st.integers(min_value=0, max_value=4))),
        )
    if not (drop or dup or links or stragglers or crashes):
        drop = 0.02  # an empty plan would not be a fault plan at all
    return FaultPlan(
        drop_rate=drop,
        dup_rate=dup,
        seed=seed,
        links=links,
        stragglers=stragglers,
        crashes=crashes,
        retry=RETRY,
    )


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans())
def test_every_plan_records_exact_fallback(plan):
    res = run_case("allreduce", "knomial", plan, backend="sim", p=P,
                   engine="collapsed")
    assert res.fallback == "fault plan present"
    assert res.ok  # classification contract holds regardless of engine


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans())
def test_classification_is_engine_invariant(plan):
    collapsed = run_case("allreduce", "knomial", plan, backend="sim", p=P,
                         engine="collapsed")
    auto = run_case("allreduce", "knomial", plan, backend="sim", p=P)
    materialized = run_case("allreduce", "knomial", plan, backend="sim",
                            p=P, engine="materialized")
    assert collapsed.outcome == auto.outcome == materialized.outcome
    # auto/materialized never *fall back* — auto declines up front, and
    # the materialized core is the fallback target itself.
    assert auto.fallback is None
    assert materialized.fallback is None


def test_default_sweep_records_fallback_on_every_sim_case():
    results = run_chaos(
        default_scenarios(0, P),
        p=P,
        backends=["sim"],
        algorithms=[("allreduce", "knomial")],
        engine="collapsed",
    )
    assert results  # the sweep ran something
    for r in results:
        assert r.fallback == "fault plan present"
        assert "collapsed fell back" in r.describe()


def test_threaded_cases_never_record_fallback():
    plan = FaultPlan(drop_rate=0.02, seed=0, retry=RETRY)
    res = run_case("allreduce", "knomial", plan, backend="threaded", p=4,
                   count=16, engine="collapsed")
    assert res.fallback is None  # no simulation engine on the wire
