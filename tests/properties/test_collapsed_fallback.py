"""Property tests of the collapsed engine's exact-fallback contract.

The dispatcher's promise (DESIGN.md §15): an explicit
``engine="collapsed"`` request never fails and never changes a result —
any input the class-equivalence argument cannot cover (noise, faults,
timelines, custom block maps, interpreted feeds, nonzero roots,
asymmetric machines) falls back to the materialized engine, records why
in ``SimResult.fallback``, and produces output bit-identical to asking
for ``engine="materialized"`` directly.  Hypothesis drives the
asymmetric inputs; the assertions never sample — equality is exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockMap
from repro.core.registry import build_schedule
from repro.faults import Crash, FaultPlan
from repro.simnet.machines import frontier, reference
from repro.simnet.noise import NoiseModel
from repro.simnet.simulate import simulate

#: A symmetric baseline: without the asymmetric input under test, this
#: schedule runs collapsed (single class) — so any fallback observed in
#: these tests is attributable to the injected asymmetry alone.
SCHEDULE = build_schedule("allgather", "ring", 8)
M8 = reference(8)


def _assert_exact_fallback(col, mat, expected_reason):
    assert col.engine == "materialized"
    assert col.fallback == expected_reason
    assert col.time == mat.time
    assert list(col.rank_times) == list(mat.rank_times)
    assert col.messages == mat.messages


@settings(max_examples=20, deadline=None)
@given(sigma=st.floats(min_value=0.01, max_value=0.5,
                       allow_nan=False, allow_infinity=False),
       seed=st.integers(min_value=0, max_value=2**16))
def test_noise_forces_exact_fallback(sigma, seed):
    noise = NoiseModel(sigma=sigma, seed=seed)
    col = simulate(SCHEDULE, M8, 4096, noise=noise, engine="collapsed")
    mat = simulate(SCHEDULE, M8, 4096, noise=noise, engine="materialized")
    _assert_exact_fallback(col, mat, "noise model active")


@settings(max_examples=20, deadline=None)
@given(rank=st.integers(min_value=0, max_value=7),
       step=st.integers(min_value=0, max_value=6))
def test_faults_force_exact_fallback(rank, step):
    plan = FaultPlan(crashes=(Crash(rank=rank, step=step),))
    col = simulate(SCHEDULE, M8, 4096, faults=plan, engine="collapsed")
    mat = simulate(SCHEDULE, M8, 4096, faults=plan, engine="materialized")
    _assert_exact_fallback(col, mat, "fault plan present")


@settings(max_examples=10, deadline=None)
@given(root=st.integers(min_value=1, max_value=7))
def test_nonzero_root_forces_exact_fallback(root):
    schedule = build_schedule("bcast", "knomial", 8, k=2, root=root)
    col = simulate(schedule, M8, 4096, engine="collapsed")
    mat = simulate(schedule, M8, 4096, engine="materialized")
    _assert_exact_fallback(col, mat, f"nonzero root {root}")


def test_timeline_forces_exact_fallback():
    col = simulate(SCHEDULE, M8, 4096, collect_timeline=True,
                   engine="collapsed")
    mat = simulate(SCHEDULE, M8, 4096, collect_timeline=True,
                   engine="materialized")
    _assert_exact_fallback(col, mat, "timeline collection requested")
    assert col.timeline == mat.timeline


def test_custom_block_map_forces_exact_fallback():
    bm = BlockMap(4096, SCHEDULE.nblocks)
    col = simulate(SCHEDULE, M8, 4096, block_map=bm, engine="collapsed")
    mat = simulate(SCHEDULE, M8, 4096, block_map=bm, engine="materialized")
    _assert_exact_fallback(col, mat, "custom block map")


def test_interpreted_feed_forces_exact_fallback():
    col = simulate(SCHEDULE, M8, 4096, compiled=False, engine="collapsed")
    mat = simulate(SCHEDULE, M8, 4096, compiled=False, engine="materialized")
    _assert_exact_fallback(col, mat,
                           "interpreted feed requested (compiled=False)")


def test_asymmetric_machine_forces_fallback():
    m = frontier(4, 2)  # two ranks per node: intra/inter link asymmetry
    col = simulate(SCHEDULE, m, 4096, engine="collapsed")
    mat = simulate(SCHEDULE, m, 4096, engine="materialized")
    assert col.engine == "materialized"
    assert col.fallback is not None
    assert col.time == mat.time
    assert list(col.rank_times) == list(mat.rank_times)


def test_symmetric_baseline_does_collapse():
    # The control: with none of the above, the same request runs the
    # collapsed core — proving the fallbacks observed here come from
    # the injected asymmetry, not from the baseline config.
    res = simulate(SCHEDULE, M8, 4096, engine="collapsed")
    assert res.engine == "collapsed"
    assert res.fallback is None
    assert res.nclasses == 1
