"""Property-based tests over the extension algorithms (Bruck family,
all-to-all, pipelined chain, hierarchical composition)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alltoall import bruck_alltoall, pairwise_alltoall
from repro.core.bruck import bruck_allgather, dissemination_barrier
from repro.core.hierarchical import hierarchical_allreduce
from repro.core.pipeline import chain_bcast
from repro.core.schedule import SendOp
from repro.core.validate import verify


@settings(max_examples=60, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=32),
    k=st.integers(min_value=2, max_value=34),
)
def test_bruck_allgather_always_verifies(p, k):
    verify(bruck_allgather(p, k))


@settings(max_examples=60, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=32),
    k=st.integers(min_value=2, max_value=34),
)
def test_dissemination_barrier_always_verifies(p, k):
    verify(dissemination_barrier(p, k))


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=20),
    k=st.integers(min_value=2, max_value=8),
)
def test_alltoall_always_verifies(p, k):
    verify(pairwise_alltoall(p))
    verify(bruck_alltoall(p, k))


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=16),
    k=st.integers(min_value=2, max_value=8),
)
def test_bruck_alltoall_conserves_blocks(p, k):
    """Digit routing must deliver each (src, dst) block exactly once to
    its destination — total receive volume equals the off-local blocks."""
    from repro.core.schedule import RecvOp

    sched = bruck_alltoall(p, k)
    for prog in sched.programs:
        got = []
        for _, op in prog.iter_ops():
            if isinstance(op, RecvOp):
                got.extend(op.blocks)
        # relayed blocks may pass through; but every destined block must
        # be received at least once unless it started local
        destined = {
            s * p + prog.rank for s in range(p) if s != prog.rank
        }
        assert destined <= set(got)


@settings(max_examples=60, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=24),
    segments=st.integers(min_value=1, max_value=24),
    root_seed=st.integers(min_value=0, max_value=1000),
)
def test_chain_bcast_always_verifies(p, segments, root_seed):
    verify(chain_bcast(p, segments, root=root_seed % p))


@settings(max_examples=40, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=6),
    ppn=st.integers(min_value=1, max_value=6),
    intra_k=st.integers(min_value=2, max_value=5),
    leader_k=st.integers(min_value=2, max_value=6),
)
def test_hierarchical_always_verifies(nodes, ppn, intra_k, leader_k):
    sched = hierarchical_allreduce(
        nodes * ppn,
        ppn,
        intra_k=intra_k,
        leader_algorithm="recursive_multiplying",
        leader_k=leader_k,
    )
    verify(sched)


@settings(max_examples=40, deadline=None)
@given(
    nodes=st.integers(min_value=2, max_value=5),
    ppn=st.integers(min_value=2, max_value=5),
)
def test_hierarchical_internode_traffic_is_leader_only(nodes, ppn):
    """Structural invariant of the two-level composition, under any
    geometry hypothesis explores."""
    p = nodes * ppn
    sched = hierarchical_allreduce(p, ppn)
    leaders = {node * ppn for node in range(nodes)}
    for prog in sched.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                same_node = prog.rank // ppn == op.peer // ppn
                if not same_node:
                    assert prog.rank in leaders and op.peer in leaders
