"""Compiled == interpreted, stated as properties.

The whole point of :mod:`repro.compile` is that it buys speed and
*nothing else*: lowering a schedule to flat program tables must never
change a result buffer, a simulated cost, a tuner winner, or a recovery
outcome.  This suite is the differential harness that makes the claim
falsifiable:

* **Registry grid** — every (collective, algorithm) pair, at several
  rank counts and radices including the degenerate ``k = max_radix``
  corner, executes bit-identically on the lockstep backend and
  simulates to bit-identical costs with the compiled feed on and off.
* **Randomized configs** — a hypothesis property draws (p, k, root,
  count, seed) freely and re-asserts lockstep bit-identity.
* **Threaded backend** — fault-free and under a lossy
  :class:`~repro.faults.FaultPlan` (drops, duplicates, delays), the
  compiled worker path produces the interpreter's exact buffers.
* **Recovery** — a crash healed by ``recovery="shrink"`` takes the same
  rounds, keeps the same survivors, and lands the same buffers in both
  modes.
* **Sweeps and tuning** — ``run_sweep`` (serial and ``--jobs 2``
  through a real process pool) and :func:`repro.selection.tuner.tune`
  are invariant under ``compiled``.
* **Fusion** — on hand-built copy-step schedules (the registry emits
  none, so these are constructed), legal fusion never changes
  :func:`repro.check.run_checks` findings nor execution results.
* **Degenerate radices** — at ``k = max_radix(p)`` (≈ p−1) the
  compiled simulator feed stays inside the calibrated
  ``KNOWN_DIVERGENCES`` model bands: zero model-consistency findings,
  same as the interpreter it mirrors.

The pool test patches :func:`repro.parallel._available_cpus` (same
trick as ``test_obs_transparency.py``) so single-core CI runners
exercise the real ``ProcessPoolExecutor`` instead of the serial clamp.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

import repro.api as api
import repro.parallel
from repro.bench.sweep import SweepPoint, clear_sim_memo, run_sweep
from repro.check import check_model, has_model, run_checks
from repro.compile import compile_schedule, fuse_schedule
from repro.core.cache import global_schedule_cache
from repro.core.registry import (
    COLLECTIVES,
    algorithms_for,
    build_schedule,
    info,
    max_radix,
)
from repro.core.schedule import CopyOp, RankProgram, Schedule, Step
from repro.faults import Crash, FaultPlan
from repro.runtime.executor import execute as execute_lockstep
from repro.selection.tuner import tune
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

GRID = [
    (coll, alg) for coll in COLLECTIVES for alg in algorithms_for(coll)
]


@pytest.fixture(autouse=True)
def clean_caches():
    clear_sim_memo()
    global_schedule_cache().clear()
    yield
    clear_sim_memo()
    global_schedule_cache().clear()


def _radices(coll: str, alg: str, p: int):
    """Radices worth hitting: min, a middle value, and the degenerate
    ``max_radix`` corner (k ≈ p−1 for most tree/ring families)."""
    entry = info(coll, alg)
    if not entry.takes_k:
        return [None]
    mr = max_radix(coll, alg, p)
    return sorted({k for k in (entry.min_k, 3, mr) if entry.min_k <= k <= mr})


def _run_both(coll, alg, *, p, count, k=None, root=0, seed=0, **kwargs):
    """One config executed compiled and interpreted; returns both runs."""
    return [
        api.execute(
            coll, alg, p=p, count=count, k=k, root=root, seed=seed,
            compiled=compiled, **kwargs,
        )
        for compiled in (True, False)
    ]


def _assert_buffers_equal(a, b, label: str) -> None:
    assert len(a) == len(b)
    for rank, (x, y) in enumerate(zip(a, b)):
        assert np.array_equal(x, y), (
            f"{label}: rank {rank} buffers diverged between compiled "
            f"and interpreted execution"
        )


class TestRegistryGrid:
    """Every registered pair, lockstep + simulator, both modes."""

    @pytest.mark.parametrize("coll,alg", GRID)
    def test_lockstep_and_sim_bit_identical(self, coll, alg):
        for p in (4, 7, 8):
            machine = reference(p)
            for k in _radices(coll, alg, p):
                if coll == "barrier":
                    # Barrier moves no payload, so there are no buffers
                    # to execute over — the simulator comparison below
                    # still covers it.
                    schedule = build_schedule(coll, alg, p, k=k)
                else:
                    run_c, run_i = _run_both(coll, alg, p=p, count=5, k=k)
                    _assert_buffers_equal(
                        run_c.buffers, run_i.buffers,
                        f"{coll}/{alg} p={p} k={k}",
                    )
                    schedule = run_c.schedule
                sim_c = simulate(schedule, machine, 4096, compiled=True)
                sim_i = simulate(schedule, machine, 4096, compiled=False)
                assert sim_c.time == sim_i.time
                assert sim_c.rank_times == sim_i.rank_times


class TestRandomizedConfigs:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_lockstep_bit_identical(self, data):
        coll = data.draw(
            st.sampled_from([c for c in COLLECTIVES if c != "barrier"]),
            label="collective",
        )
        alg = data.draw(
            st.sampled_from(algorithms_for(coll)), label="algorithm"
        )
        p = data.draw(st.integers(2, 9), label="p")
        entry = info(coll, alg)
        k = None
        if entry.takes_k:
            mr = max_radix(coll, alg, p)
            assume(mr >= entry.min_k)
            k = data.draw(st.integers(entry.min_k, mr), label="k")
        root = (
            data.draw(st.integers(0, p - 1), label="root")
            if entry.takes_root else 0
        )
        count = data.draw(st.integers(1, 32), label="count")
        seed = data.draw(st.integers(0, 2 ** 16), label="seed")
        run_c, run_i = _run_both(
            coll, alg, p=p, count=count, k=k, root=root, seed=seed
        )
        _assert_buffers_equal(
            run_c.buffers, run_i.buffers,
            f"{coll}/{alg} p={p} k={k} root={root} count={count}",
        )


#: One threaded config per traffic shape (the perf tier's acceptance
#: grid plus a halving pattern).
THREADED_CASES = [
    ("allreduce", "ring", None),
    ("allgather", "ring", None),
    ("bcast", "knomial", 3),
    ("alltoall", "bruck", None),
    ("reduce_scatter", "recursive_halving", None),
]


class TestThreadedBackend:
    @pytest.mark.parametrize("coll,alg,k", THREADED_CASES)
    def test_fault_free_bit_identical(self, coll, alg, k):
        run_c, run_i = _run_both(
            coll, alg, p=8, count=16, k=k, backend="threaded"
        )
        _assert_buffers_equal(
            run_c.buffers, run_i.buffers, f"threaded {coll}/{alg}"
        )

    def test_lossy_plan_bit_identical(self):
        plan = FaultPlan(drop_rate=0.15, dup_rate=0.1, delay_rate=0.1,
                         seed=7)
        run_c, run_i = _run_both(
            "allreduce", "ring", p=6, count=8, backend="threaded",
            faults=plan,
        )
        _assert_buffers_equal(
            run_c.buffers, run_i.buffers, "threaded lossy allreduce/ring"
        )

    def test_recovery_shrink_same_rounds_and_buffers(self):
        plan = FaultPlan(crashes=(Crash(rank=2, step=1),), seed=3)
        run_c, run_i = [
            api.execute(
                "allreduce", "ring", p=6, count=8, backend="threaded",
                faults=plan, recovery="shrink", compiled=compiled,
                check=False,
            )
            for compiled in (True, False)
        ]
        assert run_c.survivors == run_i.survivors
        assert [
            (r.action, r.nranks, r.survivors, r.succeeded)
            for r in run_c.report.rounds
        ] == [
            (r.action, r.nranks, r.survivors, r.succeeded)
            for r in run_i.report.rounds
        ]
        _assert_buffers_equal(
            run_c.buffers, run_i.buffers, "recovery shrink allreduce/ring"
        )


class TestSweepsAndTuning:
    def _points(self):
        return [
            SweepPoint(coll, alg, nbytes, k=k)
            for coll, alg, k in (
                ("allreduce", "recursive_multiplying", 2),
                ("bcast", "knomial", 3),
                ("allgather", "kring", 2),
            )
            for nbytes in (256, 65536)
        ]

    def test_serial_sweep_invariant(self):
        machine = reference(8)
        a = run_sweep(self._points(), machine, compiled=True)
        clear_sim_memo()
        global_schedule_cache().clear()
        b = run_sweep(self._points(), machine, compiled=False)
        assert [(r.time, r.error) for r in a] == [
            (r.time, r.error) for r in b
        ]

    def test_jobs2_sweep_invariant(self, monkeypatch):
        monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: 8)
        machine = reference(8)
        a = run_sweep(self._points(), machine, jobs=2, compiled=True)
        clear_sim_memo()
        global_schedule_cache().clear()
        b = run_sweep(self._points(), machine, jobs=2, compiled=False)
        assert [(r.time, r.error) for r in a] == [
            (r.time, r.error) for r in b
        ]

    def test_tuner_winners_invariant(self):
        machine = reference(8)
        sizes = [64, 4096, 262144]
        compiled = tune(machine, sizes, compiled=True).to_json()
        clear_sim_memo()
        global_schedule_cache().clear()
        interpreted = tune(machine, sizes, compiled=False).to_json()
        assert compiled == interpreted


# ---------------------------------------------------------------------------
# Fusion transparency on hand-built copy-step schedules.  The registry
# emits no CopyOps (verified by test_no_registry_fusion below), so the
# only way to exercise the fuser is to construct schedules by hand.
# ---------------------------------------------------------------------------


@st.composite
def copy_schedules(draw):
    """A valid schedule whose steps hold only local CopyOps."""
    p = draw(st.integers(1, 3))
    nblocks = draw(st.integers(2, 5))
    nsteps = draw(st.integers(1, 4))
    programs = []
    for rank in range(p):
        steps = []
        for _ in range(nsteps):
            nops = draw(st.integers(1, 3))
            ops = []
            for _ in range(nops):
                src = draw(st.integers(0, nblocks - 1))
                dst = draw(
                    st.integers(0, nblocks - 1).filter(lambda d: d != src)
                )
                ops.append(CopyOp(src, dst))
            steps.append(Step(ops=tuple(ops)))
        programs.append(RankProgram(rank, steps=steps))
    return Schedule("bcast", "handbuilt", p, nblocks, programs, root=0)


class TestFusionTransparency:
    def test_no_registry_fusion(self):
        """The registry grid gives the fuser nothing to do — documented
        here so the hand-built strategy's existence is justified."""
        for coll, alg in GRID:
            schedule = build_schedule(coll, alg, 8)
            fused = fuse_schedule(schedule)
            assert sum(
                len(prog.steps) for prog in fused.programs
            ) == sum(len(prog.steps) for prog in schedule.programs)

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(schedule=copy_schedules(), data=st.data())
    def test_fusion_preserves_findings_and_results(self, schedule, data):
        fused = fuse_schedule(schedule)
        raw_findings = [
            (f.code, f.severity)
            for f in run_checks(schedule, model=False).findings
        ]
        fused_findings = [
            (f.code, f.severity)
            for f in run_checks(fused, model=False).findings
        ]
        assert sorted(raw_findings) == sorted(fused_findings), (
            "legal fusion changed the static-analysis findings"
        )

        count = data.draw(st.integers(1, 8), label="count")
        seed = data.draw(st.integers(0, 2 ** 16), label="seed")
        rng = np.random.default_rng(seed)
        total = schedule.nblocks * count
        base = [
            rng.integers(0, 1 << 20, size=total)
            for _ in range(schedule.nranks)
        ]

        def run(sched, compiled):
            bufs = [b.copy() for b in base]
            execute_lockstep(sched, bufs, compiled=compiled)
            return bufs

        raw = run(schedule, False)
        _assert_buffers_equal(run(fused, False), raw, "fused interpreted")
        _assert_buffers_equal(run(schedule, True), raw, "compiled (fusing)")


class TestDegenerateRadices:
    def test_max_radix_stays_in_divergence_bands(self):
        """k = max_radix (≈ p−1): the compiled feed changes no cost, so
        the calibrated KNOWN_DIVERGENCES bands keep holding — zero
        model-consistency findings, exactly as the interpreter."""
        for coll, alg in GRID:
            entry = info(coll, alg)
            if not entry.takes_k or not has_model(coll, alg):
                continue
            for p in (8, 9):
                mr = max_radix(coll, alg, p)
                if mr < entry.min_k:
                    continue
                schedule = build_schedule(coll, alg, p, k=mr)
                machine = reference(p)
                sim_c = simulate(schedule, machine, 65536, compiled=True)
                sim_i = simulate(schedule, machine, 65536, compiled=False)
                assert sim_c.time == sim_i.time, (
                    f"{coll}/{alg} p={p} k={mr}: compiled feed diverged"
                )
                findings = check_model(schedule, 65536)
                assert not findings, (
                    f"{coll}/{alg} p={p} k={mr} left the calibrated "
                    f"model bands under the compiled feed: "
                    f"{[(f.code, f.severity) for f in findings]}"
                )
