"""Property-based tests of the resilience contract.

The subsystem-wide invariant: under *any* seeded
:class:`~repro.faults.FaultPlan`, every registered algorithm either
completes with results identical to the NumPy reference, or raises a
structured fault error — no hangs, no silent corruption, no unstructured
failure.  Hypothesis drives random (algorithm, radix, size, fault-rate,
seed) configurations through both backends.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import GENERALIZED_ALGORITHMS, build_schedule, info
from repro.errors import FaultError, PartialFailure
from repro.faults import Crash, FaultPlan, LinkFault, RetryPolicy
from repro.runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.threaded import execute_threaded
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

#: Fast-timeout policy so even heavy-loss draws resolve in milliseconds.
FAST = RetryPolicy(max_retries=8, rto=0.005, backoff=2.0, max_rto=0.04)


@st.composite
def fault_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    entry = info(coll, alg)
    p = draw(st.integers(min_value=2, max_value=10))
    k = max(entry.min_k, draw(st.integers(min_value=1, max_value=p)))
    count = draw(st.integers(min_value=1, max_value=3 * p))
    plan = FaultPlan(
        drop_rate=draw(st.floats(min_value=0.0, max_value=0.25)),
        dup_rate=draw(st.floats(min_value=0.0, max_value=0.25)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        retry=FAST,
    )
    return coll, alg, p, k, count, plan


@settings(max_examples=40, deadline=None)
@given(fault_configs())
def test_drops_and_duplicates_never_corrupt_threaded_results(cfg):
    """Maskable loss: retries recover every drop, dedup eats every
    duplicate, and the outputs are element-exact — or the failure is a
    structured fault error."""
    coll, alg, p, k, count, plan = cfg
    sched = build_schedule(coll, alg, p, k=k)
    inputs = make_inputs(coll, p, count)
    expected = reference_result(coll, inputs, count)
    bufs = initial_buffers(sched, inputs, count)
    try:
        execute_threaded(sched, bufs, timeout=5.0, faults=plan)
    except (FaultError, PartialFailure) as exc:
        # Allowed outcome: the retry budget genuinely ran out, and the
        # error says exactly where.
        diagnoses = (
            exc.faults if isinstance(exc, PartialFailure) else [exc]
        )
        assert diagnoses
        for diag in diagnoses:
            assert diag.kind in ("retries_exhausted", "crash", "timeout")
            assert diag.rank is not None
        return
    check_outputs(sched, bufs, expected, count)


@st.composite
def unmaskable_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    entry = info(coll, alg)
    p = draw(st.integers(min_value=3, max_value=10))
    k = max(entry.min_k, draw(st.integers(min_value=1, max_value=4)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    kind = draw(st.sampled_from(["crash", "dead_link"]))
    if kind == "crash":
        plan = FaultPlan(
            seed=seed,
            crashes=(Crash(rank=draw(st.integers(0, p - 1)), step=0),),
            retry=FAST,
        )
    else:
        src = draw(st.integers(0, p - 1))
        dst = draw(st.integers(0, p - 1).filter(lambda d: d != src))
        plan = FaultPlan(
            seed=seed,
            links=(LinkFault(src, dst, drop_rate=1.0),),
            retry=RetryPolicy(max_retries=1, rto=0.005, max_rto=0.01),
        )
    return coll, alg, p, k, plan


@settings(max_examples=25, deadline=None)
@given(unmaskable_configs())
def test_unmaskable_faults_fail_structured_never_hang(cfg):
    """Crashes and dead links: either the schedule happens not to touch
    the fault (completes correctly) or it raises a structured error —
    within the timeout, never a hang."""
    coll, alg, p, k, plan = cfg
    sched = build_schedule(coll, alg, p, k=k)
    count = 2 * p
    inputs = make_inputs(coll, p, count)
    expected = reference_result(coll, inputs, count)
    bufs = initial_buffers(sched, inputs, count)
    try:
        execute_threaded(sched, bufs, timeout=5.0, faults=plan)
    except PartialFailure as exc:
        assert exc.failed_ranks
        assert exc.faults
        for diag in exc.faults:
            assert diag.diagnosis()
        return
    check_outputs(sched, bufs, expected, count)


@settings(max_examples=40, deadline=None)
@given(fault_configs())
def test_simulator_fault_runs_are_deterministic_and_finite(cfg):
    """The simulator under the same plan gives the same answer twice,
    and completes (drops are always maskable given the retry budget is
    not exhausted — and when it is, the result says so)."""
    coll, alg, p, k, count, plan = cfg
    sched = build_schedule(coll, alg, p, k=k)
    machine = reference(p)
    first = simulate(sched, machine, count * 8, faults=plan)
    second = simulate(sched, machine, count * 8, faults=plan)
    assert first.time == second.time
    assert first.retransmissions == second.retransmissions
    assert first.failed_ranks == second.failed_ranks
    if first.complete:
        assert np.isfinite(first.time)
    else:
        assert first.failed_ranks or first.stalled_ranks
