"""Determinism properties of the recovery layer.

The recovery loop's whole value rests on being replayable: the same
seeded :class:`~repro.faults.plan.FaultPlan` must produce the same
survivor set, the same rebuilt schedules (pinned by content-hash
fingerprint), and — for the simulated path and the recovery sweep — the
same numbers to the last bit, serially or fanned out over worker
processes.  These tests pin each of those contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.recovery import run_recovery_sweep
from repro.faults.plan import Crash, FaultPlan, LinkFault, RetryPolicy
from repro.recovery import (
    RecoveryPolicy,
    execute_with_recovery,
    simulate_with_recovery,
)
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate
import repro

FAST = RetryPolicy(max_retries=3, rto=0.01, backoff=2.0, max_rto=0.04)

PLANS = [
    pytest.param(
        FaultPlan(seed=7, crashes=(Crash(rank=1, step=1),), retry=FAST),
        id="one-crash",
    ),
    pytest.param(
        FaultPlan(
            seed=11,
            crashes=(Crash(rank=2, step=0), Crash(rank=5, step=2)),
            retry=FAST,
        ),
        id="two-crashes",
    ),
    pytest.param(
        FaultPlan(
            seed=3,
            links=(LinkFault(3, 4, drop_rate=1.0),),
            retry=FAST,
        ),
        id="dead-link",
    ),
]


def sim_signature(plan, *, recovery="shrink"):
    res = simulate_with_recovery(
        "allreduce", "knomial", reference(8), 65536, k=2,
        recovery=recovery, faults=plan,
    )
    return (
        res.recovered,
        res.rounds,
        res.survivors,
        res.report.fingerprints(),
        res.time,
        res.time_to_recovery,
        res.post_recovery_time,
    )


class TestSeededDeterminism:
    @pytest.mark.parametrize("plan", PLANS)
    def test_sim_recovery_replays_bit_identically(self, plan):
        assert sim_signature(plan) == sim_signature(plan)

    @pytest.mark.parametrize("plan", PLANS)
    def test_threaded_recovery_same_survivors_and_schedules(self, plan):
        """Wall-clock detection timing varies; who survives and what gets
        rebuilt must not."""
        runs = [
            execute_with_recovery(
                "allreduce", "knomial", p=8, count=32, k=2,
                recovery="shrink", faults=plan, timeout=5.0,
            )
            for _ in range(2)
        ]
        a, b = runs
        assert a.slots == b.slots
        assert a.hosts == b.hosts
        assert a.report.fingerprints() == b.report.fingerprints()
        assert [f.rank for f in a.report.failures] == [
            f.rank for f in b.report.failures
        ]
        for x, y in zip(a.buffers, b.buffers):
            assert np.array_equal(x, y)

    def test_threaded_and_sim_agree_on_survivors(self):
        plan = FaultPlan(seed=7, crashes=(Crash(rank=1, step=1),),
                         retry=FAST)
        run = execute_with_recovery(
            "allreduce", "knomial", p=8, count=32, k=2,
            recovery="shrink", faults=plan, timeout=5.0,
        )
        res = simulate_with_recovery(
            "allreduce", "knomial", reference(8), 65536, k=2,
            recovery="shrink", faults=plan,
        )
        assert run.slots == res.survivors
        assert run.report.fingerprints() == res.report.fingerprints()


class TestSweepJobsInvariance:
    def test_recovery_sweep_bit_identical_across_jobs(self):
        machine = reference(8)
        serial = run_recovery_sweep(machine, nbytes=4096, seed=5, jobs=0)
        fanned = run_recovery_sweep(machine, nbytes=4096, seed=5, jobs=2)
        assert len(serial) == len(fanned)
        # Records are frozen dataclasses of simulated quantities only, so
        # equality here is bit-equality of every float.
        assert serial == fanned

    def test_recovery_sweep_replays_identically(self):
        machine = reference(8)
        a = run_recovery_sweep(machine, nbytes=4096, seed=5, jobs=0)
        b = run_recovery_sweep(machine, nbytes=4096, seed=5, jobs=0)
        assert a == b


class TestRecoveryOffCostsNothing:
    def test_no_fault_wrapper_time_equals_plain_simulate(self):
        """With nothing to heal, the recovery wrapper is the plain
        simulation: one round, identical time, zero recovery cost."""
        machine = reference(8)
        for coll, alg, k in [
            ("allreduce", "knomial", 2),
            ("allgather", "kring", 3),
            ("bcast", "recursive_multiplying", 2),
        ]:
            sched = repro.build(coll, alg, p=8, k=k)
            plain = simulate(sched, machine, 65536)
            wrapped = simulate_with_recovery(
                coll, alg, machine, 65536, k=k, recovery="shrink",
            )
            assert wrapped.rounds == 1
            assert wrapped.time == plain.time
            assert wrapped.time_to_recovery == 0.0
            assert wrapped.recovered

    def test_inert_plan_is_one_clean_round(self):
        res = simulate_with_recovery(
            "allreduce", "knomial", reference(8), 65536, k=2,
            recovery=RecoveryPolicy(mode="shrink"),
            faults=FaultPlan(seed=0),
        )
        assert res.rounds == 1 and res.recovered
