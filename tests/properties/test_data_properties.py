"""Property-based tests of real data movement and the simulator.

Where the symbolic layer proves structure, these run randomized
configurations end-to-end on NumPy buffers and through the simulator,
checking the semantics the paper's users would rely on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import GENERALIZED_ALGORITHMS, build_schedule, info
from repro.runtime.executor import run_collective
from repro.runtime.ops import MAX, SUM
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

PS = st.integers(min_value=1, max_value=24)


@st.composite
def data_configs(draw):
    coll, alg = draw(st.sampled_from(GENERALIZED_ALGORITHMS))
    p = draw(PS)
    entry = info(coll, alg)
    k = max(entry.min_k, draw(st.integers(min_value=1, max_value=26)))
    count = draw(st.integers(min_value=1, max_value=4 * p + 5))
    root = draw(st.integers(min_value=0, max_value=p - 1))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return coll, alg, p, k, count, root if entry.takes_root else 0, seed


@settings(max_examples=60, deadline=None)
@given(data_configs())
def test_generalized_algorithms_move_real_data_correctly(cfg):
    """run_collective raises on any mismatch against the NumPy oracle."""
    coll, alg, p, k, count, root, seed = cfg
    run_collective(coll, alg, p, count, k=k, root=root, seed=seed)


@settings(max_examples=40, deadline=None)
@given(data_configs())
def test_sum_and_max_agree_with_oracle(cfg):
    coll, alg, p, k, count, root, seed = cfg
    if coll not in ("reduce", "allreduce"):
        return
    for op in (SUM, MAX):
        run_collective(coll, alg, p, count, k=k, root=root, seed=seed, op=op)


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=16),
    k=st.integers(min_value=2, max_value=18),
    nbytes=st.integers(min_value=0, max_value=1 << 16),
)
def test_simulated_time_is_positive_and_monotone_in_bytes(p, k, nbytes):
    """More bytes can never make a fixed schedule finish sooner."""
    sched = build_schedule("allreduce", "recursive_multiplying", p, k=k)
    machine = reference(p)
    t1 = simulate(sched, machine, nbytes).time
    t2 = simulate(sched, machine, nbytes + 4096).time
    assert 0 < t1 <= t2


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=16),
    nbytes=st.integers(min_value=8, max_value=1 << 14),
    seed=st.integers(min_value=0, max_value=100),
)
def test_simulation_is_deterministic(p, nbytes, seed):
    sched = build_schedule("allgather", "recursive_doubling", p)
    machine = reference(p)
    from repro.simnet.noise import NoiseModel

    noise = NoiseModel(sigma=0.2, seed=seed)
    a = simulate(sched, machine, nbytes, noise=noise)
    b = simulate(sched, machine, nbytes, noise=noise)
    assert a.time == b.time
    assert a.messages == b.messages


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=16),
    count=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_bcast_is_idempotent_on_result(p, count, seed):
    """Broadcasting twice produces the same buffers as broadcasting once."""
    run1 = run_collective("bcast", "binomial", p, count, seed=seed)
    sched = run1.schedule
    from repro.runtime.executor import execute

    before = [b.copy() for b in run1.buffers]
    execute(sched, run1.buffers)
    for x, y in zip(before, run1.buffers):
        assert np.array_equal(x, y)
