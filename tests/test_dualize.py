"""Tests for allgather → reduce-scatter dualization
(:mod:`repro.core.primitives.dualize_allgather`)."""

import pytest

from repro.core.knomial import knomial_allgather
from repro.core.primitives import dualize_allgather
from repro.core.recursive import recursive_multiplying_allgather
from repro.core.ring import kring_allgather, ring_allgather
from repro.core.schedule import RankProgram, RecvOp, Schedule, SendOp
from repro.core.validate import verify
from repro.errors import ScheduleError


class TestDualization:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 9, 12, 16, 17])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_dual_of_recursive_multiplying_verifies(self, p, k):
        dual = dualize_allgather(
            recursive_multiplying_allgather(p, k), "recmul_dual"
        )
        assert dual.collective == "reduce_scatter"
        verify(dual)

    @pytest.mark.parametrize("p", [1, 2, 3, 6, 7, 12])
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_dual_of_kring_verifies(self, p, k):
        verify(dualize_allgather(kring_allgather(p, k), "kring_dual"))

    def test_dual_reverses_message_count(self):
        ag = ring_allgather(8)
        dual = dualize_allgather(ag, "ring_dual")
        assert dual.stats().messages == ag.stats().messages

    def test_all_dual_receives_reduce(self):
        dual = dualize_allgather(ring_allgather(6), "ring_dual")
        for prog in dual.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, RecvOp):
                    assert op.reduce

    def test_step_order_reversed(self):
        ag = ring_allgather(5)
        dual = dualize_allgather(ag, "d")
        for prog, dprog in zip(ag.programs, dual.programs):
            assert len(prog.steps) == len(dprog.steps)
            # first allgather send becomes last dual receive
            first_send = prog.steps[0].sends[0]
            last_recv = dprog.steps[-1].recvs[-1]
            assert first_send.peer == last_recv.peer
            assert first_send.blocks == last_recv.blocks

    def test_rejects_non_allgather(self):
        from repro.core.knomial import knomial_bcast

        with pytest.raises(ScheduleError, match="allgather"):
            dualize_allgather(knomial_bcast(4, 2), "x")

    def test_rejects_redundant_delivery(self):
        """The k-nomial allgather re-broadcasts every block, including
        blocks ranks already contributed — dualizing it would double-count
        and must be refused."""
        with pytest.raises(ScheduleError, match="more than once"):
            dualize_allgather(knomial_allgather(4, 2), "bad")

    def test_rejects_hand_built_double_receive(self):
        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(1,)))
        p1.add(SendOp(peer=0, blocks=(1,)))
        p0.add(RecvOp(peer=1, blocks=(1,)))
        p0.add(RecvOp(peer=1, blocks=(1,)))
        p0.add(SendOp(peer=1, blocks=(0,)))
        p1.add(RecvOp(peer=0, blocks=(0,)))
        sched = Schedule(
            collective="allgather",
            algorithm="redundant",
            nranks=2,
            nblocks=2,
            programs=[p0, p1],
        )
        with pytest.raises(ScheduleError, match="more than once"):
            dualize_allgather(sched, "bad")
