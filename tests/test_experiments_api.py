"""Tests for the experiment framework itself (:mod:`repro.bench.experiments`).

The heavyweight experiment bodies run in ``benchmarks/``; these cover the
framework: result bookkeeping, the registry, and the small fast
experiments end to end.
"""

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    eq13_data_volume,
    fig7_slowdown,
    fig_diagrams,
    run_experiment,
    table1_capability,
)
from repro.errors import ReproError


class TestExperimentResult:
    def test_check_accumulates(self):
        res = ExperimentResult("x", "t", "c", "body")
        res.check("a", True, "fine")
        res.check("b", False, "broken")
        assert not res.all_ok
        assert [n for n, ok, _ in res.checks if not ok] == ["b"]

    def test_summary_marks_divergence(self):
        res = ExperimentResult("x", "t", "c", "body")
        res.check("good", True)
        res.check("bad", False, "detail")
        text = res.summary()
        assert "[PASS] good" in text
        assert "[DIVERGES] bad — detail" in text
        assert "body" in text

    def test_all_ok_vacuously_true(self):
        assert ExperimentResult("x", "t", "c", "body").all_ok


class TestRegistry:
    def test_run_experiment_dispatch(self):
        res = run_experiment("table1")
        assert res.exp_id == "table1"

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(ReproError, match="fig8a"):
            run_experiment("fig99")

    def test_all_ids_are_kebab_or_fig(self):
        for exp_id in ALL_EXPERIMENTS:
            assert exp_id.replace("-", "").replace("_", "").isalnum()

    def test_every_entry_is_callable(self):
        for fn in ALL_EXPERIMENTS.values():
            assert callable(fn)


class TestFastExperiments:
    """The cheap experiments run fully inside the test suite."""

    def test_table1_passes(self):
        assert table1_capability().all_ok

    def test_fig_diagrams_passes(self):
        res = fig_diagrams()
        assert res.all_ok, res.summary()
        assert "Fig. 6" in res.text

    def test_eq13_small_passes(self):
        res = eq13_data_volume(p=24)
        assert res.all_ok, res.summary()

    def test_fig7_small_passes(self):
        res = fig7_slowdown(nodes=8, sizes=[64, 65536])
        assert res.all_ok, res.summary()
        assert res.data["worst_slowdown"] <= 1.0 + 1e-9
