"""The durable store's never-crash contract, damage mode by damage mode.

Every way an entry can be wrong — truncated, bit-flipped (including
flips that break UTF-8 decoding, not just the checksum), wrong format
version, mis-filed key, crash-orphaned temp file, pickle that decodes
to the wrong schedule — must read as a *miss with evidence*: the lookup
returns ``None``, the damaged file moves to ``quarantine/``, and the
next ``get_or_build`` heals the store by write-through.  The hypothesis
property at the bottom drives the same contract with arbitrary byte
damage at arbitrary offsets.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import schedule_key
from repro.core.registry import build_schedule
from repro.errors import StoreError
from repro.store import (
    FORMAT_VERSION,
    DiskStore,
    PersistentScheduleCache,
    open_schedule_store,
    schedule_store_key,
)

PAYLOAD = {"alpha": 1, "blob": "x" * 64, "nested": {"k": [1, 2, 3]}}


@pytest.fixture
def store(tmp_path):
    return DiskStore(tmp_path / "store")


def test_roundtrip_and_miss(store):
    assert store.get("absent") is None
    path = store.put("key-1", PAYLOAD)
    assert path.exists()
    assert store.get("key-1") == PAYLOAD
    assert "key-1" in store
    assert len(store) == 1
    stats = store.stats()
    assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)


def test_keys_may_contain_anything(store):
    key = "schedule/allreduce/knomial/p=8/k=2/root=0 \n\t🚀"
    store.put(key, PAYLOAD)
    assert store.get(key) == PAYLOAD


def _assert_quarantined_miss(store, key, reason_fragment):
    """The damaged entry reads as a miss and lands in quarantine."""
    assert store.get(key) is None
    quarantined = store.quarantined()
    assert quarantined, "damage must leave evidence in quarantine/"
    assert any(reason_fragment in p.name for p in quarantined), (
        f"expected a {reason_fragment!r} quarantine, got "
        f"{[p.name for p in quarantined]}"
    )
    # The store healed: the bad entry is gone, a rebuild re-publishes.
    assert store.get(key) is None  # still a miss, not an error
    store.put(key, PAYLOAD)
    assert store.get(key) == PAYLOAD


def test_truncated_entry_quarantines(store):
    path = store.put("key-t", PAYLOAD)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    _assert_quarantined_miss(store, "key-t", "malformed")


def test_bitflip_in_payload_quarantines(store):
    path = store.put("key-b", PAYLOAD)
    blob = bytearray(path.read_bytes())
    pos = blob.index(b"x" * 8) + 3  # inside the payload, keeps JSON valid
    blob[pos] ^= 0x01
    path.write_bytes(bytes(blob))
    _assert_quarantined_miss(store, "key-b", "checksum")


def test_bitflip_breaking_utf8_quarantines(store):
    # A high-bit flip mid-document makes read_text() raise
    # UnicodeDecodeError — found by the crash-storm soak; it must be
    # damage like any other, not an exception escaping get().
    path = store.put("key-u", PAYLOAD)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] = 0xA8
    path.write_bytes(bytes(blob))
    _assert_quarantined_miss(store, "key-u", "unreadable")


def test_wrong_format_version_quarantines(store):
    path = store.put("key-v", PAYLOAD)
    doc = json.loads(path.read_text())
    doc["format"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(doc))
    _assert_quarantined_miss(store, "key-v", "format")


def test_misfiled_key_quarantines(store):
    # An entry document claiming a different key than the one it is
    # filed under (e.g. a botched manual copy between stores).
    src = store.put("key-src", PAYLOAD)
    store.path_for("key-dst").write_bytes(src.read_bytes())
    _assert_quarantined_miss(store, "key-dst", "key-mismatch")


def test_orphan_tmp_swept_on_open(tmp_path):
    store = DiskStore(tmp_path / "store")
    store.put("key-o", PAYLOAD)
    orphan = store.entries_dir / "dead-writer.json.1234.tmp"
    orphan.write_text('{"torn": ')
    # A fresh open (the next process) sweeps the crash leftover.
    reopened = DiskStore(tmp_path / "store")
    assert not orphan.exists()
    assert any("orphan-tmp" in p.name for p in reopened.quarantined())
    # The published entry it shadowed is untouched.
    assert reopened.get("key-o") == PAYLOAD


def test_unwritable_root_raises_store_error(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the store dir should go")
    with pytest.raises(StoreError):
        DiskStore(target)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_random_damage_is_a_miss_not_an_error(tmp_path_factory, data):
    """Arbitrary byte damage anywhere in an entry never escapes get().

    The store may serve the payload only if the bytes verify exactly;
    otherwise the result is None plus a quarantined file.  No damage
    pattern may raise.
    """
    root = tmp_path_factory.mktemp("fuzz")
    store = DiskStore(root / "store")
    path = store.put("fuzz-key", PAYLOAD)
    blob = bytearray(path.read_bytes())

    mode = data.draw(st.sampled_from(["flip", "truncate", "insert"]))
    if mode == "flip":
        pos = data.draw(st.integers(0, len(blob) - 1))
        val = data.draw(st.integers(1, 255))
        blob[pos] ^= val
    elif mode == "truncate":
        blob = blob[: data.draw(st.integers(0, len(blob) - 1))]
    else:
        pos = data.draw(st.integers(0, len(blob)))
        blob[pos:pos] = bytes([data.draw(st.integers(0, 255))])
    path.write_bytes(bytes(blob))

    got = store.get("fuzz-key")
    if got is None:
        assert store.quarantined()
        assert not path.exists()
    else:
        # The damage happened to cancel out (e.g. XOR inside a value
        # that round-trips): serving it is only legal if it verifies
        # to the exact original payload.
        assert got == PAYLOAD


# ----------------------------------------------------------------------
# The schedule layer on top: semantic verification + heal-by-rebuild
# ----------------------------------------------------------------------


def test_persistent_cache_serves_and_heals(tmp_path):
    cache = open_schedule_store(tmp_path / "store")
    sched, hit = cache.get_or_build("allreduce", "knomial", 8, k=3)
    assert not hit  # cold everywhere: built and written through
    key = schedule_key("allreduce", "knomial", 8, k=3, root=0)
    path = cache.store.path_for(schedule_store_key(key))
    assert path.exists()

    # A fresh cache over the same directory serves from disk.
    warm = open_schedule_store(tmp_path / "store")
    served, hit = warm.get_or_build("allreduce", "knomial", 8, k=3)
    assert hit
    assert served.fingerprint() == sched.fingerprint()

    # Damage the entry: the next fresh cache quarantines and rebuilds.
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 3] ^= 0xFF
    path.write_bytes(bytes(blob))
    healed_cache = open_schedule_store(tmp_path / "store")
    rebuilt, hit = healed_cache.get_or_build("allreduce", "knomial", 8, k=3)
    assert not hit
    assert rebuilt.fingerprint() == sched.fingerprint()
    assert healed_cache.store.quarantined()
    # ... and the write-through healed the entry for the next reader.
    again = open_schedule_store(tmp_path / "store")
    _, hit = again.get_or_build("allreduce", "knomial", 8, k=3)
    assert hit


def test_semantic_mismatch_quarantines(tmp_path):
    """A byte-perfect entry whose pickle is the wrong schedule is damage.

    The checksum passes (the bytes are exactly what was written) but the
    content does not decode to the schedule the key promises — the
    integrity ladder's last rung.
    """
    cache = open_schedule_store(tmp_path / "store")
    cache.get_or_build("allreduce", "ring", 8)
    key8 = schedule_store_key(schedule_key("allreduce", "ring", 8))
    key4 = schedule_store_key(schedule_key("allreduce", "ring", 4))
    # File the p=8 entry under the p=4 key, re-checksummed so the byte
    # ladder passes and only the semantic check can catch it.
    payload = cache.store.get(key8)
    cache.store.put(key4, payload)

    fresh = open_schedule_store(tmp_path / "store")
    sched, hit = fresh.get_or_build("allreduce", "ring", 4)
    assert not hit  # rebuilt, not served the wrong schedule
    assert sched.nranks == 4
    assert sched.fingerprint() == build_schedule(
        "allreduce", "ring", 4
    ).fingerprint()
    assert any("semantic" in p.name for p in fresh.store.quarantined())
