"""Tests for (α, β, γ) least-squares fitting (:mod:`repro.models.fit`)."""

import math

import pytest

from repro.errors import ModelError
from repro.models.fit import fit_params, fit_ptp
from repro.models.params import ModelParams
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate
from repro.core.registry import build_schedule


class TestSyntheticRecovery:
    def test_ptp_fit_recovers_exact_constants(self):
        alpha, beta = 2.5e-6, 4e-10
        sizes = [2**i for i in range(3, 22)]
        times = [alpha + beta * n for n in sizes]
        fit = fit_ptp(sizes, times)
        assert fit.params.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.params.beta == pytest.approx(beta, rel=1e-6)
        assert fit.relative_error < 1e-9

    def test_three_parameter_fit(self):
        """β and γ are only separable when the coefficient columns are
        linearly independent — mixing measurements from two process counts
        (different L = log2 p, same γ structure) achieves that, matching
        how real calibrations pool multi-scale runs."""
        alpha, beta, gamma = 1e-6, 2e-10, 7e-11
        rows = []
        times = []
        for p in (4, 64):
            L = math.log2(p)
            for i in range(3, 22):
                n = 2**i
                rows.append((L, L * n, n))
                times.append(L * alpha + L * n * beta + n * gamma)
        # encode the per-row coefficients via an index lookup
        coef = dict(zip(range(len(rows)), rows))
        fit = fit_params(
            list(range(len(rows))),
            times,
            lambda idx: coef[int(idx)],
            fit_gamma=True,
        )
        assert fit.params.alpha == pytest.approx(alpha, rel=1e-5)
        assert fit.params.beta == pytest.approx(beta, rel=1e-4)
        assert fit.params.gamma == pytest.approx(gamma, rel=1e-3)

    def test_noisy_fit_close(self):
        import numpy as np

        rng = np.random.default_rng(0)
        alpha, beta = 2e-6, 1e-9
        sizes = [2**i for i in range(3, 22)]
        times = [
            (alpha + beta * n) * float(rng.normal(1.0, 0.01)) for n in sizes
        ]
        fit = fit_ptp(sizes, times)
        assert fit.params.beta == pytest.approx(beta, rel=0.05)
        assert fit.relative_error < 0.05

    def test_negative_solutions_clamped(self):
        # Times decreasing in n would imply β < 0; the fit clamps to 0.
        sizes = [10, 20, 40]
        times = [3.0, 2.0, 1.0]
        fit = fit_ptp(sizes, times)
        assert fit.params.beta == 0.0


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            fit_ptp([1, 2], [1.0])

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            fit_ptp([1], [1.0])


class TestAgainstSimulator:
    def test_recovers_reference_machine_constants(self):
        """Fitting the binomial bcast model to reference-machine sims must
        return the machine's own α and β."""
        p = 16
        machine = reference(p)
        L = 4.0  # ceil(log2 16)
        sizes = [2**i for i in range(3, 21)]
        sched = build_schedule("bcast", "binomial", p)
        times = [simulate(sched, machine, n).time for n in sizes]
        fit = fit_params(
            sizes, times, lambda n: (L, L * n, 0.0), fit_gamma=False
        )
        assert fit.params.alpha == pytest.approx(machine.alpha_inter, rel=0.01)
        assert fit.params.beta == pytest.approx(machine.beta_inter, rel=0.01)
        assert "α=" in fit.describe()
