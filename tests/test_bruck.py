"""Tests for the Bruck-family extensions (:mod:`repro.core.bruck`)."""

import pytest

from repro.core.bruck import bruck_allgather, bruck_window, dissemination_barrier
from repro.core.primitives import dualize_allgather, ilog
from repro.core.registry import build_schedule
from repro.core.schedule import RecvOp
from repro.core.validate import verify
from repro.errors import ScheduleError
from repro.runtime.executor import run_collective


class TestWindow:
    def test_wraps_mod_p(self):
        assert bruck_window(5, 3, 6) == (5, 0, 1)

    def test_full_window(self):
        assert bruck_window(2, 4, 4) == (2, 3, 0, 1)

    def test_invalid_size(self):
        with pytest.raises(ScheduleError):
            bruck_window(0, 0, 4)
        with pytest.raises(ScheduleError):
            bruck_window(0, 5, 4)


class TestBruckAllgather:
    @pytest.mark.parametrize("p", list(range(1, 20)) + [27, 32])
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_verifies(self, p, k):
        verify(bruck_allgather(p, k))

    @pytest.mark.parametrize("p", [2, 5, 7, 9, 13, 16, 17])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_moves_real_data(self, p, k):
        run_collective("allgather", "bruck", p, 3 * p + 1, k=k)

    def test_round_count_is_ceil_log_k_p(self):
        """The Bruck structural advantage: exactly ⌈log_k p⌉ rounds for
        ANY p — the recursive multiplying fold would add two extra steps
        for e.g. p = 17."""
        for p, k in [(17, 4), (13, 2), (100, 3)]:
            sched = bruck_allgather(p, k)
            for prog in sched.programs:
                assert len(prog.steps) == ilog(k, p)

    def test_fewer_rounds_than_folded_recmul_on_awkward_p(self):
        p, k = 17, 4
        bruck_steps = len(bruck_allgather(p, k).programs[0].steps)
        recmul = build_schedule("allgather", "recursive_multiplying", p, k=k)
        recmul_steps = max(len(prog.steps) for prog in recmul.programs)
        assert bruck_steps < recmul_steps

    def test_each_block_received_once_makes_it_dualizable(self):
        for p in (5, 8, 13):
            dual = dualize_allgather(bruck_allgather(p, 3), "bruck_dual")
            verify(dual)

    def test_symmetry(self):
        """Every rank's program has identical shape (Bruck is fully
        rank-symmetric, unlike rooted trees)."""
        sched = bruck_allgather(12, 3)
        shapes = {
            tuple(len(step.ops) for step in prog.steps)
            for prog in sched.programs
        }
        assert len(shapes) == 1

    def test_naming(self):
        assert bruck_allgather(8, 2).algorithm == "bruck"
        assert bruck_allgather(8, 4).algorithm == "bruck_kport"

    def test_single_rank(self):
        sched = bruck_allgather(1, 2)
        assert all(not prog.steps for prog in sched.programs)


class TestDisseminationBarrier:
    @pytest.mark.parametrize("p", list(range(1, 20)) + [31, 32])
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_verifies(self, p, k):
        verify(dissemination_barrier(p, k))

    def test_round_count(self):
        for p, k in [(8, 2), (9, 3), (17, 4), (100, 10)]:
            sched = dissemination_barrier(p, k)
            for prog in sched.programs:
                assert len(prog.steps) == ilog(k, p)

    def test_marked_idempotent_only(self):
        """Non-power-of-k truncation overlaps heard-from sets; the marker
        is what licenses the validator to accept that."""
        sched = dissemination_barrier(10, 3)
        assert sched.meta["idempotent_only"] is True

    def test_overlap_actually_occurs_for_non_powers(self):
        """Strip the marker from a p where truncation overlaps: the
        validator must then reject — proving the marker is load-bearing,
        not decorative."""
        from repro.errors import ValidationError

        sched = dissemination_barrier(6, 2)
        sched.meta.pop("idempotent_only")
        with pytest.raises(ValidationError, match="double-count"):
            verify(sched)

    def test_power_of_k_has_no_overlap(self):
        """For p = k^m the dissemination sets are perfectly disjoint, so
        the schedule passes even without the marker."""
        sched = dissemination_barrier(8, 2)
        sched.meta.pop("idempotent_only")
        verify(sched)

    def test_registry_builds_both_variants(self):
        assert build_schedule("barrier", "dissemination", 9).k == 2
        assert build_schedule("barrier", "k_dissemination", 9, k=3).k == 3

    def test_simulated_barrier_latency_shrinks_with_radix(self):
        from repro.simnet import reference, simulate

        p = 64
        machine = reference(p)
        t2 = simulate(build_schedule("barrier", "k_dissemination", p, k=2),
                      machine, 0).time
        t8 = simulate(build_schedule("barrier", "k_dissemination", p, k=8),
                      machine, 0).time
        assert t8 < t2

    def test_model_matches_simulation_on_reference(self):
        from repro.models import ModelParams, model_time
        from repro.simnet import reference, simulate

        p = 27
        machine = reference(p)
        params = ModelParams(machine.alpha_inter, machine.beta_inter)
        predicted = model_time("barrier", "k_dissemination", 0, p, params, k=3)
        simulated = simulate(
            build_schedule("barrier", "k_dissemination", p, k=3), machine, 0
        ).time
        assert simulated == pytest.approx(predicted, rel=0.02)
