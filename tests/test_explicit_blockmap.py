"""Tests for :class:`repro.core.blocks.ExplicitBlockMap` and the
block-map override path through the executor and simulator (the machinery
behind the v-variant collectives)."""

import numpy as np
import pytest

from repro.core.blocks import BlockMap, ExplicitBlockMap
from repro.core.registry import build_schedule
from repro.errors import ExecutionError, MachineError, ScheduleError
from repro.runtime.executor import execute
from repro.simnet import reference, simulate


class TestExplicitBlockMap:
    def test_interface_matches_blockmap(self):
        even = BlockMap(12, 4)
        explicit = ExplicitBlockMap(even.sizes)
        assert explicit.total == even.total
        assert explicit.offsets == even.offsets
        for b in range(4):
            assert explicit.range_of(b) == even.range_of(b)
            assert explicit.size_of(b) == even.size_of(b)

    def test_uneven_and_zero_blocks(self):
        bm = ExplicitBlockMap((3, 0, 5))
        assert bm.total == 8
        assert bm.range_of(1) == (3, 3)
        assert bm.range_of(2) == (3, 8)
        assert bm.bytes_of([0, 2]) == 8

    def test_slices_tile_buffer(self):
        bm = ExplicitBlockMap((2, 7, 0, 1))
        pos = 0
        for _, start, stop in bm.slices():
            assert start == pos
            pos = stop
        assert pos == bm.total

    def test_rejections(self):
        with pytest.raises(ScheduleError):
            ExplicitBlockMap(())
        with pytest.raises(ScheduleError):
            ExplicitBlockMap((1, -1))
        with pytest.raises(ScheduleError):
            ExplicitBlockMap((1, 2)).range_of(2)


class TestExecutorOverride:
    def make_gatherv(self, counts, algorithm="binomial", root=0):
        p = len(counts)
        bm = ExplicitBlockMap(counts)
        sched = build_schedule("gather", algorithm, p, root=root)
        bufs = [np.full(bm.total, -7, dtype=np.int64) for _ in range(p)]
        inputs = []
        for r in range(p):
            start, stop = bm.range_of(r)
            data = np.arange(counts[r], dtype=np.int64) + 100 * r
            bufs[r][start:stop] = data
            inputs.append(data)
        execute(sched, bufs, block_map=bm)
        return bufs, np.concatenate(inputs) if inputs else np.empty(0), root

    @pytest.mark.parametrize("counts", [(3, 0, 5, 2), (1, 1, 1), (4,),
                                        (0, 0, 6, 0, 2)])
    def test_gatherv_through_binomial_tree(self, counts):
        bufs, expected, root = self.make_gatherv(counts)
        assert np.array_equal(bufs[root], expected)

    def test_gatherv_with_knomial_and_rotation(self):
        counts = (2, 5, 0, 3, 1)
        bm = ExplicitBlockMap(counts)
        sched = build_schedule("gather", "knomial", 5, k=3, root=2)
        bufs = [np.full(bm.total, -7, dtype=np.int64) for _ in range(5)]
        expected = []
        for r in range(5):
            start, stop = bm.range_of(r)
            data = np.arange(counts[r], dtype=np.int64) + 10 * r
            bufs[r][start:stop] = data
            expected.append(data)
        execute(sched, bufs, block_map=bm)
        assert np.array_equal(bufs[2], np.concatenate(expected))

    def test_scatterv_through_tree(self):
        counts = (1, 4, 2)
        bm = ExplicitBlockMap(counts)
        sched = build_schedule("scatter", "binomial", 3)
        flat = np.arange(bm.total, dtype=np.int64)
        bufs = [flat.copy() if r == 0 else np.zeros(bm.total, dtype=np.int64)
                for r in range(3)]
        execute(sched, bufs, block_map=bm)
        for r in range(3):
            start, stop = bm.range_of(r)
            assert np.array_equal(bufs[r][start:stop], flat[start:stop])

    def test_block_count_mismatch_rejected(self):
        sched = build_schedule("gather", "binomial", 4)
        bm = ExplicitBlockMap((2, 2))  # wrong nblocks
        with pytest.raises(ExecutionError, match="blocks"):
            execute(sched, [np.zeros(4, dtype=np.int64)] * 4, block_map=bm)

    def test_total_mismatch_rejected(self):
        sched = build_schedule("gather", "binomial", 2)
        bm = ExplicitBlockMap((2, 2))
        with pytest.raises(ExecutionError, match="covers"):
            execute(sched, [np.zeros(9, dtype=np.int64)] * 2, block_map=bm)


class TestSimulatorOverride:
    def test_uneven_blocks_change_simulated_cost(self):
        """Concentrating the bytes on one contributor changes tree-edge
        loads — the simulator must price the explicit map, not the even
        split."""
        p = 8
        sched = build_schedule("gather", "binomial", p)
        machine = reference(p)
        even = simulate(sched, machine, 8000).time
        skewed = simulate(
            sched,
            machine,
            8000,
            block_map=ExplicitBlockMap((8000 - 7,) + (1,) * 7),
        ).time
        assert skewed != even

    def test_block_count_mismatch_rejected(self):
        sched = build_schedule("gather", "binomial", 4)
        with pytest.raises(MachineError, match="blocks"):
            simulate(
                sched, reference(4), 8, block_map=ExplicitBlockMap((4, 4))
            )
