"""Tests for schedule analysis and the Fig. 1–6 renderers
(:mod:`repro.core.analysis`, :mod:`repro.core.render`)."""

import pytest

from repro.core.analysis import (
    critical_path_bytes,
    critical_path_rounds,
    volume_profile,
)
from repro.core.registry import build_schedule
from repro.core.render import (
    render_knomial_tree,
    render_kring_rounds,
    render_rounds,
)
from repro.errors import ScheduleError


class TestCriticalPathRounds:
    def test_knomial_bcast_depth(self):
        """α coefficient: exact powers give log_k(p) rounds."""
        assert critical_path_rounds(build_schedule("bcast", "binomial", 8)) == 3
        assert critical_path_rounds(
            build_schedule("bcast", "knomial", 27, k=3)
        ) == 3
        assert critical_path_rounds(
            build_schedule("bcast", "knomial", 16, k=16)
        ) == 1

    def test_ring_allgather_p_minus_1(self):
        assert critical_path_rounds(
            build_schedule("allgather", "ring", 9)
        ) == 8

    def test_ring_allreduce_2p_minus_2(self):
        assert critical_path_rounds(
            build_schedule("allreduce", "ring", 6)
        ) == 10

    def test_recursive_multiplying_rounds(self):
        assert critical_path_rounds(
            build_schedule("allreduce", "recursive_multiplying", 16, k=4)
        ) == 2

    def test_fold_adds_two_rounds(self):
        smooth = critical_path_rounds(
            build_schedule("allreduce", "recursive_multiplying", 16, k=4)
        )
        folded = critical_path_rounds(
            build_schedule("allreduce", "recursive_multiplying", 17, k=4)
        )
        assert folded == smooth + 2

    def test_bruck_alltoall_log_rounds(self):
        assert critical_path_rounds(
            build_schedule("alltoall", "bruck", 16, k=4)
        ) == 2

    def test_linear_bcast_has_depth_one(self):
        """The linear bcast's dependency depth is 1 — every leaf hears
        directly from the root.  Its (p-1)·α cost is entirely sender
        *occupancy*, not chain depth, which is exactly why trees beat it:
        they trade occupancy for a log-depth chain."""
        assert critical_path_rounds(build_schedule("bcast", "linear", 7)) == 1
        # occupancy shows up in the bytes measure instead: the root must
        # serialize all six copies through its single port
        assert critical_path_bytes(
            build_schedule("bcast", "linear", 7), 700
        ) == 6 * 700

    def test_barrier_rounds(self):
        assert critical_path_rounds(
            build_schedule("barrier", "k_dissemination", 27, k=3)
        ) == 3

    def test_single_rank_is_zero(self):
        assert critical_path_rounds(build_schedule("bcast", "binomial", 1)) == 0


class TestCriticalPathBytes:
    def test_knomial_bcast_beta_coefficient(self):
        """β coefficient on one port: (k-1)·n·log_k(p) — eq. (3)."""
        n = 900
        sched = build_schedule("bcast", "knomial", 27, k=3)
        assert critical_path_bytes(sched, n) == 2 * n * 3

    def test_ring_allgather_optimal_volume(self):
        """Bandwidth optimality (eq. (10)): the heaviest serialization
        chain moves exactly n·(p-1)/p bytes — each rank forwards one
        block per round through its single port."""
        n, p = 800, 8
        sched = build_schedule("allgather", "ring", p)
        assert critical_path_bytes(sched, n) == n * (p - 1) // p

    def test_monotone_in_nbytes(self):
        sched = build_schedule("allreduce", "recursive_doubling", 8)
        assert critical_path_bytes(sched, 4096) >= critical_path_bytes(
            sched, 1024
        )

    def test_negative_rejected(self):
        sched = build_schedule("bcast", "binomial", 4)
        with pytest.raises(ScheduleError):
            critical_path_bytes(sched, -1)


class TestVolumeProfile:
    def test_bcast_conservation(self):
        n = 64 * 7
        sched = build_schedule("bcast", "binomial", 8)
        prof = volume_profile(sched, n)
        # every non-root receives the full buffer exactly once
        assert all(
            prof.received_bytes[r] == n for r in range(1, 8)
        )
        assert prof.total_bytes == 7 * n

    def test_ring_allgather_balanced(self):
        prof = volume_profile(build_schedule("allgather", "ring", 8), 800)
        assert prof.max_rank_sent == min(prof.sent_bytes.values())

    def test_gather_root_receives_everything(self):
        n = 80
        prof = volume_profile(build_schedule("gather", "binomial", 8), n)
        assert prof.received_bytes[0] == n - n // 8
        assert prof.sent_bytes[0] == 0


class TestRenderers:
    def test_fig1_binomial_tree_on_6(self):
        """Fig. 1: binomial gather tree on 6 processes — depth 3, root
        children {1, 2, 4}."""
        text = render_knomial_tree(6, 2)
        lines = text.splitlines()
        assert lines[0] == "0"
        # direct children of the root
        direct = [l for l in lines if l.startswith("├── ") or l.startswith("└── ")]
        assert sorted(int(l.split()[-1]) for l in direct) == [1, 2, 4]

    def test_fig2_trinomial_tree_on_6(self):
        """Fig. 2: trinomial tree on 6 processes — 0 parents {1,2,3},
        3 parents {4,5}; depth 2 instead of 3."""
        text = render_knomial_tree(6, 3)
        assert text.splitlines()[0] == "0"
        assert "3" in text and "4" in text
        # depth = max indentation level must be 2 (8 spaces of prefix max)
        max_depth = max(
            (len(l) - len(l.lstrip("│ ├└─"))) for l in text.splitlines()
        )
        assert "│   ├── 4" in text or "    ├── 4" in text

    def test_root_rotation(self):
        text = render_knomial_tree(4, 2, root=2)
        assert text.splitlines()[0] == "2"
        assert "0" in text and "3" in text

    def test_render_rounds_recdbl(self):
        """Fig. 3: recursive doubling on 4 ranks — 2 rounds, partners at
        distance 1 then 2."""
        sched = build_schedule("allgather", "recursive_doubling", 4)
        text = render_rounds(sched)
        assert "round 1:" in text and "round 2:" in text
        round1 = [l for l in text.splitlines() if "round 1" in l][0]
        assert "0→1" in round1 and "2→3" in round1
        round2 = [l for l in text.splitlines() if "round 2" in l][0]
        assert "0→2" in round2

    def test_render_rounds_truncates(self):
        sched = build_schedule("allgather", "ring", 8)
        text = render_rounds(sched, max_rounds=2)
        assert "round 3" not in text

    def test_fig6_kring_round_structure(self):
        """Fig. 6: p=6, k=3 — rounds 1-2 intra, round 3 inter, rounds 4-5
        intra."""
        text = render_kring_rounds(6, 3)
        lines = text.splitlines()
        assert "(intra)" in lines[1] and "(intra)" in lines[2]
        assert "(inter)" in lines[3]
        assert "(intra)" in lines[4] and "(intra)" in lines[5]

    def test_invalid_p(self):
        with pytest.raises(ScheduleError):
            render_knomial_tree(0, 2)
