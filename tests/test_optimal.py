"""Tests for model-predicted optimal radices (:mod:`repro.models.optimal`)."""

import pytest

from repro.errors import ModelError
from repro.models import ModelParams
from repro.models.knomial import knomial_bcast_time
from repro.models.optimal import (
    optimal_radix,
    optimal_radix_by_size,
    radix_profile,
)
from repro.models.recursive import recursive_multiplying_allreduce_time

PR = ModelParams(alpha=2e-6, beta=1e-9, gamma=5e-10)


class TestProfiles:
    def test_default_grid_contents(self):
        prof = radix_profile(knomial_bcast_time, 8, 64, PR)
        ks = [k for k, _ in prof.costs]
        assert 2 in ks and 64 in ks and 3 in ks and 5 in ks
        assert ks == sorted(ks)

    def test_explicit_grid(self):
        prof = radix_profile(knomial_bcast_time, 8, 64, PR, ks=[2, 4, 8])
        assert [k for k, _ in prof.costs] == [2, 4, 8]

    def test_cost_lookup(self):
        prof = radix_profile(knomial_bcast_time, 8, 64, PR, ks=[2, 4])
        assert prof.cost_of(4) == knomial_bcast_time(8, 64, 4, PR)
        with pytest.raises(ModelError):
            prof.cost_of(16)

    def test_best_accessors_consistent(self):
        prof = radix_profile(knomial_bcast_time, 1024, 64, PR)
        assert prof.cost_of(prof.best_k) == prof.best_time


class TestPaperIntuition:
    """§III-D: the models predict large k for small n, small k for large."""

    def test_knomial_small_messages_want_large_radix(self):
        assert optimal_radix(knomial_bcast_time, 8, 128, PR) >= 64

    def test_knomial_large_messages_want_small_radix(self):
        assert optimal_radix(knomial_bcast_time, 1 << 22, 128, PR) == 2

    def test_optimal_radix_monotone_down_in_size(self):
        sizes = [8.0, 1024.0, 65536.0, float(1 << 22)]
        by_size = optimal_radix_by_size(knomial_bcast_time, sizes, 128, PR)
        ks = [by_size[n] for n in sizes]
        assert all(a >= b for a, b in zip(ks, ks[1:]))

    def test_recmul_allreduce_prediction(self):
        """The analytical model, unlike the hardware, prefers k near p for
        tiny allreduces — the §VI-C2 divergence the paper highlights."""
        small_k = optimal_radix(
            recursive_multiplying_allreduce_time, 8, 128, PR
        )
        big_k = optimal_radix(
            recursive_multiplying_allreduce_time, 1 << 20, 128, PR
        )
        assert small_k > big_k
        assert big_k == 2

    def test_ties_prefer_smaller_k(self):
        flat_model = lambda n, p, k, pr: 1.0
        assert optimal_radix(flat_model, 8, 16, PR) == 2

    def test_invalid_p(self):
        with pytest.raises(ModelError):
            radix_profile(knomial_bcast_time, 8, 0, PR)
