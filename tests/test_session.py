"""Tests for the MPI-style session facade (:mod:`repro.runtime.session`)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.ops import MAX, SUM
from repro.runtime.session import Comm, Session
from repro.selection import fixed_policy, tune
from repro.selection.defaults import mpich_policy


class TestCollectives:
    def test_allreduce(self):
        def worker(comm: Comm):
            local = np.full(4, comm.rank + 1, dtype=np.int64)
            return comm.allreduce(local).tolist()

        results = Session(4).run(worker)
        assert all(r == [10, 10, 10, 10] for r in results)

    def test_allreduce_max(self):
        def worker(comm: Comm):
            return comm.allreduce(
                np.array([comm.rank], dtype=np.int64), op=MAX
            )[0]

        assert Session(5).run(worker) == [4] * 5

    def test_bcast_with_template(self):
        def worker(comm: Comm):
            if comm.rank == 2:
                return comm.bcast(np.arange(6, dtype=np.int64), root=2).tolist()
            return comm.bcast(np.zeros(6, dtype=np.int64), root=2).tolist()

        assert Session(4).run(worker) == [[0, 1, 2, 3, 4, 5]] * 4

    def test_bcast_with_count_and_dtype(self):
        def worker(comm: Comm):
            if comm.rank == 0:
                return comm.bcast(np.array([0.5, 1.5]), root=0).tolist()
            return comm.bcast(None, root=0, count=2, dtype=np.float64).tolist()

        assert Session(3).run(worker) == [[0.5, 1.5]] * 3

    def test_reduce_returns_none_off_root(self):
        def worker(comm: Comm):
            out = comm.reduce(np.array([comm.rank], dtype=np.int64), root=1)
            return None if out is None else out.tolist()

        results = Session(4).run(worker)
        assert results[1] == [6]
        assert results[0] is None and results[2] is None

    def test_gather_scatter_roundtrip(self):
        def worker(comm: Comm):
            gathered = comm.gather(
                np.array([comm.rank * 10, comm.rank * 10 + 1], dtype=np.int64),
                root=0,
            )
            # root scatters the gathered buffer right back
            if comm.rank == 0:
                assert gathered is not None
                mine = comm.scatter(gathered, root=0)
            else:
                mine = comm.scatter(None, root=0)
            return mine.tolist()

        results = Session(4).run(worker)
        assert results == [[0, 1], [10, 11], [20, 21], [30, 31]]

    def test_allgather(self):
        def worker(comm: Comm):
            return comm.allgather(
                np.array([comm.rank], dtype=np.int64)
            ).tolist()

        assert Session(5).run(worker) == [[0, 1, 2, 3, 4]] * 5

    def test_reduce_scatter(self):
        def worker(comm: Comm):
            full = np.arange(8, dtype=np.int64)
            return comm.reduce_scatter(full, op=SUM).tolist()

        results = Session(4).run(worker)
        expected_full = (np.arange(8) * 4).tolist()
        assert results == [expected_full[0:2], expected_full[2:4],
                           expected_full[4:6], expected_full[6:8]]

    def test_barrier_completes(self):
        import time

        entered = []

        def worker(comm: Comm):
            entered.append(comm.rank)
            comm.barrier()
            return len(entered)

        results = Session(6).run(worker)
        # after the barrier every rank must observe all 6 entries
        assert all(r == 6 for r in results)

    def test_sequence_of_collectives(self):
        """Multiple collectives back to back keep their channels straight."""

        def worker(comm: Comm):
            a = comm.allreduce(np.array([1], dtype=np.int64))[0]
            comm.barrier()
            b = comm.allgather(np.array([comm.rank], dtype=np.int64)).sum()
            c = comm.bcast(
                np.array([a + b], dtype=np.int64) if comm.rank == 0 else
                np.zeros(1, dtype=np.int64),
                root=0,
            )[0]
            return int(c)

        p = 4
        results = Session(p).run(worker)
        assert results == [p + sum(range(p))] * p


class TestSelectionIntegration:
    def test_pinned_algorithm_is_used(self):
        """A fixed policy steers the session onto a specific generalized
        algorithm — and the answers stay right."""
        table = fixed_policy("allreduce", "recursive_multiplying", 4)
        table.fallback["barrier"] = mpich_policy().fallback["barrier"]

        def worker(comm: Comm):
            return comm.allreduce(
                np.full(3, comm.rank, dtype=np.int64)
            ).tolist()

        results = Session(8, table=table).run(worker)
        assert results == [[28, 28, 28]] * 8

    def test_tuned_table_drives_session(self):
        from repro.simnet import frontier

        table = tune(frontier(8, 1), [8, 4096])

        def worker(comm: Comm):
            return int(comm.allreduce(np.array([2], dtype=np.int64))[0])

        assert Session(8, table=table).run(worker) == [16] * 8


class TestErrors:
    def test_rank_failure_propagates(self):
        def worker(comm: Comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(ExecutionError, match="rank 1 failed"):
            Session(3, timeout=5.0).run(worker)

    def test_mismatched_collectives_time_out(self):
        """Rank 0 calls a collective the others never join."""

        def worker(comm: Comm):
            if comm.rank == 0:
                comm.allreduce(np.array([1], dtype=np.int64))
            return comm.rank

        with pytest.raises(ExecutionError):
            Session(2, timeout=0.5).run(worker)

    def test_bcast_without_root_data(self):
        def worker(comm: Comm):
            return comm.bcast(None, root=0, count=2)

        with pytest.raises(ExecutionError):
            Session(2, timeout=5.0).run(worker)

    def test_single_rank_session(self):
        def worker(comm: Comm):
            return comm.allreduce(np.array([7], dtype=np.int64))[0]

        assert Session(1).run(worker) == [7]

    def test_invalid_nranks(self):
        with pytest.raises(ExecutionError):
            Session(0)


class TestSplit:
    def test_split_by_parity(self):
        def worker(comm):
            sub = comm.split(comm.rank % 2)
            total = sub.allreduce(np.array([comm.rank], dtype=np.int64))[0]
            return (sub.rank, sub.size, int(total))

        results = Session(8).run(worker)
        for rank, (sub_rank, sub_size, total) in enumerate(results):
            assert sub_size == 4
            assert sub_rank == rank // 2
            assert total == (12 if rank % 2 == 0 else 16)

    def test_negative_color_opts_out(self):
        def worker(comm):
            sub = comm.split(-1 if comm.rank == 0 else 0)
            if sub is None:
                return "out"
            return int(sub.allreduce(np.array([1], dtype=np.int64))[0])

        assert Session(4).run(worker) == ["out", 3, 3, 3]

    def test_key_reorders_group_ranks(self):
        def worker(comm):
            return comm.split(0, key=-comm.rank).rank

        assert Session(4).run(worker) == [3, 2, 1, 0]

    def test_nested_split(self):
        """Split a sub-communicator again: quadrant sums of 16 ranks."""

        def worker(comm):
            half = comm.split(comm.rank // 8)          # two halves of 8
            quad = half.split(half.rank // 4)          # four quadrants of 4
            total = quad.allreduce(np.array([comm.rank], dtype=np.int64))[0]
            return int(total)

        results = Session(16).run(worker)
        expected = [sum(range(q * 4, q * 4 + 4)) for q in range(4)]
        for rank, total in enumerate(results):
            assert total == expected[rank // 4]

    def test_sub_and_world_collectives_interleave(self):
        """Collectives on the subgroup and the world alternate safely
        (the MPI same-order-per-process rule holds by construction)."""

        def worker(comm):
            sub = comm.split(comm.rank % 2)
            a = sub.allreduce(np.array([1], dtype=np.int64))[0]
            b = comm.allreduce(np.array([int(a)], dtype=np.int64))[0]
            sub.barrier()
            c = sub.allgather(np.array([int(b)], dtype=np.int64))
            return c.tolist()

        results = Session(6).run(worker)
        # each subgroup has 3 members -> a = 3 everywhere -> b = 18
        assert all(r == [18, 18, 18] for r in results)

    def test_rooted_collective_on_subgroup(self):
        def worker(comm):
            sub = comm.split(0 if comm.rank < 3 else 1)
            if comm.rank < 3:
                out = sub.gather(
                    np.array([comm.rank], dtype=np.int64), root=0
                )
                return None if out is None else out.tolist()
            # the other group does its own reduce
            r = sub.reduce(np.array([comm.rank], dtype=np.int64), root=0)
            return None if r is None else r.tolist()

        results = Session(6).run(worker)
        assert results[0] == [0, 1, 2]
        assert results[3] == [3 + 4 + 5]
        assert results[1] is None and results[4] is None


class TestVVariants:
    def test_gatherv_concatenates_uneven_contributions(self):
        def worker(comm):
            mine = np.arange(comm.rank + 1, dtype=np.int64) + comm.rank * 10
            out = comm.gatherv(mine, root=0)
            return None if out is None else out.tolist()

        results = Session(4).run(worker)
        assert results[0] == [0, 10, 11, 20, 21, 22, 30, 31, 32, 33]
        assert results[1] is None

    def test_gatherv_with_empty_contribution(self):
        def worker(comm):
            mine = (
                np.empty(0, dtype=np.int64)
                if comm.rank == 1
                else np.array([comm.rank], dtype=np.int64)
            )
            out = comm.gatherv(mine, root=2)
            return None if out is None else out.tolist()

        results = Session(3).run(worker)
        assert results[2] == [0, 2]

    def test_scatterv_roundtrip(self):
        def worker(comm):
            counts = np.array([r + 1 for r in range(comm.size)])
            if comm.rank == 0:
                flat = np.arange(int(counts.sum()), dtype=np.int64)
                mine = comm.scatterv(flat, counts, root=0)
            else:
                mine = comm.scatterv(None, counts, root=0)
            return mine.tolist()

        results = Session(4).run(worker)
        assert results == [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_scatterv_bad_counts_rejected(self):
        def worker(comm):
            return comm.scatterv(
                np.zeros(4, dtype=np.int64), np.array([2, 2, 2]), root=0
            )

        with pytest.raises(ExecutionError):
            Session(4, timeout=5.0).run(worker)

    def test_gatherv_on_subcommunicator(self):
        def worker(comm):
            sub = comm.split(comm.rank % 2)
            mine = np.full(sub.rank + 1, comm.rank, dtype=np.int64)
            out = sub.gatherv(mine, root=0)
            return None if out is None else out.tolist()

        results = Session(6).run(worker)
        assert results[0] == [0, 2, 2, 4, 4, 4]
        assert results[1] == [1, 3, 3, 5, 5, 5]
