"""Golden equivalence: the collapsed engine is bit-identical to the
materialized engine on the small-p registry grid.

This is the collapsed engine's entire correctness contract — not
"approximately equal", but the same floats: the class partition proves
ranks are timing-isomorphic, so simulating one representative per class
and fanning out must reproduce the materialized engine's makespan,
per-rank completion times, and traffic accounting exactly.  The grid
covers every generalized (collective, algorithm) pair plus the ring/
recursive-doubling families the lazy generators mirror, across radices
and sizes, at p up to 32.
"""

import pytest

from repro.core.registry import GENERALIZED_ALGORITHMS, info
from repro.selection.tuner import radix_grid
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

#: Non-generalized families on the grid: the ones the lazy generator
#: schedules (repro.core.lazy) mirror, pinned here via their registry
#: builders.
RING_FAMILIES = (
    ("allgather", "ring"),
    ("reduce_scatter", "ring"),
    ("allreduce", "ring"),
    ("allreduce", "recursive_doubling"),
)


def _grid():
    for coll, alg in GENERALIZED_ALGORITHMS:
        entry = info(coll, alg)
        for p in (8, 16, 32):
            for k in radix_grid(p, min_k=entry.min_k)[:3]:
                yield coll, alg, p, k
    for coll, alg in RING_FAMILIES:
        for p in (8, 16, 32):
            yield coll, alg, p, None


def _assert_identical(mat, col, label):
    assert col.time == mat.time, label
    assert list(col.rank_times) == list(mat.rank_times), label
    assert col.messages == mat.messages, label
    assert col.intra_messages == mat.intra_messages, label
    assert col.inter_messages == mat.inter_messages, label
    assert col.intra_bytes == mat.intra_bytes, label
    assert col.inter_bytes == mat.inter_bytes, label


@pytest.mark.parametrize("coll,alg,p,k", list(_grid()))
def test_collapsed_matches_materialized(coll, alg, p, k):
    entry = info(coll, alg)
    schedule = entry.build(p, k=k, root=0)
    machine = reference(p)
    for nbytes in (64, 4096):
        mat = simulate(schedule, machine, nbytes, engine="materialized")
        col = simulate(schedule, machine, nbytes, engine="collapsed")
        label = f"{coll}/{alg} p={p} k={k} n={nbytes}"
        # An explicit collapsed request on this grid must actually run
        # the collapsed core (symmetric machine, root 0, no noise).
        assert col.engine == "collapsed", (label, col.fallback)
        assert col.fallback is None, label
        assert col.nclasses is not None and col.nclasses >= 1
        _assert_identical(mat, col, label)


class TestAutoPolicy:
    def test_auto_small_p_stays_materialized(self):
        # Below the auto threshold the collapsed engine's setup cost
        # is not worth it for materialized schedules — auto must pick
        # the classic engine (explicit engine="collapsed" still works,
        # as the grid test above proves).
        schedule = info("allgather", "ring").build(8, k=None, root=0)
        res = simulate(schedule, reference(8), 4096)
        assert res.engine == "materialized"
        assert res.fallback is None  # policy skip, not a fallback

    def test_auto_degenerate_partition_stays_materialized(self):
        # A partition with nclasses == p collapses nothing; auto must
        # route it to the faster materialized engine even at large p.
        schedule = info("bcast", "knomial").build(512, k=2, root=0)
        res = simulate(schedule, reference(512), 4096)
        assert res.engine == "materialized"

    def test_auto_lazy_uses_collapsed_at_any_p(self):
        from repro.core.lazy import lookup

        lazy = lookup("allgather", "ring", 8)
        res = simulate(lazy, reference(8), 4096)
        assert res.engine == "collapsed"
        assert res.nclasses == 1

    def test_collapsed_result_is_flagged(self):
        schedule = info("allreduce", "ring").build(16, k=None, root=0)
        res = simulate(schedule, reference(16), 4096, engine="collapsed")
        assert res.engine == "collapsed"
        assert res.nclasses == 1
