"""The hardened executor's retry ladder, end to end.

:func:`repro.parallel.run_chunks` promises that worker death — crash,
hang, or poison input — costs at most the poisoned work item, never the
sweep: transient crashes heal through re-dispatch, repeat offenders are
cornered by the ``split`` hook and handed to ``on_chunk_error`` as
structured records, and everything else completes in deterministic
chunk order.  Workers here are real processes (``isolate=True``) dying
real deaths (``os._exit``), because the failure being hardened against
cannot be simulated by an exception.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import ChunkFailure, resolve_jobs, run_chunks

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


# ----------------------------------------------------------------------
# Module-level workers (must be picklable for the process pool)
# ----------------------------------------------------------------------


def _square_chunk(chunk):
    return [x * x for x in chunk]


def _raise_on_13(chunk):
    if 13 in chunk:
        raise ValueError("unlucky chunk")
    return [x * x for x in chunk]


def _exit_on_13(chunk):
    if 13 in chunk:
        os._exit(139)  # a segfault stand-in: no exception, no cleanup
    return [x * x for x in chunk]


def _exit_once_marker(chunk):
    # Transient crash: dies the first time it sees the marker path
    # missing, succeeds on the re-dispatch.  The marker lives in the
    # chunk itself so the worker needs no shared state beyond the disk.
    marker, values = chunk
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed once")
        os._exit(139)
    return [x * x for x in values]


def _hang_on_13(chunk):
    if 13 in chunk:
        time.sleep(600)
    return [x * x for x in chunk]


def _split_pairs(chunk):
    return [(x,) for x in chunk]


def _error_records(chunk, failure):
    assert isinstance(failure, ChunkFailure)
    return [("error", x, failure.kind) for x in chunk]


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------


def test_serial_worker_exception_routes_to_handler():
    chunks = [(1, 2), (13,), (4,)]
    out = run_chunks(
        _raise_on_13, chunks, jobs=0, on_chunk_error=_error_records
    )
    assert out == [1, 4, ("error", 13, "error"), 16]


def test_serial_worker_exception_raises_without_handler():
    with pytest.raises(ValueError, match="unlucky"):
        run_chunks(_raise_on_13, [(13,)], jobs=0)


def test_serial_on_chunk_done_sees_completion_order():
    seen = []
    run_chunks(
        _square_chunk, [(1,), (2,), (3,)], jobs=0,
        on_chunk_done=lambda i, chunk, results: seen.append((i, results)),
    )
    assert seen == [(0, [1]), (1, [4]), (2, [9])]


# ----------------------------------------------------------------------
# Process-pool hardening (isolate=True forces real workers even on a
# single-core host — crash isolation needs a process boundary)
# ----------------------------------------------------------------------


def test_poison_chunk_is_cornered_and_siblings_survive():
    chunks = [(1, 2), (13, 3), (4, 5)]
    out = run_chunks(
        _exit_on_13, chunks, jobs=2, isolate=True, retries=1,
        deadline=30.0,
        on_chunk_error=_error_records, split=_split_pairs,
    )
    # Chunk order holds; within the poisoned chunk, the split cornered
    # the culprit and its innocent sibling still computed.  The
    # poisoned item usually records a "crash", but a worker dying while
    # holding the pool's call-queue lock starves the generation instead
    # — then the deadline path reaps it as a "timeout".  Either way the
    # sweep survives; that is the property under test (and why every
    # pool test here runs with a deadline: without one, that same race
    # would hang the *test*).
    assert out[:2] == [1, 4]
    assert out[3:] == [9, 16, 25]
    tag, item, kind = out[2]
    assert (tag, item) == ("error", 13)
    assert kind in ("crash", "timeout")


def test_transient_crash_heals_through_redispatch(tmp_path):
    marker = str(tmp_path / "crashed-once")
    out = run_chunks(
        _exit_once_marker, [(marker, (2, 3))], jobs=2, isolate=True,
        retries=2, deadline=30.0, on_chunk_error=_error_records,
    )
    assert out == [4, 9]  # healed: no error records at all


def test_poison_without_handler_raises_chunk_failure():
    with pytest.raises(ChunkFailure) as excinfo:
        run_chunks(
            _exit_on_13, [(13,)], jobs=2, isolate=True, retries=0,
            deadline=30.0,
        )
    assert excinfo.value.kind in ("crash", "timeout")
    assert excinfo.value.attempts >= 1


def test_hung_chunk_is_killed_at_the_deadline():
    t0 = time.monotonic()
    out = run_chunks(
        _hang_on_13, [(1,), (13,)], jobs=2, isolate=True,
        retries=0, deadline=1.0,
        on_chunk_error=_error_records,
    )
    elapsed = time.monotonic() - t0
    assert out == [1, ("error", 13, "timeout")]
    assert elapsed < 60, "deadline must bound the stall, not join it"


def test_parallel_results_are_bit_identical_to_serial():
    chunks = [tuple(range(i, i + 3)) for i in range(0, 30, 3)]
    serial = run_chunks(_square_chunk, chunks, jobs=0)
    pooled = run_chunks(
        _square_chunk, chunks, jobs=4, isolate=True, deadline=60.0
    )
    assert pooled == serial


def test_resolve_jobs_clamps_to_available_cores(monkeypatch):
    import repro.parallel

    monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: 4)
    assert resolve_jobs(0) == 0
    assert resolve_jobs(1) == 1
    assert resolve_jobs(8) == 4
    assert resolve_jobs(-1) == 4
