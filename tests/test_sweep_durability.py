"""Journaled, resumable sweeps: crash at any line, resume to the same bits.

The contract under test: a sweep with a ``journal`` can be killed at any
instant, damaged in the ways crashes actually damage files (torn tails),
resumed with ``--resume``, and the merged results carry identical
``(point, time, error)`` content to an uninterrupted run — re-running
only what the journal does not already prove complete.  Failed points
are deliberately re-run (transient crashes heal); journals from a
different sweep configuration are refused outright.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.sweep import (
    POISON_ENV,
    SweepPoint,
    clear_sim_memo,
    run_sweep,
    sweep_fingerprint,
)
from repro.core.cache import global_schedule_cache
from repro.errors import StoreError
from repro.simnet.machines import by_name
from repro.store.journal import JournalWriter, read_journal

MACHINE = by_name("frontier", 4, 2)

POINTS = [
    SweepPoint("allreduce", alg, nbytes, k=k)
    for alg, k in (("knomial", 2), ("knomial", 4), ("ring", None))
    for nbytes in (64, 4096)
]


def _content(results):
    """The deterministic part of sweep results (metadata excluded)."""
    return [(r.point, r.time, r.error) for r in results]


# ----------------------------------------------------------------------
# Journal primitive
# ----------------------------------------------------------------------


def test_journal_roundtrip_skips_and_repairs_torn_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    with JournalWriter(path) as writer:
        writer.append({"kind": "point", "key": "a", "time": 1.0})
        writer.append({"kind": "point", "key": "b", "time": 2.0})
    # SIGKILL mid-write leaves a torn, unterminated final line.
    blob = path.read_bytes()
    path.write_bytes(blob + b'{"kind": "point", "key": "c", "ti')

    records, skipped = read_journal(path)
    assert [r["key"] for r in records] == ["a", "b"]
    assert skipped == 1

    # Appending after the crash must not glue onto the torn garbage.
    with JournalWriter(path) as writer:
        writer.append({"kind": "point", "key": "d", "time": 4.0})
    records, skipped = read_journal(path)
    assert [r["key"] for r in records] == ["a", "b", "d"]
    assert skipped == 1


def test_journal_tolerates_junk_lines(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text(
        '{"v": 1, "kind": "point", "key": "good"}\n'
        "not json at all\n"
        "\n"
        '{"v": 999, "kind": "point", "key": "wrong-version"}\n'
        '["not", "a", "dict"]\n'
    )
    records, skipped = read_journal(path)
    assert [r["key"] for r in records] == ["good"]
    assert skipped == 3  # junk, wrong version, non-dict (blank is free)


# ----------------------------------------------------------------------
# run_sweep: journal, crash, resume
# ----------------------------------------------------------------------


def test_journaled_sweep_matches_plain_sweep(tmp_path):
    plain = run_sweep(POINTS, MACHINE)
    journaled = run_sweep(POINTS, MACHINE, journal=tmp_path / "j.jsonl")
    assert _content(journaled) == _content(plain)
    records, _ = read_journal(tmp_path / "j.jsonl")
    assert records[0]["kind"] == "header"
    assert len([r for r in records if r["kind"] == "point"]) == len(POINTS)


def test_resume_after_partial_journal_is_bit_identical(tmp_path):
    reference = run_sweep(POINTS, MACHINE)
    journal = tmp_path / "j.jsonl"
    run_sweep(POINTS, MACHINE, journal=journal)

    # Simulate a crash: keep the header and the first two point records,
    # tearing the third mid-line (what SIGKILL actually leaves behind).
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:3]) + "\n" + lines[3][:17])

    resumed = run_sweep(POINTS, MACHINE, journal=journal, resume=True)
    assert _content(resumed) == _content(reference)
    # The journal healed too: resume appended the re-run points.
    records, skipped = read_journal(journal)
    assert len([r for r in records if r["kind"] == "point"]) == len(POINTS)
    assert skipped == 1


def test_resume_with_complete_journal_recomputes_nothing(
    tmp_path, monkeypatch
):
    reference = run_sweep(POINTS, MACHINE)
    journal = tmp_path / "j.jsonl"
    run_sweep(POINTS, MACHINE, journal=journal)

    import repro.bench.sweep as sweep_mod

    def _explode(chunk):
        raise AssertionError("complete journal must not recompute")

    monkeypatch.setattr(sweep_mod, "_run_chunk", _explode)
    resumed = run_sweep(POINTS, MACHINE, journal=journal, resume=True)
    assert _content(resumed) == _content(reference)


def test_resume_reruns_failed_points(tmp_path):
    reference = run_sweep(POINTS, MACHINE)
    journal = tmp_path / "j.jsonl"
    run_sweep(POINTS, MACHINE, journal=journal)

    # Rewrite one success record as a failure (a transient crash the
    # journal remembered).  Resume must re-run exactly that point and
    # converge to the reference anyway.
    lines = journal.read_text().splitlines()
    victim = json.loads(lines[2])
    victim.update(time=None, error="ChunkFailure: injected for test")
    lines[2] = json.dumps(victim)
    journal.write_text("\n".join(lines) + "\n")

    resumed = run_sweep(POINTS, MACHINE, journal=journal, resume=True)
    assert _content(resumed) == _content(reference)
    assert all(r.error is None for r in resumed)


def test_resume_refuses_foreign_journal(tmp_path):
    journal = tmp_path / "j.jsonl"
    run_sweep(POINTS, MACHINE, journal=journal)
    other_machine = by_name("frontier", 8, 2)
    with pytest.raises(StoreError, match="different sweep configuration"):
        run_sweep(POINTS, other_machine, journal=journal, resume=True)


def test_fresh_run_truncates_stale_journal(tmp_path):
    journal = tmp_path / "j.jsonl"
    run_sweep(POINTS, MACHINE, journal=journal)
    # Without --resume the journal belongs to *this* run: a stale one
    # (even from a different configuration) is truncated, not spliced.
    run_sweep(POINTS[:2], MACHINE, journal=journal)
    records, _ = read_journal(journal)
    assert len([r for r in records if r["kind"] == "point"]) == 2


# ----------------------------------------------------------------------
# Error records and the store attachment
# ----------------------------------------------------------------------


def test_worker_error_records_carry_tracebacks():
    bad = [SweepPoint("allreduce", "no-such-algorithm", 64)]
    results = run_sweep(bad, MACHINE)
    assert len(results) == 1
    assert results[0].time is None
    assert "no algorithm" in results[0].error
    assert "Traceback" in (results[0].traceback or "")


def test_store_attachment_restores_global_cache(tmp_path):
    # The cross-point sim memo would otherwise satisfy every point
    # without touching the schedule cache at all (nothing would be
    # built, so nothing would be written through to disk).
    clear_sim_memo()
    before = global_schedule_cache()
    run_sweep(POINTS, MACHINE, store=tmp_path / "store")
    assert global_schedule_cache() is before
    assert (tmp_path / "store" / "entries").is_dir()
    assert any((tmp_path / "store" / "entries").glob("*.json"))


def test_poisoned_point_is_quarantined_then_healed_by_resume(
    tmp_path, monkeypatch
):
    reference = run_sweep(POINTS, MACHINE)
    journal = tmp_path / "j.jsonl"
    victim = POINTS[1]
    monkeypatch.setenv(
        POISON_ENV,
        f"{victim.collective}/{victim.algorithm}/{victim.k}/{victim.nbytes}",
    )
    poisoned = run_sweep(
        POINTS, MACHINE, jobs=2, isolate=True, retries=1, deadline=30.0,
        journal=journal,
    )
    by_point = {r.point: r for r in poisoned}
    assert by_point[victim].error is not None
    assert "worker process lost" in (by_point[victim].traceback or "")
    # Every sibling of the poison point still completed, correctly.
    for ref in reference:
        if ref.point != victim:
            assert by_point[ref.point].time == ref.time

    monkeypatch.delenv(POISON_ENV)
    healed = run_sweep(POINTS, MACHINE, journal=journal, resume=True)
    assert _content(healed) == _content(reference)


# ----------------------------------------------------------------------
# The fingerprint that guards resume
# ----------------------------------------------------------------------


def test_sweep_fingerprint_pins_every_input():
    base = sweep_fingerprint(POINTS, MACHINE)
    assert base == sweep_fingerprint(POINTS, MACHINE)
    assert base != sweep_fingerprint(POINTS[:-1], MACHINE)
    assert base != sweep_fingerprint(list(reversed(POINTS)), MACHINE)
    assert base != sweep_fingerprint(POINTS, by_name("frontier", 8, 2))
    assert base != sweep_fingerprint(POINTS, MACHINE, reuse=False)
