"""Tests for baseline algorithms (:mod:`repro.core.baselines`)."""

import pytest

from repro.core.baselines import (
    linear_bcast,
    linear_gather,
    linear_reduce,
    linear_scatter,
    recursive_halving_reduce_scatter,
    reduce_scatter_allgather_allreduce,
    reduce_scatter_gather_reduce,
    scatter_allgather_bcast,
)
from repro.core.validate import verify
from repro.errors import ScheduleError


class TestLinear:
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    @pytest.mark.parametrize(
        "builder", [linear_bcast, linear_reduce, linear_gather, linear_scatter]
    )
    def test_verifies(self, p, builder):
        for root in {0, p - 1}:
            verify(builder(p, root=root))

    def test_linear_bcast_is_fully_sequential(self):
        """The naive bcast sends one message per step — no overlap at all
        (that's what makes it the (p-1)(α+βn) strawman of §III-B)."""
        sched = linear_bcast(6)
        root_prog = sched.programs[0]
        assert len(root_prog.steps) == 5
        for step in root_prog.steps:
            assert len(step.ops) == 1

    def test_linear_reduce_reduces_at_root(self):
        sched = linear_reduce(4)
        recvs = [
            op
            for _, op in sched.programs[0].iter_ops()
        ]
        assert all(getattr(op, "reduce", False) for op in recvs)

    def test_invalid_root(self):
        with pytest.raises(ScheduleError):
            linear_bcast(4, root=4)


class TestComposites:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 12, 16, 17])
    def test_scatter_allgather_bcast_verifies(self, p):
        verify(scatter_allgather_bcast(p, root=p // 2))

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 12, 16, 17])
    def test_rabenseifner_allreduce_verifies(self, p):
        verify(reduce_scatter_allgather_allreduce(p))

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 12, 16, 17])
    def test_recursive_halving_reduce_scatter_verifies(self, p):
        verify(recursive_halving_reduce_scatter(p))

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 12, 16, 17])
    def test_rabenseifner_reduce_verifies(self, p):
        for root in {0, p - 1}:
            verify(reduce_scatter_gather_reduce(p, root=root))

    def test_rabenseifner_composition_metadata(self):
        sched = reduce_scatter_allgather_allreduce(8)
        assert sched.collective == "allreduce"
        assert sched.algorithm == "reduce_scatter_allgather"
        assert len(sched.meta["phases"]) == 2

    def test_rabenseifner_reduce_shrinks_root_inbound_volume(self):
        """The whole point of Rabenseifner: the root's inbound data drops
        from the binomial tree's log2(p)·n to ~2n(p-1)/p."""
        from repro.core.knomial import knomial_reduce
        from repro.core.schedule import RecvOp

        n = 8 * 64

        def root_recv_units(sched):
            bm = sched.block_map(n)
            return sum(
                bm.bytes_of(op.blocks)
                for _, op in sched.programs[0].iter_ops()
                if isinstance(op, RecvOp)
            )

        rsg = root_recv_units(reduce_scatter_gather_reduce(8))
        binomial = root_recv_units(knomial_reduce(8, 2))
        assert binomial == 3 * n  # log2(8) full vectors
        assert rsg <= 2 * n  # halving rounds + gathered blocks
        assert rsg < binomial
