"""The chaos sweep as a pytest suite.

The full sweep (every default scenario x every Table I algorithm x both
backends) is tier 2: marked ``chaos``, excluded from the default run by
``addopts`` and invoked via ``make chaos`` / ``pytest -m chaos``.  A
two-case smoke test stays in tier 1 so harness breakage is caught on
every run.
"""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.faults.chaos import (
    ChaosScenario,
    default_scenarios,
    run_case,
    run_chaos,
    summarize,
)


class TestHarnessSmoke:
    def test_single_threaded_case_ok(self):
        result = run_case(
            "allreduce",
            "knomial",
            FaultPlan(drop_rate=0.1, seed=0,
                      retry=RetryPolicy(max_retries=8, rto=0.01)),
            p=4,
            count=16,
        )
        assert result.outcome == "ok"
        assert result.ok

    def test_single_sim_case_ok(self):
        result = run_case(
            "allgather",
            "kring",
            FaultPlan(drop_rate=0.1, seed=0),
            backend="sim",
            p=4,
        )
        assert result.outcome == "ok"
        assert "t=" in result.detail

    def test_default_scenarios_cover_the_fault_space(self):
        names = {s.name for s in default_scenarios(0, 8)}
        assert {"light_loss", "heavy_loss", "dup_storm", "straggler",
                "crash", "dead_link"} <= names

    def test_summarize_flags_violations(self):
        from repro.faults.chaos import ChaosResult

        bad = ChaosResult("s", "allreduce", "ring", "threaded", "FAIL",
                          detail="silent corruption")
        ok = ChaosResult("s", "allreduce", "ring", "sim", "ok")
        text = summarize([bad, ok])
        assert "VIOLATION" in text
        assert "1 contract violation(s)" in text


@pytest.mark.chaos
class TestChaosSweep:
    """Tier 2: the resilience contract across the whole algorithm suite."""

    @pytest.mark.parametrize("scenario", default_scenarios(0, 8),
                             ids=lambda s: s.name)
    def test_scenario_holds_the_contract(self, scenario: ChaosScenario):
        results = run_chaos([scenario], p=8, count=64, seed=0)
        violations = [r for r in results if not r.ok]
        assert not violations, "\n" + summarize(results)

    def test_sweep_is_reproducible(self):
        """Same seed, same sweep — outcome for outcome."""
        a = run_chaos(p=6, count=32, seed=3, backends=("threaded",))
        b = run_chaos(p=6, count=32, seed=3, backends=("threaded",))
        assert [(r.scenario, r.collective, r.algorithm, r.outcome)
                for r in a] == [
            (r.scenario, r.collective, r.algorithm, r.outcome) for r in b
        ]
