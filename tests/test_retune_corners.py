"""Corner cases of degraded-mode re-tuning (:mod:`repro.recovery.retune`).

The adaptive loop's ``retune`` rung is built on these primitives, so
their edges are load-bearing: an empty degradation stream must mean "no
plan" (not an empty plan that still blocks the collapsed engine), a
sweep that merely *ties* the incumbent must not cause a switch, and the
re-pick must be bit-deterministic at any worker fan-out.
"""

import pytest

from repro.errors import SelectionError
from repro.obs import OBS
from repro.recovery.detect import LinkDegraded
from repro.recovery.retune import degraded_plan, retune_degraded, retune_or_keep
from repro.simnet.machines import reference

M8 = reference(8)
NBYTES = 65536

#: A degradation pattern strong enough to rerank: every link at rank 1.
DEGRADED = tuple(
    LinkDegraded(src, dst, delay_factor=4.0, bandwidth_factor=8.0)
    for r in [1]
    for src, dst in [(r, o) for o in range(8) if o != r]
    + [(o, r) for o in range(8) if o != r]
)


def test_empty_degradation_means_no_plan():
    assert degraded_plan(()) is None


def test_noop_factors_mean_no_plan():
    # Links reported degraded but with unit factors carry no penalty —
    # sweeping under them would just disable the collapsed engine.
    noop = (LinkDegraded(0, 1, delay_factor=1.0, bandwidth_factor=1.0),)
    assert degraded_plan(noop) is None


def test_degraded_plan_carries_only_the_penalties():
    plan = degraded_plan(DEGRADED[:2])
    assert plan is not None
    assert len(plan.links) == 2
    assert plan.drop_rate == 0.0 and not plan.crashes


def test_retune_or_keep_keeps_incumbent_on_tie():
    # The healthy winner, asked to re-tune with nothing degraded, ties
    # itself — and must be kept, not "switched to" redundantly.
    winner = retune_degraded("allreduce", M8, NBYTES, ())
    kept = retune_or_keep("allreduce", winner[0], M8, NBYTES, (),
                          k=winner[1])
    assert kept == winner


def test_retune_or_keep_switches_off_a_beaten_incumbent():
    winner = retune_degraded("allreduce", M8, NBYTES, ())
    # ring allreduce is never the 64 KiB winner at p=8; it must move.
    moved = retune_or_keep("allreduce", "ring", M8, NBYTES, ())
    assert moved == winner


def test_retune_or_keep_counts_only_actual_switches():
    # retune_degraded counts every call; retune_or_keep must count only
    # actual switches, so the winner is computed before OBS turns on.
    winner = retune_degraded("allreduce", M8, NBYTES, ())
    OBS.reset()
    OBS.enable()
    try:
        retune_or_keep("allreduce", winner[0], M8, NBYTES, (),
                       k=winner[1])
        counter = OBS.metrics.counter(
            "repro_recovery_retunes_total", collective="allreduce"
        )
        kept_value = counter.value
        retune_or_keep("allreduce", "ring", M8, NBYTES, ())
        switched_value = counter.value
    finally:
        OBS.disable()
        OBS.reset()
    assert kept_value == 0.0  # tie-keep must not count as a re-tune
    assert switched_value == 1.0


def test_retune_or_keep_keeps_incumbent_when_sweep_cannot_run(monkeypatch):
    from repro.selection import tuner

    def boom(*args, **kwargs):
        raise SelectionError("no sweep for you")

    monkeypatch.setattr(tuner, "sweep_collective", boom)
    assert retune_or_keep("allreduce", "knomial", M8, NBYTES, (),
                          k=4) == ("knomial", 4)


def test_repick_is_deterministic_at_any_jobs():
    serial = retune_or_keep("allreduce", "knomial", M8, NBYTES, DEGRADED,
                            k=4, jobs=0)
    fanned = retune_or_keep("allreduce", "knomial", M8, NBYTES, DEGRADED,
                            k=4, jobs=2)
    assert serial == fanned
    assert serial == retune_degraded("allreduce", M8, NBYTES, DEGRADED,
                                     jobs=2)
