"""Tests for buffer conventions (:mod:`repro.runtime.buffers`)."""

import numpy as np
import pytest

from repro.core.registry import build_schedule
from repro.errors import ExecutionError
from repro.runtime.buffers import (
    check_outputs,
    checked_slots,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.ops import MAX, SUM


class TestMakeInputs:
    def test_bcast_only_root_has_data(self):
        inputs = make_inputs("bcast", 4, 10, root=2)
        assert len(inputs[2]) == 10
        for r in (0, 1, 3):
            assert len(inputs[r]) == 0

    def test_allgather_block_sized_contributions(self):
        inputs = make_inputs("allgather", 4, 10)
        assert [len(x) for x in inputs] == [3, 3, 2, 2]

    def test_reduce_full_vectors(self):
        inputs = make_inputs("allreduce", 3, 7)
        assert all(len(x) == 7 for x in inputs)

    def test_seeded_determinism(self):
        rng1 = np.random.default_rng(42)
        rng2 = np.random.default_rng(42)
        a = make_inputs("allreduce", 2, 5, rng=rng1)
        b = make_inputs("allreduce", 2, 5, rng=rng2)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_unknown_collective(self):
        with pytest.raises(ExecutionError):
            make_inputs("alltoallw", 2, 4)


class TestInitialBuffers:
    def test_undefined_slots_are_poisoned(self):
        sched = build_schedule("bcast", "binomial", 4)
        inputs = make_inputs("bcast", 4, 8)
        bufs = initial_buffers(sched, inputs, 8)
        # non-root buffers hold the garbage fill, not zeros
        assert not np.array_equal(bufs[1], np.zeros(8, dtype=np.int64))
        assert len(set(bufs[1].tolist())) == 1  # uniform sentinel

    def test_allgather_blocks_placed(self):
        sched = build_schedule("allgather", "ring", 4)
        inputs = make_inputs("allgather", 4, 8)
        bufs = initial_buffers(sched, inputs, 8)
        assert np.array_equal(bufs[1][2:4], inputs[1])

    def test_wrong_input_length_rejected(self):
        sched = build_schedule("allreduce", "recursive_doubling", 2)
        with pytest.raises(ExecutionError, match="elements"):
            initial_buffers(sched, [np.zeros(3), np.zeros(4)], 4)


class TestReference:
    def test_bcast(self):
        inputs = [np.arange(4), np.empty(0)]
        exp = reference_result("bcast", inputs, 4, root=0)
        assert np.array_equal(exp[1], np.arange(4))

    def test_reduce_sum(self):
        inputs = [np.array([1, 2]), np.array([3, 4])]
        exp = reference_result("reduce", inputs, 2, op=SUM, root=1)
        assert list(exp) == [1]
        assert exp[1].tolist() == [4, 6]

    def test_allreduce_max(self):
        inputs = [np.array([1, 9]), np.array([5, 2])]
        exp = reference_result("allreduce", inputs, 2, op=MAX)
        assert exp[0].tolist() == [5, 9]

    def test_reduce_scatter_blocks(self):
        inputs = [np.arange(4), np.arange(4)]
        exp = reference_result("reduce_scatter", inputs, 4, op=SUM)
        assert exp[0].tolist() == [0, 2]  # first block of doubled arange
        assert exp[1].tolist() == [4, 6]

    def test_scatter(self):
        inputs = [np.arange(6), np.empty(0), np.empty(0)]
        exp = reference_result("scatter", inputs, 6, root=0)
        assert exp[1].tolist() == [2, 3]

    def test_gather_only_defines_root(self):
        inputs = [np.array([0]), np.array([1]), np.array([2])]
        exp = reference_result("gather", inputs, 3, root=2)
        assert list(exp) == [2]


class TestCheckedSlots:
    def test_rooted_collectives_constrain_root_only(self):
        assert list(checked_slots("reduce", 4, root=3)) == [3]

    def test_symmetric_collectives_constrain_everyone(self):
        assert sorted(checked_slots("allreduce", 3)) == [0, 1, 2]


class TestCheckOutputs:
    def test_detects_mismatch_with_location(self):
        sched = build_schedule("bcast", "binomial", 2)
        good = np.arange(4, dtype=np.int64)
        bad = good.copy()
        bad[2] = 99
        with pytest.raises(ExecutionError, match="elements \\[2\\]"):
            check_outputs(sched, [good, bad], {0: good, 1: good}, 4)

    def test_tolerance_for_floats(self):
        sched = build_schedule("bcast", "binomial", 2)
        a = np.array([1.0, 2.0])
        b = a + 1e-12
        check_outputs(sched, [a, b], {0: a, 1: a}, 2, rtol=1e-9)

    def test_scatter_checks_own_block_only(self):
        sched = build_schedule("scatter", "binomial", 2)
        bufs = [np.array([7, 8]), np.array([0, 8])]
        # rank 1's block is [8]; the garbage in slot 0 must be ignored
        check_outputs(sched, bufs, {0: np.array([7]), 1: np.array([8])}, 2)
