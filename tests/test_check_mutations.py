"""Mutation corpus for :mod:`repro.check` (ISSUE 5 acceptance gate).

Each test seeds one realistic schedule bug — the classes of mistake the
paper reports spending the most debugging effort on (§VI-A) — and
asserts the static-analysis suite catches it with an *actionable*
diagnostic: an error finding pinned to the offending rank/step/op.

The corpus mutates real registry schedules where the bug is a plausible
editing slip (dropped op, swapped peer, reordered step, truncated
program) and hand-builds minimal schedules where the bug needs precise
construction (double-count, rendezvous cycle, copy collisions).
"""

import copy

import pytest

from repro.check import run_checks
from repro.check.deadlock import check_deadlock
from repro.core.registry import build_schedule
from repro.core.schedule import (
    CopyOp,
    RankProgram,
    RecvOp,
    Schedule,
    SendOp,
    Step,
)


def mutated(collective, algorithm, p, k=None):
    """A private deep copy of a registry schedule, safe to break."""
    return copy.deepcopy(build_schedule(collective, algorithm, p, k=k))


def handmade(collective, programs, nblocks, root=None):
    return Schedule(
        collective=collective,
        algorithm="handmade",
        nranks=len(programs),
        nblocks=nblocks,
        programs=programs,
        root=root,
    )


def prog(rank, *steps):
    return RankProgram(rank=rank, steps=[Step(tuple(ops)) for ops in steps])


def assert_caught(report, *codes):
    """The report must fail with >= 1 of ``codes``, located on an op.

    "Actionable" means a human can go fix it: every asserted finding
    names the rank, and at least one names rank, step AND the op text.
    """
    assert not report.ok, f"mutation went undetected:\n{report.describe()}"
    found = [f for f in report.findings if f.code in codes]
    assert found, (
        f"expected one of {codes}, got "
        f"{sorted({f.code for f in report.findings})}"
    )
    assert all(f.rank is not None or f.code.startswith("model")
               for f in found)
    assert any(
        f.rank is not None and f.step is not None and f.op
        for f in found
    ), f"no finding carries a full rank/step/op location: {found}"
    return found[0]


class TestRegistryMutations:
    """Plausible editing slips on real registry schedules."""

    def test_drop_recv(self):
        # Deleting a recv leaves its sender's message orphaned in the
        # channel and shifts every later FIFO match on that channel.
        s = mutated("allreduce", "ring", 4)
        step = s.programs[1].steps[0]
        s.programs[1].steps[0] = Step(
            tuple(op for op in step.ops if not isinstance(op, RecvOp))
        )
        f = assert_caught(
            run_checks(s), "channel-orphan-send", "deadlock-rendezvous"
        )
        assert "rank" in f.message

    def test_drop_send(self):
        s = mutated("allreduce", "ring", 4)
        step = s.programs[1].steps[0]
        s.programs[1].steps[0] = Step(
            tuple(op for op in step.ops if not isinstance(op, SendOp))
        )
        f = assert_caught(
            run_checks(s), "channel-starved-recv", "deadlock-eager"
        )
        assert "never" in f.message

    def test_swap_peers(self):
        # Rank 0 receives from the wrong neighbor: the real sender's
        # message starves, the phantom channel has no sends at all.
        s = mutated("allreduce", "ring", 4)
        ops = list(s.programs[0].steps[0].ops)
        for i, op in enumerate(ops):
            if isinstance(op, RecvOp):
                ops[i] = RecvOp(peer=2, blocks=op.blocks, reduce=op.reduce)
        s.programs[0].steps[0] = Step(tuple(ops))
        assert_caught(
            run_checks(s),
            "channel-starved-recv",
            "channel-orphan-send",
            "deadlock-eager",
        )

    def test_reorder_step(self):
        # Swapping two steps on one rank permutes its send order, which
        # the FIFO matching sees as block-shape mismatches downstream.
        s = mutated("allreduce", "ring", 4)
        steps = s.programs[0].steps
        steps[0], steps[1] = steps[1], steps[0]
        f = assert_caught(run_checks(s), "channel-shape")
        assert "FIFO" in f.message

    def test_truncate_program(self):
        # A rank exits early: its last-step peers hang forever.
        s = mutated("allreduce", "ring", 4)
        s.programs[2].steps.pop()
        assert_caught(
            run_checks(s),
            "channel-orphan-send",
            "channel-starved-recv",
            "deadlock-eager",
        )

    def test_extra_round_breaks_model(self):
        # A redundant extra exchange leaves the data correct but makes
        # the schedule structurally heavier than its analytical model.
        s = mutated("bcast", "knomial", 8, k=2)
        s.programs[0].steps.append(Step((SendOp(1, (0,)),)))
        s.programs[1].steps.append(Step((RecvOp(0, (0,)),)))
        report = run_checks(s)
        assert not report.ok
        model = [f for f in report.findings if f.code.startswith("model")]
        assert model, sorted({f.code for f in report.findings})
        assert "calibrated band" in model[0].message
        assert "drifted" in model[0].message


class TestHandmadeMutations:
    """Bug classes needing precise construction."""

    def test_overlapping_recv_blocks(self):
        # Two plain recvs landing in the same block in one step: the
        # last writer wins nondeterministically on real hardware.
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,)), SendOp(2, (0,)),
                     RecvOp(1, (1,)), RecvOp(2, (1,))]),
            prog(1, [SendOp(0, (1,)), SendOp(2, (1,)),
                     RecvOp(0, (0,)), RecvOp(2, (2,))]),
            prog(2, [SendOp(0, (2,)), SendOp(1, (2,)),
                     RecvOp(0, (0,)), RecvOp(1, (1,))]),
        ], nblocks=3)
        f = assert_caught(run_checks(s), "hazard-write-write")
        assert "block 1" in f.message

    def test_double_counted_reduction(self):
        # A duplicated butterfly exchange folds each peer's input in
        # twice — silent corruption under SUM.
        exchange0 = [SendOp(1, (0,)), RecvOp(1, (0,), reduce=True)]
        exchange1 = [SendOp(0, (0,)), RecvOp(0, (0,), reduce=True)]
        s = handmade("allreduce", [
            prog(0, list(exchange0), list(exchange0)),
            prog(1, list(exchange1), list(exchange1)),
        ], nblocks=1)
        f = assert_caught(run_checks(s), "dataflow-double-count")
        assert "double-count" in f.message

    def test_garbage_send(self):
        # Bcast with the arrow reversed: the non-root sends a block it
        # never received.
        s = handmade("bcast", [
            prog(0, [RecvOp(1, (0,))]),
            prog(1, [SendOp(0, (0,))]),
        ], nblocks=1, root=0)
        f = assert_caught(run_checks(s), "dataflow-garbage-send")
        assert "uninitialized" in f.message

    def test_wrong_payload_shape(self):
        # Send carries two blocks, the FIFO-matched recv expects one.
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0, 1)), RecvOp(1, (1,))]),
            prog(1, [SendOp(0, (1,)), RecvOp(0, (0,))]),
        ], nblocks=2)
        f = assert_caught(run_checks(s), "channel-shape")
        assert "shapes differ" in f.message

    def test_rendezvous_cycle(self):
        # Both ranks send in step 0 and recv in step 1: fine with eager
        # buffering, a textbook cycle once sends must rendezvous.
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,))], [RecvOp(1, (1,))]),
            prog(1, [SendOp(0, (1,))], [RecvOp(0, (0,))]),
        ], nblocks=2)
        f = assert_caught(run_checks(s), "deadlock-rendezvous")
        assert "cyclic wait among ranks [0, 1]" in f.message
        assert "closing the cycle" in f.message

    def test_rendezvous_cycle_threshold_regimes(self):
        # The same cycle, analyzed in the mixed regime: payloads under
        # the eager limit squeak through (warning — it breaks at
        # scale), payloads over it hang (error).
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,))], [RecvOp(1, (1,))]),
            prog(1, [SendOp(0, (1,))], [RecvOp(0, (0,))]),
        ], nblocks=2)
        small = {f.code: f.severity
                 for f in check_deadlock(s, nbytes=64, eager_threshold=1024)}
        assert small["deadlock-eager-dependent"] == "warning"
        big = {f.code: f.severity
               for f in check_deadlock(s, nbytes=4096, eager_threshold=64)}
        assert big["deadlock-threshold"] == "error"

    def test_copy_copy_collision(self):
        s = handmade("bcast", [
            prog(0, [CopyOp(0, 1), CopyOp(0, 1), SendOp(1, (0, 1))]),
            prog(1, [RecvOp(0, (0, 1))]),
        ], nblocks=2, root=0)
        f = assert_caught(run_checks(s), "hazard-copy-copy")
        assert "concurrent copies" in f.message


def test_corpus_size():
    """The acceptance criterion asks for >= 10 distinct seeded bugs."""
    corpus = [
        m for cls in (TestRegistryMutations, TestHandmadeMutations)
        for m in vars(cls) if m.startswith("test_")
    ]
    assert len(corpus) >= 10, corpus


@pytest.mark.parametrize("collective,algorithm,p,k", [
    ("allreduce", "ring", 8, None),
    ("allreduce", "recursive_multiplying", 9, 3),
    ("bcast", "knomial", 13, 3),
    ("allgather", "bruck", 7, 2),
    ("reduce_scatter", "recursive_halving", 8, None),
])
def test_unmutated_baselines_stay_clean(collective, algorithm, p, k):
    """The corpus' seed schedules pass — so each test isolates its bug."""
    report = run_checks(build_schedule(collective, algorithm, p, k=k))
    assert report.ok, report.describe()
