"""Tests for the benchmark harness (:mod:`repro.bench`)."""

import pytest

from repro.bench.osu import default_sizes, osu_latency, osu_latency_schedule
from repro.bench.report import format_size, format_table, geomean, speedup_str
from repro.bench.speedup import policy_latency, speedup_curves
from repro.bench.sweep import radix_latency_sweep
from repro.core.registry import build_schedule
from repro.errors import ReproError
from repro.selection.defaults import mpich_policy
from repro.simnet.machines import frontier, reference


class TestReport:
    def test_format_size(self):
        assert format_size(8) == "8B"
        assert format_size(1024) == "1KiB"
        assert format_size(65536) == "64KiB"
        assert format_size(4 << 20) == "4MiB"
        assert format_size(1536) == "1.5KiB"

    def test_format_size_negative(self):
        with pytest.raises(ValueError):
            format_size(-1)

    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bbbb", 22.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "value" in lines[1]
        assert "22.25" in text

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_speedup_str(self):
        assert speedup_str(1.5) == "1.50x"


class TestOSU:
    def test_default_sizes_powers_of_two(self):
        sizes = default_sizes(8, 128)
        assert sizes == [8, 16, 32, 64, 128]
        with pytest.raises(ReproError):
            default_sizes(8, 4)

    def test_latency_points(self):
        pts = osu_latency("bcast", "binomial", reference(8), [8, 64])
        assert [p.nbytes for p in pts] == [8, 64]
        assert all(p.avg_us > 0 for p in pts)
        assert all(p.min_us <= p.avg_us <= p.max_us for p in pts)

    def test_latency_monotone_in_size(self):
        pts = osu_latency(
            "allreduce", "ring", reference(8), default_sizes(8, 1 << 20)
        )
        times = [p.avg_us for p in pts]
        assert times == sorted(times)

    def test_noise_trials_spread(self):
        pts = osu_latency(
            "bcast", "binomial", frontier(8, 1), [1024],
            trials=5, noise_sigma=0.3,
        )
        assert pts[0].trials == 5
        assert pts[0].max_us > pts[0].min_us

    def test_rooted_algorithm_with_root(self):
        pts = osu_latency("reduce", "knomial", reference(8), [8], k=4, root=3)
        assert pts[0].avg_us > 0

    def test_invalid_trials(self):
        with pytest.raises(ReproError):
            osu_latency_schedule(
                build_schedule("bcast", "binomial", 8), reference(8), [8],
                trials=0,
            )


class TestRadixSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return radix_latency_sweep(
            "reduce", "knomial", frontier(16, 1), [8, 1 << 20], ks=[2, 4, 16]
        )

    def test_surface_complete(self, sweep):
        for k in (2, 4, 16):
            for n in (8, 1 << 20):
                assert sweep.latency(k, n) > 0

    def test_series_accessors(self, sweep):
        assert len(sweep.series_for_k(4)) == 2
        assert len(sweep.series_for_size(8)) == 3

    def test_best_k_paper_shape(self, sweep):
        assert sweep.best_k(8) >= sweep.best_k(1 << 20)

    def test_best_latency_consistency(self, sweep):
        assert sweep.best_latency(8) == sweep.latency(sweep.best_k(8), 8)

    def test_flatness_at_least_one(self, sweep):
        assert sweep.flatness(8) >= 1.0

    def test_missing_point_raises(self, sweep):
        with pytest.raises(ReproError):
            sweep.latency(3, 8)

    def test_fixed_algorithm_rejected(self):
        with pytest.raises(ReproError, match="generalized"):
            radix_latency_sweep("bcast", "binomial", reference(8), [8])


class TestSpeedup:
    def test_policy_latency(self):
        t = policy_latency(mpich_policy(), "bcast", frontier(8, 1), 64)
        assert t > 0

    def test_curve_structure(self):
        curve = speedup_curves(
            "allreduce",
            frontier(8, 1),
            [8, 1 << 20],
            candidates=[("recursive_multiplying", [2, 4]),
                        ("reduce_scatter_allgather", [None])],
        )
        assert len(curve.points) == 2
        pt = curve.points[0]
        assert pt.speedup_vs_baseline == pytest.approx(
            pt.baseline_us / pt.best_us
        )
        assert curve.max_speedup_vs_vendor() >= 1.0 or True  # finite
        winners = curve.winners()
        assert set(winners) == {8, 1 << 20}

    def test_best_choice_is_argmin(self):
        curve = speedup_curves(
            "allreduce",
            frontier(8, 1),
            [1 << 20],
            candidates=[("recursive_multiplying", [2, 4, 8])],
        )
        pt = curve.points[0]
        sweep = radix_latency_sweep(
            "allreduce", "recursive_multiplying", frontier(8, 1), [1 << 20],
            ks=[2, 4, 8],
        )
        assert pt.best_us == pytest.approx(sweep.best_latency(1 << 20))
        assert pt.best_choice.k == sweep.best_k(1 << 20)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ReproError):
            speedup_curves("allreduce", frontier(8, 1), [8], candidates=[])
