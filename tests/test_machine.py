"""Tests for machine specifications (:mod:`repro.simnet.machine` and
:mod:`repro.simnet.machines`)."""

import pytest

from repro.errors import MachineError
from repro.simnet.machine import DragonflySpec, GiBps, MachineSpec, us
from repro.simnet.machines import by_name, frontier, polaris, reference


class TestUnits:
    def test_us(self):
        assert us(2.0) == 2e-6

    def test_gibps_is_seconds_per_byte(self):
        assert GiBps(1.0) == 1.0 / 1024**3

    def test_gibps_rejects_nonpositive(self):
        with pytest.raises(MachineError):
            GiBps(0)


class TestMachineSpec:
    def test_rank_geometry(self):
        m = frontier(4, 8)
        assert m.nranks == 32
        assert m.node_of(0) == 0
        assert m.node_of(7) == 0
        assert m.node_of(8) == 1
        assert m.same_node(0, 7)
        assert not m.same_node(7, 8)

    def test_rank_out_of_range(self):
        with pytest.raises(MachineError):
            frontier(2, 1).node_of(2)

    def test_dragonfly_groups(self):
        m = frontier(32, 1)  # 16 nodes per group → 2 groups
        assert m.group_of(0) == 0
        assert m.group_of(15) == 0
        assert m.group_of(16) == 1
        assert m.crosses_groups(0, 16)
        assert not m.crosses_groups(0, 15)

    def test_no_dragonfly_single_group(self):
        m = reference(8)
        assert m.group_of(5) == 0
        assert not m.crosses_groups(0, 7)

    def test_with_derives_variant(self):
        m = frontier(4, 1)
        m2 = m.with_(nic_ports=1)
        assert m2.nic_ports == 1
        assert m.nic_ports == 4  # original untouched

    def test_negative_latency_rejected(self):
        with pytest.raises(MachineError):
            MachineSpec(
                name="bad", nodes=2, ppn=1,
                alpha_inter=-1.0, beta_inter=1e-9,
            )

    def test_bad_intra_kind_rejected(self):
        with pytest.raises(MachineError):
            MachineSpec(
                name="bad", nodes=2, ppn=1,
                alpha_inter=1e-6, beta_inter=1e-9, intra_kind="magic",
            )

    def test_dragonfly_must_tile_nodes(self):
        with pytest.raises(MachineError):
            MachineSpec(
                name="bad", nodes=10, ppn=1,
                alpha_inter=1e-6, beta_inter=1e-9,
                dragonfly=DragonflySpec(nodes_per_group=4),
            )

    def test_describe_mentions_geometry(self):
        desc = frontier(8, 2).describe()
        assert "8 nodes" in desc and "2 ppn" in desc


class TestConfigs:
    def test_frontier_matches_paper_facts(self):
        """§VI-B: four NIC links per node, eight GPUs, dragonfly."""
        m = frontier(128, 8)
        assert m.nic_ports == 4
        assert m.ppn == 8
        assert m.dragonfly is not None
        assert m.intra_kind == "shared"
        # intranode links must be meaningfully faster (the k-ring premise)
        assert m.beta_intra < m.beta_inter / 2
        assert m.alpha_intra < m.alpha_inter / 2

    def test_polaris_matches_paper_facts(self):
        """§VI-B: two NIC ports, four fully connected GPUs."""
        m = polaris(128, 4)
        assert m.nic_ports == 2
        assert m.ppn == 4
        assert m.intra_kind == "dedicated"
        # the Fig. 11c premise: NVLink latency is NOT better than the NIC's
        assert m.alpha_intra >= m.alpha_inter * 0.8

    def test_reference_is_overhead_free(self):
        m = reference(16)
        assert m.nic_ports == 1
        assert m.injection_overhead == 0
        assert m.port_msg_overhead == 0
        assert m.dragonfly is None

    def test_invalid_ppn_rejected(self):
        with pytest.raises(MachineError):
            frontier(4, 3)
        with pytest.raises(MachineError):
            polaris(4, 8)

    def test_by_name_dispatch(self):
        assert by_name("frontier", 8, 1).name.startswith("frontier")
        assert by_name("polaris", 8, 1).name.startswith("polaris")
        assert by_name("reference", 8, 1).name.startswith("reference")
        with pytest.raises(MachineError):
            by_name("summit", 8, 1)
        with pytest.raises(MachineError):
            by_name("reference", 8, 2)
