"""Tests for the ablation studies (:mod:`repro.bench.ablations`) and the
rank-placement machinery they rely on.

The full ablations run in the benchmark suite; here they run at reduced
scale to keep the test suite fast, plus direct unit tests of placement.
"""

import pytest

from repro.bench.ablations import (
    ablation_bruck_vs_recmul,
    ablation_intranode_ratio,
    ablation_placement,
)
from repro.errors import MachineError
from repro.simnet.machines import frontier


class TestPlacement:
    def test_block_packs_consecutive_ranks(self):
        m = frontier(4, 2)
        assert [m.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_round_robin_disperses(self):
        m = frontier(4, 2).with_(placement="round_robin")
        assert [m.node_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_invalid_placement_rejected(self):
        with pytest.raises(MachineError, match="placement"):
            frontier(4, 2).with_(placement="random")

    def test_placement_changes_link_classification(self):
        from repro.core.registry import build_schedule
        from repro.simnet.simulate import traffic_summary

        sched = build_schedule("allgather", "kring", 8, k=2)
        block = traffic_summary(sched, frontier(4, 2), 1024)
        rr = traffic_summary(
            sched, frontier(4, 2).with_(placement="round_robin"), 1024
        )
        # neighbors are co-located under block placement, never under RR
        assert block.intra_messages > rr.intra_messages
        assert rr.intra_messages == 0


class TestAblationsSmall:
    def test_intranode_ratio_small(self):
        res = ablation_intranode_ratio(nodes=4, ppn=4, nbytes=1 << 20,
                                       speedups=(1.0, 4.0))
        assert res.all_ok, res.summary()

    def test_placement_small(self):
        # 8 nodes minimum: at 4 nodes, round-robin co-locates rank r with
        # r+4, turning inter-group rounds intranode and muddying the
        # contrast the ablation isolates.
        res = ablation_placement(nodes=8, ppn=4, nbytes=1 << 20,
                                 ks=(1, 2, 4, 8))
        assert res.all_ok, res.summary()

    def test_bruck_small(self):
        res = ablation_bruck_vs_recmul(ps=(8, 11), k=4)
        assert res.all_ok, res.summary()

    def test_results_render(self):
        res = ablation_bruck_vs_recmul(ps=(8,), k=2)
        text = res.summary()
        assert "recmul µs" in text
        assert res.exp_id == "ablation-bruck"
