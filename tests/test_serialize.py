"""Tests for schedule serialization (:mod:`repro.core.serialize`)."""

import json

import pytest

from repro.core.registry import COLLECTIVES, algorithms_for, build_schedule, info
from repro.core.serialize import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.core.validate import verify
from repro.errors import ScheduleError


def roundtrip(sched):
    return schedule_from_json(schedule_to_json(sched))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "coll,alg,k",
        [
            ("bcast", "knomial", 3),
            ("allreduce", "recursive_multiplying", 4),
            ("allgather", "kring", 4),
            ("allreduce", "reduce_scatter_allgather", None),
            ("alltoall", "bruck", 3),
            ("barrier", "k_dissemination", 3),
            ("bcast", "pipelined_chain", 4),
        ],
    )
    def test_structure_preserved(self, coll, alg, k):
        original = build_schedule(coll, alg, 9, k=k)
        restored = roundtrip(original)
        assert restored.collective == original.collective
        assert restored.algorithm == original.algorithm
        assert restored.nranks == original.nranks
        assert restored.nblocks == original.nblocks
        assert restored.root == original.root
        assert restored.k == original.k
        assert [p.steps for p in restored.programs] == [
            p.steps for p in original.programs
        ]

    def test_restored_schedule_still_verifies(self):
        restored = roundtrip(
            build_schedule("allreduce", "kring", 12, k=4)
        )
        verify(restored)

    def test_every_registered_algorithm_roundtrips(self):
        for coll in COLLECTIVES:
            for alg in algorithms_for(coll):
                entry = info(coll, alg)
                k = entry.default_k if entry.takes_k else None
                sched = build_schedule(coll, alg, 6, k=k)
                restored = roundtrip(sched)
                assert [p.steps for p in restored.programs] == [
                    p.steps for p in sched.programs
                ], (coll, alg)

    def test_serialization_is_deterministic(self):
        a = schedule_to_json(build_schedule("bcast", "binomial", 8))
        b = schedule_to_json(build_schedule("bcast", "binomial", 8))
        assert a == b

    def test_meta_tuples_become_lists(self):
        sched = build_schedule("allreduce", "recursive_multiplying", 9, k=3)
        payload = json.loads(schedule_to_json(sched))
        assert payload["meta"]["radices"] == [3, 3]


class TestFileIO:
    def test_save_load(self, tmp_path):
        sched = build_schedule("reduce", "knomial", 7, k=3, root=2)
        path = save_schedule(sched, tmp_path / "sched.json")
        restored = load_schedule(path)
        assert restored.describe() == sched.describe()


class TestRejection:
    def test_malformed_json(self):
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_json("{oops")

    def test_missing_programs(self):
        with pytest.raises(ScheduleError, match="programs"):
            schedule_from_json('{"format": 1}')

    def test_wrong_format_version(self):
        text = schedule_to_json(build_schedule("bcast", "binomial", 2))
        payload = json.loads(text)
        payload["format"] = 99
        with pytest.raises(ScheduleError, match="format"):
            schedule_from_json(json.dumps(payload))

    def test_unknown_op_kind(self):
        text = schedule_to_json(build_schedule("bcast", "binomial", 2))
        payload = json.loads(text)
        payload["programs"][0][0][0]["op"] = "teleport"
        with pytest.raises(ScheduleError, match="unknown op"):
            schedule_from_json(json.dumps(payload))

    def test_structurally_invalid_rejected_by_constructor(self):
        """Tampering with peers must fail Schedule's own validation."""
        text = schedule_to_json(build_schedule("bcast", "binomial", 2))
        payload = json.loads(text)
        payload["programs"][0][0][0]["peer"] = 7
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))
