"""Tests for the run-to-run variance model (:mod:`repro.simnet.noise`)."""

import math

import numpy as np
import pytest

from repro.errors import MachineError
from repro.simnet.noise import NoiseModel


class TestFactor:
    def test_deterministic_per_index_and_seed(self):
        m = NoiseModel(sigma=0.3, seed=5)
        assert m.factor(7) == m.factor(7)
        assert NoiseModel(sigma=0.3, seed=5).factor(7) == m.factor(7)

    def test_varies_across_indices(self):
        m = NoiseModel(sigma=0.3, seed=5)
        factors = {m.factor(i) for i in range(16)}
        assert len(factors) == 16

    def test_varies_across_seeds(self):
        a = NoiseModel(sigma=0.3, seed=1).factor(3)
        b = NoiseModel(sigma=0.3, seed=2).factor(3)
        assert a != b

    def test_sigma_zero_is_identity(self):
        m = NoiseModel(sigma=0.0, seed=9)
        assert all(m.factor(i) == 1.0 for i in range(10))

    def test_strictly_positive(self):
        m = NoiseModel(sigma=1.0, seed=0)
        assert all(m.factor(i) > 0 for i in range(200))

    def test_mean_one_construction(self):
        """The lognormal is centered so noise perturbs but does not bias:
        the sample mean over many messages must sit near 1."""
        m = NoiseModel(sigma=0.2, seed=3)
        samples = np.array([m.factor(i) for i in range(4000)])
        assert samples.mean() == pytest.approx(1.0, abs=0.02)

    def test_spread_grows_with_sigma(self):
        tight = np.array([NoiseModel(0.1, 1).factor(i) for i in range(500)])
        wide = np.array([NoiseModel(0.5, 1).factor(i) for i in range(500)])
        assert wide.std() > tight.std() * 2

    def test_log_normality_shape(self):
        """log(factors) should look normal with the requested σ."""
        sigma = 0.4
        m = NoiseModel(sigma, seed=11)
        logs = np.log([m.factor(i) for i in range(4000)])
        assert logs.std() == pytest.approx(sigma, rel=0.1)
        assert logs.mean() == pytest.approx(-0.5 * sigma**2, abs=0.03)

    def test_negative_sigma_rejected(self):
        with pytest.raises(MachineError):
            NoiseModel(sigma=-0.5)
