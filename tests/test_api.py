"""Tests for the public facade (:mod:`repro.api`) and the deprecated
pre-facade spellings."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
import repro.api as api
from repro.core.schedule import Schedule
from repro.errors import ExecutionError
from repro.runtime.executor import CollectiveRun


@pytest.fixture
def fresh_warnings():
    """Reset the warn-once registry so each test observes the warning."""
    saved = set(api._warned)
    api._warned.clear()
    yield
    api._warned.clear()
    api._warned.update(saved)


class TestBuild:
    def test_returns_schedule(self):
        sched = repro.build("allreduce", "recursive_multiplying", p=9, k=3)
        assert isinstance(sched, Schedule)
        assert sched.nranks == 9

    def test_p_is_keyword_only(self):
        with pytest.raises(TypeError):
            repro.build("allreduce", "recursive_multiplying", 9)


class TestSimulate:
    def test_keyword_nbytes(self):
        sched = repro.build("bcast", "knomial", p=8, k=2)
        res = repro.simulate(sched, repro.reference(8), nbytes=4096)
        assert res.time > 0

    def test_timeline_flag(self):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        res = repro.simulate(sched, repro.reference(4), nbytes=64,
                             timeline=True)
        assert res.timeline is not None

    def test_legacy_positional_nbytes_still_works(self):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        res = repro.simulate(sched, repro.reference(4), 64)
        assert res.time > 0


class TestExecute:
    def test_lockstep_backend(self):
        run = repro.execute("allreduce", "recursive_multiplying",
                            p=9, count=17, k=3)
        assert isinstance(run, CollectiveRun)
        assert np.array_equal(run.buffers[0], run.expected[0])

    def test_threaded_backend(self):
        run = repro.execute("bcast", "knomial", p=4, count=8, k=2,
                            backend="threaded")
        for buf in run.buffers:
            assert np.array_equal(buf, run.expected[0])

    def test_backends_agree(self):
        a = repro.execute("allreduce", "recursive_multiplying",
                          p=4, count=16, k=2, seed=7)
        b = repro.execute("allreduce", "recursive_multiplying",
                          p=4, count=16, k=2, seed=7, backend="threaded")
        for x, y in zip(a.buffers, b.buffers):
            assert np.array_equal(x, y)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="backend"):
            repro.execute("bcast", "knomial", p=4, count=8,
                          backend="quantum")

    def test_faults_require_threaded(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ExecutionError, match="threaded"):
            repro.execute("bcast", "knomial", p=4, count=8,
                          faults=FaultPlan(seed=0, drop_rate=0.1))

    def test_p_count_keyword_only(self):
        with pytest.raises(TypeError):
            repro.execute("bcast", "knomial", 4, 8)


class TestDeprecatedSpellings:
    def test_each_legacy_name_warns_exactly_once(self, fresh_warnings):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.build_schedule("bcast", "knomial", 4, k=2)
            repro.build_schedule("bcast", "knomial", 4, k=2)
            repro.run_collective("allreduce", "recursive_multiplying",
                                 4, 8, k=2)
            repro.run_collective("allreduce", "recursive_multiplying",
                                 4, 8, k=2)
        deps = [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 2
        assert "repro.build" in str(deps[0].message)
        assert "repro.execute" in str(deps[1].message)

    def test_legacy_execute_dispatches_on_schedule(self, fresh_warnings):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        buffers = [np.zeros(8, dtype=np.int64) for _ in range(4)]
        buffers[0][:] = 3
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = repro.execute(sched, buffers)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert all(np.array_equal(b, buffers[0]) for b in out)

    def test_legacy_run_collective_threaded(self, fresh_warnings):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bufs = repro.run_collective_threaded("bcast", "knomial",
                                                 4, 8, k=2)
        assert len(bufs) == 4
        assert any("backend='threaded'" in str(w.message) for w in caught)

    def test_implementation_modules_do_not_warn(self):
        from repro.runtime.executor import run_collective
        from repro.simnet import simulate as simnet_simulate
        from repro.simnet.machines import reference

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_collective("bcast", "knomial", 4, 8, k=2)
            sched = repro.build("bcast", "knomial", p=4, k=2)
            simnet_simulate(sched, reference(4), 64, collect_timeline=True)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_facade_calls_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sched = repro.build("bcast", "knomial", p=4, k=2)
            repro.simulate(sched, repro.reference(4), nbytes=64)
            repro.execute("bcast", "knomial", p=4, count=8, k=2)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
