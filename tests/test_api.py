"""Tests for the public facade (:mod:`repro.api`) and the deprecated
pre-facade spellings."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
import repro.api as api
from repro.core.schedule import Schedule
from repro.errors import ExecutionError
from repro.runtime.executor import CollectiveRun


@pytest.fixture
def fresh_warnings():
    """Reset the warn-once registry so each test observes the warning."""
    saved = set(api._warned)
    api._warned.clear()
    yield
    api._warned.clear()
    api._warned.update(saved)


class TestBuild:
    def test_returns_schedule(self):
        sched = repro.build("allreduce", "recursive_multiplying", p=9, k=3)
        assert isinstance(sched, Schedule)
        assert sched.nranks == 9

    def test_p_is_keyword_only(self):
        with pytest.raises(TypeError):
            repro.build("allreduce", "recursive_multiplying", 9)


class TestSimulate:
    def test_keyword_nbytes(self):
        sched = repro.build("bcast", "knomial", p=8, k=2)
        res = repro.simulate(sched, repro.reference(8), nbytes=4096)
        assert res.time > 0

    def test_timeline_flag(self):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        res = repro.simulate(sched, repro.reference(4), nbytes=64,
                             timeline=True)
        assert res.timeline is not None

    def test_positional_nbytes_removed(self):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        with pytest.raises(TypeError):
            repro.simulate(sched, repro.reference(4), 64)

    def test_machine_by_name(self):
        sched = repro.build("bcast", "knomial", p=8, k=2)
        named = repro.simulate(sched, "reference-8", nbytes=4096)
        spec = repro.simulate(sched, repro.reference(8), nbytes=4096)
        assert named.time == spec.time

    def test_engine_selection_surface(self):
        sched = repro.build("allgather", "ring", p=8)
        mat = repro.simulate(sched, repro.reference(8), nbytes=8192,
                             engine="materialized")
        col = repro.simulate(sched, repro.reference(8), nbytes=8192,
                             engine="collapsed")
        assert mat.engine == "materialized"
        assert col.engine == "collapsed"
        assert col.time == mat.time
        with pytest.raises(repro.MachineError, match="engine"):
            repro.simulate(sched, repro.reference(8), nbytes=8192,
                           engine="quantum")


class TestExecute:
    def test_lockstep_backend(self):
        run = repro.execute("allreduce", "recursive_multiplying",
                            p=9, count=17, k=3)
        assert isinstance(run, CollectiveRun)
        assert np.array_equal(run.buffers[0], run.expected[0])

    def test_threaded_backend(self):
        run = repro.execute("bcast", "knomial", p=4, count=8, k=2,
                            backend="threaded")
        for buf in run.buffers:
            assert np.array_equal(buf, run.expected[0])

    def test_backends_agree(self):
        a = repro.execute("allreduce", "recursive_multiplying",
                          p=4, count=16, k=2, seed=7)
        b = repro.execute("allreduce", "recursive_multiplying",
                          p=4, count=16, k=2, seed=7, backend="threaded")
        for x, y in zip(a.buffers, b.buffers):
            assert np.array_equal(x, y)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="backend"):
            repro.execute("bcast", "knomial", p=4, count=8,
                          backend="quantum")

    def test_faults_require_threaded(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(ExecutionError, match="threaded"):
            repro.execute("bcast", "knomial", p=4, count=8,
                          faults=FaultPlan(seed=0, drop_rate=0.1))

    def test_p_count_keyword_only(self):
        with pytest.raises(TypeError):
            repro.execute("bcast", "knomial", 4, 8)


class TestLegacyRemoval:
    """The PR 3-era once-warned shims are gone after their deprecation
    window; the implementation modules they delegated to still work."""

    def test_legacy_names_removed(self):
        for name in ("build_schedule", "run_collective",
                     "run_collective_threaded", "execute_threaded"):
            with pytest.raises(AttributeError):
                getattr(repro, name)
            assert name not in repro.__all__

    def test_execute_no_longer_dispatches_on_schedule(self):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        buffers = [np.zeros(8, dtype=np.int64) for _ in range(4)]
        with pytest.raises((TypeError, repro.ReproError)):
            repro.execute(sched, buffers)

    def test_implementation_modules_still_work(self):
        from repro.runtime.executor import run_collective
        from repro.runtime.threaded import run_collective_threaded

        run = run_collective("bcast", "knomial", 4, 8, k=2)
        assert np.array_equal(run.buffers[1], run.expected[1])
        bufs = run_collective_threaded("bcast", "knomial", 4, 8, k=2)
        assert len(bufs) == 4

    def test_collect_timeline_shim_warns_once(self, fresh_warnings):
        sched = repro.build("bcast", "knomial", p=4, k=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = repro.simulate(sched, repro.reference(4), nbytes=64,
                                 collect_timeline=True)
            repro.simulate(sched, repro.reference(4), nbytes=64,
                           collect_timeline=True)
        assert res.timeline is not None
        deps = [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1
        assert "timeline=" in str(deps[0].message)

    def test_implementation_modules_do_not_warn(self):
        from repro.runtime.executor import run_collective
        from repro.simnet import simulate as simnet_simulate
        from repro.simnet.machines import reference

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_collective("bcast", "knomial", 4, 8, k=2)
            sched = repro.build("bcast", "knomial", p=4, k=2)
            simnet_simulate(sched, reference(4), 64, collect_timeline=True)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_facade_calls_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sched = repro.build("bcast", "knomial", p=4, k=2)
            repro.simulate(sched, repro.reference(4), nbytes=64)
            repro.execute("bcast", "knomial", p=4, count=8, k=2)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
