"""Tests for the analytical cost models (:mod:`repro.models`)."""

import pytest

from repro.core.registry import build_schedule
from repro.errors import ModelError
from repro.models import (
    ModelParams,
    binomial_allgather_time,
    binomial_bcast_time,
    binomial_reduce_time,
    knomial_allreduce_time,
    knomial_bcast_time,
    knomial_reduce_time,
    kring_heterogeneous_time,
    kring_inter_group_data,
    kring_time,
    model_time,
    recursive_doubling_allreduce_time,
    recursive_multiplying_allgather_time,
    recursive_multiplying_allreduce_time,
    recursive_multiplying_round_time,
    ring_asymptotic_time,
    ring_inter_group_data,
    ring_time,
)
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

PR = ModelParams(alpha=2e-6, beta=1e-9, gamma=5e-10)


class TestKnomialModels:
    def test_binomial_is_knomial_k2(self):
        for n in (8, 1024, 1 << 20):
            assert binomial_bcast_time(n, 64, PR) == knomial_bcast_time(
                n, 64, 2, PR
            )

    def test_bcast_alpha_term_shrinks_with_k(self):
        """Eq. (3) at n=0: pure latency, fewer levels with larger radix."""
        t2 = knomial_bcast_time(0, 64, 2, PR)
        t8 = knomial_bcast_time(0, 64, 8, PR)
        t64 = knomial_bcast_time(0, 64, 64, PR)
        assert t2 > t8 > t64
        assert t64 == pytest.approx(PR.alpha)

    def test_bcast_beta_term_grows_with_k(self):
        """Large messages penalize wide radices: (k-1)·n·β per level."""
        n = 1 << 22
        assert knomial_bcast_time(n, 64, 32, PR) > knomial_bcast_time(
            n, 64, 2, PR
        )

    def test_reduce_includes_gamma(self):
        extra = knomial_reduce_time(1000, 16, 4, PR) - knomial_bcast_time(
            1000, 16, 4, PR
        )
        assert extra == pytest.approx(3 * 1000 * 2 * PR.gamma)

    def test_allreduce_exceeds_bcast(self):
        assert knomial_allreduce_time(1000, 16, 4, PR) > knomial_bcast_time(
            1000, 16, 4, PR
        )

    def test_p1_is_free_where_defined(self):
        assert binomial_allgather_time(100, 1, PR) == 0.0

    def test_bad_inputs(self):
        with pytest.raises(ModelError):
            knomial_bcast_time(8, 0, 2, PR)
        with pytest.raises(ModelError):
            knomial_bcast_time(-1, 8, 2, PR)
        with pytest.raises(ModelError):
            knomial_bcast_time(8, 8, 1, PR)


class TestRecursiveModels:
    def test_allgather_bandwidth_is_radix_free(self):
        """Eq. (6): only the α term depends on k."""
        n = 1 << 20
        t4 = recursive_multiplying_allgather_time(n, 64, 4, PR)
        t2 = recursive_multiplying_allgather_time(n, 64, 2, PR)
        assert t2 - t4 == pytest.approx(3 * PR.alpha)

    def test_allreduce_tradeoff(self):
        """Small n: fewer rounds win; large n: per-round fan-out hurts."""
        small = 8
        assert recursive_multiplying_allreduce_time(
            small, 64, 8, PR
        ) < recursive_multiplying_allreduce_time(small, 64, 2, PR)
        big = 1 << 22
        assert recursive_multiplying_allreduce_time(
            big, 64, 8, PR
        ) > recursive_multiplying_allreduce_time(big, 64, 2, PR)

    def test_round_time_geometric_growth(self):
        """Eq. (7): allgather round data grows by k each round."""
        r1 = recursive_multiplying_round_time(
            1 << 20, 27, 3, 1, PR, collective="allgather"
        )
        r2 = recursive_multiplying_round_time(
            1 << 20, 27, 3, 2, PR, collective="allgather"
        )
        assert (r2 - PR.alpha) == pytest.approx(3 * (r1 - PR.alpha))

    def test_round_out_of_range(self):
        with pytest.raises(ModelError):
            recursive_multiplying_round_time(8, 8, 2, 9, PR,
                                             collective="allgather")

    def test_doubling_is_k2(self):
        assert recursive_doubling_allreduce_time(
            512, 32, PR
        ) == recursive_multiplying_allreduce_time(512, 32, 2, PR)


class TestRingModels:
    def test_ring_time_p_minus_1_rounds(self):
        t = ring_time(1024, 8, PR)
        assert t == pytest.approx(7 * (PR.alpha + PR.beta * 1024 / 8))

    def test_allreduce_round_includes_gamma(self):
        diff = ring_time(800, 8, PR, collective="allreduce") - ring_time(
            800, 8, PR, collective="allgather"
        )
        assert diff == pytest.approx(7 * PR.gamma * 800 / 8)

    def test_asymptotic_limit(self):
        """Eq. (10): for huge n, T(n,p) → βn regardless of p."""
        n = 1 << 30
        full = ring_time(n, 128, PR)
        asym = ring_asymptotic_time(n, PR)
        assert full / asym == pytest.approx(1.0, rel=0.02)

    def test_homogeneous_kring_equals_ring_when_k_divides_p(self):
        """Eq. (12): the single-link-class k-ring model collapses."""
        for k in (1, 2, 4, 8):
            assert kring_time(4096, 8, k, PR) == pytest.approx(
                ring_time(4096, 8, PR)
            )

    def test_heterogeneous_kring_shows_the_benefit(self):
        intra = ModelParams(alpha=2e-7, beta=1e-10)
        inter = ModelParams(alpha=2e-6, beta=1e-9)
        het = kring_heterogeneous_time(1 << 20, 64, 8, intra, inter)
        hom = ring_time(1 << 20, 64, inter)
        assert het < hom

    def test_data_volume_formulas(self):
        """Eqs. (13)/(14) and their k=1 coincidence."""
        assert kring_inter_group_data(1000, 10, 5) == pytest.approx(
            2 * 1000 * 5 / 10
        )
        assert ring_inter_group_data(1000, 10) == pytest.approx(
            kring_inter_group_data(1000, 10, 1)
        )
        # monotone decreasing in k
        vols = [kring_inter_group_data(1 << 20, 64, k) for k in (1, 2, 4, 8)]
        assert vols == sorted(vols, reverse=True)

    def test_data_volume_domain(self):
        with pytest.raises(ModelError):
            kring_inter_group_data(8, 4, 5)


class TestDispatcher:
    def test_known_pairs_evaluate(self):
        assert model_time("bcast", "binomial", 64, 16, PR) > 0
        assert model_time("allreduce", "kring", 64, 16, PR, k=4) > 0

    def test_generalized_requires_k(self):
        with pytest.raises(ModelError, match="radix"):
            model_time("bcast", "knomial", 64, 16, PR)

    def test_unknown_pair(self):
        with pytest.raises(ModelError, match="no analytical model"):
            model_time("gather", "ring", 64, 16, PR)


class TestModelSimAgreement:
    """On the reference machine the simulator realizes the models'
    assumptions exactly — the quantitative backbone of the paper's 'models
    are fairly accurate' claim (§VI-F)."""

    @pytest.mark.parametrize(
        "collective,algorithm,k",
        [
            ("bcast", "binomial", None),
            ("bcast", "knomial", 4),
            ("reduce", "binomial", None),
            ("allgather", "recursive_doubling", None),
            ("allreduce", "recursive_doubling", None),
            ("allgather", "ring", None),
        ],
    )
    @pytest.mark.parametrize("nbytes", [8, 4096, 1 << 20])
    def test_exact_agreement(self, collective, algorithm, k, nbytes):
        # p = 64 is simultaneously a perfect binomial (2^6) and a perfect
        # 4-nomial (4^3) population — the models assume full trees.
        p = 64
        machine = reference(p)
        params = ModelParams(
            alpha=machine.alpha_inter,
            beta=machine.beta_inter,
            gamma=machine.gamma,
        )
        predicted = model_time(collective, algorithm, nbytes, p, params, k=k)
        simulated = simulate(
            build_schedule(collective, algorithm, p, k=k), machine, nbytes
        ).time
        assert simulated == pytest.approx(predicted, rel=0.02)
