"""Unit and integration tests for the self-healing layer (repro.recovery).

Covers the detector's edge cases (failure on the final step, simultaneous
multi-rank crashes, spurious suspicions cancelled by late heartbeats),
the blame semantics shared by both backends, the shrink/substitute
plumbing, and end-to-end recovery on both the threaded transport and the
simulator — including the bitwise-correctness contract over survivors.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ExecutionError, FaultError, RecoveryError
from repro.faults.plan import Crash, FaultPlan, LinkFault, RetryPolicy
from repro.recovery import (
    HeartbeatDetector,
    RecoveryPolicy,
    RecoveryRun,
    elect_root,
    execute_with_recovery,
    failures_from,
    normalize_policy,
    shrink_machine,
    shrink_plan,
    simulate_with_recovery,
    simulated_failures,
    substitute_plan,
    suspects_of,
)
from repro.simnet.machines import frontier, reference

#: Fast retry budget so detection happens in milliseconds, not seconds.
FAST = RetryPolicy(max_retries=3, rto=0.01, backoff=2.0, max_rto=0.04)


def crash_plan(rank: int = 1, step: int = 1, seed: int = 0) -> FaultPlan:
    return FaultPlan(seed=seed, crashes=(Crash(rank=rank, step=step),),
                     retry=FAST)


class TestHeartbeatDetector:
    def test_silence_past_timeout_is_suspected(self):
        det = HeartbeatDetector(4, timeout=1.0, now=0.0)
        det.heartbeat(0, 1.0)
        fresh = det.poll(1.6)
        assert [f.rank for f in fresh] == [1, 2, 3]
        assert det.alive() == (0,)
        # Polling again reports nothing new.
        assert det.poll(1.7) == []

    def test_late_heartbeat_cancels_spurious_suspicion(self):
        """The eventually-perfect compromise: suspicion is revocable."""
        det = HeartbeatDetector(2, timeout=1.0, now=0.0)
        assert [f.rank for f in det.poll(2.0)] == [0, 1]
        assert det.cancellations == 0
        # Rank 1 was merely slow; its next beat clears the suspicion.
        assert det.heartbeat(1, 2.1, step=3) is True
        assert det.cancellations == 1
        assert det.alive() == (1,)
        assert [f.rank for f in det.suspects()] == [0]
        # A beat from an unsuspected rank cancels nothing.
        assert det.heartbeat(1, 2.2) is False
        assert det.cancellations == 1

    def test_confirmed_failure_is_final(self):
        det = HeartbeatDetector(3, timeout=1.0, now=0.0)
        det.confirm(2, kind="crash", step=4, peer=0, now=5.0)
        # No heartbeat resurrects a confirmed failure.
        assert det.heartbeat(2, 6.0) is False
        assert [f.rank for f in det.confirmed()] == [2]
        assert det.alive() == (0, 1)
        # And poll never re-suspects it.
        assert all(f.rank != 2 for f in det.poll(100.0))

    def test_failure_during_final_step(self):
        """A rank that beat on every step but the last is still caught."""
        det = HeartbeatDetector(2, timeout=1.0, now=0.0)
        last_step = 7
        for step in range(last_step):
            det.heartbeat(0, 0.1 * step, step=step)
            det.heartbeat(1, 0.1 * step, step=step)
        # Rank 0 finishes the last step and keeps beating; rank 1 dies
        # executing it: silence, then a suspicion that remembers the last
        # step it was seen alive at.
        det.heartbeat(0, 1.7, step=last_step)
        (failure,) = det.poll(1.8)
        assert failure.rank == 1
        assert failure.kind == "heartbeat"
        assert failure.step == last_step - 1

    def test_simultaneous_multi_rank_crashes(self):
        det = HeartbeatDetector(6, timeout=1.0, now=0.0)
        det.confirm(4, kind="crash", step=2, now=3.0)
        det.confirm(1, kind="crash", step=2, now=3.0)
        assert [f.rank for f in det.confirmed()] == [1, 4]
        assert det.alive() == (0, 2, 3, 5)

    def test_constructor_and_range_validation(self):
        with pytest.raises(ExecutionError):
            HeartbeatDetector(0, timeout=1.0)
        with pytest.raises(ExecutionError):
            HeartbeatDetector(4, timeout=0.0)
        det = HeartbeatDetector(4, timeout=1.0)
        with pytest.raises(ExecutionError):
            det.heartbeat(4, 0.0)


class TestBlameSemantics:
    def test_crash_blames_the_crashed_rank(self):
        faults = [FaultError("died", kind="crash", rank=3, step=2)]
        assert suspects_of(faults) == (3,)
        (failure,) = failures_from(faults)
        assert (failure.rank, failure.kind, failure.step) == (3, "crash", 2)

    def test_exhausted_retries_blame_the_peer(self):
        """ULFM: a dead link is indistinguishable from a dead sender."""
        faults = [FaultError("gave up", kind="retries_exhausted",
                             rank=5, step=1, peer=0, retries=4)]
        assert suspects_of(faults) == (0,)
        (failure,) = failures_from(faults, detected_at=9.0)
        assert failure.rank == 0
        assert failure.peer == 5  # the observer
        assert failure.detected_at == 9.0

    def test_first_observation_wins_and_dedup(self):
        faults = [
            FaultError("a", kind="crash", rank=2, step=1),
            FaultError("b", kind="timeout", rank=2, step=3),
            FaultError("c", kind="crash", rank=1, step=1),
        ]
        assert suspects_of(faults) == (1, 2)
        failures = failures_from(faults)
        assert [f.rank for f in failures] == [1, 2]
        assert failures[1].kind == "crash"  # not the later timeout

    def test_simulated_detector_matches_plan(self):
        sched = repro.build("allreduce", "knomial", p=8, k=2)
        failures, degraded = simulated_failures(sched, crash_plan(rank=1))
        assert [f.rank for f in failures] == [1]
        assert failures[0].kind == "crash"
        assert degraded == ()

    def test_simulated_detector_reports_degraded_links(self):
        sched = repro.build("allreduce", "knomial", p=8, k=2)
        plan = FaultPlan(
            seed=0,
            links=(LinkFault(0, 1, delay_factor=5.0),
                   LinkFault(0, 7, drop_rate=1.0)),
            retry=FAST,
        )
        failures, degraded = simulated_failures(sched, plan)
        # The slow link is degraded, not dead; the 100%-loss link kills
        # messages only if the schedule uses that edge.
        assert [(d.src, d.dst) for d in degraded] == [(0, 1)]
        assert all(f.kind in ("crash", "retries_exhausted")
                   for f in failures)


class TestShrinkPlumbing:
    def test_shrink_plan_remaps_and_drops(self):
        plan = FaultPlan(
            seed=3,
            drop_rate=0.1,
            crashes=(Crash(rank=1, step=0), Crash(rank=5, step=2)),
            stragglers=(),
            links=(LinkFault(1, 2, drop_rate=0.5),
                   LinkFault(3, 5, dup_rate=0.2)),
        )
        # Rank 1 died; survivors renumber 0,2,3,4,5 -> 0,1,2,3,4.
        shrunk = shrink_plan(plan, [0, 2, 3, 4, 5])
        assert shrunk.seed == 3 and shrunk.drop_rate == 0.1
        assert [(c.rank, c.step) for c in shrunk.crashes] == [(4, 2)]
        assert [(lf.src, lf.dst) for lf in shrunk.links] == [(2, 4)]
        assert shrink_plan(None, [0, 1]) is None

    def test_substitute_plan_keeps_rank_space(self):
        plan = FaultPlan(
            seed=0,
            crashes=(Crash(rank=1, step=1), Crash(rank=3, step=2)),
            links=(LinkFault(1, 2, drop_rate=1.0),),
        )
        # A spare adopted slot 1: its crash and its link faults are spent;
        # slot 3's crash still pends, unrenumbered.
        sub = substitute_plan(plan, [1])
        assert [(c.rank, c.step) for c in sub.crashes] == [(3, 2)]
        assert sub.links == ()
        assert substitute_plan(None, [0]) is None

    def test_elect_root(self):
        assert elect_root(2, [0, 2, 3]) == (1, True)
        assert elect_root(1, [0, 2, 3]) == (0, False)

    def test_shrink_machine_keeps_fabric(self):
        m = reference(8)
        assert shrink_machine(m, 8) is m
        assert shrink_machine(m, 7).nranks == 7
        # No dragonfly layer: whole-node shrink keeps the ppn geometry.
        flat = m.with_(nodes=4, ppn=2)
        shrunk = shrink_machine(flat, 6)
        assert (shrunk.nranks, shrunk.ppn) == (6, 2)
        # Frontier's dragonfly groups stop filling after the shrink, so
        # it falls back to the conservative all-internode layout.
        packed = frontier(4, 2)  # 8 ranks, ppn=2, 4-node groups
        shrunk = shrink_machine(packed, 6)
        assert (shrunk.nranks, shrunk.ppn) == (6, 1)
        assert shrunk.dragonfly is None
        assert shrink_machine(packed, 7).nranks == 7  # odd -> ppn=1 path

    def test_policy_validation_and_normalize(self):
        assert normalize_policy(None) is None
        assert normalize_policy("shrink").mode == "shrink"
        p = RecoveryPolicy(mode="spare", spares=4)
        assert normalize_policy(p) is p
        with pytest.raises(ExecutionError):
            RecoveryPolicy(mode="resurrect")
        with pytest.raises(ExecutionError):
            RecoveryPolicy(max_rounds=0)
        with pytest.raises(ExecutionError):
            RecoveryPolicy(mode="spare", spares=-1)


class TestThreadedRecovery:
    def test_shrink_heals_a_crash_bitwise_exact(self):
        run = execute_with_recovery(
            "allreduce", "knomial", p=8, count=64, k=2,
            recovery="shrink", faults=crash_plan(rank=1), timeout=5.0,
        )
        assert isinstance(run, RecoveryRun)
        assert run.report.recovered
        assert run.report.nrounds == 2
        assert run.slots == (0, 2, 3, 4, 5, 6, 7)
        assert run.slots == run.survivors
        # Bitwise-correct over the survivor group: the shrunk collective
        # over the survivors' original inputs, to the last bit.
        for local in range(run.schedule.nranks):
            assert np.array_equal(run.buffers[local], run.expected[local])
        expected_sum = sum(run.inputs[local] for local in
                           range(run.schedule.nranks))
        assert np.array_equal(run.buffers[0], expected_sum)

    def test_spare_substitutes_and_keeps_group_size(self):
        run = execute_with_recovery(
            "allreduce", "knomial", p=8, count=32, k=2,
            recovery=RecoveryPolicy(mode="spare", spares=2),
            faults=crash_plan(rank=1), timeout=5.0,
        )
        assert run.report.recovered
        assert run.slots == tuple(range(8))  # same contributors
        assert run.hosts == (0, 8, 2, 3, 4, 5, 6, 7)  # fresh process
        for local in range(8):
            assert np.array_equal(run.buffers[local], run.expected[local])

    def test_abort_policy_raises_with_report(self):
        with pytest.raises(RecoveryError) as info:
            execute_with_recovery(
                "allreduce", "knomial", p=8, count=32, k=2,
                recovery="abort", faults=crash_plan(rank=1), timeout=5.0,
            )
        report = info.value.report
        assert report is not None and not report.recovered
        assert report.nrounds == 1
        assert [f.rank for f in report.failures] == [1]

    def test_dead_bcast_root_unrecoverable_by_shrink(self):
        with pytest.raises(RecoveryError, match="spare"):
            execute_with_recovery(
                "bcast", "knomial", p=8, count=32, k=2,
                recovery="shrink", faults=crash_plan(rank=0, step=1),
                timeout=5.0,
            )

    def test_dead_bcast_root_healed_by_spare(self):
        run = execute_with_recovery(
            "bcast", "knomial", p=8, count=32, k=2,
            recovery=RecoveryPolicy(mode="spare", spares=1),
            faults=crash_plan(rank=0, step=1), timeout=5.0,
        )
        assert run.report.recovered
        assert run.hosts[0] == 8  # the spare adopted the root's slot
        for local in range(8):
            assert np.array_equal(run.buffers[local], run.expected[local])

    def test_facade_execute_recovery_kwarg(self):
        run = repro.execute(
            "allreduce", "knomial", p=8, count=64, k=2,
            backend="threaded", faults=crash_plan(rank=1),
            recovery="shrink", timeout=5.0,
        )
        assert isinstance(run, RecoveryRun)
        assert run.report.recovered

    def test_clean_run_is_one_round(self):
        run = execute_with_recovery(
            "allreduce", "knomial", p=8, count=64, k=2,
            recovery="shrink", timeout=5.0,
        )
        assert run.report.recovered
        assert run.report.nrounds == 1
        assert run.report.time_to_recovery == 0.0


class TestSimRecovery:
    def test_crash_heals_and_charges_detection(self):
        machine = reference(8)
        res = simulate_with_recovery(
            "allreduce", "knomial", machine, 65536, k=2,
            recovery="shrink", faults=crash_plan(rank=1),
        )
        assert res.recovered
        assert res.rounds == 2
        assert res.survivors == (0, 2, 3, 4, 5, 6, 7)
        assert res.time_to_recovery_us > 0
        assert res.time_us > res.post_recovery_us
        # Two distinct schedules were built: p=8 then p=7.
        fps = res.report.fingerprints()
        assert len(fps) == 2 and fps[0] != fps[1]

    def test_unrecoverable_surrenders_without_raising(self):
        res = simulate_with_recovery(
            "bcast", "knomial", reference(8), 65536, k=2,
            recovery="shrink", faults=crash_plan(rank=0, step=1),
        )
        assert not res.recovered
        assert res.result is None

    def test_abort_policy_surrenders(self):
        res = simulate_with_recovery(
            "allreduce", "knomial", reference(8), 65536, k=2,
            recovery="abort", faults=crash_plan(rank=1),
        )
        assert not res.recovered and res.rounds == 1

    def test_spare_mode_keeps_size(self):
        res = simulate_with_recovery(
            "allreduce", "knomial", reference(8), 65536, k=2,
            recovery=RecoveryPolicy(mode="spare", spares=8),
            faults=crash_plan(rank=1),
        )
        assert res.recovered
        assert res.survivors == (0, 8, 2, 3, 4, 5, 6, 7)
        fps = res.report.fingerprints()
        assert len(fps) == 2 and fps[0] == fps[1]  # same p, same schedule
