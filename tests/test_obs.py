"""Unit tests for the observability layer (:mod:`repro.obs`):
metrics registry, span tracer, Perfetto export, and the shared
``to_dict`` stats protocol."""

from __future__ import annotations

import json

import pytest

from repro.core.cache import CacheStats, ScheduleCache
from repro.bench.sweep import SweepPoint, SweepStats, run_sweep, sweep_stats
from repro.errors import ObsError
from repro.obs import OBS, Obs, get_obs
from repro.obs.export import to_perfetto
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracing import SimTimeline, TraceContext, Tracer
from repro.simnet import reference, simulate
from repro.simnet.trace import TimelineStats, timeline_stats
from repro.core.registry import build_schedule


@pytest.fixture(autouse=True)
def clean_global_obs():
    """Every test starts and ends with the global scope off and empty."""
    OBS.disable()
    OBS.reset()
    yield
    OBS.disable()
    OBS.reset()


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert reg.snapshot().value("requests_total") == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="must be >= 0"):
            reg.counter("x_total").inc(-1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", cache="a").inc()
        reg.counter("hits_total", cache="b").inc(2)
        snap = reg.snapshot()
        assert snap.value("hits_total", cache="a") == 1
        assert snap.value("hits_total", cache="b") == 2
        assert snap.total("hits_total") == 3

    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total") is not reg.counter("a_total", x="1")


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert reg.snapshot().value("depth") == 12

    def test_set_max_keeps_peak(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak")
        g.set_max(3)
        g.set_max(9)
        g.set_max(5)
        assert reg.snapshot().value("peak") == 9


class TestHistograms:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()
        series = snap.get("lat_seconds")
        assert series.count == 4
        assert series.value == pytest.approx(55.55)  # histogram sum
        # 50.0 overflows the last bucket; it is in count, not counts
        assert sum(series.counts) == 3

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestSnapshot:
    def test_delta_subtracts_counters(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        c.inc(5)
        before = reg.snapshot()
        c.inc(3)
        after = reg.snapshot()
        assert after.delta(before).value("n_total") == 3

    def test_reset_zeroes_but_keeps_handles_live(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        c.inc(7)
        reg.reset()
        assert reg.snapshot().value("n_total") == 0
        c.inc()  # the pre-reset handle still records
        assert reg.snapshot().value("n_total") == 1

    def test_merge_adds_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        a.gauge("peak").set(10)
        b.counter("n_total").inc(3)
        b.gauge("peak").set(4)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap.value("n_total") == 5
        assert snap.value("peak") == 10

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("n_total", kind="x").inc(2)
        doc = json.loads(reg.snapshot().to_json())
        assert doc  # non-empty, JSON-serializable

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_n_total", cache="s").inc(2)
        reg.gauge("repro_depth").set(3)
        reg.histogram("repro_lat_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.snapshot().to_prometheus()
        assert 'repro_n_total{cache="s"} 2' in text
        assert "# TYPE repro_n_total counter" in text
        assert "repro_depth 3" in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert "repro_lat_seconds_count 1" in text


class TestTracer:
    def test_span_nesting_records_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].t1 >= spans["inner"].t0

    def test_attach_timeline_requires_open_span(self):
        tr = Tracer()
        with pytest.raises(ObsError, match="span"):
            tr.attach_timeline(((0, 1, 8, 0.0, 1.0, "intra"),), label="x")

    def test_adopt_rewrites_foreign_trace(self):
        parent = Tracer()
        with parent.span("sweep"):
            ctx = TraceContext(
                trace_id=parent.trace_id,
                parent_span_id=parent.current_span_id(),
            )
        child = Tracer(ctx)
        with child.span("work"):
            pass
        parent.adopt(child.spans(), child.timelines())
        names = [s.name for s in parent.spans()]
        assert "work" in names
        assert all(s.trace_id == parent.trace_id for s in parent.spans())


class TestObsScope:
    def test_disabled_span_is_shared_noop(self):
        o = Obs()
        assert o.span("a") is o.span("b")

    def test_get_obs_resolves_default_and_explicit(self):
        mine = Obs()
        assert get_obs(None) is OBS
        assert get_obs(mine) is mine

    def test_global_identity_stable_across_toggle(self):
        before = id(OBS)
        OBS.enable()
        OBS.disable()
        assert id(OBS) == before

    def test_write_metrics_writes_json_and_prom(self, tmp_path):
        o = Obs(enabled=True)
        o.metrics.counter("repro_x_total").inc()
        path = o.write_metrics(tmp_path / "m.json")
        assert json.loads(path.read_text())
        assert "repro_x_total 1" in (tmp_path / "m.prom").read_text()


class TestPerfettoExport:
    def _traced(self):
        o = Obs(enabled=True)
        sched = build_schedule("allreduce", "recursive_multiplying", 8, k=2)
        res = simulate(sched, reference(8), 4096,
                       collect_timeline=True, obs=o)
        return o, res

    def test_host_and_sim_tracks_present(self):
        o, res = self._traced()
        doc = o.trace_dict()
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        assert 1 in pids            # host spans
        assert 1000 in pids         # first simulated timeline
        sim_events = [e for e in events
                      if e["pid"] == 1000 and e["ph"] == "X"]
        assert len(sim_events) == res.messages

    def test_sim_track_anchored_inside_host_span(self):
        o, _ = self._traced()
        doc = o.trace_dict()
        host = [e for e in doc["traceEvents"]
                if e["pid"] == 1 and e["ph"] == "X"
                and e["name"] == "simulate"]
        sim = [e for e in doc["traceEvents"]
               if e["pid"] == 1000 and e["ph"] == "X"]
        assert host and sim
        assert min(e["ts"] for e in sim) >= host[0]["ts"]

    def test_metadata_events_name_tracks(self):
        o, _ = self._traced()
        meta = [e for e in o.trace_dict()["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_write_trace_is_loadable_json(self, tmp_path):
        o, _ = self._traced()
        path = o.write_trace(tmp_path / "t.json", metadata={"x": 1})
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_export_empty_scope(self):
        events = to_perfetto((), ())["traceEvents"]
        assert not [e for e in events if e["ph"] != "M"]


class TestStatsProtocol:
    """CacheStats / SweepStats / TimelineStats share frozen + to_dict."""

    def test_cache_stats(self):
        cache = ScheduleCache(maxsize=4)
        cache.get_or_build("bcast", "binomial", 4)
        cache.get_or_build("bcast", "binomial", 4)
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        d = stats.to_dict()
        assert d["hits"] == 1 and d["misses"] == 1
        with pytest.raises(AttributeError):
            stats.hits = 99  # frozen

    def test_sweep_stats(self):
        points = [SweepPoint("bcast", "binomial", n) for n in (64, 64, 128)]
        results = run_sweep(points, reference(4))
        stats = sweep_stats(results)
        assert isinstance(stats, SweepStats)
        d = stats.to_dict()
        assert d["points"] == 3 and d["errors"] == 0
        assert set(d) >= {"build_hit_rate", "sim_memo_rate"}

    def test_timeline_stats(self):
        sched = build_schedule("bcast", "binomial", 4)
        res = simulate(sched, reference(4), 64, collect_timeline=True)
        stats = timeline_stats(res, 4)
        assert isinstance(stats, TimelineStats)
        d = stats.to_dict()
        assert d["makespan"] == res.time
        assert json.dumps(d)  # JSON-serializable

    def test_all_to_dicts_are_plain_json(self):
        for d in (
            CacheStats(hits=1, misses=2, evictions=0).to_dict(),
            SweepStats(points=1, errors=0, build_hits=1,
                       sim_hits=0).to_dict(),
        ):
            assert json.loads(json.dumps(d)) == d
