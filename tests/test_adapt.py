"""The online adaptive selection loop (:mod:`repro.adapt`).

Three layers of coverage:

* unit tests of the :class:`HealthMonitor` (debounce, re-anchoring,
  telemetry set-changes) and the :class:`OnlineSelector` (hysteresis,
  switch cost, cooldown, shrink, the *keep → retune → shrink → abort*
  ladder);
* integration through :func:`repro.execute(adapt=...)` on both backends,
  including the abort-falls-back-to-caller's-choice contract;
* the golden-pinned flap scenario: the selector must converge to the
  oracle's post-change winner within bounded rounds, with cumulative
  regret strictly below the static baseline, bit-identical at any
  ``jobs`` — the repo's headline adaptivity claim, pinned to the digit.
"""

import json

import numpy as np
import pytest

import repro
from repro.adapt import (
    DEFAULT_POLICY,
    AdaptPolicy,
    AdaptScenario,
    AdaptiveRun,
    HealthMonitor,
    OnlineSelector,
    get_scenario,
    run_adaptive,
)
from repro.adapt.monitor import ConditionChange
from repro.bench.adapt import run_adapt_bench
from repro.errors import AdaptError, ExecutionError
from repro.faults.plan import FaultPhase, FaultPlan, PhasedFaultPlan, Straggler
from repro.recovery.detect import LinkDegraded
from repro.selection.table import Choice
from repro import cli


# ---------------------------------------------------------------------------
# HealthMonitor
# ---------------------------------------------------------------------------


def _event(kind="degrade"):
    return ConditionChange(
        round_index=0, kind=kind, ratio=2.0, observed=2.0, baseline=1.0
    )


def test_monitor_first_observation_anchors():
    mon = HealthMonitor()
    assert mon.baseline is None
    assert mon.observe(0, 1.0) is None
    assert mon.baseline == 1.0


def test_monitor_fires_after_full_window_and_reanchors():
    mon = HealthMonitor(threshold=1.25, window=2)
    mon.observe(0, 1.0)
    assert mon.observe(1, 2.0) is None  # first outlier: debounced
    event = mon.observe(2, 2.0)
    assert event is not None and event.kind == "degrade"
    assert event.ratio == 2.0
    assert mon.baseline == 2.0  # re-anchored to the new regime
    # A second change is detectable from the new baseline.
    mon.observe(3, 5.0)
    second = mon.observe(4, 5.0)
    assert second is not None and second.kind == "degrade"


def test_monitor_single_outliers_never_fire_or_poison_baseline():
    mon = HealthMonitor(threshold=1.25, window=2, alpha=0.3)
    mon.observe(0, 1.0)
    for r in range(1, 9):
        # Alternate outlier / in-band: the streak never completes.
        assert mon.observe(r, 2.0 if r % 2 else 1.0) is None
    # Outliers were withheld from the EWMA, so the baseline stayed put.
    assert mon.baseline == 1.0


def test_monitor_improve_event():
    mon = HealthMonitor(threshold=1.25, window=2)
    mon.observe(0, 1.0)
    mon.observe(1, 0.5)
    event = mon.observe(2, 0.5)
    assert event is not None and event.kind == "improve"


def test_monitor_telemetry_link_and_heal():
    mon = HealthMonitor()
    deg = (LinkDegraded(0, 1, delay_factor=4.0),)
    assert mon.note_degraded(0, ()) is None
    event = mon.note_degraded(1, deg)
    assert event is not None and event.kind == "link"
    assert "0->1" in event.detail
    assert mon.note_degraded(2, deg) is None  # unchanged set: quiet
    heal = mon.note_degraded(3, ())
    assert heal is not None and heal.kind == "heal"


def test_monitor_validation():
    with pytest.raises(AdaptError):
        HealthMonitor(alpha=0.0)
    with pytest.raises(AdaptError):
        HealthMonitor(threshold=1.0)
    with pytest.raises(AdaptError):
        HealthMonitor(window=0)
    with pytest.raises(AdaptError):
        HealthMonitor().observe(0, 0.0)


# ---------------------------------------------------------------------------
# OnlineSelector
# ---------------------------------------------------------------------------

A = Choice("recursive_doubling", None)
B = Choice("knomial", 4)
C = Choice("knomial", 2)


def test_selector_warm_start_and_pruning():
    policy = AdaptPolicy(max_candidates=2)
    sel = OnlineSelector({A: 3.0, B: 1.0, C: 2.0}, policy=policy)
    assert sel.current == B  # best prior
    assert set(sel.arms) == {B, C}  # worst prior pruned away
    assert sel.mean(B) == 1.0


def test_selector_validation():
    with pytest.raises(AdaptError):
        OnlineSelector({})
    with pytest.raises(AdaptError):
        OnlineSelector({A: 0.0})
    sel = OnlineSelector({A: 1.0})
    with pytest.raises(AdaptError):
        sel.observe(B, 1.0)
    with pytest.raises(AdaptError):
        sel.observe(A, -1.0)


def test_hysteresis_blocks_marginal_switch_then_allows_clear_one():
    policy = AdaptPolicy(explore=0.0, hysteresis=0.5, cooldown=0)
    sel = OnlineSelector({A: 1.0, B: 1.01}, policy=policy)
    assert sel.current == A
    sel.observe(A, 2.0)  # mean(A) = 1.5; margin 0.49 < needed 0.75
    arm, switched = sel.pick()
    assert arm == A and not switched
    sel.observe(A, 6.0)  # mean(A) = 3.0; margin 1.99 > needed 1.5
    arm, switched = sel.pick()
    assert arm == B and switched
    assert sel.switches == 1


def test_switch_cost_gates_the_pick():
    policy = AdaptPolicy(explore=0.0, hysteresis=0.0, switch_cost=10.0,
                         cooldown=0)
    sel = OnlineSelector({A: 1.0, B: 2.0}, policy=policy)
    sel.observe(A, 8.0)  # mean(A) = 4.5: B better by 2.5, cost is 10
    arm, switched = sel.pick()
    assert arm == A and not switched


def test_cooldown_holds_the_new_arm():
    policy = AdaptPolicy(explore=0.0, hysteresis=0.0, cooldown=2)
    sel = OnlineSelector({A: 1.0, B: 1.5}, policy=policy)
    sel.observe(A, 10.0)
    arm, switched = sel.pick()
    assert arm == B and switched
    sel.observe(B, 100.0)  # B is terrible, but cooldown holds it
    assert sel.pick() == (B, False)
    assert sel.pick() == (B, False)
    arm, switched = sel.pick()  # cooldown expired: back to A
    assert arm == A and switched


def test_on_change_reopens_exploration():
    sel = OnlineSelector({A: 1.0})
    for _ in range(5):
        sel.observe(A, 1.0)
    sel.on_change(_event())
    sel.observe(A, 3.0)  # count reset to 1: next obs carries half weight
    assert sel.mean(A) == 2.0


def test_retune_reseeds_live_arms_only():
    sel = OnlineSelector({A: 1.0, B: 2.0})
    sel.retune({A: 5.0})
    assert sel.mean(A) == 5.0
    assert sel.mean(B) == 2.0  # absent from the new priors: kept
    with pytest.raises(AdaptError):
        sel.retune({A: 0.0})


def test_ladder_escalates_keep_shrink_abort():
    policy = AdaptPolicy(patience=2, shrink_ratio=2.0, abort_ratio=10.0,
                         shrink_to=1)
    sel = OnlineSelector({A: 1.0, B: 1.5, C: 2.0}, policy=policy)
    assert sel.ladder_action(3.0, None) == "keep"  # streak of 1
    assert sel.ladder_action(3.0, None) == "shrink"  # patience reached
    assert len(sel.arms) == 1 and sel.current in sel.arms
    assert sel.ladder_action(3.0, None) == "keep"  # shrinks only once
    assert sel.ladder_action(11.0, None) == "keep"  # abort streak of 1
    assert sel.ladder_action(11.0, None) == "abort"
    # An in-band round clears both streaks.
    sel2 = OnlineSelector({A: 1.0}, policy=policy)
    assert sel2.ladder_action(11.0, None) == "keep"
    assert sel2.ladder_action(1.0, None) == "keep"
    assert sel2.ladder_action(11.0, None) == "keep"  # streak restarted


def test_ladder_event_asks_for_retune():
    sel = OnlineSelector({A: 1.0})
    assert sel.ladder_action(1.0, _event("link")) == "retune"


def test_shrink_always_keeps_incumbent():
    policy = AdaptPolicy(explore=0.0, hysteresis=0.0, cooldown=0,
                         shrink_to=1)
    sel = OnlineSelector({A: 1.0, B: 1.5, C: 2.0}, policy=policy)
    sel.observe(A, 100.0)  # incumbent A now has the worst mean
    dropped = sel.shrink()
    assert sel.current == A and A in sel.arms
    assert len(dropped) == 2


def test_policy_validation():
    with pytest.raises(AdaptError):
        AdaptPolicy(hysteresis=-0.1)
    with pytest.raises(AdaptError):
        AdaptPolicy(shrink_ratio=4.0, abort_ratio=3.0)
    with pytest.raises(AdaptError):
        AdaptPolicy(patience=0)
    with pytest.raises(AdaptError):
        AdaptPolicy(max_candidates=0)


# ---------------------------------------------------------------------------
# The loop: golden convergence, invariance, abort
# ---------------------------------------------------------------------------


def test_flap_convergence_golden(golden, small_frontier):
    """The headline claim, pinned: under the flapping-NIC scenario the
    selector reaches the oracle's post-change winner within the gate's
    bound after *both* changes (degrade and heal), with cumulative
    regret strictly below the static baseline, and the whole trail
    bit-identical when the underlying sweeps fan out to 2 workers."""
    doc = run_adapt_bench(small_frontier, scenario="flap", check_jobs=2)
    assert doc["jobs_invariant"]
    assert doc["adapted_all_changes"]
    assert doc["max_time_to_adapt"] <= 4
    assert doc["regret"] < doc["static_regret"]
    assert not doc["aborted"]
    golden("adapt_convergence").check(doc)


def test_calm_scenario_never_switches(small_frontier):
    sc = get_scenario("calm", small_frontier.nranks)
    report = run_adaptive("allreduce", small_frontier, 65536,
                          rounds=sc.rounds)
    assert report.switches == 0
    assert report.regret == 0.0
    assert report.static_regret == 0.0
    assert report.final_choice == Choice(report.static_algorithm,
                                         report.static_k)
    assert all(r.action == "keep" for r in report.records)


def test_run_adaptive_validation(small_frontier):
    with pytest.raises(AdaptError):
        run_adaptive("allreduce", small_frontier, 65536, rounds=0)
    with pytest.raises(AdaptError):
        get_scenario("nope", small_frontier.nranks)


def _doom_scenario(nranks):
    """Every rank straggling 200x from round 0: past the abort ratio."""
    plan = FaultPlan(
        seed=0,
        stragglers=tuple(
            Straggler(rank=r, factor=200.0) for r in range(nranks)
        ),
    )
    return AdaptScenario(
        name="doom",
        description="hopeless fabric: every rank 200x slow",
        rounds=10,
        phased=PhasedFaultPlan((FaultPhase(0, plan, "doom"),)),
    )


def test_hopeless_fabric_aborts(tiny_frontier):
    sc = _doom_scenario(tiny_frontier.nranks)
    report = run_adaptive("allreduce", tiny_frontier, 4096,
                          rounds=sc.rounds, phased=sc.phased)
    assert report.aborted
    assert report.records[-1].action == "abort"
    assert len(report.records) < sc.rounds  # stopped early, no raise


# ---------------------------------------------------------------------------
# execute(adapt=...) integration
# ---------------------------------------------------------------------------


def test_execute_adapt_lockstep():
    run = repro.execute("allreduce", "recursive_doubling", p=8, count=16,
                        adapt="calm")
    assert isinstance(run, AdaptiveRun)
    assert run.choice == run.report.final_choice
    assert all(
        np.array_equal(run.run.buffers[r], run.run.expected[r])
        for r in range(8)
    )


def test_execute_adapt_threaded():
    run = repro.execute("allreduce", "recursive_doubling", p=8, count=16,
                        backend="threaded", adapt="calm")
    assert isinstance(run, AdaptiveRun)
    assert np.array_equal(run.run.buffers[0], run.run.expected[0])


def test_execute_adapt_policy_override():
    run = repro.execute("allreduce", "recursive_doubling", p=8, count=8,
                        adapt="calm",
                        adapt_policy=AdaptPolicy(max_candidates=2))
    assert run.report.policy.max_candidates == 2


def test_execute_adapt_abort_falls_back_to_callers_choice():
    run = repro.execute("allreduce", "recursive_doubling", p=8, count=8,
                        adapt=_doom_scenario(8))
    assert run.report.aborted
    assert run.choice == Choice("recursive_doubling", None)
    assert np.array_equal(run.run.buffers[0], run.run.expected[0])


def test_execute_machine_without_adapt_raises():
    with pytest.raises(ExecutionError):
        repro.execute("allreduce", "recursive_doubling", p=8, count=8,
                      machine="dragonfly-1024")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_adapt_smoke(tmp_path, capsys):
    out = tmp_path / "adapt_report.json"
    rc = cli.main_adapt(["--scenario", "calm", "--nodes", "8",
                         "-o", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["switches"] == 0 and not doc["aborted"]
    stdout = capsys.readouterr().out
    assert "0 switch(es)" in stdout


def test_cli_adapt_bad_machine_exits_2(capsys):
    assert cli.main_adapt(["--machine", "nope-8"]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_adapt_bad_policy_exits_2(capsys):
    assert cli.main_adapt(["--patience", "0"]) == 2
    assert "error:" in capsys.readouterr().err
