"""Tests for the lazy generator schedules (:mod:`repro.core.lazy`).

A :class:`~repro.core.lazy.LazySchedule` is a closed-form description of
a rank-symmetric schedule: per-rank tables are generated on demand, the
class partition is a single class by construction, and ``materialize()``
recovers the explicit registry schedule when small enough.  The tests
pin (a) the lookup scope, (b) generator faithfulness — the generated
per-rank programs match the registry builder's op for op, and the
simulated costs match bit for bit through both engines — and (c) the
materialization guard that keeps "expand 4M ops" requests from defeating
the point.
"""

import pytest

from repro.core.lazy import LAZY_FAMILIES, _MATERIALIZE_MAX_OPS, lookup
from repro.core.registry import build_schedule
from repro.core.schedule import RecvOp, SendOp
from repro.errors import ScheduleError
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate


class TestLookupScope:
    def test_covers_the_declared_families(self):
        assert ("allgather", "ring") in LAZY_FAMILIES
        assert ("reduce_scatter", "ring") in LAZY_FAMILIES
        assert ("allreduce", "ring") in LAZY_FAMILIES
        assert ("allreduce", "recursive_doubling") in LAZY_FAMILIES
        for coll, alg in LAZY_FAMILIES:
            assert lookup(coll, alg, 8) is not None

    def test_out_of_scope_returns_none(self):
        assert lookup("bcast", "knomial", 8) is None        # family
        assert lookup("allgather", "ring", 1) is None       # p too small
        assert lookup("allgather", "ring", 8, k=3) is None  # explicit k
        assert lookup("allgather", "ring", 8, root=3) is None
        # Recursive doubling needs a power of two (the registry builder
        # folds odd remainders, which breaks rank symmetry).
        assert lookup("allreduce", "recursive_doubling", 12) is None
        assert lookup("allreduce", "recursive_doubling", 16) is not None

    def test_duck_types_the_schedule_surface(self):
        lazy = lookup("allgather", "ring", 8)
        assert lazy.is_lazy
        assert lazy.nranks == 8
        assert lazy.describe().endswith("(lazy)")
        assert lazy.fingerprint() == lookup("allgather", "ring", 8).fingerprint()
        assert lazy.block_map(4096).nblocks == lazy.nblocks


def _ops(prog):
    out = []
    for step in prog.steps:
        ops = []
        for op in step.ops:
            if isinstance(op, SendOp):
                ops.append(("send", op.peer, tuple(op.blocks)))
            elif isinstance(op, RecvOp):
                ops.append(("recv", op.peer, tuple(op.blocks), op.reduce))
        out.append(tuple(ops))
    return tuple(out)


class TestGeneratorFaithfulness:
    @pytest.mark.parametrize("coll,alg", sorted(LAZY_FAMILIES))
    def test_programs_match_registry_builder(self, coll, alg):
        p = 8
        lazy = lookup(coll, alg, p)
        built = build_schedule(coll, alg, p)
        for r in range(p):
            assert _ops(lazy.program(r)) == _ops(built.programs[r]), (
                f"{coll}/{alg} rank {r}: generated program diverges "
                f"from the registry builder"
            )

    @pytest.mark.parametrize("coll,alg", sorted(LAZY_FAMILIES))
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_simulated_costs_match_builder(self, coll, alg, p):
        lazy = lookup(coll, alg, p)
        built = build_schedule(coll, alg, p)
        machine = reference(p)
        for nbytes in (64, 4096):
            ref = simulate(built, machine, nbytes, engine="materialized")
            col = simulate(lazy, machine, nbytes, engine="collapsed")
            assert col.engine == "collapsed" and col.nclasses == 1
            assert col.time == ref.time, (coll, alg, p, nbytes)
            assert list(col.rank_times) == list(ref.rank_times)
            assert col.messages == ref.messages

    def test_classes_is_single_class_and_cached(self):
        lazy = lookup("allreduce", "ring", 16)
        c = lazy.classes(reference(16), 4096)
        assert c.nclasses == 1
        assert c.nranks == 16
        assert lazy.classes(reference(16), 4096) is c


class TestMaterialize:
    def test_small_p_round_trips(self):
        lazy = lookup("allgather", "ring", 8)
        explicit = lazy.materialize()
        assert explicit.fingerprint() == build_schedule(
            "allgather", "ring", 8).fingerprint()

    def test_large_p_refuses(self):
        # allreduce/ring at p=2048 would expand to ~4p^2 = 16.8M ops —
        # over the guard; the collapsed engine is the supported path.
        lazy = lookup("allreduce", "ring", 2048)
        est = len(lazy._tables(0).kinds) * lazy.nranks
        assert est > _MATERIALIZE_MAX_OPS
        with pytest.raises(ScheduleError):
            lazy.materialize()

    def test_auto_simulates_lazy_without_materializing(self):
        # The whole point: a p=4096 lazy schedule simulates through the
        # collapsed engine without ever expanding per-rank step lists.
        lazy = lookup("allgather", "ring", 4096)
        res = simulate(lazy, reference(4096), 65536)
        assert res.engine == "collapsed"
        assert res.nclasses == 1
        assert len(res.rank_times) == 4096
