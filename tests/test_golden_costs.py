"""Golden regression tests: exact pinned costs under ``tests/golden/``.

Two layers of the cost stack are frozen to the last digit:

* the analytical (α, β, γ) model predictions (:func:`repro.models
  .model_time`), and
* the discrete-event simulator's times on the model-exact reference
  machine — via the **cached** sweep-engine path, so any schedule-cache
  or memo bug that perturbed a result would show up here, not just in
  the property tests.

The matrix crosses one generalized algorithm per collective family
(k-nomial bcast/reduce, recursive multiplying allreduce, k-ring
allgather) with p ∈ {8, 16}, k ∈ {2, 4}, and a small and a large
message.  Any refactor of the engine, runner, cache, or builders must
reproduce these numbers bit-for-bit; an intentional cost-model change
regenerates them with::

    pytest tests/test_golden_costs.py --update-golden

and justifies the diff in the commit message.

The compiled execution path (:mod:`repro.compile`) is pinned twice
over: the compiled simulator feed must reproduce the *same* golden
times as the interpreted feed (one golden file serves both, which is
the transparency contract made regression-proof), and the compiled
program artifact itself — fingerprint and table shape for the 8-rank
k-nomial — is frozen in ``tests/golden/compiled_programs.json`` so a
lowering change that reorders or re-encodes tables is loud even when
execution results happen to survive it.
"""

from __future__ import annotations

from repro.bench.sweep import SweepPoint, clear_sim_memo, simulate_point
from repro.compile import compile_schedule
from repro.core.registry import build_schedule
from repro.models import ModelParams, model_time
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

#: (collective, algorithm) — one generalized algorithm per family.
CASES = [
    ("bcast", "knomial"),
    ("reduce", "knomial"),
    ("allreduce", "recursive_multiplying"),
    ("allgather", "kring"),
]
PS = [8, 16]
KS = [2, 4]
SIZES = [1024, 65536]


def _key(collective: str, algorithm: str, p: int, k: int, nbytes: int) -> str:
    return f"{collective}/{algorithm}/p{p}/k{k}/n{nbytes}"


def test_model_costs_pinned(golden):
    """The analytical model's exact outputs on reference-machine constants."""
    params = ModelParams.from_machine(reference(8))
    actual = {
        _key(coll, alg, p, k, n): model_time(coll, alg, n, p, params, k=k)
        for coll, alg in CASES
        for p in PS
        for k in KS
        for n in SIZES
    }
    golden("model_costs").check(actual)


def test_simulated_costs_pinned(golden):
    """The simulator's exact times (µs) on the reference machine.

    Every point is simulated twice — a fresh build + fresh run, and the
    sweep engine's cached path — and the two must agree exactly before
    being compared against the golden file.
    """
    clear_sim_memo()
    actual = {}
    for coll, alg in CASES:
        for p in PS:
            machine = reference(p)
            for k in KS:
                schedule = build_schedule(coll, alg, p, k=k)
                for n in SIZES:
                    fresh = simulate(schedule, machine, n).time_us
                    cached = simulate_point(
                        machine, SweepPoint(coll, alg, n, k=k)
                    ).time_us
                    assert cached == fresh, (
                        f"cached path diverged from fresh simulation at "
                        f"{_key(coll, alg, p, k, n)}"
                    )
                    actual[_key(coll, alg, p, k, n)] = fresh
    golden("simulated_costs").check(actual)


def test_simulated_costs_pinned_compiled(golden):
    """The compiled simulator feed reproduces the same golden times.

    Checked against the *same* golden file as the interpreted path —
    compiled execution is transparent by contract, so it has no numbers
    of its own to pin.  A divergence here is a compiler bug, not a cost
    change to regenerate over.
    """
    actual = {}
    for coll, alg in CASES:
        for p in PS:
            machine = reference(p)
            for k in KS:
                schedule = build_schedule(coll, alg, p, k=k)
                for n in SIZES:
                    compiled = simulate(
                        schedule, machine, n, compiled=True
                    ).time_us
                    interpreted = simulate(
                        schedule, machine, n, compiled=False
                    ).time_us
                    assert compiled == interpreted, (
                        f"compiled feed diverged from the interpreter at "
                        f"{_key(coll, alg, p, k, n)}"
                    )
                    actual[_key(coll, alg, p, k, n)] = compiled
    golden("simulated_costs").check(actual)


def test_compiled_program_fingerprint_pinned(golden):
    """The 8-rank k-nomial's compiled artifact, frozen shape and all.

    The fingerprint hashes every program table (peers, offsets, sizes,
    op codes, tags, step boundaries), so any lowering change — a
    reordered op, a re-encoded offset, a dropped fusion boundary —
    changes it even when execution results survive.  Table counts are
    pinned alongside as the human-readable part of the diff.
    """
    actual = {}
    for coll in ("bcast", "reduce"):
        for k in KS:
            schedule = build_schedule(coll, "knomial", 8, k=k)
            compiled = compile_schedule(schedule)
            key = f"{coll}/knomial/p8/k{k}"
            actual[f"{key}/fingerprint"] = compiled.fingerprint()
            actual[f"{key}/total_ops"] = compiled.total_ops()
            actual[f"{key}/nsteps"] = max(
                prog.nsteps for prog in compiled.programs
            )
    golden("compiled_programs").check(actual)
