"""Golden regression tests: exact pinned costs under ``tests/golden/``.

Two layers of the cost stack are frozen to the last digit:

* the analytical (α, β, γ) model predictions (:func:`repro.models
  .model_time`), and
* the discrete-event simulator's times on the model-exact reference
  machine — via the **cached** sweep-engine path, so any schedule-cache
  or memo bug that perturbed a result would show up here, not just in
  the property tests.

The matrix crosses one generalized algorithm per collective family
(k-nomial bcast/reduce, recursive multiplying allreduce, k-ring
allgather) with p ∈ {8, 16}, k ∈ {2, 4}, and a small and a large
message.  Any refactor of the engine, runner, cache, or builders must
reproduce these numbers bit-for-bit; an intentional cost-model change
regenerates them with::

    pytest tests/test_golden_costs.py --update-golden

and justifies the diff in the commit message.
"""

from __future__ import annotations

from repro.bench.sweep import SweepPoint, clear_sim_memo, simulate_point
from repro.core.registry import build_schedule
from repro.models import ModelParams, model_time
from repro.simnet.machines import reference
from repro.simnet.simulate import simulate

#: (collective, algorithm) — one generalized algorithm per family.
CASES = [
    ("bcast", "knomial"),
    ("reduce", "knomial"),
    ("allreduce", "recursive_multiplying"),
    ("allgather", "kring"),
]
PS = [8, 16]
KS = [2, 4]
SIZES = [1024, 65536]


def _key(collective: str, algorithm: str, p: int, k: int, nbytes: int) -> str:
    return f"{collective}/{algorithm}/p{p}/k{k}/n{nbytes}"


def test_model_costs_pinned(golden):
    """The analytical model's exact outputs on reference-machine constants."""
    params = ModelParams.from_machine(reference(8))
    actual = {
        _key(coll, alg, p, k, n): model_time(coll, alg, n, p, params, k=k)
        for coll, alg in CASES
        for p in PS
        for k in KS
        for n in SIZES
    }
    golden("model_costs").check(actual)


def test_simulated_costs_pinned(golden):
    """The simulator's exact times (µs) on the reference machine.

    Every point is simulated twice — a fresh build + fresh run, and the
    sweep engine's cached path — and the two must agree exactly before
    being compared against the golden file.
    """
    clear_sim_memo()
    actual = {}
    for coll, alg in CASES:
        for p in PS:
            machine = reference(p)
            for k in KS:
                schedule = build_schedule(coll, alg, p, k=k)
                for n in SIZES:
                    fresh = simulate(schedule, machine, n).time_us
                    cached = simulate_point(
                        machine, SweepPoint(coll, alg, n, k=k)
                    ).time_us
                    assert cached == fresh, (
                        f"cached path diverged from fresh simulation at "
                        f"{_key(coll, alg, p, k, n)}"
                    )
                    actual[_key(coll, alg, p, k, n)] = fresh
    golden("simulated_costs").check(actual)
