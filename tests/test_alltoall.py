"""Tests for all-to-all algorithms (:mod:`repro.core.alltoall`)."""

import numpy as np
import pytest

from repro.core.alltoall import alltoall_block, bruck_alltoall, pairwise_alltoall
from repro.core.primitives import ilog
from repro.core.schedule import RecvOp, SendOp
from repro.core.validate import verify
from repro.errors import ScheduleError
from repro.runtime.executor import run_collective
from repro.runtime.session import Session


class TestBlockIds:
    def test_row_major(self):
        assert alltoall_block(2, 1, 4) == 9
        assert alltoall_block(0, 0, 4) == 0
        assert alltoall_block(3, 3, 4) == 15

    def test_out_of_range(self):
        with pytest.raises(ScheduleError):
            alltoall_block(4, 0, 4)


class TestPairwise:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13, 16])
    def test_verifies(self, p):
        verify(pairwise_alltoall(p))

    @pytest.mark.parametrize("p", [2, 5, 8, 13])
    def test_moves_real_data(self, p):
        run_collective("alltoall", "pairwise", p, 2 * p * p + 3)

    def test_each_block_moves_exactly_once(self):
        p = 8
        sched = pairwise_alltoall(p)
        sent = []
        for prog in sched.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, SendOp):
                    sent.extend(op.blocks)
        # every off-diagonal block exactly once
        expected = sorted(
            alltoall_block(s, d, p)
            for s in range(p)
            for d in range(p)
            if s != d
        )
        assert sorted(sent) == expected

    def test_round_count(self):
        sched = pairwise_alltoall(7)
        for prog in sched.programs:
            assert len(prog.steps) == 6


class TestBruck:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 9, 13, 16, 17])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_verifies(self, p, k):
        verify(bruck_alltoall(p, k))

    @pytest.mark.parametrize("p", [2, 5, 8, 13])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_moves_real_data(self, p, k):
        run_collective("alltoall", "bruck", p, 2 * p * p + 3, k=k)

    def test_round_count_is_log_k_p(self):
        for p, k in [(16, 2), (16, 4), (13, 3), (100, 10)]:
            sched = bruck_alltoall(p, k)
            for prog in sched.programs:
                assert len(prog.steps) == ilog(k, p)

    def test_forwarding_volume_exceeds_pairwise(self):
        """Bruck's price: total block transfers grow by up to log_k(p)."""
        p = 16
        def total_blocks(sched):
            return sum(
                len(op.blocks)
                for prog in sched.programs
                for _, op in prog.iter_ops()
                if isinstance(op, SendOp)
            )

        direct = total_blocks(pairwise_alltoall(p))
        routed = total_blocks(bruck_alltoall(p, 2))
        assert routed > direct
        assert routed <= direct * ilog(2, p)

    def test_naming(self):
        assert bruck_alltoall(8, 2).algorithm == "bruck"
        assert bruck_alltoall(8, 4).algorithm == "bruck_kport"

    def test_aggregation(self):
        """Bruck messages carry many blocks; pairwise carries one."""
        sched = bruck_alltoall(16, 2)
        sizes = [
            len(op.blocks)
            for prog in sched.programs
            for _, op in prog.iter_ops()
            if isinstance(op, SendOp)
        ]
        assert max(sizes) == 8  # half the p-block set in round 0


class TestSessionAlltoall:
    def test_alltoall_through_session(self):
        def worker(comm):
            data = np.array(
                [comm.rank * 10 + d for d in range(comm.size)],
                dtype=np.int64,
            )
            return comm.alltoall(data).tolist()

        results = Session(4).run(worker)
        # rank j receives chunk j of every rank: [0j, 1j, 2j, 3j]
        for j, row in enumerate(results):
            assert row == [s * 10 + j for s in range(4)]

    def test_non_divisible_rejected(self):
        from repro.errors import ExecutionError

        def worker(comm):
            return comm.alltoall(np.zeros(5, dtype=np.int64))

        with pytest.raises(ExecutionError):
            Session(4, timeout=5.0).run(worker)


class TestModels:
    def test_pairwise_model_matches_reference_sim(self):
        from repro.core.registry import build_schedule
        from repro.models import ModelParams, pairwise_alltoall_time
        from repro.simnet import reference, simulate

        p, n = 16, 1 << 18
        machine = reference(p)
        params = ModelParams(machine.alpha_inter, machine.beta_inter)
        predicted = pairwise_alltoall_time(n, p, params)
        simulated = simulate(
            build_schedule("alltoall", "pairwise", p), machine, n
        ).time
        assert simulated == pytest.approx(predicted, rel=0.05)

    def test_bruck_model_crossover_direction(self):
        from repro.models import (
            ModelParams,
            bruck_alltoall_time,
            pairwise_alltoall_time,
        )

        params = ModelParams(2e-6, 1e-9)
        p = 64
        # tiny: bruck wins; huge: pairwise wins
        assert bruck_alltoall_time(4096, p, 2, params) < (
            pairwise_alltoall_time(4096, p, params)
        )
        big = 1 << 30
        assert pairwise_alltoall_time(big, p, params) < (
            bruck_alltoall_time(big, p, 2, params)
        )
