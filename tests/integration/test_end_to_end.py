"""Integration tests: full pipelines across packages.

Each test exercises a realistic workflow a downstream user would run:
validate → execute → simulate → tune → select, crossing every package
boundary in the library.
"""

import numpy as np
import pytest

import repro
from repro.bench.osu import osu_latency
from repro.bench.speedup import policy_latency
from repro.core.registry import build_schedule
from repro.runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.executor import execute
from repro.runtime.threaded import execute_threaded
from repro.selection.tuner import tune
from repro.simnet.machines import frontier, polaris, reference
from repro.simnet.simulate import simulate


class TestValidateExecuteSimulatePipeline:
    """The three execution paths agree on one schedule."""

    @pytest.mark.parametrize(
        "coll,alg,p,k",
        [
            ("allreduce", "recursive_multiplying", 12, 4),
            ("allgather", "kring", 16, 4),
            ("bcast", "knomial", 17, 4),
        ],
    )
    def test_all_three_paths(self, coll, alg, p, k):
        sched = build_schedule(coll, alg, p, k=k)
        # 1. symbolic
        repro.verify(sched)
        # 2. data (lockstep + threaded agree)
        count = 2 * p + 1
        inputs = make_inputs(coll, p, count)
        a = initial_buffers(sched, inputs, count)
        b = initial_buffers(sched, inputs, count)
        execute(sched, a)
        execute_threaded(sched, b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        check_outputs(sched, a, reference_result(coll, inputs, count), count)
        # 3. timing
        res = simulate(sched, frontier(p, 1) if p in (12, 16, 17) else
                       reference(p), 4096)
        assert res.time > 0


class TestTuneThenUse:
    def test_tuned_table_roundtrips_and_selects(self, tmp_path):
        machine = frontier(8, 1)
        table = tune(machine, [8, 2048, 1 << 19])
        path = tmp_path / "frontier8.json"
        table.save(path)
        loaded = repro.SelectionTable.load(path)
        for coll in ("bcast", "reduce", "allgather", "allreduce"):
            choice = loaded.select(coll, machine.nranks, 1 << 19)
            # the selected algorithm must actually build and verify
            entry = repro.algorithms_for(coll)
            assert choice.algorithm in entry
            sched = build_schedule(coll, choice.algorithm, machine.nranks,
                                   k=choice.k)
            repro.verify(sched)

    def test_tuned_never_worse_than_vendor(self):
        machine = frontier(8, 1)
        sizes = [8, 2048, 1 << 19]
        table = tune(machine, sizes)
        vendor = repro.vendor_policy()
        for coll in ("bcast", "reduce", "allgather", "allreduce"):
            for n in sizes:
                assert policy_latency(table, coll, machine, n) <= (
                    policy_latency(vendor, coll, machine, n) * 1.0001
                )


class TestPaperHeadlines:
    """The paper's headline claims, at reduced scale, end to end."""

    def test_generalization_speedup_exists_on_frontier(self):
        """§VI abstract: generalized algorithms beat fixed-radix baselines
        by a significant margin somewhere in the sweep."""
        machine = frontier(32, 1)
        base = osu_latency("reduce", "binomial", machine, [8])[0].avg_us
        best = min(
            osu_latency("reduce", "knomial", machine, [8], k=k)[0].avg_us
            for k in (4, 8, 16, 32)
        )
        assert base / best > 1.5

    def test_kring_beats_ring_on_frontier_but_not_polaris(self):
        """§VI-C3 vs §VI-E: the same k-ring code is a win on hierarchical
        nodes and a wash on flat ones."""
        n = 1 << 20
        fm = frontier(8, 8)
        pm = polaris(16, 4)
        f_gain = (
            osu_latency("bcast", "kring", fm, [n], k=1)[0].avg_us
            / osu_latency("bcast", "kring", fm, [n], k=8)[0].avg_us
        )
        p_gain = (
            osu_latency("bcast", "kring", pm, [n], k=1)[0].avg_us
            / osu_latency("bcast", "kring", pm, [n], k=4)[0].avg_us
        )
        assert f_gain > 1.3
        assert p_gain < f_gain
        assert p_gain < 1.4

    def test_recmul_optimal_radix_tracks_ports(self):
        """§VI-C2: the NIC port count, not the model, sets recmul's best
        radix at bandwidth-bound sizes — 4 on Frontier, 2-4 on Polaris."""
        n = 1 << 16
        for machine, ports in ((frontier(32, 1), 4), (polaris(32, 1), 2)):
            times = {
                k: osu_latency(
                    "allreduce", "recursive_multiplying", machine, [n], k=k
                )[0].avg_us
                for k in (2, 4, 8, 16, 32)
            }
            best = min(times, key=times.get)
            assert best in (ports, 2 * ports, max(2, ports // 2), 5)

    def test_single_implementation_multiple_machines(self):
        """§I: one system-agnostic implementation optimizes on both
        machines — literally the same Schedule object simulated on each."""
        sched = build_schedule("allreduce", "recursive_multiplying", 32, k=4)
        t_f = simulate(sched, frontier(32, 1), 65536).time_us
        t_p = simulate(sched, polaris(32, 1), 65536).time_us
        base = build_schedule("allreduce", "recursive_doubling", 32)
        assert t_f < simulate(base, frontier(32, 1), 65536).time_us
        assert t_p < simulate(base, polaris(32, 1), 65536).time_us


class TestPublicAPI:
    def test_top_level_quickstart(self):
        """The README quickstart, verbatim."""
        run = repro.execute(
            "allreduce", "recursive_multiplying", p=16, count=1024, k=4
        )
        assert np.array_equal(run.buffers[0], run.expected[0])
        machine = repro.frontier(nodes=16, ppn=1)
        sched = repro.build(
            "allreduce", "recursive_multiplying", p=machine.nranks, k=4
        )
        assert repro.simulate(sched, machine, nbytes=65536).time_us > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_experiment_registry_lists_every_figure(self):
        expected = {
            "table1", "figdiagrams", "fig7", "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig9c", "fig9d",
            "fig10a", "fig10b", "fig10c",
            "fig11a", "fig11b", "fig11c",
            "eq13", "models", "variance", "selection",
            "ablation-ports", "ablation-injection", "ablation-intranode",
            "ablation-placement", "ablation-bruck", "ablation-pipeline",
            "ablation-hierarchical", "ablation-alltoall",
        }
        assert expected == set(repro.ALL_EXPERIMENTS)
