"""Kill a real ``repro-sweep`` process mid-run; resume to identical bytes.

The unit tests prove the journal and merge logic; this proves the whole
artifact path through the real CLI in real processes: a sweep killed
partway (deterministically, via the worker-poison hook that ``os._exit``s
the process, and asynchronously, via SIGKILL) leaves a journal that a
``--resume`` run completes into a results file *byte-identical* to an
undisturbed run — at any ``--jobs`` level, because the artifact contains
only deterministic content.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench.sweep import POISON_ENV
from repro.store.journal import read_journal

SRC = Path(__file__).resolve().parents[2] / "src"

BASE_FLAGS = [
    "--machine", "frontier", "--nodes", "4", "--ppn", "2",
    "--collective", "allreduce", "--min-bytes", "64",
    "--max-bytes", "4096",
]


def _argv(extra):
    return [
        sys.executable,
        "-c",
        "import sys; from repro.cli import main_sweep; "
        "sys.exit(main_sweep(sys.argv[1:]))",
        *BASE_FLAGS,
        *extra,
    ]


def _env(poison=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH") else str(SRC)
    )
    env.pop(POISON_ENV, None)
    if poison is not None:
        env[POISON_ENV] = poison
    return env


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The undisturbed artifact every crashed-and-resumed run must match."""
    out = tmp_path_factory.mktemp("ref") / "reference.json"
    proc = subprocess.run(
        _argv(["-o", str(out)]), env=_env(),
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return out.read_bytes()


def test_poison_crash_then_resume_is_byte_identical(tmp_path, reference):
    journal = tmp_path / "sweep.jsonl"
    out = tmp_path / "out.json"
    flags = ["--journal", str(journal)]

    # The poisoned point os._exit()s the serial sweep process mid-run —
    # a deterministic crash, no timing races.
    crashed = subprocess.run(
        _argv(flags), env=_env(poison="allreduce/ring/None/1024"),
        capture_output=True, text=True, timeout=600,
    )
    assert crashed.returncode == 139
    records, _ = read_journal(journal)
    completed = [r for r in records if r.get("kind") == "point"]
    assert completed, "the crash must land after some completed points"

    resumed = subprocess.run(
        _argv(flags + ["--resume", "-o", str(out)]), env=_env(),
        capture_output=True, text=True, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == reference

    # The resume actually reused the journal: the points completed
    # before the crash were not simulated again.
    final_records, _ = read_journal(journal)
    final_points = [r for r in final_records if r.get("kind") == "point"]
    assert len(final_points) == len(
        {r["key"] for r in final_points}
    ), "resume must append only the missing points, not re-run everything"


def test_sigkill_then_resume_is_byte_identical(tmp_path, reference):
    journal = tmp_path / "sweep.jsonl"
    out = tmp_path / "out.json"
    flags = ["--journal", str(journal)]

    popen = subprocess.Popen(
        _argv(flags), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    time.sleep(0.6)  # let some points land; surviving the kill is fine
    if popen.poll() is None:
        popen.send_signal(signal.SIGKILL)
    popen.wait(timeout=600)

    resumed = subprocess.run(
        _argv(flags + ["--resume", "-o", str(out)]), env=_env(),
        capture_output=True, text=True, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == reference


def test_resume_at_higher_jobs_is_byte_identical(tmp_path, reference):
    journal = tmp_path / "sweep.jsonl"
    out = tmp_path / "out.json"
    flags = ["--journal", str(journal)]

    crashed = subprocess.run(
        _argv(flags), env=_env(poison="allreduce/knomial/4/256"),
        capture_output=True, text=True, timeout=600,
    )
    assert crashed.returncode == 139

    # Resuming under a parallel executor must land the same bytes (the
    # single-core CI host clamps to serial unless isolation is forced,
    # so force it — determinism is the claim, not speed).
    resumed = subprocess.run(
        _argv(flags + [
            "--resume", "--jobs", "2", "--isolate",
            "--deadline", "60", "-o", str(out),
        ]),
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert out.read_bytes() == reference
