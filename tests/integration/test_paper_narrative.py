"""Integration tests tracking the paper's §II–§V narrative claims.

Each test asserts one sentence of the paper's argument against the built
system — the background claims that motivate the generalizations, not
just the headline results.
"""

import pytest

from repro.core.analysis import critical_path_rounds
from repro.core.registry import build_schedule
from repro.models import ModelParams, model_time
from repro.simnet import frontier, reference, simulate


class TestSectionII:
    def test_classic_kernels_buffer_a_single_message(self):
        """§II-B2: 'in popular communication patterns such as binomial
        tree and recursive doubling, each process only communicates with
        one other process at a time'."""
        for coll, alg in (("bcast", "binomial"),):
            sched = build_schedule(coll, alg, 16)
            for prog in sched.programs:
                for step in prog.steps:
                    assert len(step.sends) <= 1

    def test_generalization_buffers_k_minus_1(self):
        """§II-B2: the k-nomial tree overlaps k-1 messages per level."""
        sched = build_schedule("bcast", "knomial", 16, k=8)
        widest = max(
            len(step.sends)
            for prog in sched.programs
            for step in prog.steps
        )
        assert widest == 7

    def test_multiport_makes_overlap_pay(self):
        """§II-B2: multi-port nodes reward the extra buffered messages —
        the same wide schedule is faster on a 4-port node than a 1-port
        node, while the serial binomial is port-count-insensitive."""
        wide = build_schedule("allreduce", "recursive_multiplying", 32, k=4)
        serial = build_schedule("bcast", "binomial", 32)
        n = 1 << 20
        one = frontier(32, 1).with_(nic_ports=1)
        four = frontier(32, 1)
        assert simulate(wide, four, n).time < simulate(wide, one, n).time
        assert simulate(serial, four, n).time == pytest.approx(
            simulate(serial, one, n).time, rel=1e-9
        )


class TestSectionIII:
    def test_naive_bcast_costs_p_latencies(self):
        """§III-B: τ = p(α + βn) for the sequential-root broadcast."""
        p = 16
        machine = reference(p)
        naive = simulate(build_schedule("bcast", "linear", p), machine, 0)
        tree = simulate(build_schedule("bcast", "binomial", p), machine, 0)
        # at n = 0 the naive root still pipelines α but pays no serial
        # bandwidth; the contrast shows at bandwidth-bearing sizes:
        n = 1 << 20
        naive = simulate(build_schedule("bcast", "linear", p), machine, n)
        tree = simulate(build_schedule("bcast", "binomial", p), machine, n)
        assert naive.time / tree.time > (p - 1) / (2 * 4)  # ≳ p/(2 log p)

    def test_latency_scales_logarithmically(self):
        """§III-B: 'the recursive tree structure causes the latency
        overhead α to scale logarithmically with p'."""
        for p, depth in ((8, 3), (64, 6), (256, 8)):
            assert critical_path_rounds(
                build_schedule("bcast", "binomial", p)
            ) == depth


class TestSectionIV:
    def test_recursive_multiplying_reduces_rounds(self):
        """§IV-C: 'sending more messages per round decreases the number
        of rounds'."""
        assert critical_path_rounds(
            build_schedule("allreduce", "recursive_multiplying", 64, k=8)
        ) == 2
        assert critical_path_rounds(
            build_schedule("allreduce", "recursive_doubling", 64)
        ) == 6

    def test_per_round_cost_grows_with_k(self):
        """§IV-D / eq. (7): the per-round bandwidth cost scales with
        (k-1) for allreduce."""
        params = ModelParams(alpha=0.0, beta=1e-9, gamma=0.0)
        n, p = 1 << 20, 64
        t2 = model_time("allreduce", "recursive_multiplying", n, p, params, k=2)
        t8 = model_time("allreduce", "recursive_multiplying", n, p, params, k=8)
        # 6 rounds × 1·nβ vs 2 rounds × 7·nβ
        assert t8 / t2 == pytest.approx((2 * 7) / (6 * 1))


class TestSectionV:
    def test_ring_latency_is_linear_in_p(self):
        """§V-B: 'ring has a worse latency term (log → linear)'."""
        assert critical_path_rounds(
            build_schedule("allgather", "ring", 32)
        ) == 31
        assert critical_path_rounds(
            build_schedule("allgather", "recursive_doubling", 32)
        ) == 5

    def test_ring_bandwidth_asymptote(self):
        """§V-B / eq. (10): for large n the ring approaches βn,
        independent of p."""
        machine = reference(64)
        n = 1 << 26
        t = simulate(build_schedule("allgather", "ring", 64), machine, n).time
        assert t == pytest.approx(machine.beta_inter * n, rel=0.05)

    def test_kring_implicit_barrier_claim(self):
        """§V-C: the classic ring 'has an implicit barrier between
        rounds, so processes with intranode neighbors are starved by the
        slower internode links' — on a machine whose links are all equal,
        k-ring therefore buys nothing."""
        machine = reference(16)  # uniform links
        n = 1 << 20
        ring = simulate(build_schedule("bcast", "kring", 16, k=1), machine, n)
        kring = simulate(build_schedule("bcast", "kring", 16, k=4), machine, n)
        assert kring.time == pytest.approx(ring.time, rel=0.02)
