"""Executable documentation: every ``python`` snippet in the top-level
docs must actually run.

README.md and EXPERIMENTS.md carry worked examples (build/verify/execute,
fault injection, recovery, tracing, the static check suite, the eq. (8)
model gap). Docs rot silently; this gate extracts each fenced
`````python`` block and executes it, so an API rename or a changed
diagnostic breaks CI instead of the first reader.

Blocks within one document execute cumulatively in a shared namespace —
later snippets may reuse names (``sched``, ``machine``, ``plan``) bound
by earlier ones, exactly as a reader working top-to-bottom would. Each
document runs chdir'ed into a temp directory because some snippets write
files (the README tracing example emits ``trace.json``/``metrics.json``).
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

#: Documents whose python snippets are part of the contract. Each entry
#: is (file, minimum snippet count) — the floor catches a refactor that
#: silently drops the fences this gate is meant to protect.
DOCUMENTS = [
    ("README.md", 5),
    ("EXPERIMENTS.md", 1),
]

_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```", re.DOTALL | re.MULTILINE)


def extract_snippets(path: Path):
    return _FENCE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("doc,min_snippets", DOCUMENTS,
                         ids=[d for d, _ in DOCUMENTS])
def test_doc_snippets_execute(doc, min_snippets, tmp_path, monkeypatch):
    path = ROOT / doc
    snippets = extract_snippets(path)
    assert len(snippets) >= min_snippets, (
        f"{doc} has {len(snippets)} python snippet(s), expected at least "
        f"{min_snippets} — did a doc edit drop a fenced example?"
    )
    monkeypatch.chdir(tmp_path)  # snippets may write trace/metrics files
    namespace = {"__name__": f"doc::{doc}"}
    for index, source in enumerate(snippets):
        code = compile(source, f"{doc} [python snippet #{index}]", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{doc} python snippet #{index} raised "
                f"{type(exc).__name__}: {exc}\n--- snippet ---\n{source}"
            )


@pytest.mark.parametrize("doc", ["README.md", "CONTRIBUTING.md"])
def test_docs_mention_every_console_script(doc):
    """Each installed CLI verb is discoverable from the entry docs.

    Both README.md and CONTRIBUTING.md enumerate the ``repro-*``
    surface; a verb added to pyproject without a mention in either is
    invisible to new users *and* new contributors, so the pin covers
    both documents (this is the gate that caught the enumerations going
    stale at ten verbs when ``repro-serve`` landed as the eleventh).
    """
    import tomllib

    scripts = tomllib.loads(
        (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    )["project"]["scripts"]
    text = (ROOT / doc).read_text(encoding="utf-8")
    missing = [name for name in scripts if name not in text]
    assert not missing, f"console scripts absent from {doc}: {missing}"
