"""Tests for the message-matching engine (:mod:`repro.core.runner`)."""

import pytest

from repro.core.runner import run_schedule
from repro.core.schedule import (
    CopyOp,
    RankProgram,
    RecvOp,
    Schedule,
    SendOp,
)
from repro.errors import ExecutionError


class RecordingModel:
    """Minimal data model: payload = (rank, op blocks); records receives."""

    def __init__(self):
        self.received = []
        self.copies = []

    def snapshot(self, rank, op):
        return (rank, op.blocks)

    def apply_recv(self, rank, op, payload):
        self.received.append((rank, op.peer, op.blocks, payload))

    def apply_copy(self, rank, op):
        self.copies.append((rank, op.src, op.dst))


def make(programs, nranks, nblocks=4, collective="bcast"):
    return Schedule(
        collective=collective,
        algorithm="test",
        nranks=nranks,
        nblocks=nblocks,
        programs=programs,
        root=0,
    )


def test_simple_exchange_delivers():
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)), RecvOp(peer=1, blocks=(1,)))
    p1 = RankProgram(rank=1)
    p1.add(SendOp(peer=0, blocks=(1,)), RecvOp(peer=0, blocks=(0,)))
    model = RecordingModel()
    result = run_schedule(make([p0, p1], 2), model)
    assert result.delivered_messages == 2
    assert len(model.received) == 2


def test_fifo_matching_per_channel():
    """Two back-to-back sends on one channel must arrive in order."""
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p0.add(SendOp(peer=1, blocks=(1,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(0,)))
    p1.add(RecvOp(peer=0, blocks=(1,)))
    model = RecordingModel()
    run_schedule(make([p0, p1], 2), model)
    blocks_in_order = [r[2] for r in model.received]
    assert blocks_in_order == [(0,), (1,)]


def test_mismatched_blocks_raise():
    """A receive naming different blocks than the in-flight message is a
    structural bug and must be reported, not silently reinterpreted."""
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(2,)))
    with pytest.raises(ExecutionError, match="blocks"):
        run_schedule(make([p0, p1], 2), RecordingModel())


def test_deadlock_detected_and_reported():
    """Two ranks each waiting for the other's never-sent message."""
    p0 = RankProgram(rank=0)
    p0.add(RecvOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(0,)))
    with pytest.raises(ExecutionError, match="deadlock"):
        run_schedule(make([p0, p1], 2), RecordingModel())


def test_unconsumed_message_detected():
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)  # never receives
    with pytest.raises(ExecutionError, match="never received"):
        run_schedule(make([p0, p1], 2), RecordingModel())


def test_copies_apply_at_post_time():
    p0 = RankProgram(rank=0)
    p0.add(CopyOp(src=0, dst=1))
    model = RecordingModel()
    run_schedule(make([p0], 1), model)
    assert model.copies == [(0, 0, 1)]


def test_sends_snapshot_before_same_step_receives():
    """A step that both sends and reduce-receives must snapshot the send
    payload from the pre-step state (nonblocking semantics)."""

    class StatefulModel:
        def __init__(self):
            self.state = {0: "a0", 1: "b0"}
            self.sent_payloads = []

        def snapshot(self, rank, op):
            payload = self.state[rank]
            self.sent_payloads.append(payload)
            return payload

        def apply_recv(self, rank, op, payload):
            self.state[rank] = self.state[rank] + "+" + payload

        def apply_copy(self, rank, op):
            raise AssertionError("no copies in this test")

    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)), RecvOp(peer=1, blocks=(0,), reduce=True))
    p1 = RankProgram(rank=1)
    p1.add(SendOp(peer=0, blocks=(0,)), RecvOp(peer=0, blocks=(0,), reduce=True))
    model = StatefulModel()
    run_schedule(make([p0, p1], 2, nblocks=1, collective="allreduce"), model)
    # Each side must have sent its ORIGINAL value, not the merged one.
    assert sorted(model.sent_payloads) == ["a0", "b0"]
    assert model.state[0] == "a0+b0"
    assert model.state[1] == "b0+a0"


def test_out_of_order_steps_across_ranks():
    """Ranks with different step counts still match (no global lockstep):
    rank 0 does two sequential sends to different peers while peers each
    do one receive."""
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p0.add(SendOp(peer=2, blocks=(0,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(0,)))
    p2 = RankProgram(rank=2)
    p2.add(RecvOp(peer=0, blocks=(0,)))
    model = RecordingModel()
    result = run_schedule(make([p0, p1, p2], 3), model)
    assert result.delivered_messages == 2


def test_empty_programs_complete_immediately():
    model = RecordingModel()
    result = run_schedule(make([RankProgram(rank=0)], 1), model)
    assert result.delivered_messages == 0
