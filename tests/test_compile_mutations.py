"""Mutation corpus: every table corruption must die in self-verification.

:func:`repro.compile.verify_compiled` is the ladder that stands between
a corrupt compiled artifact and silently wrong answers — a deserialized
program from a damaged store entry, a buggy lowering change, a bit flip
in a cached table.  This suite proves the ladder actually catches the
corruption classes it was built for, by injecting each one into a
freshly lowered program and requiring a :class:`~repro.errors
.CompileError` that names the offending **rank and step** (the
diagnostic a human needs to find the bad table row).

The corpus mirrors the realistic failure modes:

* **stale peer table** — a peer entry pointing at the wrong rank, as a
  schedule edit without recompilation would leave behind;
* **off-by-one offset** — a block id shifted by one in the segment
  table, the classic flattening bug;
* **dropped fusion barrier** — a fused-step boundary merged away
  without the fuser's legality proof;
* **wrong op code** — a reduce-receive demoted to a plain receive
  (data-corrupting if executed: the reduction would be skipped);
* **FIFO tag corruption** — a receive tag that no longer matches the
  sender's emission order.

A clean-grid baseline pins the other half of the contract: on every
registry pair the verifier stays silent, so the ladder cannot be
appeased by simply never firing.
"""

from __future__ import annotations

import re

import pytest

from repro.compile import CompileError, compile_schedule, verify_compiled
from repro.compile.program import OP_RECV, OP_REDUCE_RECV, OP_SEND
from repro.core.registry import (
    COLLECTIVES,
    algorithms_for,
    build_schedule,
)
from repro.errors import ReproError

#: Matches the diagnostic preamble the whole suite requires: the
#: verifier must always name the rank and step of the corrupt row.
RANK_STEP = re.compile(r"corrupt at rank \d+ step \d+")


def _fresh(coll="allreduce", alg="ring", p=8, k=None):
    """A schedule and its unverified compiled artifact, ready to damage."""
    schedule = build_schedule(coll, alg, p, k=k)
    return schedule, compile_schedule(schedule, verify=False)


def _first_op(compiled, kinds):
    """(program, op index) of the first op whose kind is in ``kinds``."""
    for prog in compiled.programs:
        for i, kind in enumerate(prog.kinds):
            if int(kind) in kinds:
                return prog, i
    raise AssertionError(f"corpus schedule has no op of kind {kinds}")


def _expect_corrupt(compiled, schedule, needle: str):
    """Verification must fail, name rank and step, and say why."""
    with pytest.raises(CompileError) as excinfo:
        verify_compiled(compiled, schedule)
    message = str(excinfo.value)
    assert RANK_STEP.search(message), (
        f"diagnostic does not name rank and step: {message!r}"
    )
    assert needle in message, (
        f"diagnostic does not mention {needle!r}: {message!r}"
    )


class TestMutationCorpus:
    def test_stale_peer_table(self):
        schedule, compiled = _fresh()
        prog, i = _first_op(compiled, {OP_SEND, OP_RECV, OP_REDUCE_RECV})
        prog.peers[i] = (int(prog.peers[i]) + 1) % schedule.nranks
        _expect_corrupt(compiled, schedule, "peer")

    def test_off_by_one_offset(self):
        schedule, compiled = _fresh()
        prog, i = _first_op(compiled, {OP_SEND, OP_RECV, OP_REDUCE_RECV})
        lo = int(prog.seg_bounds[i])
        prog.seg_blocks[lo] = (
            int(prog.seg_blocks[lo]) + 1
        ) % schedule.nblocks
        _expect_corrupt(compiled, schedule, "block")

    def test_dropped_fusion_barrier(self):
        schedule, compiled = _fresh()
        prog = next(p for p in compiled.programs if len(p.steps_fused) > 2)
        # Merge the first two fused steps by collapsing the interior
        # boundary onto the next one — monotone, but not what the
        # fuser's legality analysis produced.
        prog.steps_fused[1] = prog.steps_fused[2]
        _expect_corrupt(compiled, schedule, "fusion barrier")

    def test_wrong_op_code(self):
        schedule, compiled = _fresh()
        prog, i = _first_op(compiled, {OP_REDUCE_RECV})
        prog.kinds[i] = OP_RECV  # silently skip the reduction
        _expect_corrupt(compiled, schedule, "op code")

    def test_tag_corruption(self):
        schedule, compiled = _fresh()
        prog, i = _first_op(compiled, {OP_RECV, OP_REDUCE_RECV})
        prog.tags[i] = int(prog.tags[i]) + 1
        _expect_corrupt(compiled, schedule, "tag")

    def test_mutant_never_reaches_execution(self):
        """The default pipeline verifies at lowering time, so a corrupt
        artifact raises before any payload moves."""
        schedule, compiled = _fresh()
        prog, i = _first_op(compiled, {OP_SEND})
        prog.peers[i] = (int(prog.peers[i]) + 1) % schedule.nranks
        with pytest.raises(ReproError):
            verify_compiled(compiled, schedule)


class TestCleanGridBaseline:
    @pytest.mark.parametrize(
        "coll,alg",
        [(c, a) for c in COLLECTIVES for a in algorithms_for(c)],
    )
    def test_verifier_silent_on_registry_pairs(self, coll, alg):
        for p in (4, 8, 9):
            schedule = build_schedule(coll, alg, p)
            verify_compiled(compile_schedule(schedule, verify=False),
                            schedule)
