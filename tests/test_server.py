"""The tuning service end to end: endpoints, coalescing, lifecycle.

One background service (module-scoped — boot sweeps only ``allreduce``
so every other collective stays cold for the tuning tests) is shared by
the endpoint probes; the CLI tests spawn real ``repro-serve``
subprocesses to pin the signal contract (SIGTERM exits 0, Ctrl-C 130).

The load-bearing promise throughout: anything the service answers must
be **bit-identical** to what the in-process library produces — served
selections equal :func:`repro.server.build_config`'s, served schedules
re-verify against their compiled programs, and N concurrent ``/tune``
requests share one sweep without changing its result.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench.sweep import clear_sim_memo
from repro.errors import ExecutionError, SelectionError, ServerError
from repro.server import TuningClient, TuningService, build_config, \
    serve_background
from repro.simnet.machines import reference

ROOT = Path(__file__).resolve().parent.parent
P = 8
SIZES = [256, 4096]
MACHINE = reference(P)

#: Collectives the boot sweep leaves cold, one per coalescing attempt
#: (a retried attempt needs a fresh one: the previous attempt's sweep
#: warms the simulation memo, making a re-run near-instant).
COLD = ("alltoall", "reduce_scatter", "gather")


@pytest.fixture(scope="module")
def served():
    """(handle, client, direct config) for one shared background service."""
    direct = build_config(MACHINE, SIZES, collectives=("allreduce",))
    with serve_background(
        MACHINE, SIZES, collectives=("allreduce",)
    ) as handle:
        yield handle, TuningClient(handle.url), direct


def test_descriptor(served):
    handle, client, _ = served
    info = client.info()
    assert info["service"] == "repro-tuning-service"
    assert info["machine"] == MACHINE.name
    assert info["nranks"] == P
    assert info["sizes"] == SIZES
    assert info["inflight"] == 0
    assert handle.url.startswith("http://127.0.0.1:")


def test_select_matches_in_process_tune(served):
    _, client, direct = served
    for nbytes in SIZES:
        assert client.select("allreduce", P, nbytes) == direct.select(
            "allreduce", P, nbytes
        )


def test_config_export_matches_in_process_tune(served):
    _, client, direct = served
    cfg = client.config()
    for nbytes in SIZES:
        assert cfg.select("allreduce", P, nbytes) == direct.select(
            "allreduce", P, nbytes
        )
    assert cfg.machine == MACHINE.name
    assert "allreduce" in cfg.collectives


def test_schedule_by_params_and_fingerprint(served):
    _, client, _ = served
    schedule, compiled = client.compiled_schedule(
        collective="allreduce", algorithm="recursive_multiplying", p=P, k=4
    )
    assert schedule.algorithm == "recursive_multiplying"
    compiled.verify(schedule)  # raises CompileError on any wire corruption
    by_fp = client.schedule(fingerprint=schedule.fingerprint())
    assert by_fp["source_fingerprint"] == schedule.fingerprint()
    # The 16-hex store-key prefix resolves too (what a disk store's
    # compiled/… keys carry).
    by_prefix = client.schedule(fingerprint=schedule.fingerprint()[:16])
    assert by_prefix["source_fingerprint"] == schedule.fingerprint()


def test_schedule_normalizes_fixed_radix(served):
    """A fixed-radix schedule indexed under its structural k (e.g.
    recursive doubling's k=2) must rebuild through the real builder."""
    _, client, _ = served
    schedule, _ = client.compiled_schedule(
        collective="allreduce", algorithm="recursive_doubling", p=P, k=2
    )
    again = client.schedule(fingerprint=schedule.fingerprint())
    assert again["source_fingerprint"] == schedule.fingerprint()


def test_schedule_unknown_fingerprint_is_a_server_error(served):
    _, client, _ = served
    with pytest.raises(ServerError, match="fingerprint"):
        client.schedule(fingerprint="deadbeef" * 8)


def test_selection_miss_stays_a_selection_error(served):
    """Error fidelity across the wire: 'no rule covers this point' must
    re-raise as SelectionError, not a generic transport failure."""
    _, client, _ = served
    with pytest.raises(SelectionError, match="unknown collective"):
        client.select("gossip", P, 4096)


def test_tune_rejects_malformed_requests(served):
    _, client, _ = served
    with pytest.raises(ServerError, match="collective"):
        client.tune("")


def test_concurrent_tunes_coalesce(served):
    """N concurrent /tune requests for one cold sweep share one leader.

    Deterministic, no timing window: the test holds the service's sweep
    lock, so the leader blocks mid-sweep while every follower arrives
    and registers against the in-flight future; only then does the
    sweep proceed.
    """
    handle, client, _ = served
    service = handle.service
    followers = 5
    clear_sim_memo()  # in-process service: the sweep really runs
    before_sweeps = service.sweeps_run
    before_joined = service.coalesced
    outcomes, lock = [], threading.Lock()

    def tune():
        out = client.tune("alltoall")
        with lock:
            outcomes.append(out["outcome"])

    threads = [threading.Thread(target=tune) for _ in range(followers + 1)]
    with service._sweep_lock:  # leader blocks here until we release
        for t in threads:
            t.start()
        deadline = time.monotonic() + 30
        while service.coalesced - before_joined < followers:
            assert time.monotonic() < deadline, (
                f"only {service.coalesced - before_joined} of {followers} "
                f"followers coalesced before the deadline"
            )
            time.sleep(0.002)
    for t in threads:
        t.join()
    assert outcomes.count("swept") == 1
    assert outcomes.count("coalesced") == followers
    assert service.sweeps_run - before_sweeps == 1


def test_tune_merges_into_served_config(served):
    """After /tune on a new collective, /select and /config cover it."""
    _, client, _ = served
    out = client.tune("alltoall")  # warm by now (coalescing test swept it)
    assert set(out["winners"]) == {str(n) for n in SIZES}
    choice = client.select("alltoall", P, 4096)
    assert choice.algorithm == out["winners"]["4096"]["algorithm"]
    assert "alltoall" in client.config().collectives


def test_metrics_exposes_request_counters(served):
    _, client, _ = served
    text = client.metrics()
    assert "repro_server_requests_total" in text
    assert 'endpoint="/select"' in text


def test_execute_with_served_selection(served):
    """``execute(select=url)`` runs the served choice bit-identically to
    naming that (algorithm, k) explicitly."""
    from repro.api import execute

    _, client, _ = served
    count = 512  # int64 -> 4096 bytes, on the served grid
    choice = client.select("allreduce", P, count * 8)
    via_server = execute(
        "allreduce", "ring", p=P, count=count, select=client.url,
    )
    explicit = execute(
        "allreduce", choice.algorithm, p=P, count=count, k=choice.k,
    )
    assert via_server.schedule.algorithm == choice.algorithm
    assert via_server.schedule.k == explicit.schedule.k
    for mine, theirs in zip(via_server.buffers, explicit.buffers):
        assert (mine == theirs).all()


def test_execute_select_and_adapt_are_mutually_exclusive(served):
    from repro.api import execute

    _, client, _ = served
    with pytest.raises(ExecutionError, match="mutually exclusive"):
        execute(
            "allreduce", "ring", p=P, count=64,
            select=client.url, adapt="calm",
        )


def test_client_rejects_non_http_urls():
    with pytest.raises(ServerError, match="http"):
        TuningClient("ftp://example.invalid")


def test_client_unreachable_is_a_server_error():
    client = TuningClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServerError, match="cannot reach"):
        client.info()


def test_store_backed_fingerprint_index_survives_restart(tmp_path):
    """A /schedule served by one service resolves by fingerprint in a
    *fresh* service over the same store — the index is rebuilt from the
    store's compiled/… keys at boot."""
    first = TuningService(
        MACHINE, SIZES, collectives=("allreduce",), store=tmp_path
    )
    payload = first._ep_schedule(
        {"collective": "allreduce", "algorithm": "recursive_multiplying",
         "k": "4"}
    )
    fp = payload["source_fingerprint"]

    second = TuningService(
        MACHINE, SIZES, collectives=("allreduce",), store=tmp_path
    )
    again = second._ep_schedule({"fingerprint": fp[:16]})
    assert again["source_fingerprint"] == fp
    assert again["compiled_fingerprint"] == payload["compiled_fingerprint"]
    assert again["schedule_pickle"] == payload["schedule_pickle"]


def test_grid_warm_start_is_bit_identical(tmp_path, served):
    """A service booted from a committed selection-config artifact
    serves the same table as one that swept cold."""
    _, _, direct = served
    path = direct.save(tmp_path / "grid.json")
    warm = TuningService(
        MACHINE, SIZES, collectives=("allreduce",), grid=path
    )
    assert warm.warm_started
    assert warm.config.to_json() == build_config(
        MACHINE, SIZES, collectives=("allreduce",)
    ).to_json()


def _spawn_serve(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.cli import main_serve; "
            "sys.exit(main_serve(sys.argv[1:]))",
            "--port", "0", "--machine", "reference", "--nodes", "4",
            "--collectives", "allreduce",
            "--min-bytes", "64", "--max-bytes", "1024", *extra,
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 120
    for line in proc.stdout:
        if line.startswith("serving on "):
            return proc, line.split("serving on ", 1)[1].strip()
        if time.monotonic() > deadline:  # pragma: no cover
            break
    proc.kill()
    raise AssertionError("repro-serve never printed its banner")


@pytest.mark.parametrize("sig,rc", [
    (signal.SIGTERM, 0),
    (signal.SIGINT, 130),
])
def test_cli_serve_signal_contract(sig, rc):
    """repro-serve: SIGTERM is a clean stop (0), Ctrl-C exits 130."""
    proc, url = _spawn_serve()
    try:
        assert TuningClient(url).info()["service"] == "repro-tuning-service"
        proc.send_signal(sig)
        assert proc.wait(timeout=30) == rc
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
