"""CLI help audit: documented flags must exist.

The docs show `repro-*` invocations in four places — the
:mod:`repro.cli` module docstring, each parser's ``description``/
``epilog``, README.md's bash fences, the Makefile, and the CI workflow.
A renamed or removed argparse flag silently strands every one of those
examples; this gate cross-checks each documented invocation against the
*actual* parser the verb builds, so flag drift fails CI with the exact
source line.

The parsers are built inside the ``main_*`` functions, so the audit
captures them by intercepting ``parse_args`` — no CLI needs to be
installed, and the check covers the same objects users hit.
"""

import argparse
import re
import tomllib
from pathlib import Path

import pytest

from repro import cli

ROOT = Path(__file__).resolve().parent.parent


class _Captured(Exception):
    pass


def capture_parser(main, monkeypatch):
    """The argparse parser a ``main_*`` entry point builds."""
    seen = {}
    def spy(self, args=None, namespace=None):
        seen["parser"] = self
        raise _Captured
    monkeypatch.setattr(argparse.ArgumentParser, "parse_args", spy)
    with pytest.raises(_Captured):
        main([])
    return seen["parser"]


def console_scripts():
    """{verb: main function} from pyproject's [project.scripts]."""
    scripts = tomllib.loads(
        (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    )["project"]["scripts"]
    out = {}
    for verb, target in scripts.items():
        module, func = target.split(":")
        assert module == "repro.cli", f"{verb} points outside repro.cli"
        out[verb] = getattr(cli, func)
    return out


@pytest.fixture(scope="module")
def known_flags(request):
    """{verb: set of option strings (long and short) its parser accepts}."""
    monkeypatch = pytest.MonkeyPatch()
    request.addfinalizer(monkeypatch.undo)
    flags = {}
    for verb, main in console_scripts().items():
        parser = capture_parser(main, monkeypatch)
        flags[verb] = {
            opt for action in parser._actions for opt in action.option_strings
        }
        monkeypatch.undo()
    return flags


# A flag token needs a letter after the dashes, so negative numbers
# (``--jobs -1``) and lone dashes don't count.
_FLAG = re.compile(r"(?<![\w-])(--?[a-zA-Z][\w-]*)")
_VERB = re.compile(r"(?<![\w-])(repro-[a-z-]+)\b")


def invocations(text):
    """Yield (verb, flags, line) for every repro-* invocation in text.

    Backslash continuations are joined first so multi-line examples
    (ci.yml's repro-trace) audit as one invocation.
    """
    text = text.replace("\\\n", " ")
    for line in text.splitlines():
        match = _VERB.search(line)
        if not match:
            continue
        tail = line[match.end():]
        # The invocation ends at a shell separator or the closing
        # backtick of an inline code span — later flags belong to a
        # different command (`repro-bench all` / `pytest --benchmark-only`).
        tail = re.split(r"`|;|&&|\|", tail)[0]
        yield match.group(1), _FLAG.findall(tail), line.strip()


def audit(text, known, source):
    problems = []
    for verb, flags, line in invocations(text):
        if verb not in known:
            problems.append(f"{source}: unknown verb {verb!r} in: {line}")
            continue
        for flag in flags:
            if flag in ("--help", "-h"):
                continue
            if flag not in known[verb]:
                problems.append(
                    f"{source}: {verb} has no {flag!r} flag (line: {line})"
                )
    return problems


def test_module_docstring_examples(known_flags):
    """Every verb is documented in the cli module docstring, with real
    flags, and the docstring's script count hasn't drifted."""
    doc = cli.__doc__
    for verb in known_flags:
        assert f"``{verb}``" in doc, (
            f"{verb} is installed but undocumented in repro/cli.py's "
            f"module docstring"
        )
    problems = audit(doc, known_flags, "repro/cli.py docstring")
    assert not problems, "\n".join(problems)
    count = re.search(r"(\w+) console scripts", doc)
    words = ["zero", "one", "two", "three", "four", "five", "six", "seven",
             "eight", "nine", "ten", "eleven"]
    assert count and count.group(1).lower() == words[len(known_flags)], (
        f"cli.py docstring advertises {count and count.group(1)!r} console "
        f"scripts; pyproject installs {len(known_flags)}"
    )


def test_parser_descriptions_and_epilogs(known_flags, monkeypatch):
    problems = []
    for verb, main in console_scripts().items():
        parser = capture_parser(main, monkeypatch)
        own = parser.format_help()
        problems += audit(parser.description or "", known_flags,
                          f"{verb} description")
        problems += audit(parser.epilog or "", known_flags, f"{verb} epilog")
        # Cross-references inside help strings ("see repro-check --all")
        # must also point at real flags.
        problems += audit(own, known_flags, f"{verb} --help")
        monkeypatch.undo()
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("doc", [
    "README.md", "EXPERIMENTS.md", "CONTRIBUTING.md", "Makefile",
    ".github/workflows/ci.yml",
])
def test_documented_invocations_use_real_flags(doc, known_flags):
    problems = audit((ROOT / doc).read_text(encoding="utf-8"),
                     known_flags, doc)
    assert not problems, "\n".join(problems)
