"""Tests for selection tables, policies, and the tuner
(:mod:`repro.selection`)."""

import pytest

from repro.errors import SelectionError
from repro.selection.defaults import (
    fixed_policy,
    mpich_policy,
    vendor_policy,
)
from repro.selection.table import Choice, Rule, SelectionTable
from repro.selection.tuner import radix_grid, sweep_collective, tune
from repro.simnet.machines import frontier


class TestRule:
    def test_half_open_ranges(self):
        rule = Rule("bcast", Choice("binomial"), min_bytes=16, max_bytes=64)
        assert not rule.matches(8, 15)
        assert rule.matches(8, 16)
        assert rule.matches(8, 63)
        assert not rule.matches(8, 64)

    def test_rank_range(self):
        rule = Rule("bcast", Choice("binomial"), min_ranks=4, max_ranks=16)
        assert not rule.matches(3, 8)
        assert rule.matches(4, 8)
        assert not rule.matches(16, 8)

    def test_unbounded_defaults(self):
        rule = Rule("bcast", Choice("binomial"))
        assert rule.matches(1, 0)
        assert rule.matches(10**6, 10**9)

    def test_unknown_collective_rejected(self):
        with pytest.raises(SelectionError):
            Rule("alltoall", Choice("binomial"))

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(SelectionError):
            Rule("bcast", Choice("quantum"))

    def test_radix_on_fixed_algorithm_rejected(self):
        with pytest.raises(SelectionError, match="radix"):
            Rule("bcast", Choice("binomial", k=4))

    def test_empty_ranges_rejected(self):
        with pytest.raises(SelectionError):
            Rule("bcast", Choice("binomial"), min_bytes=64, max_bytes=64)
        with pytest.raises(SelectionError):
            Rule("bcast", Choice("binomial"), min_ranks=4, max_ranks=4)


class TestTable:
    def test_first_match_wins(self):
        t = SelectionTable(name="t")
        t.add(Rule("bcast", Choice("binomial"), max_bytes=1024))
        t.add(Rule("bcast", Choice("knomial", 8)))
        assert t.select("bcast", 16, 100).algorithm == "binomial"
        assert t.select("bcast", 16, 2048).k == 8

    def test_fallback(self):
        t = SelectionTable(name="t")
        t.fallback["gather"] = Choice("binomial")
        assert t.select("gather", 8, 8).algorithm == "binomial"

    def test_no_rule_no_fallback_raises(self):
        t = SelectionTable(name="t")
        with pytest.raises(SelectionError, match="no rule"):
            t.select("bcast", 8, 8)

    def test_coverage_errors(self):
        t = SelectionTable(name="t")
        t.add(Rule("bcast", Choice("binomial"), max_bytes=1024))
        missing = t.coverage_errors("bcast", 8, [8, 512, 2048])
        assert missing == [2048]

    def test_json_roundtrip(self):
        t = mpich_policy()
        restored = SelectionTable.from_json(t.to_json())
        for coll in ("bcast", "reduce", "allgather", "allreduce"):
            for n in (8, 4096, 1 << 20):
                assert restored.select(coll, 128, n) == t.select(coll, 128, n)

    def test_json_rejects_garbage(self):
        with pytest.raises(SelectionError):
            SelectionTable.from_json("not json")
        with pytest.raises(SelectionError):
            SelectionTable.from_json('{"no_rules": []}')

    def test_json_validates_algorithms(self):
        bad = '{"name": "x", "rules": [{"collective": "bcast", "algorithm": "nope"}]}'
        with pytest.raises(SelectionError):
            SelectionTable.from_json(bad)

    def test_save_load(self, tmp_path):
        path = tmp_path / "sel.json"
        t = vendor_policy()
        t.save(path)
        restored = SelectionTable.load(path)
        assert restored.name == t.name
        assert len(restored.rules) == len(t.rules)

    def test_describe_renders_rules(self):
        text = mpich_policy().describe()
        assert "bcast" in text and "binomial" in text


class TestPolicies:
    def test_mpich_small_bcast_is_binomial(self):
        assert mpich_policy().select("bcast", 128, 8).algorithm == "binomial"

    def test_mpich_large_reduce_is_rabenseifner(self):
        assert (
            mpich_policy().select("reduce", 128, 1 << 20).algorithm
            == "reduce_scatter_gather"
        )

    def test_vendor_never_leaves_binomial_reduce(self):
        """The Cray-MPI-style mis-selection behind Fig. 9a's 4.5x."""
        v = vendor_policy()
        for n in (8, 1 << 16, 1 << 20, 1 << 24):
            assert v.select("reduce", 128, n).algorithm == "binomial"

    def test_policies_cover_all_paper_collectives(self):
        for policy in (mpich_policy(), vendor_policy()):
            for coll in ("bcast", "reduce", "allgather", "allreduce",
                         "gather", "scatter", "reduce_scatter"):
                for n in (0, 8, 1 << 12, 1 << 22, 1 << 28):
                    policy.select(coll, 128, n)  # must not raise

    def test_fixed_policy_pins_one_algorithm(self):
        t = fixed_policy("allreduce", "recursive_multiplying", 4)
        choice = t.select("allreduce", 64, 12345)
        assert choice == Choice("recursive_multiplying", 4)


class TestRadixGrid:
    def test_contents(self):
        assert radix_grid(16) == [2, 3, 4, 5, 8, 16]

    def test_min_k_1_for_kring(self):
        grid = radix_grid(8, min_k=1)
        assert grid[0] == 1
        assert 8 in grid

    def test_small_p(self):
        assert radix_grid(2) == [2]
        assert radix_grid(1) == [2]

    def test_invalid(self):
        with pytest.raises(SelectionError):
            radix_grid(0)


class TestTuner:
    @pytest.fixture(scope="class")
    def tuned(self):
        machine = frontier(8, 1)
        return machine, tune(machine, [8, 4096, 1 << 20])

    def test_covers_all_sizes(self, tuned):
        machine, table = tuned
        for coll in ("bcast", "reduce", "allgather", "allreduce"):
            assert table.coverage_errors(coll, machine.nranks,
                                         [0, 8, 4096, 1 << 20, 1 << 26]) == []

    def test_tuned_beats_or_ties_fixed_policies(self, tuned):
        from repro.bench.speedup import policy_latency

        machine, table = tuned
        for coll in ("bcast", "reduce", "allgather", "allreduce"):
            for n in (8, 4096, 1 << 20):
                t_tuned = policy_latency(table, coll, machine, n)
                t_fixed = policy_latency(mpich_policy(), coll, machine, n)
                assert t_tuned <= t_fixed * 1.0001

    def test_rule_merging_produces_compact_table(self, tuned):
        _, table = tuned
        # at most one rule per (collective, winner-run): ≤ 3 per collective
        per_coll = {}
        for rule in table.rules:
            per_coll[rule.collective] = per_coll.get(rule.collective, 0) + 1
        assert all(v <= 3 for v in per_coll.values())

    def test_sweep_returns_all_combinations(self):
        machine = frontier(4, 1)
        sweep = sweep_collective("reduce", machine, [8, 1024])
        # binomial + rsg (fixed) + knomial over the radix grid, 2 sizes
        grid = radix_grid(4)
        assert len(sweep.entries) == (2 + len(grid)) * 2
        best = sweep.best(8)
        assert best.time > 0

    def test_sweep_best_missing_size(self):
        machine = frontier(4, 1)
        sweep = sweep_collective("reduce", machine, [8])
        with pytest.raises(SelectionError):
            sweep.best(999)

    def test_tune_requires_sizes(self):
        with pytest.raises(SelectionError):
            tune(frontier(4, 1), [])


class TestTunerDeterminism:
    """The tuner's output is a function of (machine, sizes) only — never
    of how the sweep was scheduled.  ``--jobs`` fans the same points over
    a process pool with results in point order, so the argmin per size —
    and the emitted table — cannot change (the PR 2 determinism
    contract; see also tests/properties/test_schedule_cache.py)."""

    def test_same_winner_regardless_of_jobs(self, monkeypatch):
        import repro.parallel

        # Defeat the core-count clamp so jobs>=2 really uses the pool,
        # even on a single-core CI runner.
        monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: 8)
        machine = frontier(8, 1)
        sizes = [64, 4096, 1 << 16, 1 << 20]
        serial = tune(machine, sizes, jobs=0)
        pooled = tune(machine, sizes, jobs=4)
        assert pooled.to_json() == serial.to_json()

    def test_sweep_entries_identical_across_jobs(self, monkeypatch):
        import repro.parallel

        monkeypatch.setattr(repro.parallel, "_available_cpus", lambda: 8)
        machine = frontier(8, 1)
        serial = sweep_collective("allreduce", machine, [64, 1 << 18], jobs=0)
        pooled = sweep_collective("allreduce", machine, [64, 1 << 18], jobs=2)
        assert pooled.entries == serial.entries
