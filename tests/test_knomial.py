"""Tests for k-nomial tree structure and schedules (:mod:`repro.core.knomial`)."""

import pytest

from repro.core.knomial import (
    knomial_allgather,
    knomial_allreduce,
    knomial_attach_mask,
    knomial_bcast,
    knomial_children,
    knomial_gather,
    knomial_parent,
    knomial_reduce,
    knomial_scatter,
    knomial_subtree,
)
from repro.core.primitives import ilog
from repro.core.validate import verify
from repro.errors import ScheduleError

from conftest import INTERESTING_K, INTERESTING_P


class TestTreeStructure:
    def test_trinomial_parents_match_paper_figure(self):
        """Fig. 2: trinomial tree on 9 nodes — 0 roots {1,2,3,6}, 3 roots
        {4,5}, 6 roots {7,8}."""
        parents = [knomial_parent(r, 9, 3) for r in range(9)]
        assert parents == [None, 0, 0, 0, 3, 3, 0, 6, 6]

    def test_binomial_parents(self):
        parents = [knomial_parent(r, 8, 2) for r in range(8)]
        assert parents == [None, 0, 0, 2, 0, 4, 4, 6]

    def test_children_inverse_of_parent(self):
        for p in INTERESTING_P:
            for k in INTERESTING_K:
                for r in range(p):
                    for child, _ in knomial_children(r, p, k):
                        assert knomial_parent(child, p, k) == r

    def test_every_nonroot_has_exactly_one_parent(self):
        for p in INTERESTING_P:
            for k in INTERESTING_K:
                seen = {}
                for r in range(p):
                    for child, _ in knomial_children(r, p, k):
                        assert child not in seen
                        seen[child] = r
                assert sorted(seen) == list(range(1, p))

    def test_depth_is_max_nonzero_digit_count(self):
        """Walking to the parent zeroes a node's lowest nonzero base-k
        digit, so each node's depth is its count of nonzero digits and the
        tree depth is the maximum over ranks — always ≤ ⌈log_k p⌉ (the
        round count the cost models charge)."""

        def nonzero_digits(r: int, k: int) -> int:
            count = 0
            while r:
                if r % k:
                    count += 1
                r //= k
            return count

        for p in INTERESTING_P:
            for k in INTERESTING_K:
                depth = 0
                for r in range(p):
                    d = 0
                    node = r
                    while (parent := knomial_parent(node, p, k)) is not None:
                        node = parent
                        d += 1
                    assert d == nonzero_digits(r, k)
                    depth = max(depth, d)
                assert depth <= ilog(k, p)

    def test_subtrees_partition_ranks(self):
        for p in INTERESTING_P:
            for k in INTERESTING_K:
                # children subtrees of the root partition [1, p)
                covered = []
                for child, _ in knomial_children(0, p, k):
                    lo, hi = knomial_subtree(child, p, k)
                    covered.extend(range(lo, hi))
                assert sorted(covered) == list(range(1, p))

    def test_root_subtree_is_everything(self):
        assert knomial_subtree(0, 9, 3) == (0, 9)
        assert knomial_subtree(0, 17, 4) == (0, 17)

    def test_attach_mask_of_root_reaches_p(self):
        assert knomial_attach_mask(0, 9, 3) >= 9

    def test_children_ordered_largest_mask_first(self):
        children = knomial_children(0, 9, 3)
        masks = [m for _, m in children]
        assert masks == sorted(masks, reverse=True)


class TestSchedules:
    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_bcast_verifies_all_roots(self, p, k):
        for root in {0, p // 2, p - 1}:
            verify(knomial_bcast(p, k, root=root))

    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_reduce_verifies(self, p, k):
        verify(knomial_reduce(p, k, root=p - 1))

    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_gather_scatter_verify(self, p, k):
        verify(knomial_gather(p, k, root=p // 2))
        verify(knomial_scatter(p, k, root=p // 2))

    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_composites_verify(self, p, k):
        verify(knomial_allgather(p, k))
        verify(knomial_allreduce(p, k))

    def test_message_count_is_p_minus_1_per_phase(self):
        """A tree moves exactly p-1 messages (bcast) regardless of radix."""
        for k in INTERESTING_K:
            sched = knomial_bcast(17, k)
            assert sched.stats().messages == 16

    def test_step_concurrency_bounded_by_k_minus_1(self):
        """No step posts more than k-1 sends (one tree level at a time)."""
        for p in [16, 27]:
            for k in [3, 4]:
                sched = knomial_bcast(p, k)
                for prog in sched.programs:
                    for step in prog.steps:
                        assert len(step.sends) <= k - 1

    def test_radix_of_p_gives_flat_tree(self):
        """k >= p: root sends to everyone in one concurrent step."""
        sched = knomial_bcast(8, 8)
        root_prog = sched.programs[0]
        assert len(root_prog.steps) == 1
        assert len(root_prog.steps[0].sends) == 7

    def test_binomial_naming(self):
        assert knomial_bcast(8, 2).algorithm == "binomial"
        assert knomial_bcast(8, 3).algorithm == "knomial"

    def test_invalid_radix_rejected(self):
        with pytest.raises(ScheduleError):
            knomial_bcast(8, 1)

    def test_invalid_root_rejected(self):
        with pytest.raises(ScheduleError):
            knomial_bcast(8, 2, root=8)

    def test_bcast_nblocks_parameterized(self):
        sched = knomial_bcast(4, 2, nblocks=4)
        assert sched.nblocks == 4
        # every message carries all four blocks
        for prog in sched.programs:
            for _, op in prog.iter_ops():
                assert op.blocks == (0, 1, 2, 3)

    def test_single_rank_is_empty(self):
        sched = knomial_bcast(1, 2)
        assert all(not prog.steps for prog in sched.programs)
