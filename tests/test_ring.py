"""Tests for ring and k-ring (:mod:`repro.core.ring`)."""

import pytest

from repro.core.ring import (
    kring_allgather,
    kring_allreduce,
    kring_bcast,
    kring_groups,
    kring_reduce_scatter,
    ring_allgather,
    ring_allreduce,
    ring_bcast,
    ring_reduce_scatter,
)
from repro.core.schedule import RecvOp, SendOp
from repro.core.validate import verify
from repro.errors import ScheduleError

from conftest import INTERESTING_P


class TestGroups:
    def test_even_groups(self):
        assert kring_groups(6, 3) == [[0, 1, 2], [3, 4, 5]]

    def test_remainder_group(self):
        assert kring_groups(7, 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_k1_singletons(self):
        assert kring_groups(4, 1) == [[0], [1], [2], [3]]

    def test_k_at_least_p_single_group(self):
        assert kring_groups(5, 5) == [[0, 1, 2, 3, 4]]
        assert kring_groups(5, 99) == [[0, 1, 2, 3, 4]]

    def test_groups_partition_ranks(self):
        for p in INTERESTING_P:
            for k in range(1, p + 2):
                groups = kring_groups(p, k)
                flat = [r for g in groups for r in g]
                assert flat == list(range(p))

    def test_invalid_k(self):
        with pytest.raises(ScheduleError):
            kring_groups(4, 0)


class TestKRingAllgather:
    @pytest.mark.parametrize("p", INTERESTING_P)
    def test_verifies_across_all_k(self, p):
        for k in range(1, p + 2):
            verify(kring_allgather(p, k))

    def test_round_structure_matches_paper(self):
        """p = 6, k = 3 (paper Fig. 6): every rank runs 5 rounds —
        2 intra, 1 inter, 2 intra."""
        sched = kring_allgather(6, 3)
        for prog in sched.programs:
            assert len(prog.steps) == 5

    def test_k1_and_kp_both_reduce_to_classic_ring(self):
        """Both degenerate radices must produce a 5-round neighbor ring on
        6 ranks with identical per-rank message counts."""
        for k in (1, 6):
            sched = kring_allgather(6, k)
            assert sched.algorithm == "ring"
            for prog in sched.programs:
                assert len(prog.steps) == 5
                for step in prog.steps:
                    sends = step.sends
                    assert len(sends) == 1
                    # neighbor-only communication
                    assert sends[0].peer in (
                        (prog.rank + 1) % 6,
                        (prog.rank - 1) % 6,
                    )

    def test_neighbor_only_communication(self):
        """k | p: every message goes to the intra-ring or inter-ring
        neighbor — never further."""
        p, k = 12, 4
        groups = kring_groups(p, k)
        neighbor_ok = set()
        for grp in groups:
            s = len(grp)
            for i, r in enumerate(grp):
                neighbor_ok.add((r, grp[(i + 1) % s]))
        g = len(groups)
        for j, grp in enumerate(groups):
            nxt = groups[(j + 1) % g]
            for i, r in enumerate(grp):
                for i2 in range(len(nxt)):
                    if i2 % len(grp) == i:
                        neighbor_ok.add((r, nxt[i2]))
        sched = kring_allgather(p, k)
        for prog in sched.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, SendOp):
                    assert (prog.rank, op.peer) in neighbor_ok

    def test_each_block_received_exactly_once(self):
        for p, k in [(8, 4), (9, 4), (7, 3), (12, 5)]:
            sched = kring_allgather(p, k)
            for prog in sched.programs:
                got = []
                for _, op in prog.iter_ops():
                    if isinstance(op, RecvOp):
                        got.extend(op.blocks)
                assert sorted(got) == [b for b in range(p) if b != prog.rank]

    def test_uneven_groups_verify(self):
        # p = 7, k = 3 → groups of 3, 3, 1: the §VI-A corner case.
        sched = kring_allgather(7, 3)
        assert sched.meta["groups"] == [3, 3, 1]
        verify(sched)


class TestKRingComposites:
    @pytest.mark.parametrize("p", [1, 2, 3, 6, 7, 8, 12, 16])
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    def test_allreduce_verifies(self, p, k):
        verify(kring_allreduce(p, k))

    @pytest.mark.parametrize("p", [1, 2, 6, 7, 12])
    @pytest.mark.parametrize("k", [1, 3, 4])
    def test_reduce_scatter_verifies(self, p, k):
        verify(kring_reduce_scatter(p, k))

    @pytest.mark.parametrize("p", [1, 2, 6, 7, 12])
    def test_bcast_verifies(self, p):
        for k in (1, 3, p):
            verify(kring_bcast(p, k, root=p - 1))

    def test_allreduce_composition_structure(self):
        sched = kring_allreduce(8, 4)
        assert sched.collective == "allreduce"
        assert "phases" in sched.meta


class TestClassicRing:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 13])
    def test_all_classic_variants_verify(self, p):
        verify(ring_allgather(p))
        verify(ring_allreduce(p))
        verify(ring_reduce_scatter(p))
        verify(ring_bcast(p, root=p - 1))

    def test_classic_ring_has_no_radix(self):
        assert ring_allgather(8).k is None
        assert ring_allgather(8).algorithm == "ring"

    def test_ring_allreduce_is_2p_minus_2_rounds(self):
        """Patarasuk–Yuan: (p-1) reduce-scatter + (p-1) allgather rounds."""
        sched = ring_allreduce(6)
        for prog in sched.programs:
            assert len(prog.steps) == 10
