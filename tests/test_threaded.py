"""Tests for the thread-based transport (:mod:`repro.runtime.threaded`)."""

import numpy as np
import pytest

from repro.core.registry import build_schedule
from repro.core.schedule import RankProgram, RecvOp, Schedule, SendOp
from repro.errors import ExecutionError
from repro.runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.executor import execute
from repro.runtime.threaded import ThreadedTransport, execute_threaded


def run_both_ways(collective, algorithm, p, count, k=None, root=0, seed=0):
    """Execute the same schedule on the lockstep and threaded paths."""
    sched = build_schedule(collective, algorithm, p, k=k, root=root)
    inputs = make_inputs(collective, p, count, root=root,
                         rng=np.random.default_rng(seed))
    lock_bufs = initial_buffers(sched, inputs, count)
    thr_bufs = initial_buffers(sched, inputs, count)
    execute(sched, lock_bufs)
    execute_threaded(sched, thr_bufs, timeout=20.0)
    expected = reference_result(collective, inputs, count, root=root)
    check_outputs(sched, thr_bufs, expected, count)
    return lock_bufs, thr_bufs


@pytest.mark.parametrize(
    "collective,algorithm,p,k",
    [
        ("bcast", "knomial", 9, 3),
        ("bcast", "recursive_multiplying", 8, 4),
        ("reduce", "reduce_scatter_gather", 8, None),
        ("allgather", "kring", 12, 4),
        ("allgather", "recursive_multiplying", 17, 4),
        ("allreduce", "kring", 7, 3),
        ("allreduce", "reduce_scatter_allgather", 16, None),
        ("reduce_scatter", "ring", 6, None),
    ],
)
def test_threaded_matches_lockstep(collective, algorithm, p, k):
    lock_bufs, thr_bufs = run_both_ways(collective, algorithm, p, 4 * p + 3, k=k)
    for a, b in zip(lock_bufs, thr_bufs):
        assert np.array_equal(a, b)


def test_repeated_runs_are_deterministic():
    """GIL scheduling varies between runs, but FIFO channels and fixed
    receive application order make the data outcome identical."""
    results = []
    for _ in range(3):
        _, thr = run_both_ways("allreduce", "recursive_multiplying", 9, 30, k=3)
        results.append([b.copy() for b in thr])
    for later in results[1:]:
        for a, b in zip(results[0], later):
            assert np.array_equal(a, b)


def test_deadlocked_schedule_times_out():
    """A hand-built schedule whose receive never gets a send must abort
    with a diagnosis, not hang the test suite."""
    p0 = RankProgram(rank=0)
    p0.add(RecvOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    sched = Schedule(
        collective="bcast",
        algorithm="broken",
        nranks=2,
        nblocks=1,
        programs=[p0, p1],
        root=1,
    )
    transport = ThreadedTransport(sched, timeout=0.2)
    with pytest.raises(ExecutionError, match="timed out|failed"):
        transport.run([np.zeros(1, dtype=np.int64) for _ in range(2)])


def test_leftover_messages_detected():
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    sched = Schedule(
        collective="bcast",
        algorithm="leaky",
        nranks=2,
        nblocks=1,
        programs=[p0, p1],
        root=0,
    )
    with pytest.raises(ExecutionError, match="never"):
        execute_threaded(
            sched, [np.zeros(1, dtype=np.int64) for _ in range(2)], timeout=2.0
        )


def test_buffer_count_checked():
    sched = build_schedule("bcast", "binomial", 4)
    with pytest.raises(ExecutionError, match="buffers"):
        ThreadedTransport(sched).run([np.zeros(2)])


def test_larger_scale_threaded_run():
    """32 threads moving real data through a composite algorithm."""
    run_both_ways("allreduce", "kring", 32, 64, k=8)
