"""Tests for the network simulator (:mod:`repro.simnet.simulate`).

Small hand-checkable schedules with analytically known completion times,
plus behavioural checks for each modeled hardware feature: port
serialization, latency pipelining, intranode links, reduction compute,
dragonfly adders, and noise determinism.
"""

import pytest

from repro.core.registry import build_schedule
from repro.core.schedule import RankProgram, RecvOp, Schedule, SendOp
from repro.errors import MachineError
from repro.simnet.machine import DragonflySpec, MachineSpec
from repro.simnet.machines import frontier, reference
from repro.simnet.noise import NoiseModel
from repro.simnet.simulate import simulate, traffic_summary

ALPHA = 1e-6
BETA = 1e-9  # 1 ns per byte


def flat_machine(p, **overrides):
    """1 rank/node machine with trivial constants for exact arithmetic."""
    spec = dict(
        name="flat",
        nodes=p,
        ppn=1,
        alpha_inter=ALPHA,
        beta_inter=BETA,
        nic_ports=1,
        port_msg_overhead=0.0,
        alpha_intra=ALPHA,
        beta_intra=BETA,
        injection_overhead=0.0,
        gamma=0.0,
    )
    spec.update(overrides)
    return MachineSpec(**spec)


def ptp_schedule(collective="bcast"):
    """One message, rank 0 → rank 1."""
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(0,)))
    return Schedule(
        collective=collective, algorithm="ptp", nranks=2, nblocks=1,
        programs=[p0, p1], root=0,
    )


def fanout_schedule(fanout):
    """Rank 0 sends the whole buffer to `fanout` peers in ONE step."""
    p0 = RankProgram(rank=0)
    p0.add(*[SendOp(peer=i, blocks=(0,)) for i in range(1, fanout + 1)])
    progs = [p0]
    for i in range(1, fanout + 1):
        pr = RankProgram(rank=i)
        pr.add(RecvOp(peer=0, blocks=(0,)))
        progs.append(pr)
    return Schedule(
        collective="bcast", algorithm="fanout", nranks=fanout + 1,
        nblocks=1, programs=progs, root=0,
    )


class TestPointToPoint:
    def test_alpha_beta_cost(self):
        res = simulate(ptp_schedule(), flat_machine(2), 1000)
        assert res.time == pytest.approx(ALPHA + 1000 * BETA)

    def test_zero_bytes_costs_alpha(self):
        res = simulate(ptp_schedule(), flat_machine(2), 0)
        assert res.time == pytest.approx(ALPHA)

    def test_injection_overhead_charged_per_post(self):
        m = flat_machine(2, injection_overhead=1e-7)
        res = simulate(ptp_schedule(), m, 0)
        # one send post + one recv post, both before transfer can start
        assert res.time == pytest.approx(1e-7 + ALPHA)

    def test_reduce_adds_gamma(self):
        sched = ptp_schedule("reduce")
        sched.programs[1].steps[0] = type(sched.programs[1].steps[0])(
            (RecvOp(peer=0, blocks=(0,), reduce=True),)
        )
        m = flat_machine(2, gamma=2e-9)
        res = simulate(sched, m, 1000)
        assert res.time == pytest.approx(ALPHA + 1000 * BETA + 1000 * 2e-9)


class TestPortModel:
    def test_single_port_serializes_bandwidth_but_pipelines_alpha(self):
        """Eq. (3)'s per-level cost: fanout k-1 over one port is
        α + (k-1)·n·β, not (k-1)·(α + n·β)."""
        n = 10_000
        res = simulate(fanout_schedule(3), flat_machine(4), n)
        assert res.time == pytest.approx(3 * n * BETA + ALPHA)

    def test_multiple_ports_stream_in_parallel(self):
        n = 10_000
        res = simulate(fanout_schedule(3), flat_machine(4, nic_ports=4), n)
        assert res.time == pytest.approx(n * BETA + ALPHA)

    def test_wave_quantization(self):
        """5 messages over 2 ports = 3 bandwidth waves."""
        n = 10_000
        res = simulate(fanout_schedule(5), flat_machine(6, nic_ports=2), n)
        assert res.time == pytest.approx(3 * n * BETA + ALPHA)

    def test_port_msg_overhead_charged_per_message(self):
        m = flat_machine(4, port_msg_overhead=1e-7)
        res = simulate(fanout_schedule(3), m, 0)
        assert res.time == pytest.approx(3 * 1e-7 + ALPHA)


class TestIntranode:
    def test_intranode_uses_intra_constants(self):
        m = MachineSpec(
            name="two-on-one", nodes=1, ppn=2,
            alpha_inter=ALPHA, beta_inter=BETA,
            alpha_intra=ALPHA / 10, beta_intra=BETA / 10,
        )
        res = simulate(ptp_schedule(), m, 1000)
        assert res.time == pytest.approx(ALPHA / 10 + 1000 * BETA / 10)
        assert res.intra_messages == 1
        assert res.inter_messages == 0

    def test_shared_fabric_contends(self):
        m = MachineSpec(
            name="narrow-fabric", nodes=1, ppn=4,
            alpha_inter=ALPHA, beta_inter=BETA,
            alpha_intra=ALPHA, beta_intra=BETA,
            intra_kind="shared", intra_channels=1,
        )
        n = 10_000
        res = simulate(fanout_schedule(3), m, n)
        assert res.time == pytest.approx(3 * n * BETA + ALPHA)

    def test_dedicated_fabric_does_not_contend(self):
        m = MachineSpec(
            name="wide-fabric", nodes=1, ppn=4,
            alpha_inter=ALPHA, beta_inter=BETA,
            alpha_intra=ALPHA, beta_intra=BETA,
            intra_kind="dedicated",
        )
        n = 10_000
        res = simulate(fanout_schedule(3), m, n)
        assert res.time == pytest.approx(n * BETA + ALPHA)


class TestDragonfly:
    def test_global_latency_adder(self):
        m = flat_machine(
            4,
            dragonfly=DragonflySpec(nodes_per_group=2, alpha_global=5e-7),
        )
        # rank 0 -> 1: same group (no adder).
        m2 = flat_machine(
            2, dragonfly=DragonflySpec(nodes_per_group=2, alpha_global=5e-7)
        )
        same = simulate(ptp_schedule(), m2, 0)
        assert same.time == pytest.approx(ALPHA)

        p0 = RankProgram(rank=0)
        p0.add(SendOp(peer=2, blocks=(0,)))
        p2 = RankProgram(rank=2)
        p2.add(RecvOp(peer=0, blocks=(0,)))
        sched = Schedule(
            collective="bcast", algorithm="cross", nranks=4, nblocks=1,
            programs=[p0, RankProgram(rank=1), p2, RankProgram(rank=3)],
            root=0,
        )
        cross = simulate(sched, m, 0)
        assert cross.time == pytest.approx(ALPHA + 5e-7)
        assert cross.global_messages == 1

    def test_global_channel_contention(self):
        m = flat_machine(
            8,
            nic_ports=8,
            dragonfly=DragonflySpec(
                nodes_per_group=4, alpha_global=0.0, global_channels=1
            ),
        )
        # rank 0 sends to ranks 4,5,6 (all crossing): 1 global channel
        p0 = RankProgram(rank=0)
        p0.add(*[SendOp(peer=i, blocks=(0,)) for i in (4, 5, 6)])
        progs = [p0] + [RankProgram(rank=r) for r in range(1, 8)]
        for i in (4, 5, 6):
            progs[i].add(RecvOp(peer=0, blocks=(0,)))
        sched = Schedule(
            collective="bcast", algorithm="x", nranks=8, nblocks=1,
            programs=progs, root=0,
        )
        n = 10_000
        res = simulate(sched, m, n)
        assert res.time == pytest.approx(3 * n * BETA + ALPHA)


class TestNoise:
    def test_noise_is_deterministic_per_seed(self):
        sched = build_schedule("allreduce", "recursive_doubling", 8)
        m = frontier(8, 1)
        a = simulate(sched, m, 1024, noise=NoiseModel(0.3, seed=7)).time
        b = simulate(sched, m, 1024, noise=NoiseModel(0.3, seed=7)).time
        c = simulate(sched, m, 1024, noise=NoiseModel(0.3, seed=8)).time
        assert a == b
        assert a != c

    def test_zero_sigma_is_noise_free(self):
        sched = build_schedule("bcast", "binomial", 8)
        m = reference(8)
        clean = simulate(sched, m, 1024).time
        noisy = simulate(sched, m, 1024, noise=NoiseModel(0.0, seed=3)).time
        assert clean == noisy

    def test_negative_sigma_rejected(self):
        with pytest.raises(MachineError):
            NoiseModel(-0.1)


class TestValidation:
    def test_rank_count_mismatch(self):
        sched = build_schedule("bcast", "binomial", 8)
        with pytest.raises(MachineError, match="hosts"):
            simulate(sched, reference(4), 8)

    def test_negative_bytes(self):
        sched = build_schedule("bcast", "binomial", 4)
        with pytest.raises(MachineError):
            simulate(sched, reference(4), -1)

    def test_unmatched_send_detected(self):
        p0 = RankProgram(rank=0)
        p0.add(SendOp(peer=1, blocks=(0,)))
        sched = Schedule(
            collective="bcast", algorithm="leak", nranks=2, nblocks=1,
            programs=[p0, RankProgram(rank=1)], root=0,
        )
        with pytest.raises(MachineError, match="unmatched"):
            simulate(sched, reference(2), 8)


class TestResultAccounting:
    def test_traffic_summary_matches_simulation(self):
        sched = build_schedule("allgather", "kring", 16, k=4)
        m = frontier(4, 4)
        static = traffic_summary(sched, m, 4096)
        dynamic = simulate(sched, m, 4096)
        assert static.messages == dynamic.messages
        assert static.intra_bytes == dynamic.intra_bytes
        assert static.inter_bytes == dynamic.inter_bytes

    def test_timeline_collection(self):
        sched = build_schedule("bcast", "binomial", 4)
        res = simulate(sched, reference(4), 64, collect_timeline=True)
        assert res.timeline is not None
        assert len(res.timeline) == res.messages
        for src, dst, nbytes, t0, t1, link in res.timeline:
            assert t1 >= t0
            assert link in ("intra", "inter", "global")

    def test_rank_times_bounded_by_makespan(self):
        sched = build_schedule("allreduce", "ring", 8)
        res = simulate(sched, reference(8), 4096)
        assert max(res.rank_times) == pytest.approx(res.time)

    def test_time_us_conversion(self):
        res = simulate(ptp_schedule(), flat_machine(2), 0)
        assert res.time_us == pytest.approx(res.time * 1e6)
