"""Tests for timeline analysis and Chrome-trace export
(:mod:`repro.simnet.trace`)."""

import json

import pytest

from repro.core.registry import build_schedule
from repro.errors import ReproError, TraceError
from repro.simnet import frontier, reference, simulate
from repro.simnet.trace import (
    timeline_stats,
    to_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def traced_result():
    sched = build_schedule("allreduce", "recursive_multiplying", 16, k=4)
    return simulate(sched, frontier(16, 1), 4096, collect_timeline=True), 16


class TestChromeTrace:
    def test_requires_timeline(self):
        sched = build_schedule("bcast", "binomial", 4)
        res = simulate(sched, reference(4), 8)  # no collect_timeline
        with pytest.raises(TraceError, match="timeline"):
            to_chrome_trace(res)
        # TraceError is part of the package hierarchy, so blanket
        # `except ReproError` handlers still catch it.
        assert issubclass(TraceError, ReproError)

    def test_timeline_present_no_raise(self, traced_result):
        res, _ = traced_result
        assert to_chrome_trace(res)["traceEvents"]

    def test_event_structure(self, traced_result):
        res, p = traced_result
        doc = to_chrome_trace(res)
        events = doc["traceEvents"]
        xfers = [e for e in events if e["ph"] == "X"]
        marks = [e for e in events if e["ph"] == "i"]
        assert len(xfers) == res.messages
        assert len(marks) == p
        for e in xfers:
            assert e["dur"] >= 0
            assert 0 <= e["tid"] < p
            assert e["args"]["link"] in ("intra", "inter", "global")

    def test_times_scaled_to_microseconds(self, traced_result):
        res, _ = traced_result
        doc = to_chrome_trace(res)
        last = max(e["ts"] for e in doc["traceEvents"])
        assert last == pytest.approx(res.time_us, rel=0.05)

    def test_written_file_is_loadable_json(self, traced_result, tmp_path):
        res, _ = traced_result
        path = write_chrome_trace(res, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTimelineStats:
    def test_busy_time_and_classes(self, traced_result):
        res, p = traced_result
        stats = timeline_stats(res, p)
        assert stats.makespan == res.time
        assert sum(stats.busy_time.values()) > 0
        # a 1-ppn machine has no intranode transfers
        assert "intra" not in stats.busy_time

    def test_max_concurrent_bounded_by_messages(self, traced_result):
        res, p = traced_result
        stats = timeline_stats(res, p)
        assert 1 <= stats.max_concurrent <= res.messages

    def test_recv_bytes_conservation(self, traced_result):
        res, p = traced_result
        stats = timeline_stats(res, p)
        assert sum(stats.per_rank_recv_bytes) == (
            res.intra_bytes + res.inter_bytes
        )

    def test_symmetric_algorithm_has_even_load(self, traced_result):
        """Recursive multiplying is rank-symmetric on a power-of-k core:
        inbound bytes are identical across ranks."""
        res, p = traced_result
        stats = timeline_stats(res, p)
        assert stats.recv_imbalance == pytest.approx(1.0)

    def test_rooted_algorithm_has_uneven_load(self):
        sched = build_schedule("gather", "binomial", 16)
        res = simulate(sched, reference(16), 1600, collect_timeline=True)
        stats = timeline_stats(res, 16)
        # the root absorbs everything
        assert stats.recv_imbalance > 4
        assert stats.per_rank_recv_bytes[0] > 0

    def test_utilization(self, traced_result):
        res, p = traced_result
        stats = timeline_stats(res, p)
        assert stats.utilization("inter") > 0
        assert stats.utilization("nonexistent") == 0.0
