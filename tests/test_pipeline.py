"""Tests for the pipelined chain broadcast (:mod:`repro.core.pipeline`)."""

import pytest

from repro.core.pipeline import chain_bcast, optimal_segments
from repro.core.validate import verify
from repro.errors import ScheduleError
from repro.models import ModelParams, chain_bcast_time
from repro.runtime.executor import run_collective
from repro.simnet import reference, simulate


class TestSchedule:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16])
    @pytest.mark.parametrize("segments", [1, 2, 4, 7])
    def test_verifies(self, p, segments):
        for root in {0, p - 1}:
            verify(chain_bcast(p, segments, root=root))

    @pytest.mark.parametrize("p", [2, 5, 9])
    @pytest.mark.parametrize("segments", [1, 3, 8])
    def test_moves_real_data(self, p, segments):
        run_collective("bcast", "pipelined_chain", p, 2 * segments + 3,
                       k=segments, root=p - 1)

    def test_chain_structure(self):
        """Rank r only ever talks to r-1 and r+1 (relative to the root)."""
        sched = chain_bcast(6, 3)
        from repro.core.schedule import RecvOp, SendOp

        for prog in sched.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, (SendOp, RecvOp)):
                    assert abs(op.peer - prog.rank) == 1

    def test_single_segment_is_plain_chain(self):
        sched = chain_bcast(4, 1)
        assert sched.algorithm == "chain"
        assert sched.nblocks == 1

    def test_invalid_segments(self):
        with pytest.raises(ScheduleError):
            chain_bcast(4, 0)


class TestPipelineEffect:
    def test_segmentation_hides_chain_latency(self):
        """The whole point: at large n, many segments beat one."""
        p, n = 16, 1 << 20
        machine = reference(p)
        t1 = simulate(chain_bcast(p, 1), machine, n).time
        t16 = simulate(chain_bcast(p, 16), machine, n).time
        assert t16 < t1 / 2

    def test_u_shaped_segment_curve(self):
        """Too few segments → serialized chain; too many → α per segment.
        The optimum sits in between."""
        p, n = 16, 1 << 18
        machine = reference(p)
        times = {
            s: simulate(chain_bcast(p, s), machine, n).time
            for s in (1, 8, 64, 4096)
        }
        assert times[8] < times[1]
        assert times[64] < times[4096]

    def test_model_matches_simulation_on_reference(self):
        p, n, s = 8, 1 << 16, 4
        machine = reference(p)
        params = ModelParams(machine.alpha_inter, machine.beta_inter)
        predicted = chain_bcast_time(n, p, s, params)
        simulated = simulate(chain_bcast(p, s), machine, n).time
        # steady-state pipeline: the model is exact on the overhead-free
        # machine (each hop of each segment costs α + βn/S, fully
        # overlapped across the chain)
        assert simulated == pytest.approx(predicted, rel=0.05)


class TestOptimalSegments:
    def test_closed_form_near_swept_optimum(self):
        p, n = 16, 1 << 18
        machine = reference(p)
        s_star = optimal_segments(n, p, machine.alpha_inter,
                                  machine.beta_inter)
        t_star = simulate(chain_bcast(p, s_star), machine, n).time
        # the closed form must be within 10% of a fine sweep's best
        best = min(
            simulate(chain_bcast(p, s), machine, n).time
            for s in (1, 2, 4, 8, 16, 32, 64, 128, 256)
        )
        assert t_star <= best * 1.10

    def test_degenerate_cases(self):
        assert optimal_segments(0, 8, 1e-6, 1e-9) == 1
        assert optimal_segments(1 << 20, 2, 1e-6, 1e-9) == 1
        assert optimal_segments(1 << 20, 1, 1e-6, 1e-9) == 1

    def test_grows_with_message_size(self):
        s_small = optimal_segments(1 << 10, 32, 2e-6, 4e-11)
        s_big = optimal_segments(1 << 24, 32, 2e-6, 4e-11)
        assert s_big > s_small

    def test_invalid_inputs(self):
        with pytest.raises(ScheduleError):
            optimal_segments(100, 0, 1e-6, 1e-9)
        with pytest.raises(ScheduleError):
            optimal_segments(100, 8, 0.0, 1e-9)
