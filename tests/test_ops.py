"""Tests for reduction operators (:mod:`repro.runtime.ops`)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.ops import (
    ALL_OPS,
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    by_name,
)


class TestApply:
    def test_sum_in_place(self):
        acc = np.array([1, 2, 3], dtype=np.int64)
        SUM.apply(acc, np.array([10, 20, 30], dtype=np.int64))
        assert acc.tolist() == [11, 22, 33]

    def test_max_min(self):
        acc = np.array([5, 1], dtype=np.int64)
        MAX.apply(acc, np.array([3, 9], dtype=np.int64))
        assert acc.tolist() == [5, 9]
        MIN.apply(acc, np.array([4, 4], dtype=np.int64))
        assert acc.tolist() == [4, 4]

    def test_prod(self):
        acc = np.array([2, 3], dtype=np.int64)
        PROD.apply(acc, np.array([5, 7], dtype=np.int64))
        assert acc.tolist() == [10, 21]

    def test_bitwise(self):
        acc = np.array([0b1100], dtype=np.int64)
        BAND.apply(acc, np.array([0b1010], dtype=np.int64))
        assert acc.tolist() == [0b1000]
        BOR.apply(acc, np.array([0b0011], dtype=np.int64))
        assert acc.tolist() == [0b1011]
        BXOR.apply(acc, np.array([0b1111], dtype=np.int64))
        assert acc.tolist() == [0b0100]

    def test_logical(self):
        acc = np.array([0, 2, 0], dtype=np.int64)
        LOR.apply(acc, np.array([0, 0, 5], dtype=np.int64))
        assert acc.tolist() == [0, 1, 1]
        acc2 = np.array([1, 1, 0], dtype=np.int64)
        LAND.apply(acc2, np.array([1, 0, 1], dtype=np.int64))
        assert acc2.tolist() == [1, 0, 0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExecutionError, match="shape"):
            SUM.apply(np.zeros(3), np.zeros(4))

    def test_bitwise_rejects_floats(self):
        with pytest.raises(ExecutionError, match="integer"):
            BAND.apply(np.zeros(2), np.zeros(2))

    def test_sum_works_on_floats(self):
        acc = np.array([0.5])
        SUM.apply(acc, np.array([0.25]))
        assert acc[0] == 0.75


class TestAlgebra:
    def test_idempotence_flags_are_true(self):
        x = np.array([3, 7, 0], dtype=np.int64)
        for op in ALL_OPS:
            if op.idempotent:
                acc = x.copy()
                op.apply(acc, x)
                assert np.array_equal(acc, op.fn(x, x)), op.name

    def test_commutativity(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 50, 16)
        b = rng.integers(0, 50, 16)
        for op in ALL_OPS:
            ab = a.copy()
            op.apply(ab, b)
            ba = b.copy()
            op.apply(ba, a)
            assert np.array_equal(ab, ba), op.name

    def test_associativity(self):
        rng = np.random.default_rng(2)
        a, b, c = (rng.integers(0, 9, 8) for _ in range(3))
        for op in ALL_OPS:
            left = a.copy()
            op.apply(left, b)
            op.apply(left, c)
            bc = b.copy()
            op.apply(bc, c)
            right = a.copy()
            op.apply(right, bc)
            assert np.array_equal(left, right), op.name


class TestReduceAll:
    def test_reduce_all_orders_left_to_right(self):
        parts = tuple(np.array([i], dtype=np.int64) for i in range(5))
        assert SUM.reduce_all(parts).tolist() == [10]

    def test_reduce_all_does_not_mutate_inputs(self):
        a = np.array([1], dtype=np.int64)
        SUM.reduce_all((a, np.array([2], dtype=np.int64)))
        assert a[0] == 1

    def test_reduce_all_empty_rejected(self):
        with pytest.raises(ExecutionError):
            SUM.reduce_all(())


class TestByName:
    def test_roundtrip(self):
        for op in ALL_OPS:
            assert by_name(op.name) is op

    def test_case_insensitive(self):
        assert by_name("SUM") is SUM

    def test_unknown(self):
        with pytest.raises(ExecutionError, match="unknown"):
            by_name("avg")
