"""Shared fixtures and parameter grids for the test suite."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.simnet import MachineSpec, frontier, polaris, reference

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current outputs "
        "instead of comparing against them",
    )


class GoldenFile:
    """One pinned-output JSON file under ``tests/golden/``.

    ``check(actual)`` compares exactly (floats survive a JSON round trip
    bit-for-bit, so ``==`` pins costs to the last digit); with
    ``--update-golden`` it rewrites the file instead.  A missing file
    fails with the command that creates it.
    """

    def __init__(self, name: str, update: bool) -> None:
        self.path = GOLDEN_DIR / f"{name}.json"
        self.update = update

    def check(self, actual: dict) -> None:
        if self.update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            self.path.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n"
            )
            return
        if not self.path.exists():
            pytest.fail(
                f"golden file {self.path} is missing — create it with: "
                f"pytest {Path(__file__).parent.name} --update-golden"
            )
        expected = json.loads(self.path.read_text())
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        assert not missing and not extra, (
            f"golden key set changed (missing={missing[:5]}, "
            f"extra={extra[:5]}); rerun with --update-golden if intended"
        )
        diffs = {
            key: (expected[key], actual[key])
            for key in expected
            if expected[key] != actual[key]
        }
        assert not diffs, (
            f"{len(diffs)} golden value(s) changed in {self.path.name} "
            f"(first few: {dict(list(diffs.items())[:3])}); simulated "
            f"costs are pinned to the last digit — if the change is "
            f"intentional, rerun with --update-golden and explain it in "
            f"the commit"
        )


@pytest.fixture
def golden(request: pytest.FixtureRequest):
    """Factory for :class:`GoldenFile` honoring ``--update-golden``."""
    update = request.config.getoption("--update-golden")

    def _make(name: str) -> GoldenFile:
        return GoldenFile(name, update)

    return _make

#: Process counts covering the paper's corner cases: powers of two, powers
#: of odd radices, primes, and mixed composites.
INTERESTING_P = [1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 24, 27, 31, 32]

#: Radices covering degenerate (k >= p), default, odd, and port-multiple values.
INTERESTING_K = [2, 3, 4, 5, 8]


@pytest.fixture(scope="session")
def tiny_frontier() -> MachineSpec:
    """A 4-node, 2-ppn Frontier-like machine (8 ranks) for fast sims."""
    return frontier(4, 2)


@pytest.fixture(scope="session")
def small_frontier() -> MachineSpec:
    """A 16-node, 1-ppn Frontier-like machine."""
    return frontier(16, 1)


@pytest.fixture(scope="session")
def small_polaris() -> MachineSpec:
    """An 8-node, 4-ppn Polaris-like machine (32 ranks)."""
    return polaris(8, 4)


@pytest.fixture(scope="session")
def ref16() -> MachineSpec:
    """The model-exact reference machine with 16 ranks."""
    return reference(16)
