"""Shared fixtures and parameter grids for the test suite."""

from __future__ import annotations

import pytest

from repro.simnet import MachineSpec, frontier, polaris, reference

#: Process counts covering the paper's corner cases: powers of two, powers
#: of odd radices, primes, and mixed composites.
INTERESTING_P = [1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 24, 27, 31, 32]

#: Radices covering degenerate (k >= p), default, odd, and port-multiple values.
INTERESTING_K = [2, 3, 4, 5, 8]


@pytest.fixture(scope="session")
def tiny_frontier() -> MachineSpec:
    """A 4-node, 2-ppn Frontier-like machine (8 ranks) for fast sims."""
    return frontier(4, 2)


@pytest.fixture(scope="session")
def small_frontier() -> MachineSpec:
    """A 16-node, 1-ppn Frontier-like machine."""
    return frontier(16, 1)


@pytest.fixture(scope="session")
def small_polaris() -> MachineSpec:
    """An 8-node, 4-ppn Polaris-like machine (32 ranks)."""
    return polaris(8, 4)


@pytest.fixture(scope="session")
def ref16() -> MachineSpec:
    """The model-exact reference machine with 16 ranks."""
    return reference(16)
