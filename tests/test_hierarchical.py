"""Tests for rank remapping and hierarchical allreduce
(:mod:`repro.core.hierarchical`)."""

import numpy as np
import pytest

from repro.core.hierarchical import hierarchical_allreduce, remap_ranks
from repro.core.knomial import knomial_bcast
from repro.core.validate import verify
from repro.errors import ScheduleError
from repro.runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.executor import execute
from repro.simnet import frontier, simulate


class TestRemap:
    def test_embeds_group_into_larger_space(self):
        small = knomial_bcast(3, 2, root=0)
        big = remap_ranks(small, [4, 1, 6], 8)
        assert big.nranks == 8
        assert big.root == 4
        # unmapped ranks are idle
        for r in (0, 2, 3, 5, 7):
            assert not big.programs[r].steps
        # peers follow the mapping
        peers = {
            op.peer
            for _, op in big.programs[4].iter_ops()
        }
        assert peers <= {1, 6}

    def test_identity_mapping_preserves_schedule(self):
        sched = knomial_bcast(4, 2)
        same = remap_ranks(sched, [0, 1, 2, 3], 4)
        assert [p.steps for p in same.programs] == [
            p.steps for p in sched.programs
        ]

    def test_non_injective_rejected(self):
        with pytest.raises(ScheduleError, match="injective"):
            remap_ranks(knomial_bcast(3, 2), [0, 1, 1], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ScheduleError):
            remap_ranks(knomial_bcast(3, 2), [0, 1, 5], 4)

    def test_wrong_length_rejected(self):
        with pytest.raises(ScheduleError):
            remap_ranks(knomial_bcast(3, 2), [0, 1], 4)

    def test_remapped_schedule_verifies(self):
        """A bcast among a scattered subset is still a valid bcast on that
        subset (rebuilt as a full-space schedule with idle ranks, the
        postcondition only constrains mapped ranks — here checked via a
        composition that reaches all ranks)."""
        sched = hierarchical_allreduce(12, 3)
        verify(sched)


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize(
        "nodes,ppn", [(1, 1), (1, 8), (8, 1), (4, 4), (3, 5), (8, 8)]
    )
    @pytest.mark.parametrize(
        "leader_alg,leader_k",
        [("recursive_doubling", None), ("recursive_multiplying", 4),
         ("knomial", 3)],
    )
    def test_verifies_and_computes(self, nodes, ppn, leader_alg, leader_k):
        p = nodes * ppn
        sched = hierarchical_allreduce(
            p, ppn, leader_algorithm=leader_alg, leader_k=leader_k
        )
        verify(sched)
        inputs = make_inputs("allreduce", p, 9)
        bufs = initial_buffers(sched, inputs, 9)
        execute(sched, bufs)
        check_outputs(
            sched, bufs, reference_result("allreduce", inputs, 9), 9
        )

    def test_requires_divisible_ppn(self):
        with pytest.raises(ScheduleError, match="divide"):
            hierarchical_allreduce(10, 3)

    def test_rejects_block_partitioned_leader_algorithm(self):
        with pytest.raises(ScheduleError, match="whole-buffer"):
            hierarchical_allreduce(16, 4, leader_algorithm="ring")

    def test_metadata(self):
        sched = hierarchical_allreduce(16, 4, intra_k=4,
                                       leader_algorithm="knomial",
                                       leader_k=2)
        assert sched.meta["ppn"] == 4
        assert sched.meta["leader_algorithm"] == "knomial"
        assert sched.algorithm == "hierarchical"

    def test_only_leaders_touch_the_network(self):
        """Every internode message must be between node leaders — the
        point of the composition."""
        from repro.core.schedule import SendOp

        ppn = 4
        machine = frontier(4, ppn)
        sched = hierarchical_allreduce(16, ppn)
        leaders = {0, 4, 8, 12}
        for prog in sched.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, SendOp) and not machine.same_node(
                    prog.rank, op.peer
                ):
                    assert prog.rank in leaders
                    assert op.peer in leaders

    def test_beats_flat_algorithms_at_medium_sizes(self):
        """On a hierarchical machine, the two-level composition should
        beat flat whole-vector algorithms at latency/medium sizes (fewer
        NIC crossings of full vectors)."""
        from repro.core.registry import build_schedule

        machine = frontier(8, 8)
        p = machine.nranks
        hier = hierarchical_allreduce(
            p, 8, leader_algorithm="recursive_multiplying", leader_k=4
        )
        flat = build_schedule("allreduce", "recursive_doubling", p)
        for n in (1024, 65536):
            assert (
                simulate(hier, machine, n).time
                < simulate(flat, machine, n).time
            )
