"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the plan's determinism contract, the lossy channel's ack/retry
protocol, the fault-aware paths of both backends (threaded transport and
simulator), the engine's enriched deadlock diagnosis, and the guarantee
the whole subsystem exists for: one :class:`~repro.faults.FaultPlan`
object means the same thing everywhere.
"""

import threading

import numpy as np
import pytest

from repro.core.registry import build_schedule
from repro.errors import ExecutionError, FaultError, MachineError, PartialFailure
from repro.faults import (
    ChannelAborted,
    ChannelBroken,
    ChannelMonitor,
    ChannelTimeout,
    Crash,
    FaultPlan,
    LinkFault,
    LossyChannel,
    RetryPolicy,
    Straggler,
    derive_rng,
)
from repro.runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from repro.runtime.session import Session
from repro.runtime.threaded import ThreadedTransport, execute_threaded
from repro.simnet.engine import Engine, Event
from repro.simnet.machines import reference
from repro.simnet.noise import NoiseModel
from repro.simnet.simulate import simulate

FAST = RetryPolicy(max_retries=8, rto=0.01, backoff=2.0, max_rto=0.08)


def _run_threaded(sched, count=64, *, faults=None, timeout=5.0):
    coll = sched.collective
    inputs = make_inputs(coll, sched.nranks, count)
    expected = reference_result(coll, inputs, count)
    bufs = initial_buffers(sched, inputs, count)
    execute_threaded(sched, bufs, timeout=timeout, faults=faults)
    check_outputs(sched, bufs, expected, count)
    return bufs


class TestRng:
    def test_deterministic(self):
        a = derive_rng(7, 1, 2, 3).random()
        b = derive_rng(7, 1, 2, 3).random()
        assert a == b

    def test_counters_matter(self):
        assert derive_rng(7, 1, 2).random() != derive_rng(7, 2, 1).random()

    def test_single_counter_matches_noise_model_stream(self):
        """NoiseModel moved onto derive_rng; the stream must not shift."""
        knuth = 2654435761
        for seed, index in [(0, 0), (3, 17), (123, 999)]:
            legacy = np.random.default_rng(
                (seed << 32) ^ (index * knuth % 2**31)
            ).random()
            assert derive_rng(seed, index).random() == legacy


class TestFaultPlan:
    def test_inactive_by_default(self):
        plan = FaultPlan()
        assert not plan.is_active
        assert not plan.has_loss

    def test_validation(self):
        with pytest.raises(MachineError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(MachineError):
            LinkFault(2, 2)
        with pytest.raises(MachineError):
            Straggler(rank=0, factor=0.5)
        with pytest.raises(MachineError):
            Crash(rank=-1, step=0)
        with pytest.raises(MachineError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(MachineError):
            FaultPlan(crashes=(Crash(0, 1), Crash(0, 2)))
        with pytest.raises(MachineError):
            FaultPlan(links=(LinkFault(0, 1), LinkFault(0, 1)))

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(drop_rate=0.3, dup_rate=0.2, delay_rate=0.5, seed=11)
        again = FaultPlan(drop_rate=0.3, dup_rate=0.2, delay_rate=0.5, seed=11)
        for seq in range(50):
            assert plan.drops(0, 1, seq, 0) == again.drops(0, 1, seq, 0)
            assert plan.duplicates(0, 1, seq) == again.duplicates(0, 1, seq)
            assert plan.delay(0, 1, seq) == again.delay(0, 1, seq)

    def test_seed_changes_decisions(self):
        a = FaultPlan(drop_rate=0.5, seed=0)
        b = FaultPlan(drop_rate=0.5, seed=1)
        fates = [
            (a.drops(0, 1, s, 0), b.drops(0, 1, s, 0)) for s in range(64)
        ]
        assert any(x != y for x, y in fates)

    def test_rate_extremes_short_circuit(self):
        dead = FaultPlan(drop_rate=1.0, seed=0)
        clean = FaultPlan(dup_rate=0.0, drop_rate=0.0, delay_rate=1.0, seed=0)
        assert all(dead.drops(0, 1, s, 0) for s in range(16))
        assert not any(clean.drops(0, 1, s, 0) for s in range(16))
        assert clean.delay(0, 1, 0) == clean.delay_factor

    def test_link_rates_combine_independently(self):
        plan = FaultPlan(
            drop_rate=0.5, seed=0, links=(LinkFault(0, 1, drop_rate=0.5),)
        )
        drop, _ = plan._rates(0, 1)
        assert drop == pytest.approx(0.75)
        drop_other, _ = plan._rates(1, 0)
        assert drop_other == 0.5

    def test_attempts_needed(self):
        plan = FaultPlan(
            seed=0,
            links=(LinkFault(0, 1, drop_rate=1.0),),
            retry=RetryPolicy(max_retries=3, rto=0.01),
        )
        assert plan.attempts_needed(0, 1, 0) is None
        assert plan.attempts_needed(1, 0, 0) == 0

    def test_rto_backoff_capped(self):
        pol = RetryPolicy(max_retries=10, rto=0.01, backoff=2.0, max_rto=0.05)
        assert pol.rto_after(0) == pytest.approx(0.01)
        assert pol.rto_after(1) == pytest.approx(0.02)
        assert pol.rto_after(10) == pytest.approx(0.05)

    def test_describe_mentions_everything(self):
        text = FaultPlan(
            drop_rate=0.1,
            stragglers=(Straggler(1, 4.0),),
            crashes=(Crash(2, 0),),
        ).describe()
        assert "drop" in text and "straggler" in text and "crash" in text


class TestLossyChannel:
    def test_reliable_fifo(self):
        ch = LossyChannel(0, 1)
        for i in range(5):
            ch.send(i)
        got = [ch.recv(1.0) for _ in range(5)]
        assert got == list(range(5))
        assert ch.undelivered() == 0

    def test_timeout_and_abort(self):
        ch = LossyChannel(0, 1, poll_slice=0.01)
        with pytest.raises(ChannelTimeout):
            ch.recv(0.05)
        abort = threading.Event()
        abort.set()
        with pytest.raises(ChannelAborted):
            ch.recv(5.0, abort=abort)

    def test_duplicates_are_deduplicated(self):
        plan = FaultPlan(dup_rate=1.0, seed=0, retry=FAST)
        ch = LossyChannel(0, 1, plan)
        for i in range(4):
            ch.send(i)
        assert [ch.recv(1.0) for _ in range(4)] == [0, 1, 2, 3]
        with pytest.raises(ChannelTimeout):
            ch.recv(0.05)  # the extra copies must not surface

    def test_monitor_recovers_drops(self):
        plan = FaultPlan(drop_rate=0.5, seed=3, retry=FAST)
        ch = LossyChannel(0, 1, plan)
        monitor = ChannelMonitor([ch])
        monitor.start()
        try:
            for i in range(20):
                ch.send(i)
            got = [ch.recv(5.0) for _ in range(20)]
        finally:
            monitor.stop()
        assert got == list(range(20))
        assert ch.failure is None
        assert ch.retransmissions > 0

    def test_retry_exhaustion_breaks_channel(self):
        plan = FaultPlan(
            drop_rate=1.0, seed=0, retry=RetryPolicy(max_retries=2, rto=0.005)
        )
        ch = LossyChannel(0, 1, plan)
        failures = []
        monitor = ChannelMonitor([ch], on_failure=failures.append)
        monitor.start()
        try:
            ch.send("doomed")
            with pytest.raises(ChannelBroken) as exc_info:
                ch.recv(5.0)
        finally:
            monitor.stop()
        failure = exc_info.value.failure
        assert failure.src == 0 and failure.dst == 1
        assert failure.seq == 0
        assert failure.attempts == 3  # initial + 2 retries
        assert failures and failures[0] == failure


class TestEngineDiagnosis:
    def test_deadlock_names_processes_and_waitables(self):
        eng = Engine()
        ev = Event(eng)

        def proc():
            yield ev

        eng.process(proc(), name="rank7")
        with pytest.raises(MachineError, match=r"rank7 waiting on event"):
            eng.run()


class TestThreadedFaults:
    def test_lossy_run_matches_fault_free(self):
        sched = build_schedule("allreduce", "recursive_multiplying", 8, k=2)
        plan = FaultPlan(drop_rate=0.15, dup_rate=0.1, seed=5, retry=FAST)
        _run_threaded(sched, faults=plan)

    def test_straggler_and_delay_do_not_corrupt(self):
        sched = build_schedule("allgather", "kring", 6, k=2)
        plan = FaultPlan(
            delay_rate=0.3,
            seed=2,
            stragglers=(Straggler(rank=3, factor=10.0),),
            retry=FAST,
        )
        _run_threaded(sched, faults=plan)

    def test_dead_link_raises_structured_partial_failure(self):
        sched = build_schedule("allreduce", "recursive_doubling", 4)
        plan = FaultPlan(
            seed=0,
            links=(LinkFault(0, 1, drop_rate=1.0),),
            retry=RetryPolicy(max_retries=2, rto=0.005, max_rto=0.02),
        )
        bufs = initial_buffers(
            sched, make_inputs("allreduce", 4, 32), 32
        )
        with pytest.raises(PartialFailure) as exc_info:
            execute_threaded(sched, bufs, timeout=5.0, faults=plan)
        failure = exc_info.value
        assert failure.failed_ranks
        assert failure.faults
        diag = failure.faults[0]
        assert diag.kind == "retries_exhausted"
        assert diag.peer == 0
        assert diag.rank == 1
        assert diag.retries == 3
        assert "retries_exhausted" in diag.diagnosis()

    def test_crash_raises_structured_partial_failure(self):
        sched = build_schedule("allreduce", "recursive_doubling", 8)
        plan = FaultPlan(seed=0, crashes=(Crash(rank=5, step=1),), retry=FAST)
        bufs = initial_buffers(
            sched, make_inputs("allreduce", 8, 32), 32
        )
        with pytest.raises(PartialFailure) as exc_info:
            execute_threaded(sched, bufs, timeout=5.0, faults=plan)
        failure = exc_info.value
        assert failure.failed_ranks == (5,)
        assert failure.faults[0].kind == "crash"
        assert failure.faults[0].step == 1

    def test_fault_free_plan_is_a_no_op(self):
        sched = build_schedule("bcast", "knomial", 5, k=3)
        transport = ThreadedTransport(sched, faults=FaultPlan())
        assert transport.faults is None

    def test_same_seed_same_retransmission_pattern(self):
        sched = build_schedule("allreduce", "ring", 6)
        counts = []
        for _ in range(2):
            plan = FaultPlan(drop_rate=0.3, seed=9, retry=FAST)
            transport = ThreadedTransport(sched, timeout=5.0, faults=plan)
            bufs = initial_buffers(
                sched, make_inputs("allreduce", 6, 24), 24
            )
            transport.run(bufs)
            counts.append(
                sorted(
                    (src, dst, ch._send_seq)
                    for (src, dst), ch in transport._channels.items()
                )
            )
        # Drop decisions are (link, seq, attempt)-pure: both runs push the
        # same message counts through every channel.
        assert counts[0] == counts[1]


class TestSimulatorFaults:
    def test_drops_add_latency_deterministically(self):
        sched = build_schedule("allreduce", "recursive_multiplying", 8, k=2)
        machine = reference(8)
        base = simulate(sched, machine, 1 << 12)
        times = set()
        for _ in range(3):
            res = simulate(
                sched,
                machine,
                1 << 12,
                faults=FaultPlan(drop_rate=0.2, seed=4, retry=FAST),
            )
            assert res.complete
            assert res.retransmissions > 0
            times.add(res.time)
        assert len(times) == 1
        assert times.pop() > base.time

    def test_crash_yields_partial_completion(self):
        sched = build_schedule("allreduce", "recursive_doubling", 8)
        res = simulate(
            sched,
            reference(8),
            1 << 10,
            faults=FaultPlan(seed=0, crashes=(Crash(rank=3, step=1),)),
        )
        assert not res.complete
        assert res.failed_ranks == (3,)
        assert res.stalled_ranks  # peers of rank 3 block forever
        assert np.isinf(res.rank_times[3])

    def test_dead_link_stalls_instead_of_deadlocking(self):
        sched = build_schedule("allreduce", "ring", 6)
        res = simulate(
            sched,
            reference(6),
            1 << 10,
            faults=FaultPlan(
                seed=0,
                links=(LinkFault(0, 1, drop_rate=1.0),),
                retry=RetryPolicy(max_retries=2, rto=0.005, max_rto=0.02),
            ),
        )
        assert not res.complete
        assert res.stalled_ranks

    def test_straggler_slows_completion(self):
        sched = build_schedule("allgather", "ring", 8)
        machine = reference(8)
        base = simulate(sched, machine, 1 << 12)
        slow = simulate(
            sched,
            machine,
            1 << 12,
            faults=FaultPlan(seed=0, stragglers=(Straggler(0, 20.0),)),
        )
        assert slow.complete
        assert slow.time > base.time

    def test_noise_composes_with_faults(self):
        sched = build_schedule("allreduce", "ring", 4)
        res = simulate(
            sched,
            reference(4),
            1 << 10,
            noise=NoiseModel(sigma=0.2, seed=1),
            faults=FaultPlan(drop_rate=0.1, seed=1, retry=FAST),
        )
        assert res.complete


class TestSessionFaults:
    def test_lossy_session_matches_fault_free(self):
        plan = FaultPlan(drop_rate=0.1, dup_rate=0.05, seed=7, retry=FAST)

        def job(comm):
            return comm.allreduce(np.full(32, float(comm.rank + 1)))

        clean = Session(4).run(job)
        lossy = Session(4, faults=plan).run(job)
        for a, b in zip(clean, lossy):
            np.testing.assert_array_equal(a, b)

    def test_session_crash_is_structured(self):
        plan = FaultPlan(seed=1, crashes=(Crash(rank=2, step=0),), retry=FAST)

        def job(comm):
            return comm.allreduce(np.ones(8))

        with pytest.raises(PartialFailure) as exc_info:
            Session(4, faults=plan).run(job)
        assert exc_info.value.failed_ranks == (2,)
        assert exc_info.value.faults[0].kind == "crash"


class TestOnePlanBothBackends:
    def test_drop_decisions_agree_across_backends(self):
        """The acceptance criterion: one FaultPlan object drives both the
        simulator and the threaded transport, and because fates are pure
        functions of (link, seq, attempt), a message doomed in one backend
        is doomed in the other."""
        plan = FaultPlan(
            seed=0,
            links=(LinkFault(0, 1, drop_rate=1.0),),
            retry=RetryPolicy(max_retries=1, rto=0.005, max_rto=0.01),
        )
        sched = build_schedule("allreduce", "recursive_doubling", 4)

        sim_res = simulate(sched, reference(4), 1 << 10, faults=plan)
        assert not sim_res.complete

        bufs = initial_buffers(sched, make_inputs("allreduce", 4, 16), 16)
        with pytest.raises(PartialFailure):
            execute_threaded(sched, bufs, timeout=5.0, faults=plan)

    def test_maskable_plan_completes_on_both_backends(self):
        plan = FaultPlan(drop_rate=0.1, dup_rate=0.1, seed=2, retry=FAST)
        sched = build_schedule("allgather", "knomial", 8, k=4)
        sim_res = simulate(sched, reference(8), 1 << 10, faults=plan)
        assert sim_res.complete
        _run_threaded(sched, faults=plan)
