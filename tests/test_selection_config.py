"""The selection-config artifact: round trips that must be bit-exact.

The artifact (:mod:`repro.server.config`) is the paper's §VI-G
deliverable as a file, and its whole value is that it round-trips
**losslessly** in three directions:

* JSON — ``from_json(to_json())`` reproduces the document byte for byte
  (shortest-repr floats survive JSON exactly);
* tuner priors — re-tuning warm-started from :meth:`~repro.server.
  SelectionConfig.sweep_priors` replays recorded timings instead of
  simulating, and the resulting artifact is bit-identical at any
  ``--jobs`` level and under either simulation engine;
* online selection — :meth:`~repro.server.SelectionConfig.priors_for`
  warm-starts :class:`repro.adapt.OnlineSelector` /
  :func:`repro.adapt.run_adaptive` with exactly the healthy times the
  loop's own boot sweep would have measured, so the whole adaptive
  trail is unchanged.

Version skew must fail loudly: a foreign or future document raises
:class:`~repro.errors.SelectionError`, never a silent mis-tune.
"""

import json

import pytest

from repro.adapt import OnlineSelector, run_adaptive
from repro.errors import SelectionError
from repro.selection.table import Choice
from repro.server import (
    CONFIG_FORMAT,
    CONFIG_VERSION,
    SelectionConfig,
    build_config,
)
from repro.simnet.machines import reference

P = 8
SIZES = [256, 4096]
MACHINE = reference(P)
COLLECTIVES = ("allreduce", "bcast")


@pytest.fixture(scope="module")
def cfg():
    return build_config(MACHINE, SIZES, collectives=COLLECTIVES)


def test_json_round_trip_is_bit_exact(cfg):
    text = cfg.to_json()
    again = SelectionConfig.from_json(text)
    assert again.to_json() == text
    assert again.machine == cfg.machine
    assert again.nranks == P
    assert again.sizes == SIZES
    assert again.collectives == COLLECTIVES
    assert again.timings == cfg.timings
    for coll in COLLECTIVES:
        for nbytes in SIZES:
            assert again.select(coll, P, nbytes) == cfg.select(
                coll, P, nbytes
            )


def test_save_load_round_trip(tmp_path, cfg):
    path = cfg.save(tmp_path / "cfg.json")
    assert SelectionConfig.load(path).to_json() == cfg.to_json()


def test_foreign_documents_refuse_to_load(cfg):
    with pytest.raises(SelectionError, match="malformed"):
        SelectionConfig.from_json("{not json")
    with pytest.raises(SelectionError, match="not a selection-config"):
        SelectionConfig.from_json(json.dumps({"format": "something-else"}))
    payload = json.loads(cfg.to_json())
    payload["version"] = CONFIG_VERSION + 1
    with pytest.raises(SelectionError, match="version"):
        SelectionConfig.from_json(json.dumps(payload))
    payload = json.loads(cfg.to_json())
    del payload["timings"][0]["time"]
    with pytest.raises(SelectionError, match="missing"):
        SelectionConfig.from_json(json.dumps(payload))
    assert CONFIG_FORMAT in cfg.to_json()


@pytest.mark.parametrize("jobs", [0, 2])
@pytest.mark.parametrize("engine", ["materialized", "collapsed"])
def test_prior_warmed_retune_is_bit_identical(cfg, jobs, engine):
    """Export → reimport as priors → winners (and the whole document)
    identical, at any jobs level and under either simulation engine."""
    warm = build_config(
        MACHINE, SIZES, collectives=COLLECTIVES,
        priors=cfg.sweep_priors(), jobs=jobs, engine=engine,
    )
    assert warm.to_json() == cfg.to_json()


def test_partial_priors_fill_the_gaps_identically(cfg):
    """Priors covering only some points: the rest simulate, the result
    is still bit-identical — priors never change answers, only cost."""
    priors = cfg.sweep_priors()
    partial = dict(list(priors.items())[::2])  # drop every other point
    assert 0 < len(partial) < len(priors)
    warm = build_config(
        MACHINE, SIZES, collectives=COLLECTIVES, priors=partial
    )
    assert warm.to_json() == cfg.to_json()


def test_priors_for_warm_starts_the_online_selector(cfg):
    priors = cfg.priors_for("allreduce", 4096)
    assert priors and all(
        isinstance(c, Choice) and t > 0 for c, t in priors.items()
    )
    selector = OnlineSelector(priors)
    assert selector.current == cfg.select("allreduce", P, 4096)


def test_priors_for_uncovered_point_raises(cfg):
    with pytest.raises(SelectionError, match="no timings"):
        cfg.priors_for("alltoall", 4096)
    with pytest.raises(SelectionError, match="no timings"):
        cfg.priors_for("allreduce", 12345)


def test_adaptive_trail_is_unchanged_by_config_priors(cfg):
    """run_adaptive warm-started from the artifact reproduces the cold
    loop's entire trail — same static winner, same per-round times."""
    cold = run_adaptive("allreduce", MACHINE, 4096, rounds=6)
    warm = run_adaptive(
        "allreduce", MACHINE, 4096, rounds=6,
        priors=cfg.priors_for("allreduce", 4096),
    )
    assert warm.static_algorithm == cold.static_algorithm
    assert warm.static_k == cold.static_k
    assert warm.switches == cold.switches
    assert warm.regret == cold.regret
    assert [r.time for r in warm.records] == [r.time for r in cold.records]
