"""Tests for the command-line entry points (:mod:`repro.cli`)."""

import json

import pytest

from repro.cli import main_bench, main_tune, main_validate


class TestBench:
    def test_list(self, capsys):
        assert main_bench(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "table1" in out

    def test_no_args_lists(self, capsys):
        assert main_bench([]) == 0
        assert "fig9a" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main_bench(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "knomial" in out

    def test_unknown_experiment(self, capsys):
        assert main_bench(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_eq13(self, capsys):
        assert main_bench(["eq13"]) == 0
        assert "eq. (13)" in capsys.readouterr().out


class TestTune:
    def test_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "tuned.json"
        rc = main_tune(
            [
                "--machine", "frontier", "--nodes", "4", "--ppn", "1",
                "--min-bytes", "8", "--max-bytes", "4096",
                "-o", str(out_file),
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["rules"]
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_stdout_json(self, capsys):
        rc = main_tune(
            ["--machine", "reference", "--nodes", "4",
             "--min-bytes", "8", "--max-bytes", "512"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"].startswith("tuned-")

    def test_bad_machine_rejected(self, capsys):
        rc = main_tune(["--machine", "summit"])
        assert rc == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_registry_name_machine(self, capsys):
        rc = main_tune(
            ["--machine", "reference-4",
             "--min-bytes", "8", "--max-bytes", "512"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "tuned-reference-4"

    def test_engine_flag_matches_materialized(self, capsys):
        argv = ["--machine", "reference", "--nodes", "4",
                "--min-bytes", "8", "--max-bytes", "512"]
        assert main_tune(argv + ["--engine", "collapsed"]) == 0
        collapsed = json.loads(capsys.readouterr().out)
        assert main_tune(argv + ["--engine", "materialized"]) == 0
        materialized = json.loads(capsys.readouterr().out)
        assert collapsed["rules"] == materialized["rules"]

    def test_reference_requires_ppn_1(self, capsys):
        rc = main_tune(["--machine", "reference", "--ppn", "2"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestValidate:
    def test_full_sweep_small(self, capsys):
        assert main_validate(["--max-p", "6"]) == 0
        out = capsys.readouterr().out
        assert "all correct" in out

    def test_single_collective(self, capsys):
        assert main_validate(["--collective", "reduce", "--max-p", "9"]) == 0

    def test_single_algorithm(self, capsys):
        rc = main_validate(
            ["--collective", "allreduce", "--algorithm", "kring",
             "--max-p", "8"]
        )
        assert rc == 0

    def test_unknown_algorithm(self, capsys):
        rc = main_validate(
            ["--collective", "bcast", "--algorithm", "nope", "--max-p", "4"]
        )
        assert rc == 2


class TestValidateDump:
    def test_dump_writes_verified_schedule(self, tmp_path, capsys):
        import json

        path = tmp_path / "kring.json"
        rc = main_validate(
            ["--collective", "allreduce", "--algorithm", "kring",
             "--dump", str(path), "--dump-p", "8", "--dump-k", "4"]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["collective"] == "allreduce"
        assert len(payload["programs"]) == 8

    def test_dump_requires_algorithm(self, tmp_path, capsys):
        rc = main_validate(["--dump", str(tmp_path / "x.json")])
        assert rc == 2
        assert "needs" in capsys.readouterr().err

    def test_dump_invalid_config(self, tmp_path, capsys):
        rc = main_validate(
            ["--collective", "bcast", "--algorithm", "binomial",
             "--dump", str(tmp_path / "x.json"), "--dump-k", "4"]
        )
        assert rc == 2


class TestBenchOutput:
    def test_report_written_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        rc = main_bench(["table1", "-o", str(path)])
        assert rc == 0
        text = path.read_text()
        assert "table1" in text and "PASS" in text


class TestTrace:
    def test_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main_trace

        out = tmp_path / "trace.json"
        rc = main_trace([
            "allreduce", "recursive_multiplying",
            "--p", "16", "--k", "4", "--nbytes", "4096",
            "-o", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        assert 1 in pids and 1000 in pids  # host + sim tracks merged
        metrics = json.loads((tmp_path / "trace-metrics.json").read_text())
        assert metrics
        prom = (tmp_path / "trace-metrics.prom").read_text()
        for series in ("repro_cache_lookups_total",
                       "repro_engine_events_total",
                       "repro_sweep_points_total"):
            assert series in prom
        assert "wrote" in capsys.readouterr().out

    def test_trace_leaves_global_obs_disabled(self, tmp_path):
        from repro.cli import main_trace
        from repro.obs import OBS

        rc = main_trace([
            "bcast", "knomial", "--p", "8", "--k", "2",
            "--nbytes", "512", "-o", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        assert not OBS.enabled

    def test_indivisible_ppn_rejected(self, tmp_path, capsys):
        from repro.cli import main_trace

        rc = main_trace([
            "bcast", "knomial", "--p", "9", "--ppn", "2",
            "-o", str(tmp_path / "t.json"),
        ])
        assert rc == 2
        assert "divisible" in capsys.readouterr().err


class TestMetricsOut:
    def test_tune_metrics_out(self, tmp_path, capsys):
        from repro.cli import main_tune

        mpath = tmp_path / "tune-metrics.json"
        rc = main_tune([
            "--machine", "reference", "--nodes", "4",
            "--min-bytes", "64", "--max-bytes", "4096",
            "-o", str(tmp_path / "table.json"),
            "--metrics-out", str(mpath),
        ])
        assert rc == 0
        assert json.loads(mpath.read_text())
        assert "repro_sweep_points_total" in (
            tmp_path / "tune-metrics.prom").read_text()
