"""Golden regression test: exact pinned recovery costs.

The canonical healing scenario — an 8-rank k-nomial allreduce on the
reference machine with rank 1 crashing after one send — is frozen to the
last digit: total simulated time, time-to-recovery (first failure instant
to the start of the final successful round, including the detection
timeout), the post-recovery round's cost, the survivor set, and the
schedule fingerprints of the healthy and rebuilt rounds.  Any change to
the detector, the shrink bookkeeping, the cost engine, or the schedule
builders that perturbs healing shows up here.  An intentional change
regenerates the file with::

    pytest tests/test_golden_recovery.py --update-golden

and justifies the diff in the commit message.
"""

from __future__ import annotations

from repro.faults.plan import Crash, FaultPlan
from repro.recovery import simulate_with_recovery
from repro.simnet.machines import reference

#: The pinned scenario: one mid-schedule crash, healed by shrinking.
PLAN = FaultPlan(seed=7, crashes=(Crash(rank=1, step=1),))


def test_recovery_costs_pinned(golden):
    res = simulate_with_recovery(
        "allreduce", "knomial", reference(8), 65536, k=2,
        recovery="shrink", faults=PLAN,
    )
    assert res.recovered, "the golden scenario must heal"
    actual = {
        "recovered": res.recovered,
        "rounds": res.rounds,
        "survivors": list(res.survivors),
        "time_us": res.time_us,
        "time_to_recovery_us": res.time_to_recovery_us,
        "post_recovery_us": res.post_recovery_us,
        "fingerprints": list(res.report.fingerprints()),
        "round_actions": [r.action for r in res.report.rounds],
    }
    golden("recovery_costs").check(actual)
