"""Unit tests for block partitioning (:mod:`repro.core.blocks`)."""

import pytest

from repro.core.blocks import BlockMap, block_offsets, block_sizes
from repro.errors import ScheduleError


class TestBlockSizes:
    def test_even_split(self):
        assert block_sizes(12, 4) == (3, 3, 3, 3)

    def test_remainder_goes_to_first_blocks(self):
        assert block_sizes(10, 4) == (3, 3, 2, 2)

    def test_fewer_units_than_blocks(self):
        assert block_sizes(2, 4) == (1, 1, 0, 0)

    def test_zero_total(self):
        assert block_sizes(0, 3) == (0, 0, 0)

    def test_single_block(self):
        assert block_sizes(7, 1) == (7,)

    def test_sizes_differ_by_at_most_one(self):
        for total in range(0, 50):
            for nblocks in range(1, 12):
                sizes = block_sizes(total, nblocks)
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == total

    def test_rejects_nonpositive_nblocks(self):
        with pytest.raises(ScheduleError):
            block_sizes(4, 0)

    def test_rejects_negative_total(self):
        with pytest.raises(ScheduleError):
            block_sizes(-1, 2)


class TestBlockOffsets:
    def test_prefix_sum(self):
        assert block_offsets((3, 3, 2, 2)) == (0, 3, 6, 8)

    def test_empty(self):
        assert block_offsets(()) == ()


class TestBlockMap:
    def test_range_of(self):
        bm = BlockMap(10, 4)
        assert bm.range_of(0) == (0, 3)
        assert bm.range_of(2) == (6, 8)
        assert bm.range_of(3) == (8, 10)

    def test_offset_of_matches_prefix_walk(self):
        for total in [0, 1, 7, 16, 33]:
            for nblocks in [1, 2, 5, 8]:
                bm = BlockMap(total, nblocks)
                assert bm.offsets == tuple(
                    bm.offset_of(b) for b in range(nblocks)
                )

    def test_size_of_matches_sizes_tuple(self):
        bm = BlockMap(17, 5)
        assert tuple(bm.size_of(b) for b in range(5)) == bm.sizes

    def test_bytes_of_subset(self):
        bm = BlockMap(10, 4)
        assert bm.bytes_of([0, 3]) == 3 + 2

    def test_slices_cover_buffer_exactly(self):
        bm = BlockMap(23, 7)
        covered = []
        for _, start, stop in bm.slices():
            covered.extend(range(start, stop))
        assert covered == list(range(23))

    def test_out_of_range_block(self):
        bm = BlockMap(8, 2)
        with pytest.raises(ScheduleError):
            bm.range_of(2)
        with pytest.raises(ScheduleError):
            bm.size_of(-1)

    def test_invalid_construction(self):
        with pytest.raises(ScheduleError):
            BlockMap(5, 0)
