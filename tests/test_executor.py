"""Tests for the NumPy data executor (:mod:`repro.runtime.executor`).

These are end-to-end correctness tests: real bytes through real schedules,
checked against NumPy oracles — the Python equivalent of the paper's
"largest burden was ensuring correctness for the many corner cases"
(§VI-A).
"""

import numpy as np
import pytest

from repro.core.registry import COLLECTIVES, algorithms_for, info
from repro.errors import ExecutionError
from repro.runtime.executor import execute, run_collective
from repro.runtime.ops import BXOR, MAX, MIN, PROD, SUM


def all_algorithm_cases():
    """(collective, algorithm, entry) for every data-moving registry
    entry (barrier carries no payload, so it has no data oracle — its
    correctness lives in the symbolic layer, see test_bruck.py)."""
    cases = []
    for coll in COLLECTIVES:
        if coll == "barrier":
            continue
        for alg in algorithms_for(coll):
            cases.append((coll, alg, info(coll, alg)))
    return cases


class TestEveryAlgorithmMovesDataCorrectly:
    @pytest.mark.parametrize(
        "coll,alg,entry",
        [pytest.param(c, a, e, id=f"{c}-{a}") for c, a, e in all_algorithm_cases()],
    )
    def test_representative_grid(self, coll, alg, entry):
        """Every registered algorithm on a grid covering power-of-k,
        prime, and remainder process counts, with non-dividing counts."""
        for p in (2, 5, 8, 9, 13, 16):
            ks = [None]
            if entry.takes_k:
                ks = sorted({entry.min_k, 3, 4, p})
                ks = [k for k in ks if k >= entry.min_k]
            for k in ks:
                run_collective(coll, alg, p, count=3 * p + 1, k=k)

    def test_count_smaller_than_ranks(self):
        """Zero-size blocks (count < p) must not corrupt anything."""
        for coll, alg, entry in all_algorithm_cases():
            k = entry.default_k if entry.takes_k else None
            run_collective(coll, alg, 8, count=3, k=k)

    def test_single_element(self):
        run_collective("allreduce", "recursive_multiplying", 9, count=1, k=3)

    def test_single_rank(self):
        for coll in ("bcast", "allreduce", "allgather", "reduce"):
            alg = sorted(algorithms_for(coll))[0]
            k = info(coll, alg).default_k if info(coll, alg).takes_k else None
            run_collective(coll, alg, 1, count=5, k=k)


class TestOperators:
    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN, BXOR], ids=lambda o: o.name)
    def test_allreduce_with_every_operator(self, op):
        # PROD overflows fast: keep values tiny via a custom run
        run = run_collective(
            "allreduce", "recursive_multiplying", 6, count=8, k=3, op=op,
            check=False,
        )
        from repro.runtime.buffers import check_outputs, reference_result

        expected = reference_result("allreduce", run.inputs, 8, op=op)
        check_outputs(run.schedule, run.buffers, expected, 8)

    def test_noncommutative_order_is_deterministic(self):
        """Two identical runs must produce bit-identical results (receive
        application order is fixed)."""
        a = run_collective("allreduce", "kring", 7, count=9, k=3, seed=5)
        b = run_collective("allreduce", "kring", 7, count=9, k=3, seed=5)
        for x, y in zip(a.buffers, b.buffers):
            assert np.array_equal(x, y)


class TestDtypes:
    def test_float64_with_tolerance(self):
        run_collective(
            "allreduce",
            "reduce_scatter_allgather",
            8,
            count=16,
            dtype=np.dtype(np.float64),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_int32(self):
        run_collective(
            "allgather", "ring", 6, count=12, dtype=np.dtype(np.int32)
        )

    def test_float32(self):
        run_collective(
            "bcast", "knomial", 9, count=10, k=3,
            dtype=np.dtype(np.float32),
        )


class TestExecuteAPI:
    def test_execute_in_place(self):
        from repro.core.registry import build_schedule

        sched = build_schedule("allreduce", "recursive_doubling", 4)
        bufs = [np.full(4, r, dtype=np.int64) for r in range(4)]
        out = execute(sched, bufs)
        assert out is bufs
        for buf in bufs:
            assert buf.tolist() == [6, 6, 6, 6]

    def test_buffer_count_mismatch(self):
        from repro.core.registry import build_schedule

        sched = build_schedule("allreduce", "recursive_doubling", 4)
        with pytest.raises(ExecutionError, match="buffers"):
            execute(sched, [np.zeros(4)] * 3)

    def test_buffer_length_mismatch(self):
        from repro.core.registry import build_schedule

        sched = build_schedule("allreduce", "recursive_doubling", 2)
        with pytest.raises(ExecutionError, match="elements"):
            execute(sched, [np.zeros(4), np.zeros(5)])

    def test_root_rotation_moves_result(self):
        run = run_collective("reduce", "knomial", 7, count=7, k=3, root=4)
        assert 4 in run.expected
        assert np.array_equal(run.buffers[4], run.expected[4])

    def test_run_result_exposes_schedule(self):
        run = run_collective("bcast", "binomial", 4, count=4)
        assert run.schedule.collective == "bcast"
        assert len(run.inputs) == 4
