"""Golden test: the Perfetto export schema of an 8-rank allreduce.

Pins the *shape* of the merged trace — event names, phases, tracks, and
per-event arg keys — for one fixed workload.  Wall-clock fields
(``ts``/``dur`` of host spans, the sim anchor offset) are host-dependent
and excluded; simulated payload args (bytes, dst, link) are
deterministic and pinned by value.  A change here means the trace format
changed: rerun with ``--update-golden`` and call it out in the commit.
"""

from __future__ import annotations

import re

from repro.core.cache import global_schedule_cache
from repro.core.registry import build_schedule
from repro.obs import Obs
from repro.simnet import reference, simulate


def _projected_trace():
    global_schedule_cache().clear()
    o = Obs(enabled=True)
    with o.span("trace", collective="allreduce", p=8):
        sched = build_schedule("allreduce", "recursive_multiplying", 8, k=2)
        simulate(sched, reference(8), 65536, collect_timeline=True, obs=o)
    doc = o.trace_dict(metadata={"tool": "golden"})
    events = []
    for e in doc["traceEvents"]:
        row = {
            "name": e["name"],
            "ph": e["ph"],
            "pid": e["pid"],
            "tid": e.get("tid", 0),
            "cat": e.get("cat", ""),
            "arg_keys": sorted(e.get("args", {})),
        }
        if e.get("cat", "").startswith("sim-") and e["ph"] == "X":
            # Simulated payloads are deterministic: pin them by value.
            row["args"] = e["args"]
        if e["ph"] == "M":
            # Track names embed the live os pid; pin the stable part.
            row["track"] = re.sub(r"pid \d+", "pid N", str(e["args"]["name"]))
        events.append(row)
    return {
        "displayTimeUnit": doc["displayTimeUnit"],
        "metadata": doc["metadata"],
        "n_events": len(events),
        "events": events,
    }


def test_perfetto_schema_pinned(golden):
    golden("perfetto_allreduce8").check(_projected_trace())


def test_projection_is_deterministic():
    assert _projected_trace() == _projected_trace()
