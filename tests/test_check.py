"""Unit tests for the static-analysis suite (:mod:`repro.check`)."""

import json

import pytest

from repro.check import (
    CheckCache,
    Finding,
    global_check_cache,
    run_checks,
    check_schedule,
)
from repro.check.dataflow import check_dataflow
from repro.check.deadlock import check_channels, check_deadlock
from repro.check.findings import sort_findings
from repro.check.hazards import check_hazards
from repro.check.interp import OpRef, find_cycle, interpret, match_channels
from repro.check.modelcheck import check_model, has_model
from repro.cli import main_check
from repro.core.analysis import critical_path_rounds, dependency_rounds
from repro.core.registry import build_schedule
from repro.core.schedule import (
    CopyOp,
    RankProgram,
    RecvOp,
    Schedule,
    SendOp,
    Step,
)
from repro.errors import ScheduleError


def handmade(collective, programs, nblocks, root=None):
    return Schedule(
        collective=collective,
        algorithm="handmade",
        nranks=len(programs),
        nblocks=nblocks,
        programs=programs,
        root=root,
    )


def prog(rank, *steps):
    return RankProgram(rank=rank, steps=[Step(tuple(ops)) for ops in steps])


def pairwise_exchange():
    """Two ranks exchanging blocks in one step each (clean allgather)."""
    return handmade("allgather", [
        prog(0, [SendOp(1, (0,)), RecvOp(1, (1,))]),
        prog(1, [SendOp(0, (1,)), RecvOp(0, (0,))]),
    ], nblocks=2)


def send_then_recv():
    """Rendezvous-cyclic: both ranks send in step 0, recv in step 1."""
    return handmade("allgather", [
        prog(0, [SendOp(1, (0,))], [RecvOp(1, (1,))]),
        prog(1, [SendOp(0, (1,))], [RecvOp(0, (0,))]),
    ], nblocks=2)


class TestFindings:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(code="x", severity="fatal", message="m")

    def test_describe_includes_location(self):
        f = Finding(code="hazard-write-write", severity="error",
                    message="boom", rank=3, step=2, op="recv[0]<-1")
        text = f.describe()
        assert "rank 3" in text and "step 2" in text
        assert "recv[0]<-1" in text and "boom" in text

    def test_to_dict_omits_absent_location(self):
        f = Finding(code="model-rounds", severity="error", message="m")
        assert set(f.to_dict()) == {"code", "severity", "message"}

    def test_sort_most_severe_first(self):
        fs = sort_findings([
            Finding(code="b", severity="info", message="m"),
            Finding(code="a", severity="error", message="m", rank=1),
            Finding(code="c", severity="warning", message="m"),
        ])
        assert [f.severity for f in fs] == ["error", "warning", "info"]

    def test_report_counts_and_verdicts(self):
        report = run_checks(send_then_recv())
        assert report.errors == 1
        assert not report.ok and not report.strict_ok
        clean = run_checks(pairwise_exchange())
        assert clean.ok and clean.strict_ok
        assert "clean" in clean.describe()

    def test_report_to_dict_round_trips_json(self):
        doc = json.loads(json.dumps(run_checks(send_then_recv()).to_dict()))
        assert doc["ok"] is False
        assert doc["findings"][0]["code"] == "deadlock-rendezvous"


class TestInterp:
    def test_fifo_matching(self):
        s = pairwise_exchange()
        m = match_channels(s)
        assert m.send_to_recv[OpRef(0, 0, 0)] == OpRef(1, 0, 1)
        assert m.recv_to_send[OpRef(0, 0, 1)] == OpRef(1, 0, 0)
        assert not m.unmatched_sends and not m.unmatched_recvs

    def test_eager_completes_what_rendezvous_cannot(self):
        s = send_then_recv()
        assert not interpret(s).deadlocked
        stuck = interpret(s, eager_threshold=0)
        assert stuck.deadlocked and stuck.stuck == [0, 1]

    def test_threshold_regime_sizes_payloads(self):
        s = send_then_recv()
        # 1 KiB blocks under a 4 KiB eager limit: effectively eager.
        assert not interpret(s, eager_threshold=4096, nbytes=2048).deadlocked
        # The same schedule above the limit rendezvouses and hangs.
        assert interpret(s, eager_threshold=64, nbytes=2048).deadlocked

    def test_find_cycle_names_both_ranks(self):
        s = send_then_recv()
        cycle = find_cycle(s, interpret(s, eager_threshold=0))
        assert cycle is not None
        assert sorted(w.waiter.rank for w in cycle) == [0, 1]
        assert all(w.kind == "send" for w in cycle)

    def test_no_cycle_for_unsatisfiable_wait(self):
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,)), RecvOp(1, (1,))]),
            prog(1, [RecvOp(0, (0,))]),  # never sends
        ], nblocks=2)
        result = interpret(s)
        assert result.deadlocked
        assert find_cycle(s, result) is None


class TestDeadlock:
    def test_clean_schedule_no_findings(self):
        assert check_deadlock(pairwise_exchange()) == []

    def test_channel_audit_locates_ops(self):
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,)), RecvOp(1, (1,))]),
            prog(1, [RecvOp(0, (0,))]),
        ], nblocks=2)
        codes = {f.code: f for f in check_channels(s, match_channels(s))}
        starved = codes["channel-starved-recv"]
        assert (starved.rank, starved.step) == (0, 0)
        assert "never be satisfied" in starved.message

    def test_eager_deadlock_subsumes_rendezvous(self):
        # Mutually starved recvs hang even with unlimited buffering;
        # only the strongest (eager) finding is reported.
        s = handmade("allgather", [
            prog(0, [RecvOp(1, (1,))]),
            prog(1, [RecvOp(0, (0,))]),
        ], nblocks=2)
        codes = [f.code for f in check_deadlock(s)]
        assert "deadlock-eager" in codes
        assert "deadlock-rendezvous" not in codes

    def test_rendezvous_cycle_diagnostic(self):
        findings = check_deadlock(send_then_recv())
        (f,) = findings
        assert f.code == "deadlock-rendezvous"
        assert "cyclic wait among ranks [0, 1]" in f.message
        assert f.rank == 0 and f.step == 0 and f.op == "send[0]->1"


class TestHazards:
    def test_reduce_reduce_is_deterministic(self):
        s = handmade("allreduce", [
            prog(0, [RecvOp(1, (0,), reduce=True),
                     RecvOp(2, (0,), reduce=True)]),
            prog(1, [SendOp(0, (0,))]),
            prog(2, [SendOp(0, (0,))]),
        ], nblocks=1)
        assert check_hazards(s) == []

    def test_send_reduce_is_info_only(self):
        s = handmade("allreduce", [
            prog(0, [SendOp(1, (0,)), RecvOp(1, (0,), reduce=True)]),
            prog(1, [SendOp(0, (0,)), RecvOp(0, (0,), reduce=True)]),
        ], nblocks=1)
        findings = check_hazards(s)
        assert {f.code for f in findings} == {"hazard-send-reduce"}
        assert all(f.severity == "info" for f in findings)
        assert "staging buffer" in findings[0].message

    def test_copy_dest_vs_recv_is_error(self):
        s = handmade("allgather", [
            prog(0, [CopyOp(0, 1), RecvOp(1, (1,)), SendOp(1, (0,))]),
            prog(1, [SendOp(0, (1,)), RecvOp(0, (0,))]),
        ], nblocks=2)
        codes = {f.code for f in check_hazards(s)}
        assert "hazard-copy-recv" in codes

    def test_plain_recv_overwriting_sent_block_warns(self):
        s = handmade("allgather", [
            prog(0, [SendOp(1, (0,)), RecvOp(1, (0,))]),
            prog(1, [SendOp(0, (0,)), RecvOp(0, (0,))]),
        ], nblocks=2)
        findings = check_hazards(s)
        assert {f.code for f in findings} == {"hazard-read-write"}
        assert all(f.severity == "warning" for f in findings)

    def test_registry_algorithms_raise_no_hazard_errors(self):
        for coll, alg, p, k in [
            ("allreduce", "recursive_doubling", 8, None),
            ("barrier", "dissemination", 8, None),
            ("allgather", "ring", 8, None),
        ]:
            findings = check_hazards(build_schedule(coll, alg, p, k=k))
            assert all(f.severity == "info" for f in findings), (coll, alg)


class TestDataflow:
    def test_clean_allreduce(self):
        assert check_dataflow(build_schedule("allreduce", "ring", 6)) == []

    def test_postcondition_miss_names_rank(self):
        # Rank 1 never receives block 0: allgather postcondition fails.
        s = handmade("allgather", [
            prog(0, [RecvOp(1, (1,))]),
            prog(1, [SendOp(0, (1,))]),
        ], nblocks=2)
        findings = check_dataflow(s)
        posts = [f for f in findings if f.code == "dataflow-postcondition"]
        assert posts and posts[0].rank == 1
        assert "expected contributions" in posts[0].message

    def test_findings_annotated_with_step(self):
        s = handmade("bcast", [
            prog(0, [SendOp(1, (0,))], [RecvOp(1, (0,))]),
            prog(1, [RecvOp(0, (0,))], [SendOp(0, (0,))]),
        ], nblocks=1, root=0)
        assert check_dataflow(s) == []  # round trip is legal
        bad = handmade("bcast", [
            prog(0, [RecvOp(1, (0,))]),
            prog(1, [SendOp(0, (0,))]),
        ], nblocks=1, root=0)
        garbage = [f for f in check_dataflow(bad)
                   if f.code == "dataflow-garbage-send"]
        assert garbage[0].rank == 1 and garbage[0].step == 0
        assert garbage[0].message.startswith("step 0:")


class TestModelCheck:
    def test_registry_pair_clean(self):
        assert has_model("allreduce", "ring")
        sched = build_schedule("allreduce", "ring", 8)
        assert check_model(sched, 1 << 20) == []

    def test_pair_without_model_skipped(self):
        assert not has_model("scatter", "binomial")
        sched = build_schedule("scatter", "binomial", 8)
        assert check_model(sched, 1 << 20) == []
        report = run_checks(sched)
        assert report.meta.get("model") == "none registered for this pair"
        assert report.ok

    def test_single_rank_degenerates(self):
        sched = build_schedule("allreduce", "ring", 1)
        assert check_model(sched, 1 << 20) == []


class TestDependencyRounds:
    @pytest.mark.parametrize("collective,algorithm,p,k", [
        ("bcast", "knomial", 27, 3),
        ("allreduce", "ring", 8, None),
        ("allgather", "bruck", 7, 2),
        ("barrier", "dissemination", 16, None),
        ("reduce", "knomial", 13, 4),
    ])
    def test_agrees_with_simulated_critical_path(
        self, collective, algorithm, p, k
    ):
        sched = build_schedule(collective, algorithm, p, k=k)
        assert dependency_rounds(sched) == critical_path_rounds(sched)

    def test_rejects_eager_stuck_schedule(self):
        # Both ranks recv before they send: stuck even with buffering.
        s = handmade("allgather", [
            prog(0, [RecvOp(1, (1,))], [SendOp(1, (0,))]),
            prog(1, [RecvOp(0, (0,))], [SendOp(0, (1,))]),
        ], nblocks=2)
        with pytest.raises(ScheduleError, match="deadlock pass"):
            dependency_rounds(s)

    def test_rejects_starved_channel(self):
        s = handmade("allgather", [
            prog(0, [RecvOp(1, (1,))]),
            prog(1, [SendOp(0, (1,)), RecvOp(0, (0,))]),
        ], nblocks=2)
        with pytest.raises(ScheduleError, match="recvs but only"):
            dependency_rounds(s)


class TestCache:
    def test_hit_miss_eviction_accounting(self):
        cache = CheckCache(maxsize=2)
        reports = {}

        def make(tag):
            def run():
                reports[tag] = run_checks(
                    build_schedule("allreduce", "ring", 4),
                    cache=CheckCache(),  # throwaway, keep global clean
                )
                return reports[tag]
            return run

        r1, hit = cache.get_or_run(("a", 1, None), make("a"))
        assert not hit
        r2, hit = cache.get_or_run(("a", 1, None), make("a2"))
        assert hit and r2 is r1 and "a2" not in reports
        cache.get_or_run(("b", 1, None), make("b"))
        cache.get_or_run(("c", 1, None), make("c"))  # evicts "a"
        assert len(cache) == 2
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 3, 1)
        cache.clear()
        assert len(cache) == 0 and cache.stats().misses == 0

    def test_run_checks_memoizes_by_fingerprint(self):
        cache = CheckCache()
        sched = build_schedule("allreduce", "recursive_doubling", 8)
        first = run_checks(sched, cache=cache)
        again = run_checks(
            build_schedule("allreduce", "recursive_doubling", 8),
            cache=cache,
        )
        assert again is first  # same content, cached object
        assert cache.stats().hits == 1
        # A different payload size is a different analysis.
        run_checks(sched, nbytes=1 << 16, cache=cache)
        assert cache.stats().misses == 2

    def test_global_cache_is_shared(self):
        assert global_check_cache() is global_check_cache()


class TestRunChecks:
    def test_clean_report_lists_all_passes(self):
        report = run_checks(build_schedule("allreduce", "ring", 8))
        assert report.checks == (
            "channels", "deadlock", "hazards", "dataflow", "model"
        )
        assert report.ok

    def test_broken_schedule_skips_execution_passes(self):
        report = run_checks(send_then_recv())
        assert "dataflow" not in report.checks
        assert report.meta["skipped"] == ["dataflow", "model"]

    def test_check_schedule_convenience(self):
        report = check_schedule("bcast", "knomial", 16, k=4)
        assert report.ok
        assert "bcast knomial p=16 k=4" in report.schedule

    def test_obs_counters_emitted(self):
        from repro.obs import OBS

        OBS.reset()
        OBS.enable()
        try:
            run_checks(send_then_recv(), cache=CheckCache())
            snap = OBS.metrics.snapshot()
            assert snap.value("repro_check_runs_total", outcome="fail") == 1
            assert snap.value(
                "repro_check_findings_total",
                code="deadlock-rendezvous",
                severity="error",
            ) == 1
        finally:
            OBS.disable()
            OBS.reset()


class TestCheckCLI:
    def test_single_point_clean(self, capsys):
        assert main_check(["allreduce", "ring", "--p", "8"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "allreduce ring p=8" in out

    def test_json_report(self, capsys):
        assert main_check(["bcast", "knomial", "--p", "9", "--k", "3",
                           "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert "deadlock" in doc["checks"]

    def test_broken_serialized_schedule_fails(self, tmp_path, capsys):
        from repro.core.serialize import save_schedule

        path = tmp_path / "broken.json"
        save_schedule(send_then_recv(), path)
        assert main_check(["--schedule", str(path)]) == 1
        assert "deadlock-rendezvous" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main_check(["allgather", "ring", "--p", "4",
                           "-o", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["ok"] is True

    def test_usage_error_without_target(self, capsys):
        assert main_check([]) == 2
        assert "error" in capsys.readouterr().err

    def test_strict_fails_on_warnings(self, tmp_path):
        from repro.core.serialize import save_schedule

        # Correct bcast whose root copies a block a same-step send also
        # reads: hazard-read-write is its only (warning) finding.
        s = handmade("bcast", [
            prog(0, [CopyOp(1, 0), SendOp(1, (0, 1))]),
            prog(1, [RecvOp(0, (0, 1))]),
        ], nblocks=2, root=0)
        path = tmp_path / "warny.json"
        save_schedule(s, path)
        # hazard-read-write is a warning: ok normally, fails --strict.
        assert main_check(["--schedule", str(path)]) == 0
        assert main_check(["--schedule", str(path), "--strict"]) == 1

    def test_all_filtered_sweep(self, capsys):
        rc = main_check(["--all", "allreduce", "ring"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "checked" in out and "0 failing" in out

    def test_all_unknown_filter_is_usage_error(self, capsys):
        assert main_check(["--all", "allreduce", "nonexistent"]) == 2
        assert "no registry entries" in capsys.readouterr().err
