"""Tests for the algorithm registry (:mod:`repro.core.registry`)."""

import pytest

from repro.core.registry import (
    COLLECTIVES,
    GENERALIZED_ALGORITHMS,
    ROOTED_COLLECTIVES,
    TABLE1,
    algorithms_for,
    build_schedule,
    info,
    max_radix,
)
from repro.errors import ScheduleError


class TestLookup:
    def test_all_collectives_have_algorithms(self):
        for coll in COLLECTIVES:
            assert algorithms_for(coll), coll

    def test_unknown_collective(self):
        with pytest.raises(ScheduleError):
            algorithms_for("alltoallw")

    def test_unknown_algorithm_lists_known(self):
        with pytest.raises(ScheduleError, match="known:"):
            info("bcast", "quantum")

    def test_generalized_set_is_table1(self):
        """The 10 registered generalized algorithms are exactly Table I."""
        expected = set()
        for base, (gen, colls) in TABLE1.items():
            for coll in colls:
                expected.add((coll, gen))
        assert set(GENERALIZED_ALGORITHMS) == expected
        assert len(GENERALIZED_ALGORITHMS) == 10

    def test_generalized_entries_take_k(self):
        for coll, alg in GENERALIZED_ALGORITHMS:
            entry = info(coll, alg)
            assert entry.generalized
            assert entry.takes_k
            assert entry.default_k is not None

    def test_kernel_attribution(self):
        assert info("bcast", "kring").kernel == "ring"
        assert info("reduce", "knomial").kernel == "binomial"
        assert info("allreduce", "recursive_multiplying").kernel == (
            "recursive_doubling"
        )


class TestBuildSchedule:
    def test_default_radix_applied(self):
        sched = build_schedule("bcast", "knomial", 8)
        assert sched.k == 2
        assert sched.algorithm == "binomial"  # k=2 is the classic

    def test_radix_rejected_for_fixed_algorithm(self):
        with pytest.raises(ScheduleError, match="does not take a radix"):
            build_schedule("bcast", "binomial", 8, k=4)

    def test_root_rejected_for_unrooted(self):
        with pytest.raises(ScheduleError, match="does not take a root"):
            build_schedule("allreduce", "recursive_doubling", 8, root=3)

    def test_root_accepted_for_rooted(self):
        sched = build_schedule("bcast", "binomial", 8, root=5)
        assert sched.root == 5

    def test_rooted_collectives_all_take_root(self):
        for coll in ROOTED_COLLECTIVES:
            for alg in algorithms_for(coll):
                assert info(coll, alg).takes_root, (coll, alg)

    def test_invalid_p(self):
        with pytest.raises(ScheduleError):
            build_schedule("bcast", "binomial", 0)

    def test_default_radix_schedules_match_classics(self):
        """Fig. 7's structural guarantee: generalized @ default radix
        produces the identical schedule to the classic algorithm."""
        pairs = [
            ("bcast", "knomial", "binomial"),
            ("reduce", "knomial", "binomial"),
            ("allgather", "recursive_multiplying", "recursive_doubling"),
            ("allreduce", "recursive_multiplying", "recursive_doubling"),
            ("allgather", "kring", "ring"),
            ("allreduce", "kring", "ring"),
            ("bcast", "kring", "ring"),
        ]
        for coll, gen, classic in pairs:
            g = build_schedule(coll, gen, 12)
            c = build_schedule(coll, classic, 12)
            assert [prog.steps for prog in g.programs] == [
                prog.steps for prog in c.programs
            ], (coll, gen)


class TestMaxRadix:
    def test_tree_radix_saturates_at_p(self):
        assert max_radix("bcast", "knomial", 16) == 16

    def test_fixed_algorithm_has_no_radix(self):
        with pytest.raises(ScheduleError):
            max_radix("bcast", "binomial", 16)
