"""Tests for the DES core (:mod:`repro.simnet.engine`)."""

import pytest

from repro.errors import MachineError
from repro.simnet.engine import Acquire, AllOf, Engine, Event, Resource, Timeout


class TestClockAndTimeouts:
    def test_timeouts_advance_clock(self):
        eng = Engine()
        log = []

        def proc():
            yield Timeout(1.5)
            log.append(eng.now)
            yield Timeout(2.5)
            log.append(eng.now)

        eng.process(proc())
        assert eng.run() == 4.0
        assert log == [1.5, 4.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(MachineError):
            Timeout(-1)

    def test_scheduling_into_past_rejected(self):
        eng = Engine()
        eng.now = 5.0
        with pytest.raises(MachineError):
            eng.call_at(4.0, lambda: None)

    def test_tie_break_is_fifo(self):
        eng = Engine()
        order = []
        eng.call_at(1.0, lambda: order.append("a"))
        eng.call_at(1.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b"]


class TestEvents:
    def test_event_wakes_waiter(self):
        eng = Engine()
        ev = Event(eng)
        log = []

        def waiter():
            yield ev
            log.append(eng.now)

        def firer():
            yield Timeout(3.0)
            ev.trigger()

        eng.process(waiter())
        eng.process(firer())
        eng.run()
        assert log == [3.0]

    def test_pre_triggered_event_resumes_immediately(self):
        eng = Engine()
        ev = Event(eng)
        ev.trigger()
        log = []

        def waiter():
            yield ev
            log.append(eng.now)

        eng.process(waiter())
        eng.run()
        assert log == [0.0]

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = Event(eng)
        ev.trigger()
        with pytest.raises(MachineError):
            ev.trigger()

    def test_all_of_waits_for_every_child(self):
        eng = Engine()
        done = []

        def proc():
            yield AllOf([Timeout(1.0), Timeout(5.0), Timeout(2.0)])
            done.append(eng.now)

        eng.process(proc())
        eng.run()
        assert done == [5.0]

    def test_all_of_empty_completes(self):
        eng = Engine()
        done = []

        def proc():
            yield AllOf([])
            done.append(True)

        eng.process(proc())
        eng.run()
        assert done == [True]


class TestResources:
    def test_capacity_serializes(self):
        """Three 1-second jobs over a 1-unit resource take 3 seconds."""
        eng = Engine()
        res = Resource(eng, 1, "r")
        ends = []

        def job():
            yield Acquire(res)
            yield Timeout(1.0)
            res.release()
            ends.append(eng.now)

        for _ in range(3):
            eng.process(job())
        eng.run()
        assert ends == [1.0, 2.0, 3.0]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        res = Resource(eng, 2, "r")
        ends = []

        def job():
            yield Acquire(res)
            yield Timeout(1.0)
            res.release()
            ends.append(eng.now)

        for _ in range(4):
            eng.process(job())
        eng.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_grant_order(self):
        eng = Engine()
        res = Resource(eng, 1, "r")
        order = []

        def job(name, delay):
            yield Timeout(delay)
            yield Acquire(res)
            order.append(name)
            yield Timeout(10.0)
            res.release()

        eng.process(job("first", 0.0))
        eng.process(job("second", 1.0))
        eng.process(job("third", 2.0))
        eng.run()
        assert order == ["first", "second", "third"]

    def test_release_below_zero_rejected(self):
        eng = Engine()
        res = Resource(eng, 1, "r")
        with pytest.raises(MachineError):
            res.release()

    def test_wait_statistics(self):
        eng = Engine()
        res = Resource(eng, 1, "r")

        def job():
            yield Acquire(res)
            yield Timeout(2.0)
            res.release()

        eng.process(job())
        eng.process(job())
        eng.run()
        assert res.total_grants == 2
        assert res.total_wait == 2.0

    def test_zero_capacity_rejected(self):
        with pytest.raises(MachineError):
            Resource(Engine(), 0, "r")


class TestDeadlockDetection:
    def test_blocked_process_reported(self):
        eng = Engine()
        ev = Event(eng)  # never triggered

        def proc():
            yield ev

        eng.process(proc())
        with pytest.raises(MachineError, match="deadlock"):
            eng.run()

    def test_clean_run_reports_no_pending(self):
        eng = Engine()

        def proc():
            yield Timeout(1.0)

        eng.process(proc())
        assert eng.run() == 1.0

    def test_zero_event_run_returns_initial_clock(self):
        """An engine with nothing scheduled runs cleanly to t=0.

        Pins the diagnosis-path guard: with an empty heap and no pending
        processes, run() must return rather than probe the heap.
        """
        assert Engine().run() == 0.0

    def test_zero_event_run_with_instant_processes(self):
        """Processes that finish without yielding leave nothing pending."""
        eng = Engine()
        log = []

        def proc():
            log.append(eng.now)
            return
            yield  # pragma: no cover - makes this a generator

        eng.process(proc())
        eng.process(proc())
        assert eng.run() == 0.0
        assert log == [0.0, 0.0]

    def test_all_blocked_diagnosis_names_every_process(self):
        """Every blocked process is listed with its waitable — and the
        report is produced from the (empty) drained heap without error."""
        eng = Engine()
        ev = Event(eng)
        res = Resource(eng, 1, "nic")

        def event_waiter():
            yield ev

        def resource_waiter():
            yield Acquire(res)
            yield Acquire(res)  # second acquire blocks forever

        def conjunction_waiter():
            yield AllOf([ev, Event(eng)])

        eng.process(event_waiter(), name="on-event")
        eng.process(resource_waiter(), name="on-nic")
        eng.process(conjunction_waiter(), name="on-allof")
        with pytest.raises(MachineError) as exc:
            eng.run()
        msg = str(exc.value)
        assert "3 process(es)" in msg
        assert "on-event waiting on event" in msg
        assert "on-nic waiting on acquire(nic)" in msg
        assert "on-allof waiting on all_of(2 waitables, 2 pending)" in msg
        assert not eng._heap  # diagnosis consumed nothing it shouldn't

    def test_all_blocked_after_events_fire(self):
        """Deadlock detected even when some simulated time has passed."""
        eng = Engine()
        ev = Event(eng)

        def proc():
            yield Timeout(2.0)
            yield ev

        eng.process(proc(), name="late-blocker")
        with pytest.raises(MachineError, match="blocked at t=2"):
            eng.run()


class TestFastPathSemantics:
    def test_uncontended_acquire_is_synchronous(self):
        """The no-event grant path resumes inline, like a triggered event."""
        eng = Engine()
        order = []

        def proc():
            res = Resource(eng, 1, "r")
            got = yield Acquire(res)
            order.append(("granted", got is res, eng.now))
            res.release()

        eng.process(proc())
        eng.run()
        assert order == [("granted", True, 0.0)]

    def test_event_multiple_waiters_fifo(self):
        """List-promotion of the inline callback keeps FIFO waking order."""
        eng = Engine()
        ev = Event(eng)
        order = []

        def waiter(name):
            yield ev
            order.append(name)

        eng.process(waiter("a"))
        eng.process(waiter("b"))
        eng.process(waiter("c"))

        def firer():
            yield Timeout(1.0)
            ev.trigger()

        eng.process(firer())
        eng.run()
        assert order == ["a", "b", "c"]
