"""Docstring-coverage lint for the public API.

CONTRIBUTING.md promises that "every public item carries a docstring
saying what it is *for*" — this gate makes the promise enforceable for
the surfaces users actually import: the ``repro`` facade and the
subsystems whose objects appear in user code (``repro.check``,
``repro.obs``, ``repro.recovery``).

Coverage is structural, not stylistic: each module must declare
``__all__``, the module itself and every exported callable/class must
have a docstring, and every *public member* (method or property defined
in this project) of an exported class must too. Inherited docstrings
count — ``inspect.getdoc`` resolves the MRO — so overriding a documented
base method without restating its docstring is fine.
"""

import importlib
import inspect

import pytest

#: The public surfaces the gate covers. ``repro`` re-exports the facade
#: (``repro.api``), so both spellings are checked.
MODULES = [
    "repro",
    "repro.adapt",
    "repro.api",
    "repro.check",
    "repro.compile",
    "repro.obs",
    "repro.recovery",
    "repro.server",
    "repro.server.client",
    "repro.server.config",
    "repro.server.smoke",
    "repro.store",
]


def _member_needs_doc(cls, name):
    """A public member defined by this project (not object/dataclass
    machinery), resolved statically so properties aren't invoked."""
    static = inspect.getattr_static(cls, name, None)
    if isinstance(static, property):
        func = static.fget
    elif isinstance(static, (staticmethod, classmethod)):
        func = static.__func__
    elif inspect.isfunction(static):
        func = static
    else:
        return None
    module = getattr(func, "__module__", "") or ""
    return func if module.startswith("repro") else None


def undocumented(module):
    missing = []
    if not inspect.getdoc(module):
        missing.append(f"{module.__name__} (module docstring)")
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # re-exported constants (OBS, DEFAULT_POLICY, ...)
        if not inspect.getdoc(obj):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for member in dir(obj):
                if member.startswith("_"):
                    continue
                if _member_needs_doc(obj, member) is None:
                    continue
                if not inspect.getdoc(getattr(obj, member, None)):
                    missing.append(f"{module.__name__}.{name}.{member}")
    return missing


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must declare __all__"
    missing = undocumented(module)
    assert not missing, (
        f"{len(missing)} public item(s) lack docstrings "
        f"(CONTRIBUTING.md: every public item says what it is for):\n  "
        + "\n  ".join(missing)
    )
