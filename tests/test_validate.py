"""Tests for the symbolic validator (:mod:`repro.core.validate`).

The validator's job is to *reject* broken schedules; most tests here
construct schedules with specific bugs (the corner cases §VI-A warns
about) and assert the right rejection, plus positive checks on the
initial-state/postcondition logic.
"""

import pytest

from repro.core.registry import build_schedule
from repro.core.schedule import RankProgram, RecvOp, Schedule, SendOp
from repro.core.validate import initial_state, postcondition_errors, verify
from repro.errors import ValidationError


def make(programs, nranks, nblocks, collective, root=None):
    return Schedule(
        collective=collective,
        algorithm="test",
        nranks=nranks,
        nblocks=nblocks,
        programs=programs,
        root=root,
    )


class TestInitialState:
    def test_bcast_root_has_all_blocks(self):
        sched = make([RankProgram(rank=r) for r in range(3)], 3, 2, "bcast", 1)
        state = initial_state(sched)
        assert state[1] == [frozenset({1}), frozenset({1})]
        assert state[0] == [None, None]

    def test_allgather_each_rank_owns_its_block(self):
        sched = make([RankProgram(rank=r) for r in range(3)], 3, 3, "allgather")
        state = initial_state(sched)
        for r in range(3):
            for b in range(3):
                assert state[r][b] == (frozenset({r}) if b == r else None)

    def test_allreduce_everyone_contributes_everywhere(self):
        sched = make([RankProgram(rank=r) for r in range(2)], 2, 1, "allreduce")
        state = initial_state(sched)
        assert state[0][0] == frozenset({0})
        assert state[1][0] == frozenset({1})

    def test_allgather_requires_p_blocks(self):
        sched = make([RankProgram(rank=r) for r in range(3)], 3, 1, "allgather")
        with pytest.raises(ValidationError, match="nblocks"):
            initial_state(sched)

    def test_bcast_requires_root(self):
        sched = make([RankProgram(rank=0)], 1, 1, "bcast", root=None)
        with pytest.raises(ValidationError, match="root"):
            initial_state(sched)


class TestPostcondition:
    def test_incomplete_bcast_reports_missing_ranks(self):
        sched = make([RankProgram(rank=r) for r in range(2)], 2, 1, "bcast", 0)
        state = initial_state(sched)  # rank 1 never receives
        errors = postcondition_errors(sched, state)
        assert any("rank 1" in e for e in errors)

    def test_complete_allreduce_passes(self):
        sched = make([RankProgram(rank=r) for r in range(2)], 2, 1, "allreduce")
        full = frozenset({0, 1})
        assert postcondition_errors(sched, [[full], [full]]) == []


class TestRejection:
    def test_garbage_send_rejected(self):
        """Rank 1 forwards a bcast payload it never received."""
        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(0,)))
        p0.add(RecvOp(peer=1, blocks=(0,)))
        with pytest.raises(ValidationError, match="garbage"):
            verify(make([p0, p1], 2, 1, "bcast", 0))

    def test_double_count_rejected(self):
        """Rank 0 reduce-receives rank 1's contribution twice (SUM would
        double-count) — the classic generalized-algorithm corner-case bug."""
        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(0,)))
        p1.add(SendOp(peer=0, blocks=(0,)))
        p0.add(RecvOp(peer=1, blocks=(0,), reduce=True))
        p0.add(RecvOp(peer=1, blocks=(0,), reduce=True))
        with pytest.raises(ValidationError, match="double-count"):
            verify(make([p0, p1], 2, 1, "reduce", 0))

    def test_incomplete_reduction_rejected(self):
        """A reduce that never moves rank 1's contribution to the root."""
        progs = [RankProgram(rank=0), RankProgram(rank=1)]
        with pytest.raises(ValidationError, match="postcondition"):
            verify(make(progs, 2, 1, "reduce", 0))

    def test_minimal_correct_allgather_passes(self):
        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(1,)))
        p0.add(RecvOp(peer=1, blocks=(1,)))
        p0.add(SendOp(peer=1, blocks=(0,)))
        p1.add(RecvOp(peer=0, blocks=(0,)))
        verify(make([p0, p1], 2, 2, "allgather"))

    def test_wrong_slot_delivery_rejected(self):
        """Rank 1 sends its block labeled as block 0 — the receive's slot
        disagrees with the wire message and the mismatch is fatal."""
        from repro.errors import ExecutionError

        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(1,)))
        p0.add(RecvOp(peer=1, blocks=(0,)))  # wrong slot
        p0.add(SendOp(peer=1, blocks=(0,)))
        p1.add(RecvOp(peer=0, blocks=(0,)))
        with pytest.raises(ExecutionError, match="blocks"):
            verify(make([p0, p1], 2, 2, "allgather"))

    def test_reduce_into_garbage_rejected(self):
        p0 = RankProgram(rank=0)
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(1,)))
        # In a bcast, rank 0 has no valid contribution to reduce into at
        # block 1 of a non-root rank... build a gather-style case instead:
        p0.add(RecvOp(peer=1, blocks=(1,), reduce=True))
        with pytest.raises(ValidationError, match="garbage"):
            verify(make([p0, p1], 2, 2, "gather", 0))


class TestRealSchedules:
    @pytest.mark.parametrize("p", [1, 2, 5, 9, 16, 17])
    @pytest.mark.parametrize(
        "collective,algorithm,k",
        [
            ("bcast", "knomial", 3),
            ("reduce", "knomial", 4),
            ("allgather", "recursive_multiplying", 3),
            ("allreduce", "kring", 4),
            ("reduce_scatter", "kring", 4),
        ],
    )
    def test_real_schedules_verify(self, p, collective, algorithm, k):
        report = verify(build_schedule(collective, algorithm, p, k=k))
        assert report.delivered_messages >= 0

    def test_report_contains_description(self):
        report = verify(build_schedule("bcast", "binomial", 8))
        assert "bcast" in report.schedule
