"""Unit tests for the schedule IR (:mod:`repro.core.schedule`)."""

import pytest

from repro.core.schedule import (
    CopyOp,
    RankProgram,
    RecvOp,
    Schedule,
    SendOp,
    Step,
)
from repro.errors import ScheduleError


def two_rank_schedule():
    """rank 0 sends block 0 to rank 1."""
    p0 = RankProgram(rank=0)
    p0.add(SendOp(peer=1, blocks=(0,)))
    p1 = RankProgram(rank=1)
    p1.add(RecvOp(peer=0, blocks=(0,)))
    return Schedule(
        collective="bcast",
        algorithm="test",
        nranks=2,
        nblocks=1,
        programs=[p0, p1],
        root=0,
    )


class TestOps:
    def test_send_requires_blocks(self):
        with pytest.raises(ScheduleError):
            SendOp(peer=1, blocks=())

    def test_send_rejects_duplicate_blocks(self):
        with pytest.raises(ScheduleError):
            SendOp(peer=1, blocks=(0, 0))

    def test_recv_rejects_duplicate_blocks(self):
        with pytest.raises(ScheduleError):
            RecvOp(peer=1, blocks=(2, 2))

    def test_step_requires_ops(self):
        with pytest.raises(ScheduleError):
            Step(())

    def test_step_classifies_ops(self):
        step = Step(
            (
                SendOp(peer=1, blocks=(0,)),
                RecvOp(peer=2, blocks=(1,), reduce=True),
                CopyOp(src=0, dst=1),
            )
        )
        assert len(step.sends) == 1
        assert len(step.recvs) == 1
        assert len(step.copies) == 1
        assert step.recvs[0].reduce


class TestRankProgram:
    def test_add_step_skips_empty(self):
        prog = RankProgram(rank=0)
        prog.add_step([])
        assert prog.steps == []

    def test_iter_ops_yields_step_indices(self):
        prog = RankProgram(rank=0)
        prog.add(SendOp(peer=1, blocks=(0,)))
        prog.add(RecvOp(peer=1, blocks=(0,)))
        indices = [i for i, _ in prog.iter_ops()]
        assert indices == [0, 1]


class TestSchedule:
    def test_valid_schedule_builds(self):
        sched = two_rank_schedule()
        assert sched.describe() == "bcast test p=2 root=0"

    def test_program_count_must_match(self):
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=3,
                nblocks=1,
                programs=[RankProgram(rank=0)],
            )

    def test_program_rank_mismatch(self):
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=2,
                nblocks=1,
                programs=[RankProgram(rank=0), RankProgram(rank=0)],
            )

    def test_peer_out_of_range(self):
        p0 = RankProgram(rank=0)
        p0.add(SendOp(peer=5, blocks=(0,)))
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=2,
                nblocks=1,
                programs=[p0, RankProgram(rank=1)],
            )

    def test_self_communication_rejected(self):
        p0 = RankProgram(rank=0)
        p0.add(SendOp(peer=0, blocks=(0,)))
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=2,
                nblocks=1,
                programs=[p0, RankProgram(rank=1)],
            )

    def test_block_out_of_range(self):
        p0 = RankProgram(rank=0)
        p0.add(SendOp(peer=1, blocks=(3,)))
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=2,
                nblocks=2,
                programs=[p0, RankProgram(rank=1)],
            )

    def test_copy_block_out_of_range(self):
        p0 = RankProgram(rank=0)
        p0.add(CopyOp(src=0, dst=9))
        with pytest.raises(ScheduleError):
            Schedule(
                collective="bcast",
                algorithm="t",
                nranks=1,
                nblocks=2,
                programs=[p0],
            )

    def test_stats(self):
        sched = two_rank_schedule()
        stats = sched.stats()
        assert stats.messages == 1
        assert stats.blocks_sent == 1
        assert stats.max_steps == 1
        assert stats.reduce_receives == 0

    def test_stats_counts_reduce_receives(self):
        p0 = RankProgram(rank=0)
        p0.add(RecvOp(peer=1, blocks=(0,), reduce=True))
        p1 = RankProgram(rank=1)
        p1.add(SendOp(peer=0, blocks=(0,)))
        sched = Schedule(
            collective="reduce",
            algorithm="t",
            nranks=2,
            nblocks=1,
            programs=[p0, p1],
            root=0,
        )
        assert sched.stats().reduce_receives == 1

    def test_block_map_partition(self):
        sched = two_rank_schedule()
        bm = sched.block_map(100)
        assert bm.nblocks == 1
        assert bm.total == 100
