"""Tests for recursive doubling/multiplying (:mod:`repro.core.recursive`)."""

import pytest

from repro.core.recursive import (
    radix_schedule,
    recursive_doubling_allgather,
    recursive_doubling_allreduce,
    recursive_doubling_bcast,
    recursive_multiplying_allgather,
    recursive_multiplying_allreduce,
    recursive_multiplying_bcast,
    smooth_core,
)
from repro.core.validate import verify
from repro.errors import ScheduleError

from conftest import INTERESTING_K, INTERESTING_P


class TestSmoothCore:
    def test_power_of_k_is_its_own_core(self):
        assert smooth_core(16, 2) == 16
        assert smooth_core(27, 3) == 27

    def test_mixed_composites_avoid_folding(self):
        # 12 = 4·3 is 4-smooth even though it is not a power of 4.
        assert smooth_core(12, 4) == 12
        assert smooth_core(24, 4) == 24

    def test_prime_above_radix_folds(self):
        assert smooth_core(17, 4) == 16
        assert smooth_core(31, 2) == 16  # 17..31 all have a factor > 2? no:
        # 31 is prime; largest 2-smooth <= 31 is 32/2=16? 16, 24? 24=2^3*3
        # has factor 3 > 2 → not 2-smooth. Correct answer is 16.

    def test_odd_square_not_2_smooth(self):
        assert smooth_core(9, 2) == 8

    def test_k_at_least_p_means_no_fold(self):
        for p in INTERESTING_P:
            assert smooth_core(p, max(p, 2)) == p

    def test_invalid_inputs(self):
        with pytest.raises(ScheduleError):
            smooth_core(0, 2)
        with pytest.raises(ScheduleError):
            smooth_core(8, 1)


class TestRadixSchedule:
    def test_power_of_two(self):
        assert radix_schedule(8, 2) == (2, 2, 2)

    def test_greedy_largest_divisor(self):
        assert radix_schedule(12, 4) == (4, 3)
        assert radix_schedule(128, 4) == (4, 4, 4, 2)

    def test_product_equals_core(self):
        for p in INTERESTING_P:
            for k in INTERESTING_K:
                q = smooth_core(p, k)
                radices = radix_schedule(q, k)
                prod = 1
                for r in radices:
                    prod *= r
                assert prod == q
                assert all(2 <= r <= k for r in radices)

    def test_trivial_core(self):
        assert radix_schedule(1, 4) == ()

    def test_non_smooth_rejected(self):
        with pytest.raises(ScheduleError):
            radix_schedule(7, 4)


class TestSchedules:
    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_allreduce_verifies(self, p, k):
        verify(recursive_multiplying_allreduce(p, k))

    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_allgather_verifies(self, p, k):
        verify(recursive_multiplying_allgather(p, k))

    @pytest.mark.parametrize("p", INTERESTING_P)
    @pytest.mark.parametrize("k", INTERESTING_K)
    def test_bcast_verifies(self, p, k):
        verify(recursive_multiplying_bcast(p, k, root=p - 1))

    def test_doubling_is_radix_2(self):
        assert recursive_doubling_allreduce(16).k == 2
        assert recursive_doubling_allgather(16).algorithm == "recursive_doubling"
        assert recursive_doubling_bcast(16).algorithm == "recursive_doubling"

    def test_round_count_power_of_k(self):
        """On k^m ranks every rank runs exactly m butterfly steps."""
        sched = recursive_multiplying_allreduce(27, 3)
        assert sched.meta["radices"] == (3, 3, 3)
        for prog in sched.programs:
            assert len(prog.steps) == 3

    def test_fold_adds_pre_and_post_steps(self):
        """p = 17, k = 4: core 16, one folded rank → core partner gains a
        fold and an unfold step; the folded rank has exactly 2 steps."""
        sched = recursive_multiplying_allreduce(17, 4)
        assert sched.meta == {"core": 16, "folded": 1, "radices": (4, 4)}
        folded_prog = sched.programs[16]
        assert len(folded_prog.steps) == 2  # fold send + unfold recv
        partner_prog = sched.programs[0]
        assert len(partner_prog.steps) == 4  # fold + 2 rounds + unfold

    def test_heavily_folded_case(self):
        """p = 15, k = 2: core 8, seven folded ranks, one per partner."""
        sched = recursive_multiplying_allreduce(15, 2)
        assert sched.meta["core"] == 8
        assert sched.meta["folded"] == 7
        verify(sched)

    def test_allreduce_exchanges_full_vector(self):
        sched = recursive_multiplying_allreduce(9, 3)
        assert sched.nblocks == 1

    def test_allgather_message_volume_is_optimal(self):
        """Total blocks received per rank = p-1 for power-of-k p (each
        block enters each rank exactly once — no redundant traffic)."""
        from repro.core.schedule import RecvOp

        sched = recursive_multiplying_allgather(16, 4)
        for prog in sched.programs:
            got = []
            for _, op in prog.iter_ops():
                if isinstance(op, RecvOp):
                    got.extend(op.blocks)
            assert sorted(got) == [b for b in range(16) if b != prog.rank]

    def test_butterfly_concurrency_is_2k_minus_2(self):
        sched = recursive_multiplying_allreduce(16, 4)
        stats = sched.stats()
        assert stats.max_concurrent_ops == 2 * (4 - 1)

    def test_invalid_radix(self):
        with pytest.raises(ScheduleError):
            recursive_multiplying_allreduce(8, 1)

    def test_single_rank(self):
        sched = recursive_multiplying_allreduce(1, 4)
        assert all(not prog.steps for prog in sched.programs)
