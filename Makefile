# Convenience targets for the common workflows.

.PHONY: install test bench validate experiments tune examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

validate:
	repro-validate --max-p 24

experiments:
	repro-bench all

tune:
	repro-tune --machine frontier --nodes 32 -o tuned-frontier32.json

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
