# Convenience targets for the common workflows.

.PHONY: install test chaos chaos-recover bench perf compile-bench \
        validate experiments tune examples trace-demo check soak \
        serve-smoke clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Tier 2: the fault-injection sweep (every Table I algorithm x every
# chaos scenario on both backends). Excluded from plain `make test`.
chaos:
	pytest tests/ -m chaos

# Tier 2b: the same chaos sweep with self-healing on (every partial
# failure must recover), then the seeded recovery sweep writing the
# time-to-recovery-vs-radix report CI uploads as an artifact.
chaos-recover:
	repro-chaos --recover
	repro-recover --sweep -o recovery_report.json

bench:
	pytest benchmarks/ --benchmark-only

# Perf-regression smoke gate against the committed BENCH_perf.json
# (schedule-build factor, cache integrity, the observability overhead
# gate, and the scale tier: p=4096 sweep under budget, collapsed ==
# materialized on the p=16 grid, sublinear lazy probe up to p=2^20);
# regenerate the baseline with `repro-bench-perf -o BENCH_perf.json`.
perf:
	repro-bench-perf --smoke --baseline BENCH_perf.json

# Compiled-execution gate in isolation (seconds, not minutes): threaded
# execution through repro.compile's program tables must beat op-by-op
# interpretation >= 2x with bit-identical buffers on every acceptance
# config. Writes compile_bench.json (the CI artifact); exit status is
# the gate.
compile-bench:
	python -m repro.bench.compilebench -o compile_bench.json

# End-to-end observability demo: trace one 64-rank allreduce, writing
# trace.json (open at https://ui.perfetto.dev) plus trace-metrics.json
# and trace-metrics.prom next to it.
trace-demo:
	repro-trace allreduce recursive_multiplying --p 64 --k 4 \
		--nbytes 65536 -o trace.json

validate:
	repro-validate --max-p 24

# Static-analysis gate: deadlock, buffer-hazard, dataflow, and
# model-consistency lints over every registry pair across the
# acceptance grid (p in {2..17, 32, 64}, k in {2..8}) — no simulator.
check:
	repro-check --all --jobs -1

# Durability soak: seeded crash-storm over real repro-sweep subprocesses
# — kill -9, deterministic worker poison, random file damage (bit flips,
# truncated store entries, torn journal tails) between rounds, every
# round resumed and compared byte-for-byte against an undisturbed
# reference. Artifacts (journals, per-round results, soak_summary.json)
# land in soak-artifacts/; CI uploads them on every run.
soak:
	python -m repro.bench.soak --rounds 6 -o soak-artifacts

# Tuning-service smoke (DESIGN.md §17): boot a real repro-serve
# subprocess on an ephemeral port, probe every endpoint (served vs
# direct selection identity, schedule fingerprint round-trip, 8-way
# coalesced /tune, /metrics), SIGTERM it, and save the exported
# selection-config artifact CI uploads.
serve-smoke:
	python -m repro.server.smoke -o selection_config.json

experiments:
	repro-bench all

tune:
	repro-tune --machine frontier --nodes 32 -o tuned-frontier32.json

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		python $$ex || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
