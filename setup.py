"""Legacy build shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments without the ``wheel`` package (offline
clusters, hermetic CI), where pip's PEP 517 editable path is unavailable:

    python setup.py develop    # or: pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
