"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish schedule construction problems from
verification failures or simulator misconfiguration.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "ReproError",
    "ScheduleError",
    "ValidationError",
    "ExecutionError",
    "MachineError",
    "SelectionError",
    "ModelError",
    "TraceError",
    "ObsError",
    "StoreError",
    "ServerError",
    "FaultError",
    "PartialFailure",
    "RecoveryError",
    "AdaptError",
    "CompileError",
    "ClassAnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ScheduleError(ReproError):
    """Raised when a collective schedule cannot be constructed.

    Typical causes: invalid radix (``k < 1``), a root rank outside
    ``[0, p)``, or an unknown (collective, algorithm) pair.
    """


class ValidationError(ReproError):
    """Raised when a schedule fails symbolic verification.

    Carries enough context (rank, block, step index) to debug the
    offending schedule; see :mod:`repro.core.validate`.
    """


class ExecutionError(ReproError):
    """Raised when an executor cannot run a schedule.

    Examples: unmatched send/receive pairs, buffer shape mismatches, or a
    deadlocked threaded execution.
    """


class MachineError(ReproError):
    """Raised for inconsistent machine specifications.

    Examples: zero ports on a multi-node machine, negative latency, or a
    rank count that does not fit the node/ppn geometry.
    """


class SelectionError(ReproError):
    """Raised when an algorithm selection table is malformed or has no
    entry covering a requested (collective, nranks, nbytes) triple."""


class ModelError(ReproError):
    """Raised when an analytical model is evaluated outside its domain
    (e.g. ``p < 2`` or a radix the model does not define)."""


class TraceError(ReproError):
    """Raised when timeline/trace analysis is asked for data that was
    never collected — e.g. :func:`repro.simnet.trace.timeline_stats` on a
    :class:`~repro.simnet.simulate.SimResult` simulated without
    ``collect_timeline=True``.  A result-shape problem, not a machine
    misconfiguration (it was historically misfiled as
    :class:`MachineError`)."""


class ObsError(ReproError):
    """Raised for observability misuse: mismatched metric kinds on one
    name, malformed histogram buckets, or attaching a simnet timeline
    outside any span."""


class StoreError(ReproError):
    """Raised for durability-layer misuse: an unwritable store root, a
    journal resumed against a different sweep configuration, or a store
    opened with an incompatible on-disk format version.

    Note the deliberate asymmetry with *damage*: corruption found inside
    the store (bad checksum, truncated entry, stray temp file) is never
    raised — damaged entries are quarantined and rebuilt, and a torn
    journal tail is skipped.  Only caller errors surface as exceptions.
    """


class ServerError(ReproError):
    """The tuning service could not satisfy a request.

    Raised by :mod:`repro.server` for service misuse on either side of
    the wire: a malformed or unroutable HTTP request, a query for a
    compiled artifact under an unknown fingerprint, a client that cannot
    reach (or parse a response from) the server, or a service
    constructed over an empty size grid.  Selection misses keep raising
    :class:`SelectionError` — the error classes travel through the HTTP
    boundary by name so clients can tell "no rule covers this point"
    from "the service is broken".
    """


class FaultError(ExecutionError):
    """An injected fault an execution backend could not mask.

    Structured: carries the failing rank, the step it was executing, the
    peer it was exchanging with, the per-link message sequence number, and
    how many (re)transmission attempts were made before giving up — the
    "which op, which peer, how many retries" diagnosis the chaos harness
    asserts on.  ``kind`` is one of ``"retries_exhausted"``, ``"crash"``,
    ``"timeout"``, or ``"aborted"``.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "fault",
        rank: Optional[int] = None,
        step: Optional[int] = None,
        peer: Optional[int] = None,
        seq: Optional[int] = None,
        retries: Optional[int] = None,
    ) -> None:
        # Fold the structured context into the message itself so a bare
        # str(exc) — a log line, a CI failure — already says what died
        # where, without the caller digging through attributes.
        context = []
        if rank is not None:
            context.append(f"rank {rank}")
        if step is not None:
            context.append(f"step {step}")
        if peer is not None:
            context.append(f"peer {peer}")
        if seq is not None:
            context.append(f"seq {seq}")
        if retries is not None:
            context.append(f"{retries} retry attempt(s)")
        if context:
            message = f"{message} [{kind}: {', '.join(context)}]"
        super().__init__(message)
        self.kind = kind
        self.rank = rank
        self.step = step
        self.peer = peer
        self.seq = seq
        self.retries = retries

    def diagnosis(self) -> str:
        """One-line machine-parseable summary of the structured fields."""
        parts = [f"kind={self.kind}"]
        for label in ("rank", "step", "peer", "seq", "retries"):
            value = getattr(self, label)
            if value is not None:
                parts.append(f"{label}={value}")
        return " ".join(parts)


class PartialFailure(ExecutionError):
    """A run that some ranks completed and others did not.

    Raised by the threaded transport (and the chaos harness) when injected
    crashes or exhausted retries take down part of the job while the rest
    either finished or aborted cleanly.  ``faults`` holds the per-rank
    :class:`FaultError` diagnoses; ``failed_ranks`` the ranks that hit a
    primary fault; ``stalled_ranks`` the ranks that were dragged down
    waiting on a failed peer.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_ranks: Sequence[int] = (),
        stalled_ranks: Sequence[int] = (),
        faults: Sequence["FaultError"] = (),
    ) -> None:
        bits = []
        if failed_ranks:
            bits.append(f"failed ranks {sorted(failed_ranks)}")
        if stalled_ranks:
            bits.append(f"stalled ranks {sorted(stalled_ranks)}")
        if faults:
            bits.append("; ".join(f.diagnosis() for f in faults))
        detail = f" [{'; '.join(bits)}]" if bits else ""
        super().__init__(message + detail)
        self.failed_ranks: Tuple[int, ...] = tuple(failed_ranks)
        self.stalled_ranks: Tuple[int, ...] = tuple(stalled_ranks)
        self.faults: Tuple[FaultError, ...] = tuple(faults)


class RecoveryError(ExecutionError):
    """Self-healing gave up: the failure could not be recovered.

    Raised by :mod:`repro.recovery` when the policy is ``abort``, when the
    retry budget (``max_rounds``) is exhausted, when the survivor set
    shrinks below ``min_ranks``, or when a failure destroys data no
    survivor holds (a dead bcast/scatter root with no spare to adopt its
    checkpoint).  ``report`` carries the full
    :class:`~repro.recovery.policy.RecoveryReport` accumulated up to the
    point of surrender — every detected failure, shrink round, and rebuilt
    schedule fingerprint.
    """

    def __init__(self, message: str, *, report=None) -> None:
        super().__init__(message)
        self.report = report


class ClassAnalysisError(ReproError):
    """Rank-equivalence-class analysis found a schedule it cannot collapse.

    Raised by :mod:`repro.compile.classes` when the computed partition
    violates a soundness invariant the collapsed simulator relies on
    (e.g. one class's matched sends land in more than one receiver class,
    or two members of a class target the same receiver).  The engine
    dispatcher in :mod:`repro.simnet.simulate` treats this as an
    asymmetric input and falls back to the materialized engine — the
    error never escapes ``simulate(engine="auto")``.
    """


class AdaptError(ReproError):
    """The online adaptive-selection loop could not run or gave up.

    Raised by :mod:`repro.adapt` on misconfiguration (no candidates, a
    non-positive round count, malformed phased plans) and by surfaces
    that treat a ladder ``abort`` as fatal — the loop itself never
    raises on abort; it returns a report with ``aborted=True`` so
    callers can degrade gracefully.
    """


class CompileError(ReproError):
    """A compiled program failed self-verification against its source IR.

    Raised by :mod:`repro.compile` when lowering produces tables that
    disagree with the schedule (a compiler bug) or when a cached/disk
    artifact is corrupt — stale peer tables, off-by-one block offsets,
    dropped fusion barriers, wrong op codes.  The message always names
    the offending rank and step so the mutation corpus (and a human
    reading CI) can see *where* the tables went wrong.  A corrupt
    artifact must be caught here; it never executes.
    """
