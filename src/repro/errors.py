"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish schedule construction problems from
verification failures or simulator misconfiguration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ScheduleError",
    "ValidationError",
    "ExecutionError",
    "MachineError",
    "SelectionError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ScheduleError(ReproError):
    """Raised when a collective schedule cannot be constructed.

    Typical causes: invalid radix (``k < 1``), a root rank outside
    ``[0, p)``, or an unknown (collective, algorithm) pair.
    """


class ValidationError(ReproError):
    """Raised when a schedule fails symbolic verification.

    Carries enough context (rank, block, step index) to debug the
    offending schedule; see :mod:`repro.core.validate`.
    """


class ExecutionError(ReproError):
    """Raised when an executor cannot run a schedule.

    Examples: unmatched send/receive pairs, buffer shape mismatches, or a
    deadlocked threaded execution.
    """


class MachineError(ReproError):
    """Raised for inconsistent machine specifications.

    Examples: zero ports on a multi-node machine, negative latency, or a
    rank count that does not fit the node/ppn geometry.
    """


class SelectionError(ReproError):
    """Raised when an algorithm selection table is malformed or has no
    entry covering a requested (collective, nranks, nbytes) triple."""


class ModelError(ReproError):
    """Raised when an analytical model is evaluated outside its domain
    (e.g. ``p < 2`` or a radix the model does not define)."""
