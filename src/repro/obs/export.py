"""Unified Perfetto / Chrome trace export.

Merges two kinds of record onto one timebase:

* **host spans** (:class:`~repro.obs.tracing.SpanRecord`) — wall-clock
  work: schedule builds, simulator runs, sweep chunks, tuner phases;
* **simnet timelines** (:class:`~repro.obs.tracing.SimTimeline`) — the
  simulator's per-message transfer windows, in *simulated* seconds.

The trace origin is the earliest host span start; every host event is
expressed in microseconds since that origin.  Each simnet timeline is
anchored at the host start of the ``simulate`` span that produced it, so
zooming into a ``simulate`` span shows the simulated traffic it
computed, laid out under it.  Simulated durations are rendered 1 sim-us
= 1 trace-us (a *simulated* millisecond occupies a millisecond of track
regardless of how fast the simulator computed it); the per-track process
names make the unit switch explicit.

Track layout (``pid``/``tid`` in the Chrome trace-event sense):

====================  =================================================
track                 contents
====================  =================================================
pid 1, tid per thread  host spans (one tid per worker pid/thread pair)
pid 1000+i, tid=rank   i-th simnet timeline, one track per rank
====================  =================================================

Open the written file at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .tracing import SimTimeline, SpanRecord

__all__ = ["to_perfetto", "write_perfetto"]

_HOST_PID = 1
_SIM_PID_BASE = 1000


def to_perfetto(
    spans: Sequence[SpanRecord],
    timelines: Sequence[SimTimeline] = (),
    *,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict:
    """Build the Chrome trace-event JSON dict from spans + sim timelines."""
    events: List[Dict] = []
    origin = min((s.t0 for s in spans), default=0.0)
    span_start = {s.span_id: s.t0 for s in spans}

    # One host tid per distinct (os pid, thread name), dense and stable
    # in first-appearance order so serial runs export reproducibly.
    tids: Dict[Tuple[int, str], int] = {}
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _HOST_PID,
            "tid": 0,
            "args": {"name": "host (wall-clock us)"},
        }
    )
    for s in spans:
        key = (s.pid, s.thread)
        tid = tids.get(key)
        if tid is None:
            tid = len(tids)
            tids[key] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _HOST_PID,
                    "tid": tid,
                    "args": {"name": f"pid {s.pid} / {s.thread}"},
                }
            )
        events.append(
            {
                "name": s.name,
                "cat": "host",
                "ph": "X",
                "ts": (s.t0 - origin) * 1e6,
                "dur": max((s.t1 - s.t0) * 1e6, 1e-3),
                "pid": _HOST_PID,
                "tid": tid,
                "args": dict(s.args, span_id=s.span_id,
                             parent_id=s.parent_id or ""),
            }
        )

    for i, tl in enumerate(timelines):
        pid = _SIM_PID_BASE + i
        anchor = span_start.get(tl.span_id, origin)
        base_us = (anchor - origin) * 1e6
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"simnet: {tl.label} (simulated us)"},
            }
        )
        for src, dst, nbytes, t0, t1, link in tl.events:
            events.append(
                {
                    "name": f"{src}->{dst} ({link})",
                    "cat": f"sim-{link}",
                    "ph": "X",
                    "ts": base_us + t0 * 1e6,
                    "dur": max((t1 - t0) * 1e6, 1e-3),
                    "pid": pid,
                    "tid": src,
                    "args": {"bytes": nbytes, "dst": dst, "link": link},
                }
            )
        events.append(
            {
                "name": "makespan",
                "cat": "sim-completion",
                "ph": "i",
                "ts": base_us + tl.makespan * 1e6,
                "pid": pid,
                "tid": 0,
                "s": "p",
            }
        )

    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["metadata"] = metadata
    return trace


def write_perfetto(
    spans: Sequence[SpanRecord],
    timelines: Sequence[SimTimeline] = (),
    path: Union[str, Path] = "trace.json",
    *,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the merged trace to ``path``; open it at ui.perfetto.dev."""
    path = Path(path)
    path.write_text(
        json.dumps(to_perfetto(spans, timelines, metadata=metadata))
    )
    return path
