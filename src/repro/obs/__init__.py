"""repro.obs — unified observability: metrics + spans + merged traces.

Before this layer, each subsystem told its own story in its own shape:
:class:`~repro.core.cache.ScheduleCache` kept an ad-hoc counter object,
``simulate(..., collect_timeline=True)`` returned raw tuples, the lossy
channel counted retries on itself, and the sweep engine threaded
``cache_hit`` booleans through result records.  ``repro.obs`` gives them
one vocabulary:

* a **metrics registry** (:mod:`repro.obs.metrics`) — labeled counters,
  gauges, and fixed-bucket histograms with snapshot/delta/reset and
  JSON + Prometheus text exposition;
* a **span tracer** (:mod:`repro.obs.tracing`) — nested
  ``span("build")`` / ``span("simulate")`` host-time regions whose IDs
  thread through ``ProcessPoolExecutor`` workers, so a parallel sweep
  yields one merged trace;
* a **Perfetto export** (:mod:`repro.obs.export`) — host spans and
  simulated message timelines on one timebase.

Usage — process-global (what the CLIs do)::

    import repro.obs as obs

    obs.enable()
    ... run builds / simulations / sweeps ...
    snap = obs.get_obs().metrics.snapshot()
    print(snap.to_prometheus())
    obs.get_obs().write_trace("trace.json")

or explicitly injected, for library callers that want isolation::

    o = obs.Obs(enabled=True)
    repro.simulate(schedule, machine, nbytes=1 << 16, obs=o)

**Disabled-by-default and near-free when off.**  Every instrumentation
site in the hot paths guards on a single attribute check
(``if obs.enabled:``) before building any label dict or span object, and
the DES engine selects an uninstrumented inner loop up front — the
overhead gate in ``repro-bench-perf`` holds the disabled path within a
few percent of the pre-observability baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from .metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricSeries,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracing import (
    NULL_SPAN,
    SimTimeline,
    SpanRecord,
    TraceContext,
    Tracer,
)
from .export import to_perfetto, write_perfetto

__all__ = [
    "Obs",
    "OBS",
    "get_obs",
    "enable",
    "disable",
    "is_enabled",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricSeries",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "Tracer",
    "TraceContext",
    "SpanRecord",
    "SimTimeline",
    "to_perfetto",
    "write_perfetto",
]


class Obs:
    """One observability scope: an enabled flag, a registry, a tracer.

    The process-global instance (:data:`OBS`) is what the instrumented
    subsystems consult by default; construct your own and pass it via the
    ``obs=`` keyword of :mod:`repro.api` entry points for isolation.
    The object identity of :data:`OBS` is stable for the process
    lifetime — ``enable()``/``disable()`` toggle it in place, so hot
    modules may cache a reference and test ``.enabled``.
    """

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(
        self,
        *,
        enabled: bool = False,
        context: Optional[TraceContext] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(context)

    # -- lifecycle -----------------------------------------------------

    def enable(self, context: Optional[TraceContext] = None) -> "Obs":
        """Turn instrumentation on (optionally joining a parent trace)."""
        if context is not None:
            self.tracer = Tracer(context)
        self.enabled = True
        return self

    def disable(self) -> "Obs":
        """Turn instrumentation off; recorded spans/metrics are kept."""
        self.enabled = False
        return self

    def reset(self) -> "Obs":
        """Zero metrics and drop spans/timelines; keeps the enabled flag."""
        self.metrics.reset()
        self.tracer.reset()
        return self

    # -- recording -----------------------------------------------------

    def span(self, name: str, **args: object):
        """A timed region; a shared no-op object when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **args)

    # -- export --------------------------------------------------------

    def trace_dict(self, *, metadata: Optional[Dict[str, object]] = None) -> Dict:
        """The merged Perfetto/Chrome trace as a JSON-ready dict."""
        return to_perfetto(
            self.tracer.spans(), self.tracer.timelines(), metadata=metadata
        )

    def write_trace(
        self,
        path: Union[str, Path],
        *,
        metadata: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Write the merged Perfetto trace collected so far."""
        return write_perfetto(
            self.tracer.spans(),
            self.tracer.timelines(),
            path,
            metadata=metadata,
        )

    def prometheus(self) -> str:
        """The current metrics snapshot in Prometheus text exposition.

        Convenience for live scrape surfaces — the tuning service's
        ``GET /metrics`` returns exactly this string.
        """
        return self.metrics.snapshot().to_prometheus()

    def write_metrics(self, path: Union[str, Path]) -> Path:
        """Write the metrics snapshot as JSON, plus Prometheus text
        alongside it (same stem, ``.prom`` suffix)."""
        path = Path(path)
        snap = self.metrics.snapshot()
        path.write_text(snap.to_json() + "\n")
        path.with_suffix(".prom").write_text(snap.to_prometheus())
        return path


#: The process-global scope. Identity is stable; only the flag toggles.
OBS = Obs()


def get_obs(obs: Optional[Obs] = None) -> Obs:
    """Resolve an explicit scope, defaulting to the process-global one."""
    return obs if obs is not None else OBS


def enable() -> Obs:
    """Enable the process-global scope (and return it)."""
    return OBS.enable()


def disable() -> Obs:
    """Disable the process-global scope (and return it)."""
    return OBS.disable()


def is_enabled() -> bool:
    """True when the process-global scope is recording."""
    return OBS.enabled
