"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One process-wide (but explicitly injectable) registry collects every
subsystem's counters under stable Prometheus-style names —
``repro_cache_lookups_total{cache="schedule",outcome="hit"}``,
``repro_engine_events_total``, ``repro_sweep_point_seconds_bucket`` — so
the tuner, the perf benchmark, and the ``repro-trace`` CLI all read one
shape instead of four incompatible per-subsystem stat dicts.

Design points:

* **Labeled series.**  A metric name plus a sorted ``(key, value)`` label
  tuple identifies one series.  Instruments are get-or-create:
  ``registry.counter("repro_cache_hits_total", cache="schedule")``
  returns the same :class:`Counter` object every call, so hot sites can
  also resolve a handle once and ``inc()`` it directly.
* **Snapshot / delta / reset.**  :meth:`MetricsRegistry.snapshot` returns
  an immutable :class:`MetricsSnapshot`; ``snap.delta(prev)`` subtracts
  an earlier snapshot series-by-series (gauges keep their latest value);
  :meth:`MetricsRegistry.reset` zeroes everything in place.
* **Exposition.**  Snapshots render as JSON (:meth:`MetricsSnapshot.to_dict`)
  and Prometheus text format (:meth:`MetricsSnapshot.to_prometheus`).
* **Merging.**  Worker processes ship their snapshots back through the
  sweep pool; :meth:`MetricsRegistry.merge` folds them into the parent
  registry (counters add, gauges take the max, histograms add buckets),
  so ``run_sweep(--jobs N)`` yields one coherent set of series.

Instruments themselves are *not* thread-safe beyond CPython's atomic
``+=`` on ints/floats; the subsystems that increment from worker threads
(the lossy channel monitor) tolerate the benign races the same way their
own retry counters already did.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSeries",
    "MetricsSnapshot",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

Labels = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for wall-clock durations in seconds —
#: log-spaced from 100 us to ~100 s, the range one sweep point to one
#: full tuner run spans.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0
)


def _labels_of(labels: Mapping[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (use :class:`Gauge` for levels)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ObsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, utilization)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount``."""
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the running maximum (peak heap depth, peak concurrency)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts plus sum/count.

    ``buckets`` are upper bounds (the implicit ``+Inf`` bucket is always
    present as the total count).  Buckets are fixed at creation so worker
    snapshots merge bucket-for-bucket.
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObsError(f"histogram buckets must be sorted and unique: {buckets}")
        self.buckets = bounds
        self.counts = [0] * len(bounds)  # per-bucket (non-cumulative) counts
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample into its bucket and the sum/count."""
        idx = bisect_left(self.buckets, value)
        if idx < len(self.counts):
            self.counts[idx] += 1
        self.sum += value
        self.count += 1


@dataclass(frozen=True)
class MetricSeries:
    """One immutable (name, labels) series from a snapshot."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Labels
    value: float = 0.0
    # Histogram-only payload (empty tuples otherwise):
    buckets: Tuple[float, ...] = ()
    counts: Tuple[int, ...] = ()
    count: int = 0

    @property
    def key(self) -> Tuple[str, Labels]:
        """The registry identity: ``(name, sorted labels)``."""
        return (self.name, self.labels)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (histograms include buckets/counts/sum)."""
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
        }
        if self.kind == "histogram":
            out["buckets"] = list(self.buckets)
            out["counts"] = list(self.counts)
            out["sum"] = self.value
            out["count"] = self.count
        else:
            out["value"] = self.value
        return out


def _prom_labels(labels: Labels, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels) + ([extra] if extra else [])
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_num(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of a registry (the export unit)."""

    series: Tuple[MetricSeries, ...]

    def get(self, name: str, **labels: object) -> Optional[MetricSeries]:
        """The series exactly matching ``name`` + labels, or ``None``."""
        want = _labels_of(labels)
        for s in self.series:
            if s.name == name and s.labels == want:
                return s
        return None

    def value(self, name: str, **labels: object) -> float:
        """Series value (histograms: the sum); 0.0 when absent."""
        s = self.get(name, **labels)
        return s.value if s is not None else 0.0

    def total(self, name: str) -> float:
        """Sum over every label combination of one metric name."""
        return sum(s.value for s in self.series if s.name == name)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: ``{"metrics": [series...]}``."""
        return {"metrics": [s.to_dict() for s in self.series]}

    def to_json(self, *, indent: int = 2) -> str:
        """Stable (sorted-keys) JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Render the snapshot in Prometheus text exposition format."""
        lines: List[str] = []
        seen_type: set = set()
        for s in sorted(self.series, key=lambda s: (s.name, s.labels)):
            if s.name not in seen_type:
                lines.append(f"# TYPE {s.name} {s.kind}")
                seen_type.add(s.name)
            if s.kind == "histogram":
                cumulative = 0
                for bound, n in zip(s.buckets, s.counts):
                    cumulative += n
                    lines.append(
                        f"{s.name}_bucket"
                        f"{_prom_labels(s.labels, ('le', _prom_num(bound)))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{s.name}_bucket{_prom_labels(s.labels, ('le', '+Inf'))}"
                    f" {s.count}"
                )
                lines.append(
                    f"{s.name}_sum{_prom_labels(s.labels)} {_prom_num(s.value)}"
                )
                lines.append(f"{s.name}_count{_prom_labels(s.labels)} {s.count}")
            else:
                lines.append(
                    f"{s.name}{_prom_labels(s.labels)} {_prom_num(s.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def delta(self, prev: "MetricsSnapshot") -> "MetricsSnapshot":
        """Series-wise difference vs an earlier snapshot.

        Counters and histogram counts subtract; gauges keep their current
        value (a level has no meaningful difference).  Series absent from
        ``prev`` pass through unchanged.
        """
        base = {s.key: s for s in prev.series}
        out: List[MetricSeries] = []
        for s in self.series:
            old = base.get(s.key)
            if old is None or s.kind == "gauge":
                out.append(s)
            elif s.kind == "histogram":
                out.append(
                    MetricSeries(
                        name=s.name,
                        kind=s.kind,
                        labels=s.labels,
                        value=s.value - old.value,
                        buckets=s.buckets,
                        counts=tuple(
                            a - b for a, b in zip(s.counts, old.counts)
                        ),
                        count=s.count - old.count,
                    )
                )
            else:
                out.append(
                    MetricSeries(
                        name=s.name,
                        kind=s.kind,
                        labels=s.labels,
                        value=s.value - old.value,
                    )
                )
        return MetricsSnapshot(series=tuple(out))


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, cls, name: str, labels: Mapping[str, object], **kwargs):
        key = (name, _labels_of(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(**kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise ObsError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        """Get-or-create the counter for ``name`` + labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get-or-create the gauge for ``name`` + labels."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Get-or-create the histogram (buckets fixed at creation)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every registered series into an immutable snapshot."""
        series: List[MetricSeries] = []
        for (name, labels), inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                series.append(
                    MetricSeries(
                        name=name,
                        kind=inst.kind,
                        labels=labels,
                        value=inst.sum,
                        buckets=inst.buckets,
                        counts=tuple(inst.counts),
                        count=inst.count,
                    )
                )
            else:
                series.append(
                    MetricSeries(
                        name=name,
                        kind=inst.kind,  # type: ignore[union-attr]
                        labels=labels,
                        value=inst.value,  # type: ignore[union-attr]
                    )
                )
        return MetricsSnapshot(series=tuple(series))

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        for inst in self._instruments.values():
            if isinstance(inst, Histogram):
                inst.counts = [0] * len(inst.buckets)
                inst.sum = 0.0
                inst.count = 0
            else:
                inst.value = 0.0  # type: ignore[union-attr]

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this registry.

        Counters and histograms accumulate; gauges keep the maximum of
        both sides (peaks stay peaks across process boundaries).
        """
        for s in snapshot.series:
            labels = dict(s.labels)
            if s.kind == "counter":
                self.counter(s.name, **labels).inc(s.value)
            elif s.kind == "gauge":
                self.gauge(s.name, **labels).set_max(s.value)
            elif s.kind == "histogram":
                h = self.histogram(s.name, buckets=s.buckets, **labels)
                if h.buckets != s.buckets:
                    raise ObsError(
                        f"histogram {s.name!r} bucket mismatch on merge"
                    )
                for i, n in enumerate(s.counts):
                    h.counts[i] += n
                h.sum += s.value
                h.count += s.count
            else:  # pragma: no cover - snapshot kinds are closed
                raise ObsError(f"unknown metric kind {s.kind!r}")
