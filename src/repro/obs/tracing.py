"""Span-based tracing with cross-process context propagation.

A *span* is one named, timed region of host work — ``build``,
``simulate``, ``sweep_chunk`` — with a parent, so nested ``with
obs.span(...)`` calls form a tree.  Timestamps come from
``time.monotonic()``: on Linux that is ``CLOCK_MONOTONIC``, which is
shared by every process on the host, so spans recorded inside
``ProcessPoolExecutor`` workers land on the *same timebase* as the
parent's and merge into one coherent trace without clock fixups.

Cross-process threading: the parent serializes a :class:`TraceContext`
(trace id + parent span id) into each worker task; the worker opens its
spans under that context and ships the finished :class:`SpanRecord`
tuples back with its results; :meth:`Tracer.adopt` splices them into the
parent's trace.  IDs are drawn from a per-process deterministic counter
namespaced by PID, so merged traces never collide.

Simulated-time anchoring: :meth:`Tracer.attach_timeline` associates a
simnet message timeline (simulated seconds from 0) with the host span
that ran the simulation.  The Perfetto exporter
(:mod:`repro.obs.export`) uses the span's host start time as the
timeline's origin, putting host work and simulated traffic on one
merged, zoomable timebase.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ObsError

__all__ = [
    "SpanRecord",
    "SimTimeline",
    "TraceContext",
    "Tracer",
]

#: ((key, value), ...) — stringified span annotations.
SpanArgs = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (picklable: workers ship tuples of these)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    t0: float  # CLOCK_MONOTONIC seconds
    t1: float
    args: SpanArgs = ()
    pid: int = 0
    thread: str = "main"

    @property
    def duration(self) -> float:
        """Span length in seconds (monotonic clock)."""
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by the trace exporters)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "duration": self.duration,
            "args": dict(self.args),
            "pid": self.pid,
            "thread": self.thread,
        }


@dataclass(frozen=True)
class SimTimeline:
    """A simnet message timeline anchored to the host span that ran it.

    ``events`` are the simulator's ``(src, dst, nbytes, t0, t1, link)``
    tuples in *simulated seconds*; ``span_id`` names the host-side
    ``simulate`` span whose start is the timeline's origin on the merged
    timebase.
    """

    span_id: str
    label: str
    events: Tuple[Tuple[int, int, int, float, float, str], ...]
    makespan: float


@dataclass(frozen=True)
class TraceContext:
    """Picklable handle that threads one trace through worker processes.

    ``origin_pid`` records the process that minted the context, so code
    holding one can tell whether it is running in the originating
    process or in a pool worker — under the fork start method a worker
    inherits the parent's entire module state (including an enabled
    global scope), so a flag check cannot make that distinction.
    """

    trace_id: str
    parent_span_id: Optional[str]
    origin_pid: int = 0


class _Span:
    """Context manager recording one span on exit (even on error)."""

    __slots__ = ("_tracer", "record_id", "name", "_args", "_parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: SpanArgs) -> None:
        self._tracer = tracer
        self.name = name
        self._args = args
        self.record_id = tracer._next_id()
        self._parent: Optional[str] = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else self._tracer._root_parent
        stack.append(self.record_id)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.monotonic()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.record_id:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                trace_id=self._tracer.trace_id,
                span_id=self.record_id,
                parent_id=self._parent,
                name=self.name,
                t0=self._t0,
                t1=t1,
                args=self._args,
                pid=os.getpid(),
                thread=threading.current_thread().name,
            )
        )


class _NullSpan:
    """Shared no-op span for disabled observability (no allocation)."""

    __slots__ = ()
    record_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans (thread-safe) for one trace."""

    def __init__(self, context: Optional[TraceContext] = None) -> None:
        if context is not None:
            self.trace_id = context.trace_id
            self._root_parent: Optional[str] = context.parent_span_id
        else:
            self.trace_id = f"trace-{os.getpid():x}-{id(self) & 0xFFFF:04x}"
            self._root_parent = None
        self._seq = 0
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._timelines: List[SimTimeline] = []
        self._local = threading.local()

    # -- internals -----------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{os.getpid():x}.{self._seq:x}"

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    # -- public API ----------------------------------------------------

    def span(self, name: str, **args: object) -> _Span:
        """Open a nested span; use as ``with tracer.span("build"): ...``."""
        packed = tuple(sorted((k, str(v)) for k, v in args.items()))
        return _Span(self, name, packed)

    def current_span_id(self) -> Optional[str]:
        """Id of this thread's innermost open span, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> TraceContext:
        """Context for worker processes: same trace, current span as parent."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=self.current_span_id(),
            origin_pid=os.getpid(),
        )

    def attach_timeline(
        self,
        events: Sequence[Tuple[int, int, int, float, float, str]],
        *,
        span_id: Optional[str] = None,
        label: str = "simnet",
        makespan: Optional[float] = None,
    ) -> None:
        """Anchor a simnet message timeline to a host span.

        Defaults to the innermost open span; raises :class:`ObsError`
        when no span is open and none is given — an unanchored timeline
        has no place on the merged timebase.
        """
        anchor = span_id if span_id is not None else self.current_span_id()
        if anchor is None:
            raise ObsError(
                "cannot attach a simnet timeline outside any span — "
                "open one with obs.span(...) or pass span_id"
            )
        packed = tuple(tuple(e) for e in events)
        end = makespan if makespan is not None else (
            max((e[4] for e in packed), default=0.0)
        )
        with self._lock:
            self._timelines.append(
                SimTimeline(
                    span_id=anchor, label=label, events=packed, makespan=end
                )
            )

    def spans(self) -> Tuple[SpanRecord, ...]:
        """Every finished span recorded so far, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def timelines(self) -> Tuple[SimTimeline, ...]:
        """Every attached simulated per-rank message timeline."""
        with self._lock:
            return tuple(self._timelines)

    def adopt(
        self,
        spans: Sequence[SpanRecord],
        timelines: Sequence[SimTimeline] = (),
    ) -> None:
        """Splice worker-recorded spans/timelines into this trace."""
        with self._lock:
            for record in spans:
                if record.trace_id != self.trace_id:
                    record = SpanRecord(
                        trace_id=self.trace_id,
                        span_id=record.span_id,
                        parent_id=record.parent_id,
                        name=record.name,
                        t0=record.t0,
                        t1=record.t1,
                        args=record.args,
                        pid=record.pid,
                        thread=record.thread,
                    )
                self._spans.append(record)
            self._timelines.extend(timelines)

    def reset(self) -> None:
        """Drop all recorded spans and timelines."""
        with self._lock:
            self._spans.clear()
            self._timelines.clear()
