"""Deterministic, crash-hardened process-pool fan-out for the sweeps.

Simulation sweeps are embarrassingly parallel — every point is a pure
function of (schedule parameters, machine, size, noise, faults) — but
the paper-reproduction contract demands that parallelism never change a
result: a sweep at ``--jobs 8`` must be *bit-identical* to the serial
run, including the order results are reported in.

:func:`run_chunks` provides exactly that, and (since the durability PR)
survives the pool itself failing:

* **Determinism** — results are flattened in chunk-submission order
  regardless of which worker finished first, and ``jobs <= 1``
  degenerates to a plain in-process loop running the very same worker
  function, so the serial and parallel paths cannot drift apart.
* **Broken-pool recovery** — a worker death (OOM kill, segfault,
  ``os._exit``) used to poison the whole
  :class:`~concurrent.futures.ProcessPoolExecutor` and lose every
  sibling chunk.  Now the completed chunks are harvested, a fresh pool
  is built, and the unfinished chunks are re-dispatched with a bounded
  retry budget (``retries`` shared-pool generations).
* **Poison quarantine** — a chunk still failing after the shared
  generations is retried *alone* in a single-worker pool (precise
  attribution: in a shared pool every in-flight chunk of a broken
  generation looks guilty), then split into sub-chunks via the caller's
  ``split`` hook to corner the poison item, and finally handed to
  ``on_chunk_error`` to be recorded as structured error results while
  the rest of the run continues.
* **Deadlines** — ``deadline`` bounds how long the parent will stall on
  a generation with nothing completing; a hung worker is terminated and
  its chunk follows the retry/quarantine path instead of hanging the
  sweep forever.

Error isolation *within* a healthy worker remains the worker's job (a
raised exception costs a retry cycle here) — sweep workers therefore
still return per-point error records instead of raising; see
:func:`repro.bench.sweep._run_chunk`.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TypeVar

from .obs import OBS

__all__ = ["resolve_jobs", "run_chunks", "ChunkFailure"]

T = TypeVar("T")
R = TypeVar("R")


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` request: 0/1 → serial, negative → all cores.

    Requests above the available core count are clamped down to it: the
    sweeps are CPU-bound pure computation, so extra workers beyond the
    cores that can run them only add fork/pickle overhead (and, on a
    single-core host, lose the cross-point simulation memo to boot).
    Thanks to the determinism contract the clamp is invisible in the
    results — only in the wall clock.  Callers that need worker
    *processes* for crash isolation rather than speed pass
    ``isolate=True`` to :func:`run_chunks`, which bypasses this clamp.
    """
    cores = _available_cpus()
    if jobs < 0:
        return cores
    return min(jobs, cores)


class ChunkFailure(Exception):
    """Terminal failure of one chunk after the full retry ladder.

    Passed to ``on_chunk_error`` (or raised, when no handler is given)
    with the mechanical story of what happened: the failure ``kind``
    (``"crash"``, ``"timeout"``, or ``"error"``), the ``attempts``
    consumed, and the final underlying exception as ``cause``.
    """

    def __init__(self, kind: str, attempts: int,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(kind, attempts, cause)
        self.kind = kind
        self.attempts = attempts
        self.cause = cause

    def __str__(self) -> str:
        cause = ""
        if self.cause is not None:
            cause = f": {type(self.cause).__name__}: {self.cause}"
        return (
            f"chunk failed ({self.kind}) after {self.attempts} "
            f"attempt(s){cause}"
        )


@dataclass
class _Pending:
    """One chunk's dispatch state across pool generations."""

    index: int
    chunk: object
    attempts: int = 0
    last: Optional[ChunkFailure] = field(default=None, repr=False)

    def bump(self, kind: str, cause: Optional[BaseException]) -> None:
        """Record one failed attempt."""
        self.attempts += 1
        self.last = ChunkFailure(kind, self.attempts, cause)


def _count(metric: str, **labels: object) -> None:
    if OBS.enabled:
        OBS.metrics.counter(metric, **labels).inc()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are hung.

    ``shutdown`` alone would join a hung worker forever; terminating the
    processes first makes the deadline guarantee real.  ``_processes``
    is private API, so this degrades to a plain non-waiting shutdown if
    the attribute ever moves.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (AttributeError, OSError, ValueError):  # pragma: no cover
            pass


def _run_serial(
    worker: Callable[[T], List[R]],
    chunks: Sequence[T],
    on_chunk_error,
    on_chunk_done,
) -> List[R]:
    """The in-process degenerate path (no crash isolation possible)."""
    out: List[R] = []
    for index, chunk in enumerate(chunks):
        try:
            results = worker(chunk)
        except Exception as exc:  # noqa: BLE001 - routed to the handler
            if on_chunk_error is None:
                raise
            results = on_chunk_error(
                chunk, ChunkFailure("error", 1, exc)
            )
            _count("repro_pool_quarantined_total", phase="serial")
        if on_chunk_done is not None:
            on_chunk_done(index, chunk, results)
        out.extend(results)
    return out


def _shared_generations(
    worker,
    pending: List[_Pending],
    results: List[Optional[List[R]]],
    *,
    workers: int,
    retries: int,
    deadline: Optional[float],
    on_chunk_done,
) -> List[_Pending]:
    """Run chunks through shared pools, rebuilding on breakage.

    Each *generation* is one pool over the still-unfinished chunks.  A
    clean generation finishes everything; a broken or timed-out one is
    killed, its completed chunks harvested, and the survivors retried in
    the next generation — at most ``retries + 1`` in total.  Returns the
    chunks still unfinished (they go to the solo phase: attribution in a
    shared pool is imprecise, every in-flight chunk of a broken
    generation looks guilty, so nothing is quarantined from here).
    """
    for generation in range(retries + 1):
        if not pending:
            break
        if generation:
            _count("repro_pool_retries_total", phase="shared")
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        broke = False
        try:
            remaining = {
                pool.submit(worker, pend.chunk): pend for pend in pending
            }
            while remaining:
                done, _ = wait(remaining, timeout=deadline,
                               return_when=FIRST_COMPLETED)
                if not done:
                    # A full deadline window with zero completions: at
                    # least one worker is hung and the rest (if any)
                    # are starved behind it.  Kill the generation.
                    _count("repro_pool_deadline_total", phase="shared")
                    broke = True
                    cause = FutureTimeoutError(
                        f"no chunk completed within {deadline}s"
                    )
                    for pend in remaining.values():
                        pend.bump("timeout", cause)
                    break
                for fut in done:
                    pend = remaining.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        results[pend.index] = fut.result()
                        if on_chunk_done is not None:
                            on_chunk_done(pend.index, pend.chunk,
                                          results[pend.index])
                    elif isinstance(exc, BrokenProcessPool):
                        broke = True
                        pend.bump("crash", exc)
                    else:
                        pend.bump("error", exc)
                if broke:
                    # The pool is dead; every unfinished future would
                    # raise BrokenProcessPool anyway.  Fail them as
                    # crash victims and rebuild.
                    _count("repro_pool_broken_total")
                    cause = BrokenProcessPool("pool broke mid-generation")
                    for pend in remaining.values():
                        pend.bump("crash", cause)
                    break
        finally:
            if broke:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        # Submission order is preserved: `pending` was ordered, and we
        # filter rather than re-sort.
        pending = [p for p in pending if results[p.index] is None]
    return pending


def _solo_attempts(
    worker, chunk, *, retries: int, deadline: Optional[float]
) -> object:
    """Run one chunk alone in fresh single-worker pools.

    Returns the chunk's result list on success, or the final
    :class:`ChunkFailure` after ``retries + 1`` isolated attempts.
    """
    failure: Optional[ChunkFailure] = None
    for attempt in range(retries + 1):
        if attempt:
            _count("repro_pool_retries_total", phase="solo")
        pool = ProcessPoolExecutor(max_workers=1)
        try:
            fut = pool.submit(worker, chunk)
            try:
                result = fut.result(timeout=deadline)
            except FutureTimeoutError as exc:
                _count("repro_pool_deadline_total", phase="solo")
                failure = ChunkFailure("timeout", attempt + 1, exc)
                _kill_pool(pool)
                continue
            except BrokenProcessPool as exc:
                failure = ChunkFailure("crash", attempt + 1, exc)
                _kill_pool(pool)
                continue
            except Exception as exc:  # noqa: BLE001 - worker raised
                failure = ChunkFailure("error", attempt + 1, exc)
                _kill_pool(pool)
                continue
            return result
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    assert failure is not None
    return failure


def _solo_phase(
    worker,
    pending: List[_Pending],
    results: List[Optional[List[R]]],
    *,
    retries: int,
    deadline: Optional[float],
    split,
    on_chunk_error,
    on_chunk_done,
) -> None:
    """Isolate, split, and quarantine the chunks the shared phase lost."""
    for pend in pending:
        outcome = _solo_attempts(worker, pend.chunk, retries=retries,
                                 deadline=deadline)
        if not isinstance(outcome, ChunkFailure):
            chunk_results = outcome
        else:
            subchunks = list(split(pend.chunk)) if split is not None else []
            if len(subchunks) > 1:
                # Corner the poison item: each sub-chunk gets its own
                # isolated attempts, so siblings of a poison point
                # complete and only the true culprit is quarantined.
                chunk_results = []
                for sub in subchunks:
                    sub_out = _solo_attempts(worker, sub, retries=retries,
                                             deadline=deadline)
                    if not isinstance(sub_out, ChunkFailure):
                        chunk_results.extend(sub_out)
                        continue
                    if on_chunk_error is None:
                        raise sub_out
                    _count("repro_pool_quarantined_total", phase="solo")
                    chunk_results.extend(on_chunk_error(sub, sub_out))
            else:
                if on_chunk_error is None:
                    raise outcome
                _count("repro_pool_quarantined_total", phase="solo")
                chunk_results = on_chunk_error(pend.chunk, outcome)
        results[pend.index] = chunk_results
        if on_chunk_done is not None:
            on_chunk_done(pend.index, pend.chunk, chunk_results)


def run_chunks(
    worker: Callable[[T], List[R]],
    chunks: Sequence[T],
    *,
    jobs: int = 0,
    retries: int = 2,
    deadline: Optional[float] = None,
    on_chunk_error: Optional[
        Callable[[T, ChunkFailure], List[R]]
    ] = None,
    split: Optional[Callable[[T], Sequence[T]]] = None,
    on_chunk_done: Optional[Callable[[int, T, List[R]], None]] = None,
    isolate: bool = False,
) -> List[R]:
    """Run ``worker`` over every chunk, flattening results in chunk order.

    ``worker`` must be a module-level (picklable) callable returning a
    list per chunk.  With ``jobs >= 2`` chunks are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the flattened
    output is position-for-position identical to the serial path no
    matter which workers finish (or die) first.

    Hardening knobs (all optional; the defaults preserve the historical
    fail-fast behavior for callers that pass none of them):

    ``retries``
        Shared-pool generations and per-chunk solo attempts allowed
        beyond the first (a poison chunk costs ``retries + 1`` shared
        generations plus its isolated attempts before quarantine).
    ``deadline``
        Seconds of *stall* tolerated — a generation with no completions
        for this long, or a solo chunk exceeding it, is killed and
        retried.  ``None`` waits forever (the historical behavior).
    ``on_chunk_error``
        Called with ``(chunk, ChunkFailure)`` when a chunk exhausts the
        ladder; its return value substitutes for the chunk's results
        (structured error records, in the sweeps).  Without it the
        failure is raised — but only after the retry ladder, so
        transient worker deaths are still healed.
    ``split``
        Called with a failing chunk; returning more than one sub-chunk
        re-runs them individually to corner a poison item.  Sub-chunk
        results are concatenated in split order, preserving the
        chunk-order determinism contract.
    ``on_chunk_done``
        Progress hook ``(chunk_index, chunk, results)`` invoked as each
        chunk completes (completion order, not submission order) — the
        journaling hook that makes sweeps resumable.
    ``isolate``
        Use worker processes whenever ``jobs >= 2`` was *requested*,
        even on hosts with fewer cores (where :func:`resolve_jobs`
        would clamp to serial).  Crash isolation needs a process
        boundary regardless of core count.
    """
    chunks = list(chunks)
    if isolate and (jobs >= 2 or jobs < 0):
        workers = jobs if jobs >= 2 else (len(chunks) or 1)
        workers = min(workers, len(chunks) or 1, 16)
        # Isolation must hold even for a single chunk (a pool of one):
        # the serial path would run crash-prone work in the parent,
        # and an os._exit there takes down the whole run.
        serial = not chunks
    else:
        workers = resolve_jobs(jobs)
        serial = workers <= 1 or len(chunks) <= 1
    if serial:
        return _run_serial(worker, chunks, on_chunk_error, on_chunk_done)

    results: List[Optional[List[R]]] = [None] * len(chunks)
    pending = [_Pending(i, chunk) for i, chunk in enumerate(chunks)]
    pending = _shared_generations(
        worker, pending, results,
        workers=workers, retries=retries, deadline=deadline,
        on_chunk_done=on_chunk_done,
    )
    if pending:
        _solo_phase(
            worker, pending, results,
            retries=retries, deadline=deadline, split=split,
            on_chunk_error=on_chunk_error, on_chunk_done=on_chunk_done,
        )
    out: List[R] = []
    for chunk_results in results:
        assert chunk_results is not None
        out.extend(chunk_results)
    return out
