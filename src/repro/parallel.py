"""Deterministic process-pool fan-out shared by the sweep drivers.

Simulation sweeps are embarrassingly parallel — every point is a pure
function of (schedule parameters, machine, size, noise, faults) — but
the paper-reproduction contract demands that parallelism never change a
result: a sweep at ``--jobs 8`` must be *bit-identical* to the serial
run, including the order results are reported in.

This module provides exactly that: :func:`run_chunks` maps a picklable
worker over pre-built chunks of work, returning the flattened results in
chunk-submission order regardless of which worker process finished
first.  ``jobs <= 1`` degenerates to a plain in-process loop running the
very same worker function, so the serial and parallel paths cannot drift
apart.

Error isolation is the *worker's* job (a raised exception would poison
the whole pool and lose the sibling points) — sweep workers therefore
return per-point error records instead of raising; see
:func:`repro.bench.sweep._run_chunk`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

__all__ = ["resolve_jobs", "run_chunks"]

T = TypeVar("T")
R = TypeVar("R")


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` request: 0/1 → serial, negative → all cores.

    Requests above the available core count are clamped down to it: the
    sweeps are CPU-bound pure computation, so extra workers beyond the
    cores that can run them only add fork/pickle overhead (and, on a
    single-core host, lose the cross-point simulation memo to boot).
    Thanks to the determinism contract the clamp is invisible in the
    results — only in the wall clock.
    """
    cores = _available_cpus()
    if jobs < 0:
        return cores
    return min(jobs, cores)


def run_chunks(
    worker: Callable[[T], List[R]],
    chunks: Sequence[T],
    *,
    jobs: int = 0,
) -> List[R]:
    """Run ``worker`` over every chunk, flattening results in chunk order.

    ``worker`` must be a module-level (picklable) callable returning a
    list per chunk.  With ``jobs >= 2`` chunks are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``executor.map``
    yields results in submission order, so the flattened output is
    position-for-position identical to the serial path.
    """
    jobs = resolve_jobs(jobs)
    out: List[R] = []
    if jobs <= 1 or len(chunks) <= 1:
        for chunk in chunks:
            out.extend(worker(chunk))
        return out
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        for result in pool.map(worker, chunks):
            out.extend(result)
    return out
