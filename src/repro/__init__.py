"""repro — Generalized collective algorithms for the exascale era.

A from-scratch Python reproduction of Wilkins et al., *Generalized
Collective Algorithms for the Exascale Era* (IEEE CLUSTER 2023):
variable-radix generalizations of the binomial tree (k-nomial), recursive
doubling (recursive multiplying) and ring (k-ring) collective kernels,
plus everything needed to evaluate them without an exascale machine —

* :mod:`repro.core` — the generalized algorithms, compiled to an explicit
  per-rank schedule IR, with a symbolic correctness validator;
* :mod:`repro.runtime` — executors that move real NumPy data through the
  schedules (lockstep and genuinely threaded);
* :mod:`repro.simnet` — a discrete-event simulator of multi-port,
  hierarchical, dragonfly-connected machines (Frontier-like and
  Polaris-like configurations included);
* :mod:`repro.models` — the paper's analytical α–β–γ cost models
  (eqs. (1)–(14)) with fitting and optimal-radix prediction;
* :mod:`repro.selection` — MPICH-style algorithm selection tables, the
  default/vendor baseline policies, and the exhaustive tuner (§VI-G);
* :mod:`repro.bench` — OSU-style measurement and one runnable experiment
  per paper table/figure;
* :mod:`repro.obs` — opt-in metrics and span tracing across all of the
  above, with Perfetto/Chrome trace export.

The public API is three keyword-only entry points (see :mod:`repro.api`):

Quickstart::

    import repro

    # Move real data through a generalized algorithm and check it:
    run = repro.execute("allreduce", "recursive_multiplying",
                        p=16, count=1024, k=4)

    # Time the same algorithm on a simulated exascale machine:
    machine = repro.frontier(nodes=128, ppn=1)
    sched = repro.build("allreduce", "recursive_multiplying",
                        p=machine.nranks, k=4)
    print(repro.simulate(sched, machine, nbytes=65536).time_us, "us")

Machines are addressable by registry name (``repro.simnet.machines.get``
— e.g. ``repro.simulate(sched, "dragonfly-1024", nbytes=65536)``), and
``simulate`` takes ``engine="auto"|"materialized"|"collapsed"`` to select
the class-collapsed large-p simulation core (see
:mod:`repro.simnet.collapsed`).

The pre-facade spellings (``repro.run_collective``,
``repro.build_schedule``, ``repro.execute_threaded``, schedule-first
``repro.execute``, positional-``nbytes`` ``repro.simulate``) have been
removed after their five-release deprecation window; the implementation
modules they delegated to are unchanged.
"""

from .api import (
    BACKENDS,
    ENGINES,
    build,
    execute,
    simulate,
)
from .bench import (
    ALL_EXPERIMENTS,
    default_sizes,
    osu_latency,
    radix_latency_sweep,
    run_experiment,
    speedup_curves,
)
from .core import (
    COLLECTIVES,
    GENERALIZED_ALGORITHMS,
    Schedule,
    algorithms_for,
    verify,
)
from .errors import (
    ExecutionError,
    MachineError,
    ModelError,
    ObsError,
    RecoveryError,
    ReproError,
    ScheduleError,
    SelectionError,
    TraceError,
    ValidationError,
)
from .models import ModelParams, model_time, optimal_radix
from .obs import OBS, Obs
from .recovery import (
    RecoveryPolicy,
    RecoveryReport,
    RecoveryRun,
    SimRecoveryResult,
    execute_with_recovery,
    simulate_with_recovery,
)
from .runtime import SUM, Comm, ReduceOp, Session
from .selection import (
    SelectionTable,
    fixed_policy,
    mpich_policy,
    tune,
    vendor_policy,
)
from .simnet import (
    MachineSpec,
    NoiseModel,
    frontier,
    polaris,
    reference,
    traffic_summary,
)
from .simnet.machines import get as machine, resolve as resolve_machine

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # facade (the public API — see repro.api)
    "build",
    "simulate",
    "execute",
    "BACKENDS",
    "ENGINES",
    # core
    "Schedule",
    "verify",
    "COLLECTIVES",
    "GENERALIZED_ALGORITHMS",
    "algorithms_for",
    # runtime
    "ReduceOp",
    "SUM",
    "Session",
    "Comm",
    # simnet
    "MachineSpec",
    "frontier",
    "polaris",
    "reference",
    "machine",
    "resolve_machine",
    "traffic_summary",
    "NoiseModel",
    # observability
    "Obs",
    "OBS",
    # models
    "ModelParams",
    "model_time",
    "optimal_radix",
    # selection
    "SelectionTable",
    "mpich_policy",
    "vendor_policy",
    "fixed_policy",
    "tune",
    # bench
    "osu_latency",
    "default_sizes",
    "radix_latency_sweep",
    "speedup_curves",
    "run_experiment",
    "ALL_EXPERIMENTS",
    # recovery (self-healing collectives — see repro.recovery)
    "RecoveryPolicy",
    "RecoveryReport",
    "RecoveryRun",
    "SimRecoveryResult",
    "execute_with_recovery",
    "simulate_with_recovery",
    # errors
    "ReproError",
    "ScheduleError",
    "ValidationError",
    "ExecutionError",
    "MachineError",
    "SelectionError",
    "ModelError",
    "TraceError",
    "ObsError",
    "RecoveryError",
]
