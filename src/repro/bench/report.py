"""Plain-text report formatting for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned, unit-labeled, and diffable
(fixed column widths, deterministic ordering).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

__all__ = ["format_size", "format_table", "geomean", "speedup_str"]

_UNITS = ["B", "KiB", "MiB", "GiB"]


def format_size(nbytes: int) -> str:
    """Human-readable message size, OSU style.

    >>> format_size(8)
    '8B'
    >>> format_size(65536)
    '64KiB'
    >>> format_size(4 * 1024 * 1024)
    '4MiB'
    """
    if nbytes < 0:
        raise ValueError(f"negative size {nbytes}")
    size = float(nbytes)
    for unit in _UNITS:
        if size < 1024 or unit == _UNITS[-1]:
            if size == int(size):
                return f"{int(size)}{unit}"
            return f"{size:.1f}{unit}"
        size /= 1024
    raise AssertionError("unreachable")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned; floats get two decimals unless they already
    arrive as strings.
    """
    def cell(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.2f}"
        return str(x)

    str_rows: List[List[str]] = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(
                c.rjust(widths[i]) if _numericish(c) else c.ljust(widths[i])
                for i, c in enumerate(row)
            )
        )
    return "\n".join(lines)


def _numericish(s: str) -> bool:
    try:
        float(s.rstrip("x%"))
        return True
    except ValueError:
        return False


def geomean(values: Sequence[float]) -> float:
    """Geometric mean — the right average for speedup ratios.

    >>> round(geomean([2.0, 8.0]), 3)
    4.0
    """
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_str(ratio: float) -> str:
    """Format a speedup ratio the way the paper quotes them ("1.4x")."""
    return f"{ratio:.2f}x"
