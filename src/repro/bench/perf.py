"""Performance-regression benchmark — the repo's perf trajectory anchor.

The functional suite pins *what* the simulator computes; this module pins
*how fast*, in three tiers:

* **schedule build** — cold (a fresh builder call) vs. served by the
  content-addressed :class:`~repro.core.cache.ScheduleCache`;
* **single simulation** — cold vs. served by the sweep engine's
  simulation memo;
* **full sweep** — the combined Fig. 8 + Fig. 9 workload (every
  generalized algorithm over the standard radix × size grid, then the
  speedup search re-visiting the same grid, exactly the redundancy the
  real experiments exhibit), timed on the cold path (``reuse=False``:
  fresh build + fresh run per point, the pre-cache behavior) against the
  cached path, at each requested ``--jobs`` level.

Later PRs added tiers in the same mold: **recovery** (the fault-free
self-healing wrapper must stay pay-for-what-you-break), **obs**
(instrumentation disabled must cost nothing, enabled must stay within
2x), **durability** (journaling plus the disk schedule store must
stay within 5% of the plain cached sweep, and a warm start from a
populated store must beat a cold in-process run), and
**interpreter-vs-compiled** (executing a schedule's compiled program
tables on the threaded backend must beat op-by-op IR interpretation by
at least 2x on every acceptance config, with bit-identical result
buffers — see :mod:`repro.compile`), and **serve** (the tuning
service: N concurrent ``/tune`` requests must coalesce into one sweep,
a selection-config warm start must beat a cold tune 2x, and every
served selection must be bit-identical to the in-process tuner — see
:mod:`repro.server`).

:func:`run_perf` produces a JSON-able report; ``repro-bench-perf``
writes it to ``BENCH_perf.json``.  The committed copy at the repo root
is the baseline: :func:`check_regression` compares a fresh report
against it and flags schedule-build slowdowns beyond a tolerance factor
— the gate CI enforces.  Wall-clock numbers are host-dependent, which is
why the gate is a generous ratio (default 2×) on the most stable metric
(schedule build) rather than an absolute time.

Determinism note: the report also re-asserts, on every run, that the
cold and cached full-sweep paths produce bit-identical simulated times —
a perf number earned by changing results would be worthless.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.cache import ScheduleCache, global_schedule_cache
from ..core.registry import GENERALIZED_ALGORITHMS, info
from ..errors import ReproError
from ..obs import OBS
from ..parallel import _available_cpus, resolve_jobs
from ..selection.tuner import radix_grid
from ..simnet.machine import MachineSpec
from ..simnet.machines import by_name, get as machine_by_name
from ..simnet.simulate import simulate
from .sweep import SweepPoint, clear_sim_memo, run_sweep, simulate_point

__all__ = [
    "full_sweep_points",
    "run_perf",
    "check_regression",
    "write_report",
    "load_report",
]

SCHEMA_VERSION = 7

# Serve-tier configuration (schema v7): the tuning service's gates.
# The grid is deliberately small — the tier times *service* economics
# (coalescing, prior warm-starts), not the sweep itself — but big
# enough that one cold sweep dwarfs 8 HTTP round-trips, so the 1.2x
# coalescing ceiling measures sharing, not socket noise.
_SERVE_P = 8
_SERVE_SIZES = (1 << 10, 1 << 12, 1 << 14, 1 << 16)
_SERVE_COLLECTIVES = ("allreduce",)
_SERVE_CLIENTS = 8
_SERVE_COALESCE_MAX_RATIO = 1.2
_SERVE_WARM_MIN_SPEEDUP = 2.0
_SERVE_COALESCE_ATTEMPTS = 3

# Adapt-tier configuration (schema v6): the online-selection loop's
# gates.  The convergence bound is deliberately looser than the golden
# test's pinned value (1 round on the flap scenario) — the gate rejects
# a broken selector, the golden rejects any behavior drift.
_ADAPT_NBYTES = 1 << 16
_ADAPT_MAX_TIME_TO_ADAPT = 4

# Default measurement configuration. Smoke mode trims the grid so CI can
# afford the run; the metrics keep the same shape either way.
_FULL_SIZES = [1 << i for i in range(3, 21, 2)]
_SMOKE_SIZES = [1 << i for i in range(6, 18, 4)]

# Scale-tier configuration (schema v5): the exascale regime the class-
# collapsed engine exists for.  The p=4096 sweep must finish inside the
# wall-clock budget; the sublinear probe rides the lazy generator
# schedules up to p=2^20 where per-rank materialization is unthinkable.
_SCALE_P = 4096
_SCALE_SMALL_P = 16
_SCALE_BUDGET_S = 180.0
_SCALE_SMOKE_BUDGET_S = 120.0
_SCALE_KS = (2, 8, 64)
_SCALE_SMOKE_KS = (2, 8)
_SCALE_SIZES = (1 << 12, 1 << 16)
_SCALE_SMOKE_SIZES = (1 << 16,)
_SCALE_SUBLINEAR_PS = (1 << 10, 1 << 14, 1 << 17, 1 << 20)
#: Ceiling on wall-clock growth across _SCALE_SUBLINEAR_PS.  The
#: collapsed engine's per-event batch op is a NumPy vector over class
#: members, so wall clock grows like p·log p with a tiny constant
#: (measured ~100x for the 1024x rank span, ~65 ms at p=2^20) instead
#: of the scalar DES's per-message cost (which would put p=2^20 in the
#: hours).  The gate at 256 leaves room for host noise while still
#: rejecting anything that degenerates to linear-in-p scaling (1024x).
_SCALE_SUBLINEAR_MAX_RATIO = 256.0

#: (collective, algorithm) pairs whose *materialized* footprint at
#: p=_SCALE_P is unaffordable for the serial DES, with the measured
#: reason.  Every exclusion is recorded in the report — the sweep never
#: silently narrows its grid.  The allgather collectives stay covered at
#: scale through the lazy ring generator points the sweep adds instead.
_SCALE_EXCLUSIONS = {
    ("bcast", "kring"):
        "builder materializes O(p^2/k) ops at p=4096 (~200 s to build "
        "at k=64); no lazy generator family covers k-ring yet",
    ("allgather", "kring"):
        "builder materializes O(p^2/k) ops at p=4096 (~200 s to build "
        "at k=64); no lazy generator family covers k-ring yet",
    ("allreduce", "kring"):
        "builder materializes O(p^2/k) ops at p=4096 (~200 s to build "
        "at k=64); no lazy generator family covers k-ring yet",
    ("allgather", "knomial"):
        "allgather materializes Theta(p^2) block transfers (16.8M at "
        "p=4096, ~35 s/point serial); covered at scale by the lazy "
        "allgather/ring generator point",
    ("allgather", "recursive_multiplying"):
        "allgather materializes Theta(p^2) block transfers (16.8M at "
        "p=4096, ~100 s/point serial); covered at scale by the lazy "
        "allgather/ring generator point",
    ("bcast", "recursive_multiplying"):
        "rotation phase materializes Theta(p^2) block transfers (16.8M "
        "at p=4096, ~100 s/point serial)",
}
#: Radix ceiling for recursive_multiplying in the scale sweep: at k=64
#: every rank posts 63 concurrent sends per step (516k messages total),
#: which costs the serial DES over a minute per point.
_SCALE_RM_MAX_K = 8


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def full_sweep_points(
    machine: MachineSpec, sizes: Sequence[int]
) -> List[SweepPoint]:
    """The benchmark's sweep workload, mirroring the paper's experiments.

    Every generalized algorithm over the standard radix grid × ``sizes``
    (the Fig. 8 surfaces), followed by the same grid again (the Fig. 9
    best-candidate search re-simulates exactly the points the surfaces
    already timed).  The duplication is the point: it is the redundancy
    the schedule cache and simulation memo exist to exploit.
    """
    points: List[SweepPoint] = []
    for coll, alg in GENERALIZED_ALGORITHMS:
        entry = info(coll, alg)
        for k in radix_grid(machine.nranks, min_k=entry.min_k):
            for nbytes in sizes:
                points.append(SweepPoint(coll, alg, nbytes, k=k, root=0))
    return points + points


def _bench_schedule_build(machine: MachineSpec, repeats: int) -> Dict:
    """Cold builder call vs. cache hit for one representative schedule."""
    coll, alg = "allreduce", "recursive_multiplying"
    entry = info(coll, alg)
    p, k = machine.nranks, 2

    cold_s = _best_of(lambda: entry.build(p, k=k, root=0), repeats)

    cache = ScheduleCache()
    cache.get_or_build(coll, alg, p, k=k, root=0)  # warm
    cached_s = _best_of(
        lambda: cache.get_or_build(coll, alg, p, k=k, root=0), repeats
    )
    return {
        "collective": coll,
        "algorithm": alg,
        "p": p,
        "k": k,
        "repeats": repeats,
        "cold_us": cold_s * 1e6,
        "cached_us": cached_s * 1e6,
        "speedup": cold_s / cached_s if cached_s > 0 else float("inf"),
    }


def _bench_single_sim(machine: MachineSpec, repeats: int) -> Dict:
    """One cold simulation vs. the sweep engine's memoized replay."""
    point = SweepPoint("allreduce", "recursive_multiplying", 1 << 16, k=2)
    entry = info(point.collective, point.algorithm)
    schedule = entry.build(machine.nranks, k=point.k, root=0)

    cold_s = _best_of(
        lambda: simulate(schedule, machine, point.nbytes), repeats
    )

    clear_sim_memo()
    simulate_point(machine, point)  # warm the memo
    memo_s = _best_of(lambda: simulate_point(machine, point), repeats)
    return {
        "collective": point.collective,
        "algorithm": point.algorithm,
        "p": machine.nranks,
        "k": point.k,
        "nbytes": point.nbytes,
        "repeats": repeats,
        "cold_us": cold_s * 1e6,
        "memo_us": memo_s * 1e6,
        "speedup": cold_s / memo_s if memo_s > 0 else float("inf"),
    }


def _bench_full_sweep(
    machine: MachineSpec, sizes: Sequence[int], jobs_levels: Sequence[int]
) -> Dict:
    """Cold-path vs. cached-path wall clock for the combined workload."""
    points = full_sweep_points(machine, sizes)

    t0 = time.perf_counter()
    before = run_sweep(points, machine, reuse=False)
    before_s = time.perf_counter() - t0

    clear_sim_memo()
    global_schedule_cache().clear()
    t0 = time.perf_counter()
    after = run_sweep(points, machine, reuse=True)
    after_s = time.perf_counter() - t0

    if [r.time for r in before] != [r.time for r in after]:
        raise ReproError(
            "perf bench integrity check failed: cached sweep results "
            "differ from the cold path"
        )

    n = len(points)
    build_hits = sum(1 for r in after if r.cache_hit)
    sim_hits = sum(1 for r in after if r.sim_hit)
    report = {
        "points": n,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s if after_s > 0 else float("inf"),
        "build_hit_rate": build_hits / n,
        "sim_memo_rate": sim_hits / n,
        "results_identical": True,
        "jobs": {},
    }
    for jobs in jobs_levels:
        clear_sim_memo()
        global_schedule_cache().clear()
        t0 = time.perf_counter()
        run_sweep(points, machine, jobs=jobs, reuse=True)
        wall = time.perf_counter() - t0
        report["jobs"][str(jobs)] = {
            "wall_s": wall,
            "effective_jobs": resolve_jobs(jobs),
            "speedup_vs_before": before_s / wall if wall > 0 else float("inf"),
        }
    return report


def _bench_obs_overhead(machine: MachineSpec, sizes: Sequence[int]) -> Dict:
    """Cached-path sweep with instrumentation off vs. fully on.

    The off timing re-measures the same workload as the full-sweep tier,
    immediately before the on timing, so the two differ only by the
    :mod:`repro.obs` layer.  Results must stay bit-identical — the
    observability contract is that instrumentation never changes what is
    computed, only what is recorded.  The enabled run's metrics are left
    in the (disabled) global scope so ``repro-bench-perf --metrics-out``
    can dump them.
    """
    points = full_sweep_points(machine, sizes)

    clear_sim_memo()
    global_schedule_cache().clear()
    t0 = time.perf_counter()
    off = run_sweep(points, machine, reuse=True)
    off_s = time.perf_counter() - t0

    clear_sim_memo()
    global_schedule_cache().clear()
    OBS.reset()
    OBS.enable()
    try:
        t0 = time.perf_counter()
        on = run_sweep(points, machine, reuse=True)
        on_s = time.perf_counter() - t0
    finally:
        OBS.disable()  # deliberately no reset: see docstring

    if [r.time for r in off] != [r.time for r in on]:
        raise ReproError(
            "obs overhead integrity check failed: instrumented sweep "
            "results differ from the uninstrumented path"
        )
    return {
        "points": len(points),
        "off_s": off_s,
        "on_s": on_s,
        "overhead_ratio": on_s / off_s if off_s > 0 else float("inf"),
        "results_identical": True,
        "spans": len(OBS.tracer.spans()),
    }


def _bench_recovery_overhead(machine: MachineSpec, repeats: int) -> Dict:
    """Plain simulation vs. the recovery wrapper with nothing to heal.

    The self-healing layer must be pay-for-what-you-break: wrapping a
    fault-free simulation in :func:`repro.recovery.simulate_with_recovery`
    runs exactly one round whose simulated time equals the plain path's
    bit for bit, and whose wall-clock cost stays within the same small
    multiple the observability layer is held to.  This tier pins both.
    """
    from ..recovery import simulate_with_recovery

    coll, alg, k, nbytes = "allreduce", "recursive_multiplying", 2, 1 << 16
    entry = info(coll, alg)
    schedule = entry.build(machine.nranks, k=k, root=0)

    plain = simulate(schedule, machine, nbytes)
    plain_s = _best_of(lambda: simulate(schedule, machine, nbytes), repeats)

    wrapped = simulate_with_recovery(
        coll, alg, machine, nbytes, k=k, recovery="shrink"
    )  # warm the wrapper's schedule cache before timing
    wrapped_s = _best_of(
        lambda: simulate_with_recovery(
            coll, alg, machine, nbytes, k=k, recovery="shrink"
        ),
        repeats,
    )
    identical = wrapped.rounds == 1 and wrapped.time == plain.time
    if not identical:
        raise ReproError(
            "recovery overhead integrity check failed: the fault-free "
            "recovery wrapper changed the simulated result"
        )
    return {
        "collective": coll,
        "algorithm": alg,
        "p": machine.nranks,
        "k": k,
        "nbytes": nbytes,
        "repeats": repeats,
        "plain_us": plain_s * 1e6,
        "wrapped_us": wrapped_s * 1e6,
        "overhead_ratio": wrapped_s / plain_s if plain_s > 0 else float("inf"),
        "results_identical": identical,
    }


def _bench_durability(machine: MachineSpec, sizes: Sequence[int]) -> Dict:
    """The durability layer's two promises, measured.

    First: journaling every completed point and serving schedule builds
    from a disk store must cost almost nothing on the cached full sweep
    in steady state (the gate is 5%) — durability that taxes the fast
    path would just be turned off.  The store's one-time population cost
    (pickling and checksumming every built schedule) is deliberately
    timed apart as ``populate_s``: it is the capital the warm start
    repays, not a recurring tax.  Second: a fresh process warm-starting
    from the populated store must acquire the grid's schedules faster
    than a cold process building them — the store has to pay for
    itself, or it is dead weight.  Every durable sweep must stay
    bit-identical to the plain path, the same contract every other tier
    enforces.
    """
    import shutil
    import tempfile

    from ..store import open_schedule_store
    from ..store.journal import JournalWriter
    from .sweep import _result_record as _sweep_result_record

    points = full_sweep_points(machine, sizes)
    plain: List = []
    durable: List = []

    tmp = Path(tempfile.mkdtemp(prefix="repro-durability-"))
    try:
        journal_path = tmp / "sweep.jsonl"
        store_root = tmp / "store"
        # Population pass: every unique schedule is built once and
        # written through (pickle + checksum + atomic publish).
        clear_sim_memo()
        global_schedule_cache().clear()
        t0 = time.perf_counter()
        run_sweep(
            points, machine, reuse=True,
            journal=journal_path, store=store_root,
        )
        populate_s = time.perf_counter() - t0

        # Each rep starts from cold in-process caches so every rep
        # times the same work; the durable reps run against the
        # now-populated store — steady state, where the disk tier
        # *serves* builds instead of writing them.
        def run_plain() -> None:
            clear_sim_memo()
            global_schedule_cache().clear()
            plain[:] = run_sweep(points, machine, reuse=True)

        def run_durable() -> None:
            clear_sim_memo()
            durable[:] = run_sweep(
                points, machine, reuse=True,
                journal=journal_path, store=store_root,
            )

        # Whole-sweep timing is taken as the median of *paired* reps
        # (plain and durable back-to-back, so host drift cancels).  It
        # demonstrates the durable path end-to-end and bounds
        # catastrophic per-record regressions — an accidental fsync per
        # record would double it — but on a shared 1-CPU host a ~2s
        # sweep jitters ±10%, which can never resolve the few-percent
        # promise the 5% gate makes.  The gated overhead is therefore
        # *component-derived* below: per-record journal cost and the
        # store's serve-vs-build delta are stable microsecond-scale
        # measurements, scaled by the sweep's actual counts.
        plain_s = float("inf")
        durable_s = float("inf")
        ratios: List[float] = []
        for _ in range(3):
            rep_plain = _best_of(run_plain, 1)
            rep_durable = _best_of(run_durable, 1)
            plain_s = min(plain_s, rep_plain)
            durable_s = min(durable_s, rep_durable)
            ratios.append(
                rep_durable / rep_plain if rep_plain > 0 else float("inf")
            )
        ratio = statistics.median(ratios)

        if [r.time for r in plain] != [r.time for r in durable]:
            raise ReproError(
                "durability integrity check failed: journaled/stored "
                "sweep results differ from the plain cached path"
            )

        # Warm-start value: schedule acquisition for the grid's unique
        # keys, cold (a fresh in-process cache, every build run) vs warm
        # (a fresh process-equivalent cache over the store the durable
        # sweep just populated).  Best-of-2 on both sides — these are
        # ~100ms loops where one scheduler hiccup would dominate.
        unique = sorted(
            {(pt.collective, pt.algorithm, pt.k) for pt in points}
        )

        def acquire_cold() -> None:
            cache = ScheduleCache()
            for coll, alg, k in unique:
                cache.get_or_build(coll, alg, machine.nranks, k=k, root=0)

        def acquire_warm() -> None:
            cache = open_schedule_store(store_root)
            for coll, alg, k in unique:
                _, hit = cache.get_or_build(
                    coll, alg, machine.nranks, k=k, root=0
                )
                if not hit:
                    raise ReproError(
                        "durability bench expected a populated store "
                        f"to serve {coll}/{alg} k={k} warm"
                    )

        cold_s = _best_of(acquire_cold, 2)
        warm_s = _best_of(acquire_warm, 2)

        # Component-derived overhead, the gated number: what the
        # durable sweep does that the plain sweep does not is (a) one
        # journal append per point and (b) serving its schedules from
        # the disk tier (warm_s) instead of the builder (cold_s).  Each
        # piece is measured over enough iterations to be stable to well
        # under 1%, then scaled by the sweep's actual counts against
        # the plain wall clock.
        probe_rec = _sweep_result_record(plain[0])
        probes = 1000
        t0 = time.perf_counter()
        with JournalWriter(tmp / "probe.jsonl", truncate=True) as probe:
            for _ in range(probes):
                probe.append(probe_rec)
        append_s = (time.perf_counter() - t0) / probes
        journal_s = append_s * (len(points) + 1)  # +1: the header record
        component_ratio = (
            (plain_s + journal_s + warm_s - cold_s) / plain_s
            if plain_s > 0
            else float("inf")
        )

        journal_lines = sum(
            1 for line in journal_path.read_text().splitlines() if line
        )
        store_entries = len(open_schedule_store(store_root).store)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "points": len(points),
        "plain_s": plain_s,
        "populate_s": populate_s,
        "durable_s": durable_s,
        "overhead_ratio": component_ratio,
        "end_to_end_ratio": ratio,
        "journal_append_us": append_s * 1e6,
        "journal_records": journal_lines,
        "store_entries": store_entries,
        "schedules": len(unique),
        "cold_acquire_s": cold_s,
        "warm_acquire_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "results_identical": True,
    }


# The compiled-execution acceptance grid: one config per traffic shape
# the threaded backend exercises (reduction ring, concatenation ring,
# rooted tree fan-out, all-to-all personalized exchange).
_COMPILED_CASES = (
    ("allreduce", "ring", None),
    ("allgather", "ring", None),
    ("bcast", "knomial", 3),
    ("alltoall", "bruck", None),
)


def _bench_interpreter_vs_compiled(
    machine: MachineSpec, repeats: int
) -> Dict:
    """Threaded execution: op-by-op interpretation vs. compiled tables.

    For each acceptance config the same schedule moves the same seeded
    data through :func:`repro.runtime.threaded.execute_threaded` twice —
    ``compiled=False`` (the interpreter walks the Step/Op IR) and
    ``compiled=True`` (tight loops over the preresolved peer/offset
    tables, staging buffers recycled through the pool).  Timings are
    best-of-``repeats`` on fresh buffer copies; result buffers must be
    bit-identical or the tier raises, because a speedup earned by
    changing answers is worthless.  The one-time lowering cost is
    reported apart as ``compile_us`` — it is paid once per schedule and
    amortized by the content-addressed compiled cache.
    """
    import numpy as np

    from ..compile import compile_schedule, get_or_compile
    from ..runtime.buffers import initial_buffers, make_inputs
    from ..runtime.threaded import execute_threaded

    p, count = 8, 64
    cases: List[Dict] = []
    for coll, alg, k in _COMPILED_CASES:
        entry = info(coll, alg)
        schedule = entry.build(p, k=k, root=0)
        rng = np.random.default_rng(0)
        inputs = make_inputs(coll, p, count, root=0, rng=rng)
        base = initial_buffers(schedule, inputs, count)

        t0 = time.perf_counter()
        compile_schedule(schedule)
        compile_s = time.perf_counter() - t0
        get_or_compile(schedule)  # warm the compiled cache before timing

        def run(compiled: bool) -> List:
            bufs = [b.copy() for b in base]
            execute_threaded(schedule, bufs, compiled=compiled)
            return bufs

        interp = run(False)
        compiled_bufs = run(True)
        identical = all(
            np.array_equal(a, b) for a, b in zip(interp, compiled_bufs)
        )
        if not identical:
            raise ReproError(
                f"compiled execution integrity check failed: "
                f"{coll}/{alg} k={k} produced different buffers than "
                f"the interpreter"
            )
        interp_s = _best_of(lambda: run(False), repeats)
        compiled_s = _best_of(lambda: run(True), repeats)
        cases.append({
            "collective": coll,
            "algorithm": alg,
            "p": p,
            "k": k,
            "count": count,
            "compile_us": compile_s * 1e6,
            "interpreted_us": interp_s * 1e6,
            "compiled_us": compiled_s * 1e6,
            "speedup": (
                interp_s / compiled_s if compiled_s > 0 else float("inf")
            ),
            "results_identical": identical,
        })
    return {
        "repeats": repeats,
        "cases": cases,
        "min_speedup": min(c["speedup"] for c in cases),
        "results_identical": all(c["results_identical"] for c in cases),
    }


def _bench_scale(smoke: bool) -> Dict:
    """The scale tier: the class-collapsed engine at paper-scale p.

    Three promises, all raised on violation rather than merely reported:

    * **bit-identity** — on the p=16 grid (every generalized algorithm ×
      radix grid × two sizes) the collapsed engine's full result (time
      and every per-rank finish time) equals the materialized engine's
      exactly;
    * **budget** — the p=4096 acceptance-grid sweep (butterfly
      algorithms materialized-or-collapsed under ``engine="auto"``, the
      ring family through the lazy generator schedules) completes under
      a wall-clock budget, with zero point errors;
    * **sublinearity** — lazy recursive-doubling allreduce from p=2^10
      to p=2^20 stays one equivalence class, and wall clock grows with
      the event count (log p), not with p.

    Configurations whose *materialized* footprint is unaffordable at
    p=4096 (k-ring's O(p^2/k) builder, allgather's and recursive-
    multiplying bcast's Theta(p^2) block transfers, recursive
    multiplying beyond k=8) are excluded via :data:`_SCALE_EXCLUSIONS` /
    :data:`_SCALE_RM_MAX_K` and *recorded in the report* — the grid
    never narrows silently, and the allgather collectives stay covered
    at scale through the lazy ring points.
    """
    from ..simnet.machines import reference
    from ..simnet.simulate import simulate as _simulate

    # --- bit-identity on the small-p grid --------------------------------
    small = reference(_SCALE_SMALL_P)
    small_points = 0
    for coll, alg in GENERALIZED_ALGORITHMS:
        entry = info(coll, alg)
        for k in radix_grid(_SCALE_SMALL_P, min_k=entry.min_k):
            schedule = entry.build(_SCALE_SMALL_P, k=k, root=0)
            for nbytes in (1 << 10, 1 << 16):
                mat = _simulate(schedule, small, nbytes,
                                engine="materialized")
                col = _simulate(schedule, small, nbytes, engine="collapsed")
                small_points += 1
                if col.fallback is None and (
                    col.time != mat.time
                    or list(col.rank_times) != list(mat.rank_times)
                ):
                    raise ReproError(
                        f"scale tier bit-identity check failed: "
                        f"{coll}/{alg} k={k} n={nbytes} at "
                        f"p={_SCALE_SMALL_P} diverged between engines"
                    )

    # --- the p=4096 acceptance-grid sweep under budget -------------------
    budget_s = _SCALE_SMOKE_BUDGET_S if smoke else _SCALE_BUDGET_S
    ks = _SCALE_SMOKE_KS if smoke else _SCALE_KS
    sizes = _SCALE_SMOKE_SIZES if smoke else _SCALE_SIZES
    machine = reference(_SCALE_P)
    points: List[SweepPoint] = []
    excluded: List[Dict] = []
    lazy_families = (
        ("allgather", "ring"),
        ("reduce_scatter", "ring"),
        ("allreduce", "ring"),
        ("allreduce", "recursive_doubling"),
    )
    for coll, alg in GENERALIZED_ALGORITHMS:
        reason = _SCALE_EXCLUSIONS.get((coll, alg))
        if reason is not None:
            excluded.append(
                {"collective": coll, "algorithm": alg, "reason": reason}
            )
            continue
        entry = info(coll, alg)
        seen = set()
        for k in ks:
            kk = max(k, entry.min_k)
            if alg == "recursive_multiplying" and kk > _SCALE_RM_MAX_K:
                excluded.append({
                    "collective": coll,
                    "algorithm": alg,
                    "k": kk,
                    "reason": (
                        f"k={kk} posts {kk - 1} concurrent sends per "
                        "rank per step at p=4096 (>60 s/point on the "
                        "serial DES)"
                    ),
                })
                continue
            if kk in seen:
                continue
            seen.add(kk)
            for nbytes in sizes:
                points.append(SweepPoint(coll, alg, nbytes, k=kk, root=0))
    lazy_points = 0
    for coll, alg in lazy_families:
        for nbytes in sizes:
            points.append(SweepPoint(coll, alg, nbytes, k=None, root=0))
            lazy_points += 1

    clear_sim_memo()
    global_schedule_cache().clear()
    t0 = time.perf_counter()
    results = run_sweep(points, machine, engine="auto")
    wall_s = time.perf_counter() - t0
    errors = [r for r in results if r.error is not None]
    if errors:
        first = errors[0]
        raise ReproError(
            f"scale tier p={_SCALE_P} sweep: {len(errors)} point(s) "
            f"failed, first: {first.point.collective}/"
            f"{first.point.algorithm} k={first.point.k}: {first.error}"
        )

    # --- sublinearity up to p=10^6 ---------------------------------------
    from ..core.lazy import lookup

    sublinear: List[Dict] = []
    for p in _SCALE_SUBLINEAR_PS:
        lazy = lookup("allreduce", "recursive_doubling", p)
        if lazy is None:
            raise ReproError(
                f"scale tier expected a lazy recursive-doubling "
                f"allreduce at p={p}"
            )
        t0 = time.perf_counter()
        res = _simulate(lazy, reference(p), 1 << 16, engine="collapsed")
        probe_wall = time.perf_counter() - t0
        if res.engine != "collapsed" or res.nclasses != 1:
            raise ReproError(
                f"scale tier sublinearity probe at p={p} did not "
                f"collapse to one class (engine={res.engine}, "
                f"nclasses={res.nclasses}, fallback={res.fallback})"
            )
        sublinear.append({
            "p": p,
            "wall_ms": probe_wall * 1e3,
            "nclasses": res.nclasses,
            "messages": res.messages,
            "time_us": res.time * 1e6,
        })
    wall_ratio = (
        sublinear[-1]["wall_ms"] / sublinear[0]["wall_ms"]
        if sublinear[0]["wall_ms"] > 0
        else float("inf")
    )
    p_ratio = _SCALE_SUBLINEAR_PS[-1] / _SCALE_SUBLINEAR_PS[0]

    return {
        "small_p": {
            "p": _SCALE_SMALL_P,
            "points": small_points,
            "results_identical": True,
        },
        "sweep": {
            "p": _SCALE_P,
            "points": len(points),
            "lazy_points": lazy_points,
            "wall_s": wall_s,
            "budget_s": budget_s,
            "within_budget": wall_s <= budget_s,
            "errors": 0,
            "excluded": excluded,
        },
        "sublinear": {
            "probes": sublinear,
            "wall_ratio": wall_ratio,
            "p_ratio": p_ratio,
            "max_ratio": _SCALE_SUBLINEAR_MAX_RATIO,
        },
    }


def _bench_adapt(machine: MachineSpec, smoke: bool) -> Dict:
    """The adapt tier: the online-selection loop's three promises.

    * **adaptive-off bit-identity** — on the ``calm`` scenario (no
      drift) the loop must never switch, accrue exactly zero regret,
      and every round's observed time must equal a plain
      :func:`~repro.simnet.simulate.simulate` of the static healthy
      winner bit for bit — the adapt machinery may not perturb a single
      simulated number when there is nothing to adapt to (and with
      ``adapt=None`` none of it runs at all);
    * **regret bound** — on the ``flap`` scenario the loop's cumulative
      regret vs. the per-round oracle must stay strictly below the
      static-selection baseline's, and the selector must converge to
      the oracle's post-change winner within
      :data:`_ADAPT_MAX_TIME_TO_ADAPT` rounds of every phase change;
    * **jobs invariance** — the whole trail re-run at ``jobs=2`` must
      be bit-identical (inherited from the sweep engine's determinism).

    Violations of the off-identity raise immediately (a perf number
    earned by perturbing results is worthless); the regret and
    invariance verdicts are gated by :func:`check_regression`.
    """
    from ..adapt.loop import run_adaptive
    from ..adapt.scenarios import get_scenario
    from .adapt import run_adapt_bench

    calm = get_scenario("calm", machine.nranks)
    t0 = time.perf_counter()
    off = run_adaptive(
        "allreduce", machine, _ADAPT_NBYTES, rounds=calm.rounds
    )
    off_wall = time.perf_counter() - t0
    entry = info("allreduce", off.static_algorithm)
    static = entry.build(machine.nranks, k=off.static_k, root=0)
    plain = simulate(static, machine, _ADAPT_NBYTES)
    off_identical = (
        off.switches == 0
        and off.regret == 0.0
        and all(r.time == plain.time for r in off.records)
    )
    if not off_identical:
        raise ReproError(
            "adapt tier integrity check failed: the no-drift adaptive "
            "loop diverged from plain simulation of the static winner"
        )

    t0 = time.perf_counter()
    flap = run_adapt_bench(
        machine,
        collective="allreduce",
        nbytes=_ADAPT_NBYTES,
        scenario="flap",
        check_jobs=2,
    )
    flap_wall = time.perf_counter() - t0
    return {
        "nbytes": _ADAPT_NBYTES,
        "max_time_to_adapt_allowed": _ADAPT_MAX_TIME_TO_ADAPT,
        "off": {
            "scenario": "calm",
            "rounds": len(off.records),
            "switches": off.switches,
            "regret": off.regret,
            "bit_identical": off_identical,
            "wall_s": off_wall,
        },
        "flap": flap,
        "flap_wall_s": flap_wall,
    }


def _bench_serve(smoke: bool) -> Dict:
    """The serve tier: the tuning service's three promises, measured.

    * **bit-identity** — every ``/select`` answer and the exported
      ``/config`` document must equal what an in-process
      :func:`repro.server.build_config` tune of the same grid produces,
      byte for byte (raised on violation — a service that answers
      differently than the library is not a cache, it is a fork);
    * **coalescing** — :data:`_SERVE_CLIENTS` concurrent ``POST /tune``
      requests for the same cold sweep must share one leader (exactly
      one ``sweeps_run`` increment) and finish within
      :data:`_SERVE_COALESCE_MAX_RATIO` of a single cold tune's wall
      clock — N clients must pay for one sweep, not N;
    * **warm start** — a tune warm-started from a committed
      selection-config's :meth:`~repro.server.SelectionConfig.
      sweep_priors` must beat the cold tune by at least
      :data:`_SERVE_WARM_MIN_SPEEDUP` while producing a bit-identical
      artifact (the priors replay recorded timings instead of
      simulating, so speed is the only thing allowed to change).

    The coalescing measurement clears the simulation memo first so the
    leader runs a real sweep, and retries (each attempt re-cleared) if
    a follower ever lands after the leader already finished — the same
    race discipline the smoke driver uses.
    """
    import concurrent.futures

    from ..server import TuningClient, build_config, serve_background
    from ..simnet.machines import reference

    machine = reference(_SERVE_P)
    sizes = list(_SERVE_SIZES)

    clear_sim_memo()
    global_schedule_cache().clear()
    t0 = time.perf_counter()
    direct = build_config(machine, sizes, collectives=_SERVE_COLLECTIVES)
    cold_s = time.perf_counter() - t0

    clear_sim_memo()
    global_schedule_cache().clear()
    t0 = time.perf_counter()
    warm = build_config(
        machine, sizes, collectives=_SERVE_COLLECTIVES,
        priors=direct.sweep_priors(),
    )
    warm_s = time.perf_counter() - t0
    if warm.to_json() != direct.to_json():
        raise ReproError(
            "serve tier integrity check failed: the prior-warmed tune "
            "diverged from the cold tune"
        )

    with serve_background(
        machine, sizes, collectives=_SERVE_COLLECTIVES
    ) as handle:
        client = TuningClient(handle.url)
        selections_identical = all(
            client.select("allreduce", machine.nranks, nbytes)
            == direct.select("allreduce", machine.nranks, nbytes)
            for nbytes in sizes
        )
        config_identical = client.config_text() == direct.to_json()
        if not (selections_identical and config_identical):
            raise ReproError(
                "serve tier integrity check failed: served selections "
                "or the exported config diverged from the in-process tune"
            )

        swept = joined = 0
        single_s = coalesced_wall_s = float("inf")
        attempts = 0
        for attempts in range(1, _SERVE_COALESCE_ATTEMPTS + 1):
            clear_sim_memo()
            t0 = time.perf_counter()
            client.tune("allreduce")
            single_s = time.perf_counter() - t0

            before = client.info()
            clear_sim_memo()
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=_SERVE_CLIENTS
            ) as pool:
                t0 = time.perf_counter()
                futures = [
                    pool.submit(client.tune, "allreduce")
                    for _ in range(_SERVE_CLIENTS)
                ]
                outcomes = [f.result()["outcome"] for f in futures]
                coalesced_wall_s = time.perf_counter() - t0
            after = client.info()
            swept = after["sweeps_run"] - before["sweeps_run"]
            joined = after["coalesced"] - before["coalesced"]
            if swept == 1 and outcomes.count("swept") == 1:
                break

    return {
        "p": machine.nranks,
        "sizes": sizes,
        "collectives": list(_SERVE_COLLECTIVES),
        "clients": _SERVE_CLIENTS,
        "cold_tune_s": cold_s,
        "warm_tune_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "warm_identical": True,
        "selections_identical": selections_identical,
        "config_identical": config_identical,
        "single_tune_s": single_s,
        "coalesced_wall_s": coalesced_wall_s,
        "coalesce_ratio": (
            coalesced_wall_s / single_s if single_s > 0 else float("inf")
        ),
        "sweeps_run": swept,
        "coalesced": joined,
        "coalesce_attempts": attempts,
    }


def run_perf(
    *,
    machine_name: str = "frontier",
    nodes: int = 16,
    ppn: int = 1,
    smoke: bool = False,
    jobs_levels: Sequence[int] = (4,),
) -> Dict:
    """Run every tier and return the report as a plain dict.

    ``machine_name`` is a base name (``frontier``/``polaris``/
    ``reference``, combined with ``nodes``/``ppn``) or a self-contained
    registry name like ``dragonfly-1024`` (which pins its own geometry).
    """
    if "-" in machine_name:
        machine = machine_by_name(machine_name)
    else:
        machine = by_name(machine_name, nodes, ppn)
    sizes = _SMOKE_SIZES if smoke else _FULL_SIZES
    repeats = 3 if smoke else 5
    report = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "machine": machine_name,
            "nodes": nodes,
            "ppn": ppn,
            "nranks": machine.nranks,
            "sizes": list(sizes),
            "smoke": smoke,
            "python": platform.python_version(),
            "cpus_available": _available_cpus(),
        },
        "schedule_build": _bench_schedule_build(machine, repeats * 20),
        "single_sim": _bench_single_sim(machine, repeats),
        "full_sweep": _bench_full_sweep(machine, sizes, jobs_levels),
        "recovery": _bench_recovery_overhead(machine, repeats),
        "obs": _bench_obs_overhead(machine, sizes),
        "durability": _bench_durability(machine, sizes),
        "interpreter_vs_compiled": _bench_interpreter_vs_compiled(
            machine, repeats * 6
        ),
        "scale": _bench_scale(smoke),
        "adapt": _bench_adapt(machine, smoke),
        "serve": _bench_serve(smoke),
    }
    return report


def check_regression(
    current: Dict, baseline: Dict, *, factor: float = 2.0,
    obs_factor: float = 1.05,
) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Returns a list of human-readable failures (empty when clean).  Only
    schedule-build timings are gated — they are the most host-stable
    metric, and ``factor`` leaves headroom for CI-runner variance.  The
    full-sweep speedup is additionally required not to collapse below
    1.0 (the caches must never make the sweep *slower* than the cold
    path).

    The observability layer gets its own, much tighter gate: when the
    two reports timed the same workload, the instrumentation-*disabled*
    sweep must stay within ``obs_factor`` (default 5%) of the committed
    baseline's disabled sweep; enabled instrumentation must never slow
    the sweep beyond 2x; and the instrumented path must have produced
    bit-identical results.  Reports predating the ``obs`` section
    (schema 1) skip the obs gate rather than failing on a missing key.
    """
    failures: List[str] = []
    for metric in ("cold_us", "cached_us"):
        base = baseline["schedule_build"][metric]
        cur = current["schedule_build"][metric]
        if base > 0 and cur > base * factor:
            failures.append(
                f"schedule build {metric} regressed {cur / base:.2f}x "
                f"({base:.1f}us -> {cur:.1f}us, allowed {factor:.1f}x)"
            )
    sweep = current["full_sweep"]
    if sweep["speedup"] < 1.0:
        failures.append(
            f"full-sweep cached path is slower than the cold path "
            f"({sweep['speedup']:.2f}x)"
        )
    if not sweep.get("results_identical", False):
        failures.append("cached sweep results diverged from the cold path")
    recovery = current.get("recovery")
    if recovery is not None:
        # Same skip-if-absent pattern as the obs section: older baselines
        # without a "recovery" section gate only the current report's own
        # invariants (result identity and the overhead ceiling).
        if not recovery.get("results_identical", False):
            failures.append(
                "fault-free recovery wrapper changed the simulated result"
            )
        if recovery.get("overhead_ratio", 1.0) > 2.0:
            failures.append(
                f"fault-free recovery wrapper slows simulation "
                f"{recovery['overhead_ratio']:.2f}x (allowed 2.0x)"
            )
    durability = current.get("durability")
    if durability is not None:
        # Self-relative gates (ratios within one report), so host speed
        # cancels out: durability must never tax the cached sweep beyond
        # 5%, and a warm start must beat the cold in-process run — a
        # store slower than the builder it bypasses is dead weight.
        if not durability.get("results_identical", False):
            failures.append(
                "journaled/stored sweep results diverged from the plain "
                "cached path"
            )
        # The gated overhead is component-derived (per-record journal
        # cost + store serve-vs-build delta, scaled by the sweep's
        # actual counts) because it is stable to well under 1%; the
        # end-to-end paired ratio is too noisy on a shared host to
        # resolve 5%, so it only bounds catastrophic per-record
        # regressions (fsync-per-record territory).
        if durability.get("overhead_ratio", 1.0) > 1.05:
            failures.append(
                f"journal+store overhead on the cached sweep is "
                f"{durability['overhead_ratio']:.3f}x (allowed 1.05x)"
            )
        if durability.get("end_to_end_ratio", 1.0) > 1.25:
            failures.append(
                f"end-to-end durable sweep is "
                f"{durability['end_to_end_ratio']:.2f}x the plain sweep "
                f"(sanity bound 1.25x)"
            )
        if durability.get("warm_speedup", float("inf")) <= 1.0:
            failures.append(
                f"warm start from a populated store is not faster than "
                f"a cold in-process run "
                f"({durability['warm_speedup']:.2f}x)"
            )
    ivc = current.get("interpreter_vs_compiled")
    if ivc is not None:
        # Skip-if-absent like the other late tiers: baselines predating
        # schema 4 have no compiled section, and the gates below are
        # self-relative (a ratio within one report), so host speed never
        # enters.  Compiled execution must beat the interpreter 2x on
        # every acceptance config with bit-identical buffers.
        if not ivc.get("results_identical", False):
            failures.append(
                "compiled execution produced different buffers than the "
                "interpreter"
            )
        if ivc.get("min_speedup", 0.0) < 2.0:
            worst = min(
                ivc.get("cases", []),
                key=lambda c: c.get("speedup", 0.0),
                default=None,
            )
            where = (
                f" ({worst['collective']}/{worst['algorithm']} "
                f"k={worst['k']})" if worst else ""
            )
            failures.append(
                f"compiled execution speedup collapsed to "
                f"{ivc.get('min_speedup', 0.0):.2f}x{where} "
                f"(required 2.0x over the interpreter)"
            )
    scale = current.get("scale")
    if scale is not None:
        # Skip-if-absent like the other late tiers (baselines predating
        # schema 5 have no scale section).  All three gates are
        # self-relative or absolute promises of the current report —
        # host speed only enters through the generous wall-clock budget.
        if not scale["small_p"].get("results_identical", False):
            failures.append(
                "collapsed engine diverged from the materialized engine "
                f"on the p={scale['small_p'].get('p')} identity grid"
            )
        sw = scale["sweep"]
        if not sw.get("within_budget", False):
            failures.append(
                f"p={sw.get('p')} scale sweep took {sw.get('wall_s', 0):.1f}s "
                f"(budget {sw.get('budget_s', 0):.0f}s)"
            )
        if sw.get("errors", 0):
            failures.append(
                f"p={sw.get('p')} scale sweep had {sw['errors']} point error(s)"
            )
        sub = scale["sublinear"]
        if any(pr.get("nclasses") != 1 for pr in sub.get("probes", [])):
            failures.append(
                "sublinear probe did not collapse to a single class at "
                "every p"
            )
        if sub.get("wall_ratio", float("inf")) > sub.get(
            "max_ratio", _SCALE_SUBLINEAR_MAX_RATIO
        ):
            failures.append(
                f"sublinear probe wall-clock grew {sub['wall_ratio']:.1f}x "
                f"over a {sub.get('p_ratio', 0):.0f}x rank-count span "
                f"(allowed {sub.get('max_ratio'):.0f}x — simulation cost "
                f"must track class count, not p)"
            )
    adapt = current.get("adapt")
    if adapt is not None:
        # Skip-if-absent like the other late tiers (baselines predating
        # schema 6 have no adapt section).  All gates are self-relative
        # promises of the current report — host speed never enters.
        off = adapt.get("off", {})
        if not off.get("bit_identical", False):
            failures.append(
                "no-drift adaptive loop diverged from plain simulation "
                "of the static winner"
            )
        if off.get("switches", 0):
            failures.append(
                f"no-drift adaptive loop switched "
                f"{off['switches']} time(s) (must be 0)"
            )
        flap = adapt.get("flap", {})
        if not flap.get("jobs_invariant", False):
            failures.append(
                "adaptive trail is not bit-identical across --jobs"
            )
        if not flap.get("adapted_all_changes", False):
            failures.append(
                "adaptive selector never matched the oracle's winner "
                "after at least one phase change"
            )
        ratio = flap.get("regret_ratio")
        if ratio is None or ratio >= 1.0:
            failures.append(
                f"adaptive regret is not strictly below the static "
                f"baseline (ratio {ratio})"
            )
        allowed = adapt.get(
            "max_time_to_adapt_allowed", _ADAPT_MAX_TIME_TO_ADAPT
        )
        tta = flap.get("max_time_to_adapt")
        if tta is None or tta > allowed:
            failures.append(
                f"time-to-adapt {tta} round(s) exceeds the allowed "
                f"{allowed}"
            )
    serve = current.get("serve")
    if serve is not None:
        # Skip-if-absent like the other late tiers (baselines predating
        # schema 7 have no serve section).  All gates are self-relative
        # ratios within the current report, so host speed cancels.
        for flag, what in (
            ("selections_identical", "served selections"),
            ("config_identical", "the exported /config document"),
            ("warm_identical", "the prior-warmed tune"),
        ):
            if not serve.get(flag, False):
                failures.append(
                    f"{what} diverged from the in-process cold tune"
                )
        if serve.get("sweeps_run", 0) != 1:
            failures.append(
                f"{serve.get('clients')} concurrent /tune requests ran "
                f"{serve.get('sweeps_run')} sweep(s) instead of "
                f"coalescing into 1"
            )
        ratio = serve.get("coalesce_ratio", float("inf"))
        if ratio > _SERVE_COALESCE_MAX_RATIO:
            failures.append(
                f"{serve.get('clients')} coalesced /tune requests took "
                f"{ratio:.2f}x a single tune's wall clock (allowed "
                f"{_SERVE_COALESCE_MAX_RATIO:.1f}x — N clients must pay "
                f"for one sweep)"
            )
        if serve.get("warm_speedup", 0.0) < _SERVE_WARM_MIN_SPEEDUP:
            failures.append(
                f"prior-warmed tune is only "
                f"{serve.get('warm_speedup', 0.0):.2f}x the cold tune "
                f"(required {_SERVE_WARM_MIN_SPEEDUP:.1f}x — committed "
                f"selection-config priors must make boot nearly free)"
            )
    obs = current.get("obs")
    base_obs = baseline.get("obs")
    if obs is not None:
        if not obs.get("results_identical", False):
            failures.append(
                "instrumented sweep results diverged from the "
                "uninstrumented path"
            )
        if obs.get("overhead_ratio", 1.0) > 2.0:
            failures.append(
                f"enabled instrumentation slows the sweep "
                f"{obs['overhead_ratio']:.2f}x (allowed 2.0x)"
            )
        # The tight wall-clock gate only makes sense when the two
        # reports timed the same workload (a --smoke run against the
        # committed full-grid baseline would compare different sweeps).
        comparable = (
            base_obs is not None
            and base_obs.get("off_s", 0) > 0
            and obs.get("points") == base_obs.get("points")
            and current["meta"].get("sizes") == baseline["meta"].get("sizes")
            and current["meta"].get("nranks") == baseline["meta"].get("nranks")
        )
        if comparable:
            ratio = obs["off_s"] / base_obs["off_s"]
            if ratio > obs_factor:
                failures.append(
                    f"instrumentation-disabled sweep regressed "
                    f"{ratio:.3f}x vs baseline "
                    f"({base_obs['off_s']:.2f}s -> {obs['off_s']:.2f}s, "
                    f"allowed {obs_factor:.2f}x)"
                )
    return failures


def write_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path) -> Dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"perf report {path} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return data


def format_report(report: Dict) -> str:
    """Human-readable summary of one report."""
    meta = report["meta"]
    sb = report["schedule_build"]
    ss = report["single_sim"]
    fs = report["full_sweep"]
    lines = [
        f"perf report — {meta['machine']} nodes={meta['nodes']} "
        f"ppn={meta['ppn']} ({'smoke' if meta['smoke'] else 'full'}), "
        f"{meta['cpus_available']} cpu(s)",
        f"  schedule build : cold {sb['cold_us']:9.1f} us | cached "
        f"{sb['cached_us']:7.1f} us | {sb['speedup']:7.1f}x",
        f"  single sim     : cold {ss['cold_us']:9.1f} us | memo   "
        f"{ss['memo_us']:7.1f} us | {ss['speedup']:7.1f}x",
        f"  full sweep     : before {fs['before_s']:6.2f} s | after "
        f"{fs['after_s']:6.2f} s | {fs['speedup']:5.2f}x "
        f"({fs['points']} points, build hits {fs['build_hit_rate']:.0%}, "
        f"sim memo {fs['sim_memo_rate']:.0%})",
    ]
    for jobs, row in sorted(fs["jobs"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"  --jobs {jobs:>2}      : {row['wall_s']:6.2f} s "
            f"({row['speedup_vs_before']:.2f}x vs cold, effective "
            f"workers {row['effective_jobs']})"
        )
    rec = report.get("recovery")
    if rec is not None:
        lines.append(
            f"  recovery wrap  : plain {rec['plain_us']:7.1f} us | wrapped "
            f"{rec['wrapped_us']:7.1f} us | {rec['overhead_ratio']:5.2f}x "
            f"(fault-free, results identical: {rec['results_identical']})"
        )
    obs = report.get("obs")
    if obs is not None:
        lines.append(
            f"  obs overhead   : off {obs['off_s']:8.2f} s | on     "
            f"{obs['on_s']:6.2f} s | {obs['overhead_ratio']:5.2f}x "
            f"({obs['spans']} spans, results identical: "
            f"{obs['results_identical']})"
        )
    ivc = report.get("interpreter_vs_compiled")
    if ivc is not None:
        for c in ivc["cases"]:
            name = f"{c['collective']}/{c['algorithm']}"
            lines.append(
                f"  compiled exec  : {name:<22} interp "
                f"{c['interpreted_us']:8.1f} us | compiled "
                f"{c['compiled_us']:8.1f} us | {c['speedup']:5.2f}x "
                f"(compile {c['compile_us']:.0f} us)"
            )
        lines.append(
            f"  compiled gate  : min speedup {ivc['min_speedup']:.2f}x, "
            f"results identical: {ivc['results_identical']}"
        )
    dur = report.get("durability")
    if dur is not None:
        lines.append(
            f"  durability     : plain {dur['plain_s']:6.2f} s | durable "
            f"{dur['durable_s']:5.2f} s | {dur['overhead_ratio']:5.3f}x "
            f"overhead ({dur['journal_append_us']:.0f} us/append, "
            f"{dur['journal_records']} journal records, "
            f"{dur['store_entries']} store entries, populate "
            f"{dur['populate_s']:.2f} s)"
        )
        lines.append(
            f"  warm start     : cold {dur['cold_acquire_s'] * 1e3:7.1f} ms "
            f"| warm {dur['warm_acquire_s'] * 1e3:8.1f} ms | "
            f"{dur['warm_speedup']:5.2f}x "
            f"({dur['schedules']} schedules, results identical: "
            f"{dur['results_identical']})"
        )
    adapt = report.get("adapt")
    if adapt is not None:
        off, flap = adapt["off"], adapt["flap"]
        lines.append(
            f"  adapt off      : {off['scenario']} rounds={off['rounds']}, "
            f"switches={off['switches']}, regret {off['regret']:.2e}s, "
            f"bit-identical: {off['bit_identical']}"
        )
        ratio = flap.get("regret_ratio")
        ratio_str = f"{ratio:.2f}x" if ratio is not None else "n/a"
        lines.append(
            f"  adapt flap     : regret {flap['regret'] * 1e6:7.1f} us | "
            f"static {flap['static_regret'] * 1e6:7.1f} us | {ratio_str} "
            f"(max time-to-adapt {flap['max_time_to_adapt']} round(s), "
            f"{flap['switches']} switch(es), jobs-invariant: "
            f"{flap['jobs_invariant']})"
        )
    serve = report.get("serve")
    if serve is not None:
        lines.append(
            f"  serve tune     : cold {serve['cold_tune_s']:6.2f} s | warm "
            f"{serve['warm_tune_s']:6.3f} s | {serve['warm_speedup']:5.1f}x "
            f"(selections identical: {serve['selections_identical']}, "
            f"config identical: {serve['config_identical']})"
        )
        lines.append(
            f"  serve coalesce : single {serve['single_tune_s']:5.2f} s | "
            f"{serve['clients']} clients {serve['coalesced_wall_s']:5.2f} s "
            f"| {serve['coalesce_ratio']:4.2f}x "
            f"({serve['sweeps_run']} swept, {serve['coalesced']} coalesced)"
        )
    scale = report.get("scale")
    if scale is not None:
        sp, sw, sub = scale["small_p"], scale["sweep"], scale["sublinear"]
        lines.append(
            f"  scale identity : p={sp['p']} grid, {sp['points']} points, "
            f"collapsed == materialized: {sp['results_identical']}"
        )
        lines.append(
            f"  scale sweep    : p={sw['p']}, {sw['points']} points "
            f"({sw['lazy_points']} lazy) in {sw['wall_s']:6.2f} s "
            f"(budget {sw['budget_s']:.0f} s, "
            f"{len(sw['excluded'])} excluded)"
        )
        for pr in sub["probes"]:
            lines.append(
                f"  scale probe    : p={pr['p']:>8} | {pr['wall_ms']:7.1f} ms "
                f"| {pr['nclasses']} class(es) | "
                f"{pr['messages']} messages"
            )
        lines.append(
            f"  scale gate     : wall grew {sub['wall_ratio']:.1f}x over a "
            f"{sub['p_ratio']:.0f}x rank span (allowed "
            f"{sub['max_ratio']:.0f}x)"
        )
    return "\n".join(lines)
