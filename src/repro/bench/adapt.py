"""Regret and time-to-adapt benchmark for the online selection loop.

:func:`run_adapt_bench` drives :func:`repro.adapt.run_adaptive` through
a named drift scenario and reduces the trail to the numbers the perf
gate and ``adapt_report.json`` care about:

* **regret** — cumulative effective time paid over the per-round oracle
  (an omniscient re-pick every round), and the **static regret** the
  fixed healthy winner would have paid — adaptivity earns its keep only
  while ``regret < static_regret``;
* **time-to-adapt** — rounds from each phase change until the running
  arm matches the oracle's post-change winner;
* **jobs invariance** — the whole report re-run at a different sweep
  fan-out must be bit-identical (simulation is pure; the loop inherits
  :mod:`repro.bench.sweep`'s determinism guarantee).

Everything here is seeded and machine-free of wall clocks, so reports
diff cleanly across commits.
"""

from __future__ import annotations

import json
from typing import Optional, Union

from ..adapt.loop import run_adaptive
from ..adapt.scenarios import get_scenario
from ..adapt.selector import DEFAULT_POLICY, AdaptPolicy
from ..simnet.machine import MachineSpec

__all__ = ["run_adapt_bench"]


def run_adapt_bench(
    machine: Union[str, MachineSpec],
    *,
    collective: str = "allreduce",
    nbytes: int = 65536,
    scenario: str = "flap",
    rounds: Optional[int] = None,
    policy: AdaptPolicy = DEFAULT_POLICY,
    jobs: int = 0,
    check_jobs: Optional[int] = 2,
    engine: str = "auto",
    seed: int = 0,
) -> dict:
    """Run the adaptive loop through ``scenario``; return the report dict.

    The dict is what ``repro-adapt -o adapt_report.json`` writes: the
    full :class:`~repro.adapt.AdaptReport` trail plus the reduced bench
    metrics (``regret``, ``static_regret``, ``regret_ratio``,
    ``time_to_adapt``, ``max_time_to_adapt``).  With ``check_jobs`` set
    (default 2) the loop is re-run at that sweep fan-out and the two
    trails compared bit for bit; the verdict lands in
    ``jobs_invariant``.  ``rounds`` overrides the scenario's
    recommended round count.
    """
    from ..simnet.machines import resolve as resolve_machine

    machine = resolve_machine(machine)
    sc = get_scenario(scenario, machine.nranks, seed=seed)
    nrounds = int(rounds) if rounds is not None else sc.rounds

    def one(njobs: int):
        return run_adaptive(
            collective,
            machine,
            nbytes,
            rounds=nrounds,
            phased=sc.phased,
            contention=sc.contention,
            policy=policy,
            jobs=njobs,
            engine=engine,
            seed=seed,
        )

    report = one(jobs)
    jobs_invariant = True
    if check_jobs is not None and check_jobs != jobs:
        other = one(check_jobs)
        jobs_invariant = json.dumps(
            report.to_dict(), sort_keys=True
        ) == json.dumps(other.to_dict(), sort_keys=True)
    tta = report.time_to_adapt
    reached = [v for v in tta.values() if v is not None]
    out = report.to_dict()
    out["scenario"] = scenario
    out["engine"] = engine
    out["jobs"] = jobs
    out["jobs_invariant"] = jobs_invariant
    out["regret_ratio"] = (
        report.regret / report.static_regret
        if report.static_regret > 0.0
        else None
    )
    out["max_time_to_adapt"] = max(reached) if reached else None
    out["adapted_all_changes"] = len(reached) == len(tta)
    return out
