"""Randomized crash-storm soak for the durability layer.

``python -m repro.bench.soak`` drives the *real* ``repro-sweep`` CLI in
subprocesses through seeded rounds of abuse — worker poison that kills
the process mid-run (``os._exit``, the segfault stand-in), asynchronous
``SIGKILL``, and on-disk damage to the schedule store and journal
between the crash and the resume — then resumes every round and demands
the final results JSON be **byte-identical** to an undisturbed
reference run.

This is the durability contract stated as a single executable claim: no
matter where a sweep dies and what state the crash leaves on disk, the
resumed run converges to the same artifact.  Each round's journal and
the machine-readable summary land in the output directory so CI can
upload them as artifacts when a round fails.

Everything is seeded (``--seed``): a failing round reproduces exactly,
which is what separates a soak from a flake generator.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.registry import algorithms_for, info
from ..selection.tuner import radix_grid
from ..simnet.machines import by_name
from ..store.journal import read_journal
from .osu import default_sizes
from .sweep import POISON_ENV, SweepPoint

__all__ = ["run_soak", "main"]

#: Crash modes, cycled through deterministically-shuffled per seed.
MODES = ("poison-serial", "sigkill", "poison-parallel")

#: On-disk damage injected between the crash and the resume.
DAMAGES = ("flip-byte", "truncate-entry", "orphan-tmp", "torn-journal", "none")


def _sweep_argv(flags: Sequence[str]) -> List[str]:
    """A subprocess argv running the real ``repro-sweep`` entry point."""
    return [
        sys.executable,
        "-c",
        "import sys; from repro.cli import main_sweep; "
        "sys.exit(main_sweep(sys.argv[1:]))",
        *flags,
    ]


def _sweep_env(poison: Optional[str] = None) -> Dict[str, str]:
    """Subprocess environment: repro importable, poison optionally armed."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{extra}" if extra else src
    env.pop(POISON_ENV, None)
    if poison is not None:
        env[POISON_ENV] = poison
    return env


def _grid_points(
    machine_name: str,
    nodes: int,
    ppn: int,
    collective: str,
    sizes: Sequence[int],
) -> List[SweepPoint]:
    """The same grid ``repro-sweep`` builds for these flags (poison
    specs must name real points)."""
    machine = by_name(machine_name, nodes, ppn)
    points: List[SweepPoint] = []
    for alg in algorithms_for(collective):
        ks = radix_grid(machine.nranks) if info(collective, alg).takes_k \
            else [None]
        for k in ks:
            for nbytes in sizes:
                points.append(SweepPoint(collective, alg, nbytes, k=k))
    return points


def _poison_spec(point: SweepPoint) -> str:
    return (
        f"{point.collective}/{point.algorithm}/{point.k}/{point.nbytes}"
    )


def _inject_damage(
    damage: str, store_root: Path, journal: Path, rng: random.Random
) -> str:
    """Apply one kind of damage; returns what was actually done (a
    target may not exist yet — e.g. no store entries before the first
    point completed — in which case the round records the no-op)."""
    entries = sorted((store_root / "entries").glob("*.json")) \
        if (store_root / "entries").is_dir() else []
    if damage == "flip-byte" and entries:
        victim = rng.choice(entries)
        blob = bytearray(victim.read_bytes())
        if blob:
            pos = rng.randrange(len(blob))
            blob[pos] ^= 0xFF
            victim.write_bytes(bytes(blob))
            return f"flip-byte:{victim.name}@{pos}"
    elif damage == "truncate-entry" and entries:
        victim = rng.choice(entries)
        size = victim.stat().st_size
        victim.write_bytes(victim.read_bytes()[: size // 2])
        return f"truncate-entry:{victim.name}"
    elif damage == "orphan-tmp":
        tmp_dir = store_root / "entries"
        tmp_dir.mkdir(parents=True, exist_ok=True)
        orphan = tmp_dir / f"soak-{rng.randrange(1 << 30):08x}.json.tmp"
        orphan.write_bytes(b'{"torn": ')
        return f"orphan-tmp:{orphan.name}"
    elif damage == "torn-journal" and journal.exists():
        blob = journal.read_bytes()
        if blob.count(b"\n") > 1:
            # Strip the final newline plus a few bytes: the last record
            # becomes a torn line, exactly what SIGKILL mid-write leaves.
            journal.write_bytes(blob[: len(blob) - 1 - rng.randrange(1, 9)])
            return "torn-journal:tail"
    return f"{damage}:skipped"


def _crash_run(
    mode: str,
    flags: List[str],
    points: Sequence[SweepPoint],
    rng: random.Random,
) -> Dict:
    """Launch one doomed sweep and let the chosen crash mode kill it."""
    if mode == "poison-serial":
        # The poisoned point os._exit()s the (serial) sweep process
        # itself — a deterministic mid-run crash, no timing races.
        spec = _poison_spec(rng.choice(points))
        proc = subprocess.run(
            _sweep_argv(flags), env=_sweep_env(poison=spec),
            capture_output=True, text=True, timeout=600,
        )
        return {"mode": mode, "poison": spec, "rc": proc.returncode}
    if mode == "poison-parallel":
        # Worker processes die instead; the executor quarantines the
        # point as an error record and the sweep *completes* (rc 1).
        spec = _poison_spec(rng.choice(points))
        proc = subprocess.run(
            _sweep_argv(flags + ["--jobs", "2", "--isolate"]),
            env=_sweep_env(poison=spec),
            capture_output=True, text=True, timeout=600,
        )
        return {"mode": mode, "poison": spec, "rc": proc.returncode}
    # sigkill: the asynchronous crash — no cooperation from the victim.
    delay = rng.uniform(0.2, 1.5)
    popen = subprocess.Popen(
        _sweep_argv(flags), env=_sweep_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    time.sleep(delay)
    survived = popen.poll() is not None
    if not survived:
        popen.send_signal(signal.SIGKILL)
    rc = popen.wait(timeout=600)
    return {"mode": mode, "delay_s": round(delay, 3),
            "survived": survived, "rc": rc}


def run_soak(
    *,
    rounds: int = 4,
    seed: int = 20230823,
    out_dir: Path,
    machine: str = "frontier",
    nodes: int = 16,
    ppn: int = 1,
    collective: str = "allreduce",
    min_bytes: int = 64,
    max_bytes: int = 16384,
) -> Dict:
    """Run the crash storm; returns the summary (also written to disk)."""
    rng = random.Random(seed)
    out_dir.mkdir(parents=True, exist_ok=True)
    store_root = out_dir / "store"
    base_flags = [
        "--machine", machine, "--nodes", str(nodes), "--ppn", str(ppn),
        "--collective", collective,
        "--min-bytes", str(min_bytes), "--max-bytes", str(max_bytes),
    ]
    points = _grid_points(
        machine, nodes, ppn, collective,
        default_sizes(min_bytes, max_bytes),
    )

    # The undisturbed reference artifact every round must converge to.
    ref_path = out_dir / "reference.json"
    ref = subprocess.run(
        _sweep_argv(base_flags + ["-o", str(ref_path)]),
        env=_sweep_env(), capture_output=True, text=True, timeout=600,
    )
    if ref.returncode != 0:
        raise RuntimeError(
            f"reference sweep failed (rc {ref.returncode}):\n{ref.stderr}"
        )
    ref_bytes = ref_path.read_bytes()

    results: List[Dict] = []
    for i in range(rounds):
        journal = out_dir / f"journal_r{i}.jsonl"
        output = out_dir / f"out_r{i}.json"
        flags = base_flags + [
            "--journal", str(journal), "--store", str(store_root),
        ]
        mode = MODES[i % len(MODES)]
        crash = _crash_run(mode, flags, points, rng)
        damage = _inject_damage(
            rng.choice(DAMAGES), store_root, journal, rng
        )
        resume = subprocess.run(
            _sweep_argv(flags + ["--resume", "-o", str(output)]),
            env=_sweep_env(), capture_output=True, text=True, timeout=600,
        )
        records, skipped = read_journal(journal)
        identical = (
            output.exists() and output.read_bytes() == ref_bytes
        )
        round_doc = {
            "round": i,
            "crash": crash,
            "damage": damage,
            "resume_rc": resume.returncode,
            "journal_records": len(records),
            "journal_skipped": skipped,
            "identical": identical,
            "ok": identical and resume.returncode == 0,
        }
        if not round_doc["ok"]:
            round_doc["resume_stderr"] = resume.stderr[-2000:]
        results.append(round_doc)
        status = "ok" if round_doc["ok"] else "FAIL"
        print(
            f"round {i}: {crash['mode']} rc={crash['rc']} "
            f"damage={damage} resume_rc={resume.returncode} "
            f"records={len(records)} identical={identical} [{status}]"
        )

    summary = {
        "seed": seed,
        "rounds": results,
        "points": len(points),
        "ok": all(r["ok"] for r in results),
    }
    (out_dir / "soak_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.soak",
        description="Seeded crash-storm soak: kill repro-sweep mid-run "
        "(worker poison, SIGKILL), damage the store and journal, resume, "
        "and demand byte-identical results.",
    )
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--seed", type=int, default=20230823)
    parser.add_argument("-o", "--out", default="soak-artifacts",
                        metavar="DIR",
                        help="journals + summary land here (CI uploads "
                        "this directory on failure)")
    parser.add_argument("--machine", default="frontier",
                        choices=["frontier", "polaris", "reference"])
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--ppn", type=int, default=1)
    parser.add_argument("--collective", default="allreduce")
    parser.add_argument("--min-bytes", type=int, default=64)
    parser.add_argument("--max-bytes", type=int, default=16384)
    args = parser.parse_args(argv)

    summary = run_soak(
        rounds=args.rounds, seed=args.seed, out_dir=Path(args.out),
        machine=args.machine, nodes=args.nodes, ppn=args.ppn,
        collective=args.collective,
        min_bytes=args.min_bytes, max_bytes=args.max_bytes,
    )
    failed = [r["round"] for r in summary["rounds"] if not r["ok"]]
    if failed:
        print(f"SOAK FAILED: rounds {failed} (seed {summary['seed']})")
        return 1
    print(
        f"soak ok: {len(summary['rounds'])} rounds, "
        f"{summary['points']} points each, seed {summary['seed']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
