"""Benchmark harness: OSU-style measurement, radix sweeps, speedup curves,
and the per-figure experiment definitions."""

from .experiments import ALL_EXPERIMENTS, ExperimentResult, run_experiment
from .osu import LatencyPoint, default_sizes, osu_latency, osu_latency_schedule
from .report import format_size, format_table, geomean, speedup_str
from .speedup import SpeedupCurve, SpeedupPoint, policy_latency, speedup_curves
from .sweep import RadixSweep, radix_latency_sweep

__all__ = [
    "osu_latency",
    "osu_latency_schedule",
    "LatencyPoint",
    "default_sizes",
    "radix_latency_sweep",
    "RadixSweep",
    "speedup_curves",
    "SpeedupCurve",
    "SpeedupPoint",
    "policy_latency",
    "format_size",
    "format_table",
    "geomean",
    "speedup_str",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_experiment",
]
