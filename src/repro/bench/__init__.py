"""Benchmark harness: OSU-style measurement, radix sweeps, speedup curves,
and the per-figure experiment definitions."""

from .adapt import run_adapt_bench
from .experiments import ALL_EXPERIMENTS, ExperimentResult, run_experiment
from .osu import LatencyPoint, default_sizes, osu_latency, osu_latency_schedule
from .perf import check_regression, load_report, run_perf, write_report
from .recovery import (
    RecoveryPoint,
    RecoveryRecord,
    recovery_curve,
    run_recovery_sweep,
    summarize_recovery,
    write_recovery_report,
)
from .report import format_size, format_table, geomean, speedup_str
from .speedup import SpeedupCurve, SpeedupPoint, policy_latency, speedup_curves
from .sweep import (
    RadixSweep,
    SweepPoint,
    SweepPointResult,
    radix_latency_sweep,
    run_sweep,
    simulate_point,
    sweep_errors,
)

__all__ = [
    "osu_latency",
    "osu_latency_schedule",
    "LatencyPoint",
    "default_sizes",
    "radix_latency_sweep",
    "RadixSweep",
    "SweepPoint",
    "SweepPointResult",
    "run_sweep",
    "simulate_point",
    "sweep_errors",
    "run_adapt_bench",
    "run_perf",
    "check_regression",
    "write_report",
    "load_report",
    "RecoveryPoint",
    "RecoveryRecord",
    "recovery_curve",
    "run_recovery_sweep",
    "summarize_recovery",
    "write_recovery_report",
    "speedup_curves",
    "SpeedupCurve",
    "SpeedupPoint",
    "policy_latency",
    "format_size",
    "format_table",
    "geomean",
    "speedup_str",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_experiment",
]
