"""Ablation experiments: isolating each hardware mechanism the paper
credits for its results.

The paper *infers* mechanisms from end-to-end measurements ("the number of
ports per node determines the optimal k-value", "intranode links are the
dominant performance feature", "jobs dispersed across the system eliminate
k-ring's neighbor advantage").  A simulator can do what the testbed could
not: vary exactly one machine parameter at a time and confirm the causal
story.  Each ablation here sweeps one knob of the Frontier-like machine
and checks the corresponding claim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.primitives import ilog
from ..core.registry import build_schedule
from ..simnet.machine import us
from ..simnet.machines import frontier
from ..simnet.simulate import simulate
from .experiments import ExperimentResult
from .report import format_size, format_table, speedup_str
from .sweep import radix_latency_sweep

__all__ = [
    "ablation_nic_ports",
    "ablation_injection_overhead",
    "ablation_intranode_ratio",
    "ablation_placement",
    "ablation_bruck_vs_recmul",
    "ablation_pipeline_segments",
    "ablation_hierarchical",
    "ablation_alltoall_crossover",
    "ABLATIONS",
]


def ablation_nic_ports(
    nodes: int = 64,
    nbytes: int = 65536,
    ports_grid: Sequence[int] = (1, 2, 4, 8),
    ks: Sequence[int] = (2, 3, 4, 5, 8, 16),
) -> ExperimentResult:
    """Claim (§VI-C2): the NIC port count determines recursive
    multiplying's optimal radix.  Sweep the port count with everything
    else fixed; the best k must track it upward."""
    rows = []
    best_ks = []
    for ports in ports_grid:
        machine = frontier(nodes, 1).with_(
            name=f"frontier-{ports}port", nic_ports=ports
        )
        sweep = radix_latency_sweep(
            "allreduce", "recursive_multiplying", machine, [nbytes], ks=ks
        )
        best = sweep.best_k(nbytes)
        best_ks.append(best)
        rows.append(
            [f"{ports} ports"]
            + [f"{sweep.latency(k, nbytes):.1f}" for k in ks]
            + [f"k={best}"]
        )
    res = ExperimentResult(
        exp_id="ablation-ports",
        title=f"NIC port count vs optimal recursive multiplying radix "
              f"({format_size(nbytes)} allreduce)",
        paper_claim="the number of ports per node determines the optimal k",
        text=format_table(
            ["machine"] + [f"k={k} µs" for k in ks] + ["best"], rows
        ),
        data={"best_ks": dict(zip(ports_grid, best_ks))},
    )
    res.check(
        "optimal k non-decreasing in port count",
        all(a <= b for a, b in zip(best_ks, best_ks[1:])),
        f"best k per port count: {best_ks}",
    )
    res.check(
        "optimal k stays within a small multiple of the port count",
        all(k <= 4 * ports or ports == 1
            for ports, k in zip(ports_grid, best_ks)),
        f"{list(zip(ports_grid, best_ks))}",
    )
    return res


def ablation_injection_overhead(
    nodes: int = 128,
    nbytes: int = 8,
    o_grid_us: Sequence[float] = (0.0, 0.015, 0.15, 1.5),
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
) -> ExperimentResult:
    """Claim (§III-D / Fig. 10a): per-message software overhead is what
    bounds the useful k-nomial radix.  With zero overhead the flat tree
    (k = p) must win tiny reductions; growing overhead must push the
    optimum down."""
    rows = []
    best_ks = []
    for o in o_grid_us:
        machine = frontier(nodes, 1).with_(
            name=f"frontier-o{o}", injection_overhead=us(o)
        )
        sweep = radix_latency_sweep(
            "reduce", "knomial", machine, [nbytes], ks=ks
        )
        best = sweep.best_k(nbytes)
        best_ks.append(best)
        rows.append(
            [f"o={o}µs"]
            + [f"{sweep.latency(k, nbytes):.2f}" for k in ks]
            + [f"k={best}"]
        )
    res = ExperimentResult(
        exp_id="ablation-injection",
        title="Injection overhead vs optimal k-nomial radix (8B reduce)",
        paper_claim="message buffering/software overhead caps the useful radix",
        text=format_table(
            ["machine"] + [f"k={k} µs" for k in ks] + ["best"], rows
        ),
        data={"best_ks": dict(zip(o_grid_us, best_ks))},
    )
    res.check(
        "zero overhead favors the flat tree (k = p)",
        best_ks[0] == nodes,
        f"best k = {best_ks[0]}",
    )
    res.check(
        "optimal k non-increasing as overhead grows",
        all(a >= b for a, b in zip(best_ks, best_ks[1:])),
        f"best k per overhead: {best_ks}",
    )
    res.check(
        "large overhead forces a narrow tree",
        best_ks[-1] <= 8,
        f"best k = {best_ks[-1]} at o={o_grid_us[-1]}µs",
    )
    return res


def ablation_intranode_ratio(
    nodes: int = 16,
    ppn: int = 8,
    nbytes: int = 4 << 20,
    speedups: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
) -> ExperimentResult:
    """Claim (§II-B3 / Fig. 8c): k-ring's win is the intranode link
    advantage.  Scale the intranode α and β from parity with the NIC to
    8x better; k-ring's gain over the classic ring must grow from nothing
    accordingly."""
    base = frontier(nodes, ppn)
    p = base.nranks
    ring_sched = build_schedule("bcast", "kring", p, k=1)
    kring_sched = build_schedule("bcast", "kring", p, k=ppn)
    rows = []
    gains = []
    for factor in speedups:
        machine = base.with_(
            name=f"frontier-intra{factor}x",
            alpha_intra=base.alpha_inter / factor,
            beta_intra=base.beta_inter / factor,
        )
        t_ring = simulate(ring_sched, machine, nbytes).time_us
        t_kring = simulate(kring_sched, machine, nbytes).time_us
        gain = t_ring / t_kring
        gains.append(gain)
        rows.append([f"{factor}x intranode", f"{t_ring:.0f}",
                     f"{t_kring:.0f}", speedup_str(gain)])
    res = ExperimentResult(
        exp_id="ablation-intranode",
        title=f"Intranode link advantage vs k-ring gain "
              f"({format_size(nbytes)} bcast, k = ppn = {ppn})",
        paper_claim="k-ring's benefit comes from the superior intranode "
                    "interconnect",
        text=format_table(
            ["intranode links", "ring µs", "k-ring µs", "gain"], rows
        ),
        data={"gains": dict(zip(speedups, gains))},
    )
    res.check(
        "no intranode advantage → no k-ring gain (±5%)",
        abs(gains[0] - 1.0) <= 0.05,
        speedup_str(gains[0]),
    )
    res.check(
        "gain strictly increases with the link advantage",
        all(a < b for a, b in zip(gains, gains[1:])),
        f"gains: {[f'{g:.2f}' for g in gains]}",
    )
    return res


def ablation_placement(
    nodes: int = 16,
    ppn: int = 8,
    nbytes: int = 4 << 20,
    ks: Sequence[int] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """Claim (§VI-C3): "jobs of smaller size are dispersed across the
    9000+ nodes in the system, eliminating k-ring's neighbor communication
    advantage."  Compare packed (block) placement against round-robin
    dispersal: the same schedules, the same machine, only the rank→node
    map changes."""
    base = frontier(nodes, ppn)
    rows = []
    sweeps: Dict[str, List[float]] = {}
    for placement in ("block", "round_robin"):
        machine = base.with_(
            name=f"frontier-{placement}", placement=placement
        )
        sweep = radix_latency_sweep(
            "bcast", "kring", machine, [nbytes], ks=ks
        )
        sweeps[placement] = [sweep.latency(k, nbytes) for k in ks]
        rows.append(
            [placement]
            + [f"{sweep.latency(k, nbytes):.0f}" for k in ks]
            + [f"k={sweep.best_k(nbytes)}", f"{sweep.flatness(nbytes):.2f}"]
        )
    res = ExperimentResult(
        exp_id="ablation-placement",
        title=f"Rank placement vs k-ring gain ({format_size(nbytes)} bcast)",
        paper_claim="dispersed placement eliminates k-ring's neighbor "
                    "advantage",
        text=format_table(
            ["placement"] + [f"k={k} µs" for k in ks]
            + ["best", "max/min over k"],
            rows,
        ),
        data={"sweeps": sweeps},
    )
    block = sweeps["block"]
    rr = sweeps["round_robin"]
    block_gain = max(block) / min(block)
    rr_gain = max(rr) / min(rr)
    res.check(
        "packed placement rewards the radix",
        block_gain > 1.5,
        f"max/min over k = {block_gain:.2f}",
    )
    res.check(
        "dispersed placement flattens the radix response",
        rr_gain < block_gain / 1.5,
        f"max/min over k = {rr_gain:.2f} (vs {block_gain:.2f} packed)",
    )
    return res


def ablation_bruck_vs_recmul(
    nbytes: int = 64,
    ps: Sequence[int] = (16, 17, 31, 32),
    k: int = 4,
) -> ExperimentResult:
    """Extension study: the fold/unfold cost of the recursive multiplying
    butterfly on awkward process counts, against the fold-free k-port
    Bruck exchange.  On smooth p they should tie; on p needing a fold
    Bruck must win by about the two extra latencies."""
    rows = []
    verdicts = []
    for p in ps:
        # Strip the dragonfly layer: group boundaries shift with the node
        # count and would confound the fold-cost comparison across p.
        machine = frontier(p, 1).with_(name=f"frontier-{p}", dragonfly=None)
        t_recmul = simulate(
            build_schedule("allgather", "recursive_multiplying", p, k=k),
            machine, nbytes,
        ).time_us
        t_bruck = simulate(
            build_schedule("allgather", "bruck", p, k=k), machine, nbytes
        ).time_us
        from ..core.recursive import smooth_core

        folded = p - smooth_core(p, k)
        verdicts.append((p, folded, t_recmul, t_bruck))
        rows.append(
            [p, folded, ilog(k, p), f"{t_recmul:.2f}", f"{t_bruck:.2f}",
             speedup_str(t_recmul / t_bruck)]
        )
    res = ExperimentResult(
        exp_id="ablation-bruck",
        title=f"Fold-free Bruck vs recursive multiplying "
              f"({format_size(nbytes)} allgather, k={k})",
        paper_claim="(extension) non-power-of-k corner cases cost the "
                    "butterfly two extra latencies that a rotation-based "
                    "exchange avoids",
        text=format_table(
            ["p", "folded ranks", "bruck rounds", "recmul µs", "bruck µs",
             "bruck gain"],
            rows,
        ),
    )
    for p, folded, t_recmul, t_bruck in verdicts:
        if folded == 0:
            res.check(
                f"parity on smooth p={p} (±10%)",
                abs(t_recmul / t_bruck - 1.0) <= 0.10,
                speedup_str(t_recmul / t_bruck),
            )
        else:
            res.check(
                f"bruck wins on folded p={p}",
                t_bruck < t_recmul,
                speedup_str(t_recmul / t_bruck),
            )
    return res


def ablation_pipeline_segments(
    nodes: int = 32,
    sizes: Sequence[int] = (65536, 1 << 20, 4 << 20),
    segment_grid: Sequence[int] = (1, 4, 16, 64, 256),
) -> ExperimentResult:
    """Extension study: the chain broadcast's segment count behaves like
    the paper's radices — a size-dependent optimum with a closed form.

    Checks that the segment-vs-latency curve is U-shaped, that the optimum
    grows with message size, and that the analytical optimum ``S* =
    √(nβ(p-2)/α)`` lands within 15% of the swept best."""
    from ..core.pipeline import chain_bcast, optimal_segments

    machine = frontier(nodes, 1)
    p = machine.nranks
    rows = []
    sweeps: Dict[int, Dict[int, float]] = {}
    for nbytes in sizes:
        times = {
            s: simulate(chain_bcast(p, s), machine, nbytes).time_us
            for s in segment_grid
        }
        s_star = optimal_segments(
            nbytes, p, machine.alpha_inter, machine.beta_inter
        )
        t_star = simulate(chain_bcast(p, s_star), machine, nbytes).time_us
        sweeps[nbytes] = times
        rows.append(
            [format_size(nbytes)]
            + [f"{times[s]:.0f}" for s in segment_grid]
            + [f"S={min(times, key=times.get)}", f"S*={s_star}",
               f"{t_star:.0f}"]
        )
    res = ExperimentResult(
        exp_id="ablation-pipeline",
        title="Chain bcast segment-count sweep (the other tunable knob)",
        paper_claim="(extension) pipelining exposes a size-dependent "
                    "optimum exactly like the paper's radices",
        text=format_table(
            ["size"] + [f"S={s} µs" for s in segment_grid]
            + ["best", "closed form", "S* µs"],
            rows,
        ),
        data={"sweeps": sweeps},
    )
    best_per_size = [min(sweeps[n], key=sweeps[n].get) for n in sizes]
    res.check(
        "optimal segment count grows with message size",
        all(a <= b for a, b in zip(best_per_size, best_per_size[1:])),
        f"best S per size: {best_per_size}",
    )
    for nbytes in sizes:
        s_star = optimal_segments(
            nbytes, p, machine.alpha_inter, machine.beta_inter
        )
        t_star = simulate(chain_bcast(p, s_star), machine, nbytes).time_us
        best = min(sweeps[nbytes].values())
        res.check(
            f"closed-form S* within 15% of swept best at {format_size(nbytes)}",
            t_star <= best * 1.15,
            f"S*={s_star}: {t_star:.0f}µs vs best {best:.0f}µs",
        )
    return res


def ablation_hierarchical(
    nodes: int = 8,
    ppn: int = 8,
    sizes: Sequence[int] = (1024, 65536, 1 << 20),
) -> ExperimentResult:
    """Extension study: the hierarchical (Hasanov-style [17]) allreduce
    against the paper's flat generalized algorithms on the 8-ppn machine.

    Expected shape: hierarchical wins the latency/medium regime (full
    vectors cross the NIC only between leaders), the block-partitioned
    k-ring wins the bandwidth regime, and both beat flat recursive
    doubling — the three-way trade §II-B3 implies."""
    from ..core.hierarchical import hierarchical_allreduce

    machine = frontier(nodes, ppn)
    p = machine.nranks
    hier = hierarchical_allreduce(
        p, ppn, leader_algorithm="recursive_multiplying", leader_k=4
    )
    flat = build_schedule("allreduce", "recursive_doubling", p)
    recmul = build_schedule("allreduce", "recursive_multiplying", p, k=4)
    kring = build_schedule("allreduce", "kring", p, k=ppn)
    rows = []
    results: Dict[int, Dict[str, float]] = {}
    for nbytes in sizes:
        times = {
            "hierarchical": simulate(hier, machine, nbytes).time_us,
            "flat recdbl": simulate(flat, machine, nbytes).time_us,
            "flat recmul k=4": simulate(recmul, machine, nbytes).time_us,
            f"kring k={ppn}": simulate(kring, machine, nbytes).time_us,
        }
        results[nbytes] = times
        winner = min(times, key=times.get)
        rows.append(
            [format_size(nbytes)]
            + [f"{times[name]:.1f}" for name in times]
            + [winner]
        )
    res = ExperimentResult(
        exp_id="ablation-hierarchical",
        title=f"Hierarchical vs flat allreduce ({nodes}x{ppn} Frontier)",
        paper_claim="(extension) two-level composition is the latency-"
                    "regime answer to heterogeneous links; k-ring is the "
                    "bandwidth-regime answer",
        text=format_table(
            ["size", "hierarchical µs", "flat recdbl µs",
             "flat recmul k=4 µs", f"kring k={ppn} µs", "winner"],
            rows,
        ),
        data={"results": results},
    )
    mid = sorted(sizes)[len(sizes) // 2]
    big = max(sizes)
    res.check(
        "hierarchical beats every flat whole-vector algorithm at medium "
        "sizes",
        results[mid]["hierarchical"]
        < min(results[mid]["flat recdbl"], results[mid]["flat recmul k=4"]),
        f"{results[mid]['hierarchical']:.1f}µs at {format_size(mid)}",
    )
    res.check(
        "k-ring takes over in the bandwidth regime",
        results[big][f"kring k={ppn}"] < results[big]["hierarchical"],
        f"{results[big][f'kring k={ppn}']:.1f}µs vs "
        f"{results[big]['hierarchical']:.1f}µs",
    )
    res.check(
        "hierarchical always beats flat recursive doubling",
        all(results[n]["hierarchical"] < results[n]["flat recdbl"]
            for n in sizes),
    )
    return res


def ablation_alltoall_crossover(
    nodes: int = 64,
    sizes: Sequence[int] = (4096, 1 << 20, 64 << 20, 256 << 20),
    ks: Sequence[int] = (2, 4, 8),
) -> ExperimentResult:
    """Extension study ([12] lineage): Bruck digit routing vs pairwise
    exchange for all-to-all.

    Expected shape: latency-bound sizes favor Bruck's ``\u2308log_k p\u2309``
    rounds; bandwidth-bound sizes favor pairwise's move-each-block-once
    optimality; larger Bruck radices shift the crossover by trading rounds
    against forwarding volume."""
    machine = frontier(nodes, 1)
    p = machine.nranks
    pairwise = build_schedule("alltoall", "pairwise", p)
    brucks = {k: build_schedule("alltoall", "bruck", p, k=k) for k in ks}
    rows = []
    times: Dict[int, Dict[str, float]] = {}
    for nbytes in sizes:
        entry = {"pairwise": simulate(pairwise, machine, nbytes).time_us}
        for k in ks:
            entry[f"bruck k={k}"] = simulate(
                brucks[k], machine, nbytes
            ).time_us
        times[nbytes] = entry
        rows.append(
            [format_size(nbytes)]
            + [f"{entry[name]:.1f}" for name in entry]
            + [min(entry, key=entry.get)]
        )
    res = ExperimentResult(
        exp_id="ablation-alltoall",
        title=f"All-to-all: Bruck digit routing vs pairwise exchange "
              f"({nodes}x1 Frontier)",
        paper_claim="(extension, [12]) aggregation wins small messages, "
                    "move-once wins large; the radix shifts the crossover",
        text=format_table(
            ["size", "pairwise \u00b5s"] + [f"bruck k={k} \u00b5s" for k in ks]
            + ["winner"],
            rows,
        ),
        data={"times": times},
    )
    small, big = min(sizes), max(sizes)
    res.check(
        "Bruck wins the small-message regime",
        min(times[small][f"bruck k={k}"] for k in ks)
        < times[small]["pairwise"],
        f"{min(times[small][f'bruck k={k}'] for k in ks):.1f}\u00b5s vs "
        f"{times[small]['pairwise']:.1f}\u00b5s",
    )
    res.check(
        "pairwise overtakes classic (k=2) Bruck at large sizes",
        times[big]["pairwise"] < times[big]["bruck k=2"],
        f"{times[big]['pairwise']:.1f}\u00b5s vs "
        f"{times[big]['bruck k=2']:.1f}\u00b5s",
    )
    # The multi-port finding: a high-radix Bruck forwards less (fewer
    # rounds) AND fans out across the NIC ports, extending its winning
    # range well past the classic algorithm's crossover — the paper's
    # §II-B2 thesis applied to all-to-all.
    res.check(
        "raising the radix extends Bruck's winning range",
        all(
            times[n][f"bruck k={max(ks)}"] <= times[n]["bruck k=2"]
            for n in sizes
        ),
        f"k={max(ks)} vs k=2 at {format_size(big)}: "
        f"{times[big][f'bruck k={max(ks)}']:.1f}\u00b5s vs "
        f"{times[big]['bruck k=2']:.1f}\u00b5s",
    )
    return res


ABLATIONS = {
    "ablation-ports": ablation_nic_ports,
    "ablation-injection": ablation_injection_overhead,
    "ablation-intranode": ablation_intranode_ratio,
    "ablation-placement": ablation_placement,
    "ablation-bruck": ablation_bruck_vs_recmul,
    "ablation-pipeline": ablation_pipeline_segments,
    "ablation-hierarchical": ablation_hierarchical,
    "ablation-alltoall": ablation_alltoall_crossover,
}
