"""Recovery sweep: time-to-recovery vs radix, for the CI chaos report.

The generalization radix ``k`` trades latency against fan-out — and
fan-out is exactly what a crash amputates.  This sweep quantifies that
trade under failure: every generalized (collective, algorithm) from
paper Table I is simulated across the radix grid with one seeded rank
crash injected mid-schedule, healed by :mod:`repro.recovery`, and each
point records how long detection + shrink + rebuild + rerun took
(``time_to_recovery_us``) next to the healthy-path cost it settles into
(``post_recovery_us``).

The determinism contract mirrors :mod:`repro.bench.sweep`: every field
in a :class:`RecoveryRecord` is a *simulated* quantity — no wall-clock
times, no cache-hit booleans — so the records are bit-identical at any
``jobs`` level and across reruns, and the JSON report written by
:func:`write_recovery_report` diffs clean in CI.  A failing point never
raises mid-sweep; it carries its own ``error`` field.

Run it via ``repro-recover --sweep -o recovery_report.json`` or
``make chaos-recover``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.registry import GENERALIZED_ALGORITHMS, info
from ..errors import ReproError
from ..faults.plan import Crash, FaultPlan
from ..parallel import run_chunks
from ..recovery import RecoveryPolicy, normalize_policy, simulate_with_recovery
from ..selection.tuner import radix_grid
from ..simnet.machine import MachineSpec

__all__ = [
    "RecoveryPoint",
    "RecoveryRecord",
    "recovery_curve",
    "run_recovery_sweep",
    "summarize_recovery",
    "unrecovered",
    "write_recovery_report",
]

#: Schema tag for the JSON report; bump on incompatible layout changes.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class RecoveryPoint:
    """One sweep configuration: an algorithm at one radix under one plan."""

    collective: str
    algorithm: str
    nbytes: int
    k: Optional[int] = None
    root: int = 0

    def case(self) -> str:
        return f"{self.collective}/{self.algorithm}"


@dataclass(frozen=True)
class RecoveryRecord:
    """Outcome of one recovery point — simulated quantities only.

    Deliberately free of wall-clock times and cache accounting so that
    records are bit-identical between serial and ``jobs=N`` sweeps and
    across reruns (the property pinned by
    ``tests/properties/test_recovery_properties.py``).
    """

    point: RecoveryPoint
    recovered: bool
    rounds: int
    survivors: int
    time_us: float
    time_to_recovery_us: float
    post_recovery_us: float
    #: Schedule fingerprints, one per round — healthy, then rebuilt.
    fingerprints: Tuple[str, ...] = ()
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "collective": self.point.collective,
            "algorithm": self.point.algorithm,
            "nbytes": self.point.nbytes,
            "k": self.point.k,
            "root": self.point.root,
            "recovered": self.recovered,
            "rounds": self.rounds,
            "survivors": self.survivors,
            "time_us": self.time_us,
            "time_to_recovery_us": self.time_to_recovery_us,
            "post_recovery_us": self.post_recovery_us,
            "fingerprints": list(self.fingerprints),
            "error": self.error,
        }


def _recovery_point(
    machine: MachineSpec,
    policy: RecoveryPolicy,
    plan: FaultPlan,
    point: RecoveryPoint,
) -> RecoveryRecord:
    """Simulate one point with healing; errors fold into the record."""
    try:
        res = simulate_with_recovery(
            point.collective,
            point.algorithm,
            machine,
            point.nbytes,
            recovery=policy,
            k=point.k,
            root=point.root,
            faults=plan,
        )
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return RecoveryRecord(
            point=point,
            recovered=False,
            rounds=0,
            survivors=0,
            time_us=0.0,
            time_to_recovery_us=0.0,
            post_recovery_us=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )
    return RecoveryRecord(
        point=point,
        recovered=res.recovered,
        rounds=res.rounds,
        survivors=len(res.survivors),
        time_us=res.time_us,
        time_to_recovery_us=res.time_to_recovery_us,
        post_recovery_us=res.post_recovery_us,
        fingerprints=res.report.fingerprints(),
    )


# A chunk ships everything one worker call needs in a single pickle;
# grouping one (collective, algorithm) per chunk keeps each worker's
# schedule cache warm across its radix grid.
_ChunkTask = Tuple[MachineSpec, RecoveryPolicy, FaultPlan,
                   Tuple[RecoveryPoint, ...]]


def _run_chunk(task: _ChunkTask) -> List[RecoveryRecord]:
    """Heal one chunk of points (runs inside a worker process)."""
    machine, policy, plan, points = task
    return [_recovery_point(machine, policy, plan, pt) for pt in points]


def run_recovery_sweep(
    machine: MachineSpec,
    *,
    nbytes: int = 65536,
    crash_rank: int = 1,
    crash_step: int = 1,
    seed: int = 0,
    recovery="shrink",
    algorithms: Sequence[Tuple[str, str]] = GENERALIZED_ALGORITHMS,
    ks: Optional[Sequence[int]] = None,
    jobs: int = 0,
) -> List[RecoveryRecord]:
    """Chart time-to-recovery vs radix across the algorithm suite.

    One seeded crash (``crash_rank`` dies after ``crash_step`` sends) is
    injected into every (collective, algorithm, k) configuration on
    ``machine`` and healed under ``recovery``; with ``ks=None`` the grid
    is :func:`repro.selection.tuner.radix_grid` over the machine's rank
    count.  Results come back in point order, bit-identical at any
    ``jobs`` level — every recorded quantity is simulated.
    """
    policy = normalize_policy(recovery)
    if policy is None:
        raise ReproError("run_recovery_sweep needs a recovery policy")
    p = machine.nranks
    if not 0 <= crash_rank < p:
        raise ReproError(
            f"crash_rank={crash_rank} out of range for p={p}"
        )
    plan = FaultPlan(
        seed=seed, crashes=(Crash(rank=crash_rank, step=crash_step),)
    )
    chunks: List[_ChunkTask] = []
    for coll, alg in algorithms:
        entry = info(coll, alg)
        grid = list(ks) if ks is not None else radix_grid(
            p, min_k=entry.min_k
        )
        points = tuple(
            RecoveryPoint(coll, alg, nbytes, k=k) for k in grid
        )
        chunks.append((machine, policy, plan, points))
    return run_chunks(_run_chunk, chunks, jobs=jobs)


def recovery_curve(
    records: Sequence[RecoveryRecord],
) -> Dict[str, List[Tuple[Optional[int], float]]]:
    """Per-algorithm ``(k, time_to_recovery_us)`` series for charting."""
    curve: Dict[str, List[Tuple[Optional[int], float]]] = {}
    for rec in records:
        if rec.error is None and rec.recovered:
            curve.setdefault(rec.point.case(), []).append(
                (rec.point.k, rec.time_to_recovery_us)
            )
    return curve


def unrecovered(records: Sequence[RecoveryRecord]) -> List[RecoveryRecord]:
    """Records where healing failed or errored (empty when all healed)."""
    return [r for r in records if r.error is not None or not r.recovered]


def write_recovery_report(
    records: Sequence[RecoveryRecord],
    path,
    *,
    machine: MachineSpec,
    policy,
    seed: int = 0,
) -> None:
    """Write the sweep as a JSON report (the CI chaos-recover artifact)."""
    policy = normalize_policy(policy)
    doc = {
        "schema": REPORT_SCHEMA,
        "machine": machine.name,
        "nranks": machine.nranks,
        "policy": policy.describe() if policy else None,
        "seed": seed,
        "points": len(records),
        "unrecovered": len(unrecovered(records)),
        "records": [r.to_dict() for r in records],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def summarize_recovery(records: Sequence[RecoveryRecord]) -> str:
    """Human-readable roll-up: per-algorithm recovery cost bounds."""
    lines = []
    by_case: Dict[str, List[RecoveryRecord]] = {}
    for rec in records:
        by_case.setdefault(rec.point.case(), []).append(rec)
    for case in sorted(by_case):
        group = by_case[case]
        healed = [r for r in group if r.recovered and r.error is None]
        bad = [r for r in group if r.error is not None or not r.recovered]
        if healed:
            ttrs = [r.time_to_recovery_us for r in healed]
            best = min(healed, key=lambda r: r.time_to_recovery_us)
            lines.append(
                f"{case:<36} {len(healed):3d}/{len(group):<3d} healed  "
                f"ttr {min(ttrs):8.1f}..{max(ttrs):8.1f} us  "
                f"best k={best.point.k}"
            )
        if bad:
            lines.append(
                f"{case:<36} {len(bad)} UNRECOVERED point(s): "
                + "; ".join(
                    f"k={r.point.k}"
                    + (f" ({r.error})" if r.error else "")
                    for r in bad[:4]
                )
            )
    n_bad = len(unrecovered(records))
    lines.append(
        f"total: {len(records)} points, "
        f"{len(records) - n_bad} healed, {n_bad} unrecovered"
    )
    return "\n".join(lines)
