"""OSU-microbenchmark-style latency measurement on the simulator.

The paper measures with the OSU suite (§VI-B): per message size, warm up,
run many timed iterations, report the average.  On a deterministic
simulator one iteration suffices; with the run-to-run variance model
enabled, this module re-simulates with per-trial noise seeds and reports
avg/min/max exactly as OSU would — which is also how the §VI-H variance
experiments are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.registry import build_schedule, info
from ..core.schedule import Schedule
from ..errors import ReproError
from ..simnet.machine import MachineSpec
from ..simnet.noise import NoiseModel
from ..simnet.simulate import simulate

__all__ = ["LatencyPoint", "osu_latency", "osu_latency_schedule", "default_sizes"]


def default_sizes(lo: int = 8, hi: int = 4 * 1024 * 1024) -> List[int]:
    """Power-of-two size grid, OSU's default style.

    >>> default_sizes(8, 64)
    [8, 16, 32, 64]
    """
    if lo < 1 or hi < lo:
        raise ReproError(f"bad size range [{lo}, {hi}]")
    sizes = []
    n = lo
    while n <= hi:
        sizes.append(n)
        n *= 2
    return sizes


@dataclass(frozen=True)
class LatencyPoint:
    """Latency statistics for one message size (microseconds)."""

    nbytes: int
    avg_us: float
    min_us: float
    max_us: float
    trials: int


def osu_latency_schedule(
    schedule: Schedule,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    trials: int = 1,
    noise_sigma: float = 0.0,
    seed: int = 0,
) -> List[LatencyPoint]:
    """Measure a pre-built schedule across a size sweep."""
    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials}")
    points = []
    for nbytes in sizes:
        times = []
        for t in range(trials):
            noise = (
                NoiseModel(sigma=noise_sigma, seed=seed + t)
                if noise_sigma > 0
                else None
            )
            times.append(simulate(schedule, machine, nbytes, noise=noise).time_us)
        points.append(
            LatencyPoint(
                nbytes=nbytes,
                avg_us=sum(times) / len(times),
                min_us=min(times),
                max_us=max(times),
                trials=trials,
            )
        )
    return points


def osu_latency(
    collective: str,
    algorithm: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    k: Optional[int] = None,
    root: int = 0,
    trials: int = 1,
    noise_sigma: float = 0.0,
    seed: int = 0,
) -> List[LatencyPoint]:
    """Build + measure in one call (the common case).

    >>> from repro.simnet import reference
    >>> pts = osu_latency("bcast", "binomial", reference(8), [8, 64])
    >>> [p.nbytes for p in pts]
    [8, 64]
    """
    entry = info(collective, algorithm)
    schedule = build_schedule(
        collective,
        algorithm,
        machine.nranks,
        k=k,
        root=root if entry.takes_root else 0,
    )
    return osu_latency_schedule(
        schedule,
        machine,
        sizes,
        trials=trials,
        noise_sigma=noise_sigma,
        seed=seed,
    )
