"""Experiment definitions: one function per paper table/figure.

Each ``fig*``/``table*`` function runs the corresponding measurement on
the simulated machines and returns an :class:`ExperimentResult` holding

* the raw data series (the rows/series the paper's figure plots),
* a rendered plain-text table, and
* a list of *shape checks*: the qualitative claims the paper makes about
  that figure (who wins, by roughly what factor, where crossovers fall),
  evaluated against the simulated data.

The benchmark suite (``benchmarks/``) executes these and asserts the shape
checks; EXPERIMENTS.md records the paper-vs-measured comparison they
produce.  Scales are reduced from the paper's node counts where a full
sweep would be needlessly slow in a Python simulator (each function's
docstring states the substitution); the 1024-node Fig. 10 runs at full
scale since tree algorithms stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.registry import (
    GENERALIZED_ALGORITHMS,
    TABLE1,
    algorithms_for,
    build_schedule,
    info,
)
from ..errors import ReproError
from ..models import (
    ModelParams,
    kring_inter_group_data,
    model_time,
    ring_inter_group_data,
)
from ..selection.defaults import mpich_policy, vendor_policy
from ..selection.tuner import tune
from ..simnet.machines import frontier, polaris, reference
from ..simnet.noise import NoiseModel
from ..simnet.simulate import simulate, traffic_summary
from .osu import default_sizes
from .report import format_size, format_table, geomean, speedup_str
from .speedup import speedup_curves
from .sweep import RadixSweep, radix_latency_sweep

__all__ = [
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "table1_capability",
    "fig7_slowdown",
    "fig8a_reduce_knomial",
    "fig8b_allreduce_recmul",
    "fig8c_bcast_kring",
    "fig9_speedup",
    "fig10a_scale_reduce",
    "fig10bc_scale_recmul",
    "fig11a_polaris_knomial",
    "fig11b_polaris_recmul",
    "fig11c_polaris_kring",
    "eq13_data_volume",
    "models_vs_sim",
    "variance_study",
    "selection_config",
    "fig_diagrams",
]


@dataclass
class ExperimentResult:
    """Output of one reproduced experiment."""

    exp_id: str
    title: str
    paper_claim: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    checks: List[Tuple[str, bool, str]] = field(default_factory=list)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, bool(ok), detail))

    @property
    def all_ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def summary(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==",
                 f"paper: {self.paper_claim}", "", self.text, ""]
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "DIVERGES"
            lines.append(f"[{mark}] {name}" + (f" — {detail}" if detail else ""))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

def table1_capability() -> ExperimentResult:
    """Table I: the kernel → generalized kernel → collectives matrix,
    checked against what the registry actually provides (all 10 builders
    present and generalized)."""
    rows = []
    for base, (gen, colls) in TABLE1.items():
        rows.append([base, gen, ", ".join(colls)])
    res = ExperimentResult(
        exp_id="table1",
        title="Generalized kernels and the collectives they implement",
        paper_claim="three kernels generalize into 10 collective implementations",
        text=format_table(
            ["base kernel", "generalized kernel", "collectives"], rows
        ),
        data={"table1": TABLE1},
    )
    registered = 0
    for coll, alg in GENERALIZED_ALGORITHMS:
        entry = info(coll, alg)
        if entry.generalized and entry.takes_k:
            registered += 1
    res.check(
        "all 10 generalized implementations registered",
        registered == 10,
        f"{registered}/10",
    )
    for base, (gen, colls) in TABLE1.items():
        for coll in colls:
            res.check(
                f"{coll}/{gen} builds",
                (coll, gen) in GENERALIZED_ALGORITHMS,
            )
    return res


# ----------------------------------------------------------------------
# Fig. 7 — generalization at the default radix does not slow down
# ----------------------------------------------------------------------

def fig7_slowdown(
    nodes: int = 32, sizes: Optional[Sequence[int]] = None
) -> ExperimentResult:
    """Fig. 7: message size vs slowdown of each generalized algorithm at
    its default radix relative to the classic fixed-radix implementation.

    Scale note: run at 32 nodes (the paper's smaller configuration); the
    result is structural — default-radix generalized schedules are
    *identical* to the classics — so scale cannot change it.
    """
    sizes = list(sizes) if sizes else default_sizes(8, 1 << 20)
    pairs = [
        ("bcast", "knomial", 2, "binomial", frontier(nodes, 1)),
        ("reduce", "knomial", 2, "binomial", frontier(nodes, 1)),
        ("allgather", "recursive_multiplying", 2, "recursive_doubling",
         frontier(nodes, 1)),
        ("allreduce", "recursive_multiplying", 2, "recursive_doubling",
         frontier(nodes, 1)),
        ("bcast", "kring", 1, "ring", frontier(nodes // 4, 8)),
        ("allreduce", "kring", 1, "ring", frontier(nodes // 4, 8)),
    ]
    rows = []
    worst = 0.0
    for coll, gen_alg, k, base_alg, machine in pairs:
        p = machine.nranks
        gen = build_schedule(coll, gen_alg, p, k=k)
        base = build_schedule(coll, base_alg, p)
        for n in sizes:
            t_gen = simulate(gen, machine, n).time_us
            t_base = simulate(base, machine, n).time_us
            slowdown = t_gen / t_base
            worst = max(worst, slowdown)
            rows.append(
                [f"{coll}/{gen_alg}@k={k}", machine.name, format_size(n),
                 t_base, t_gen, f"{slowdown:.3f}"]
            )
    res = ExperimentResult(
        exp_id="fig7",
        title="Slowdown of generalized algorithms at default radix",
        paper_claim="generalization does not result in slowdown",
        text=format_table(
            ["algorithm", "machine", "size", "classic µs", "generalized µs",
             "slowdown"],
            rows,
        ),
        data={"worst_slowdown": worst},
    )
    res.check(
        "no slowdown beyond noise (≤ 1.01x)", worst <= 1.01,
        f"worst {worst:.3f}x",
    )
    return res


# ----------------------------------------------------------------------
# Fig. 8 — parameter value vs latency on Frontier
# ----------------------------------------------------------------------

def fig8a_reduce_knomial(
    nodes: int = 128,
    sizes: Sequence[int] = (8, 512, 16384, 262144, 1 << 20),
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
) -> ExperimentResult:
    """Fig. 8(a): MPI_Reduce k-nomial, 128 nodes × 1 ppn Frontier."""
    machine = frontier(nodes, 1)
    sweep = radix_latency_sweep("reduce", "knomial", machine, sizes, ks=ks)
    res = _radix_result(
        "fig8a",
        "MPI_Reduce k-nomial radix sweep (Frontier, 128x1)",
        "large k wins small messages; optimal k decreases as size grows",
        sweep,
    )
    small, large = min(sizes), max(sizes)
    res.check(
        "small messages favor large radix",
        sweep.best_k(small) >= 8,
        f"best k at {format_size(small)} = {sweep.best_k(small)}",
    )
    res.check(
        "large messages favor small radix",
        sweep.best_k(large) <= 4,
        f"best k at {format_size(large)} = {sweep.best_k(large)}",
    )
    res.check(
        "optimal k non-increasing in size (within grid)",
        _mostly_monotone_down([sweep.best_k(n) for n in sizes]),
        f"best k per size: {[sweep.best_k(n) for n in sizes]}",
    )
    return res


def fig8b_allreduce_recmul(
    nodes: int = 128,
    sizes: Sequence[int] = (8, 1024, 65536, 1 << 20),
    ks: Sequence[int] = (2, 3, 4, 5, 8, 16, 32),
) -> ExperimentResult:
    """Fig. 8(b): MPI_Allreduce recursive multiplying, 128 nodes × 1 ppn."""
    machine = frontier(nodes, 1)
    sweep = radix_latency_sweep(
        "allreduce", "recursive_multiplying", machine, sizes, ks=ks
    )
    res = _radix_result(
        "fig8b",
        "MPI_Allreduce recursive multiplying radix sweep (Frontier, 128x1)",
        "k at or near 4 (the NIC port count) is best for all message sizes",
        sweep,
    )
    for n in sizes:
        best = sweep.best_k(n)
        if n >= 16384:
            res.check(
                f"best k near port count at {format_size(n)}",
                3 <= best <= 8,
                f"best k = {best} (ports = 4)",
            )
        else:
            # Documented divergence: at tiny sizes our simulator's optimum
            # sits at a small *multiple* of the port count rather than the
            # port count itself (the paper found k≈4 surprising there too —
            # its own model predicts larger k; see EXPERIMENTS.md).
            res.check(
                f"best k bounded by 4x ports at {format_size(n)}",
                best <= 16,
                f"best k = {best} (ports = 4)",
            )
    mid = [n for n in sizes if n >= 1024]
    if mid:
        k4 = geomean([sweep.latency(4, n) for n in mid])
        k2 = geomean([sweep.latency(2, n) for n in mid])
        res.check(
            "k=4 beats the default radix (k=2)",
            k4 < k2,
            f"geomean {k4:.1f}µs vs {k2:.1f}µs",
        )
    return res


def fig8c_bcast_kring(
    nodes: int = 16,
    sizes: Sequence[int] = (65536, 1 << 20, 4 << 20),
    ks: Sequence[int] = (1, 2, 4, 8, 16, 32, 128),
) -> ExperimentResult:
    """Fig. 8(c): MPI_Bcast k-ring, Frontier 8 ppn, large messages.

    Scale note: 16 nodes × 8 ppn (128 ranks) rather than the paper's 128
    nodes × 8 (1024 ranks) — the k-ring mechanism (intranode vs internode
    round speed) depends on the node boundary structure, not the node
    count, and the ring's O(p) messages per simulated round make the full
    scale pointlessly slow in Python.
    """
    machine = frontier(nodes, 8)
    sweep = radix_latency_sweep("bcast", "kring", machine, sizes, ks=ks)
    res = _radix_result(
        "fig8c",
        f"MPI_Bcast k-ring radix sweep (Frontier, {nodes}x8)",
        "k = 8 (processes per node) is best for large messages",
        sweep,
    )
    for n in sizes:
        best = sweep.best_k(n)
        res.check(
            f"best k = ppn at {format_size(n)}",
            best == 8,
            f"best k = {best}",
        )
    big = max(sizes)
    gain = sweep.latency(1, big) / sweep.latency(8, big)
    res.check(
        "k=8 significantly beats classic ring at large sizes",
        gain >= 1.5,
        f"{speedup_str(gain)} at {format_size(big)}",
    )
    return res


# ----------------------------------------------------------------------
# Fig. 9 — best generalized algorithm speedups
# ----------------------------------------------------------------------

_FIG9_EXPECTATIONS = {
    # collective: (max speedup vs baseline >=, max vs vendor >=, note)
    "reduce": (1.5, 2.0, "high small-message speedup; >4.5x vs vendor at large"),
    "bcast": (1.05, 1.05, "small speedups except large-message recmul (k=16)"),
    "allgather": (1.3, 1.3, "significant 1.4-2.0x for nearly all sizes"),
    "allreduce": (1.15, 1.15, "significant 1.2-1.8x, recmul k near 4"),
}

#: Fixed algorithms included in the Fig. 9 "best per size" search — the
#: paper selects "the optimal algorithm for each message size using our
#: complete results", i.e. the exhaustive benchmark of everything in
#: MPICH, not only the generalized algorithms.
_FIG9_FIXED: Dict[str, List[str]] = {
    "reduce": ["binomial", "reduce_scatter_gather"],
    "bcast": ["binomial", "recursive_doubling"],
    "allgather": ["recursive_doubling"],
    "allreduce": ["recursive_doubling", "reduce_scatter_allgather"],
}


def fig9_speedup(
    collective: str,
    nodes: int = 128,
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Fig. 9(a-d): speedup of the best algorithm per size over (i) the
    fixed-radix default policy and (ii) the vendor policy.

    K-ring is excluded from the candidate set at 1 ppn, matching the
    paper's finding that k-ring never won in that configuration (§VI-C3);
    ring is excluded for the reason documented on
    :func:`repro.selection.defaults.mpich_policy`.
    """
    if collective not in _FIG9_EXPECTATIONS:
        raise ReproError(f"fig9 covers bcast/reduce/allgather/allreduce, "
                         f"not {collective!r}")
    machine = frontier(nodes, 1)
    sizes = list(sizes) if sizes else default_sizes(8, 4 << 20)
    from ..selection.tuner import radix_grid  # local to avoid cycle at import

    cands: List[Tuple[str, Sequence[Optional[int]]]] = []
    for coll, alg in GENERALIZED_ALGORITHMS:
        if coll == collective and alg != "kring":
            cands.append(
                (alg, radix_grid(machine.nranks, min_k=info(coll, alg).min_k))
            )
    for alg in _FIG9_FIXED[collective]:
        cands.append((alg, [None]))
    curve = speedup_curves(collective, machine, sizes, candidates=cands)
    rows = [
        [
            format_size(pt.nbytes),
            pt.best_choice.describe(),
            pt.best_us,
            pt.baseline_us,
            pt.vendor_us,
            speedup_str(pt.speedup_vs_baseline),
            speedup_str(pt.speedup_vs_vendor),
        ]
        for pt in curve.points
    ]
    res = ExperimentResult(
        exp_id=f"fig9-{collective}",
        title=f"MPI_{collective.capitalize()} best-generalized speedup "
              f"(Frontier, {nodes}x1)",
        paper_claim=_FIG9_EXPECTATIONS[collective][2],
        text=format_table(
            ["size", "best algorithm", "best µs", "default µs", "vendor µs",
             "vs default", "vs vendor"],
            rows,
        ),
        data={"curve": curve},
    )
    need_base, need_vendor, _ = _FIG9_EXPECTATIONS[collective]
    res.check(
        f"peak speedup vs default ≥ {need_base}x",
        curve.max_speedup_vs_baseline() >= need_base,
        speedup_str(curve.max_speedup_vs_baseline()),
    )
    res.check(
        f"peak speedup vs vendor ≥ {need_vendor}x",
        curve.max_speedup_vs_vendor() >= need_vendor,
        speedup_str(curve.max_speedup_vs_vendor()),
    )
    res.check(
        "generalized never slower than default beyond noise",
        all(pt.speedup_vs_baseline >= 0.99 for pt in curve.points),
        f"min {min(pt.speedup_vs_baseline for pt in curve.points):.3f}x",
    )
    if collective == "reduce":
        large = [pt for pt in curve.points if pt.nbytes >= (1 << 20)]
        if large:
            peak = max(pt.speedup_vs_vendor for pt in large)
            res.check(
                "large-message reduce soars vs vendor (≥ 3x)",
                peak >= 3.0,
                speedup_str(peak),
            )
    return res


# ----------------------------------------------------------------------
# Fig. 10 — 1024-node scale
# ----------------------------------------------------------------------

def fig10a_scale_reduce(
    nodes: int = 1024,
    sizes: Sequence[int] = (8, 128, 2048, 32768, 524288),
    ks: Sequence[int] = (2, 8, 32, 128, 1024),
) -> ExperimentResult:
    """Fig. 10(a): MPI_Reduce k-nomial at 1024 nodes — large radices keep
    winning small messages, but k = p is *worse* than k = 128 (the radix
    has an upper bound at scale)."""
    machine = frontier(nodes, 1)
    sweep = radix_latency_sweep("reduce", "knomial", machine, sizes, ks=ks)
    res = _radix_result(
        "fig10a",
        "MPI_Reduce k-nomial at 1024 nodes (Frontier)",
        "larger k wins small sizes, but k=1024 always worse than k=128",
        sweep,
    )
    small = min(sizes)
    res.check(
        "large radix wins small messages",
        sweep.best_k(small) >= 32,
        f"best k = {sweep.best_k(small)}",
    )
    kp_worse = all(
        sweep.latency(1024, n) > sweep.latency(128, n) for n in sizes
    )
    res.check("k=p (1024) always worse than k=128", kp_worse)
    res.check(
        "generalization still beats k=2 at scale (small sizes)",
        sweep.latency(2, small) / sweep.best_latency(small) >= 1.5,
        speedup_str(sweep.latency(2, small) / sweep.best_latency(small)),
    )
    return res


def fig10bc_scale_recmul(
    collective: str = "allreduce",
    nodes: int = 1024,
    sizes: Sequence[int] = (8, 512, 8192, 65536, 524288, 2 << 20),
    ks: Sequence[int] = (2, 4, 8),
) -> ExperimentResult:
    """Fig. 10(b)/(c): recursive multiplying MPI_Allgather / MPI_Allreduce
    at 1024 nodes — the k ∈ {4, 8} speedups from 128 nodes replicate until
    the largest sizes."""
    if collective not in ("allgather", "allreduce"):
        raise ReproError("fig10bc covers allgather and allreduce")
    machine = frontier(nodes, 1)
    sweep = radix_latency_sweep(
        collective, "recursive_multiplying", machine, sizes, ks=ks
    )
    vendor_us = {
        n: _vendor_latency(collective, machine, n) for n in sizes
    }
    rows = []
    for n in sizes:
        row = [format_size(n)] + [sweep.latency(k, n) for k in ks]
        row.append(vendor_us[n])
        rows.append(row)
    res = ExperimentResult(
        exp_id=f"fig10-{collective}",
        title=f"MPI_{collective.capitalize()} recursive multiplying at "
              f"{nodes} nodes",
        paper_claim="consistent speedup from k=4 and k=8 until large sizes",
        text=format_table(
            ["size"] + [f"k={k} µs" for k in ks] + ["vendor µs"], rows
        ),
        data={"sweep": sweep, "vendor_us": vendor_us},
    )
    small_mid = [n for n in sizes if n <= 65536]
    wins = sum(
        1
        for n in small_mid
        if min(sweep.latency(4, n), sweep.latency(8, n)) < sweep.latency(2, n)
    )
    res.check(
        "k∈{4,8} beats k=2 through small/medium sizes",
        wins == len(small_mid),
        f"{wins}/{len(small_mid)} sizes",
    )
    wins_vendor = sum(
        1
        for n in small_mid
        if min(sweep.latency(4, n), sweep.latency(8, n)) < vendor_us[n]
    )
    res.check(
        "k∈{4,8} beats the vendor through small/medium sizes",
        wins_vendor >= len(small_mid) - 1,
        f"{wins_vendor}/{len(small_mid)} sizes",
    )
    return res


# ----------------------------------------------------------------------
# Fig. 11 — Polaris
# ----------------------------------------------------------------------

def fig11a_polaris_knomial(
    nodes: int = 128,
    sizes: Sequence[int] = (8, 512, 16384, 262144, 1 << 20),
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
) -> ExperimentResult:
    """Fig. 11(a): the Frontier k-nomial trends replicate on Polaris."""
    machine = polaris(nodes, 1)
    sweep = radix_latency_sweep("reduce", "knomial", machine, sizes, ks=ks)
    res = _radix_result(
        "fig11a",
        "MPI_Reduce k-nomial radix sweep (Polaris, 128x1)",
        "optimal k near p for very small messages, decreasing with size",
        sweep,
    )
    res.check(
        "small messages favor large radix",
        sweep.best_k(min(sizes)) >= 8,
        f"best k = {sweep.best_k(min(sizes))}",
    )
    res.check(
        "large messages favor small radix",
        sweep.best_k(max(sizes)) <= 4,
        f"best k = {sweep.best_k(max(sizes))}",
    )
    return res


def fig11b_polaris_recmul(
    nodes: int = 128,
    sizes: Sequence[int] = (8, 1024, 65536, 1 << 20),
    ks: Sequence[int] = (2, 3, 4, 5, 8, 16),
) -> ExperimentResult:
    """Fig. 11(b): recursive multiplying on Polaris prefers k = 4 or 8 —
    the smallest multiples of its two NIC ports."""
    machine = polaris(nodes, 1)
    sweep = radix_latency_sweep(
        "allreduce", "recursive_multiplying", machine, sizes, ks=ks
    )
    res = _radix_result(
        "fig11b",
        "MPI_Allreduce recursive multiplying radix sweep (Polaris, 128x1)",
        "optimal k is 4 or 8 — small multiples of the 2 ports per node",
        sweep,
    )
    for n in sizes:
        if n >= 16384:
            best = sweep.best_k(n)
            res.check(
                f"best k ∈ small multiples of ports at {format_size(n)}",
                best in (2, 3, 4, 5, 8),
                f"best k = {best}",
            )
    return res


def fig11c_polaris_kring(
    nodes: int = 32,
    sizes: Sequence[int] = (65536, 1 << 20, 4 << 20),
    ks: Sequence[int] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """Fig. 11(c): on Polaris the k-ring radix has minimal effect — its
    fully connected NVLink node offers no latency advantage for MPI
    traffic, so intra-group rounds are not meaningfully faster.

    The check contrasts the radix sensitivity ("flatness": max/min latency
    over k) against Frontier's at the same geometry: Polaris must be much
    flatter.
    """
    p_machine = polaris(nodes, 4)
    f_machine = frontier(nodes // 2, 8)  # same rank count
    sizes = list(sizes)
    p_sweep = radix_latency_sweep("bcast", "kring", p_machine, sizes, ks=ks)
    f_sweep = radix_latency_sweep("bcast", "kring", f_machine, sizes,
                                  ks=list(ks) + [8] if 8 not in ks else ks)
    rows = []
    for n in sizes:
        rows.append(
            [format_size(n)]
            + [p_sweep.latency(k, n) for k in ks]
            + [f"{p_sweep.flatness(n):.2f}", f"{f_sweep.flatness(n):.2f}"]
        )
    res = ExperimentResult(
        exp_id="fig11c",
        title=f"MPI_Bcast k-ring on Polaris ({nodes}x4) vs Frontier",
        paper_claim="the k-ring parameter value shows minimal effect on Polaris",
        text=format_table(
            ["size"] + [f"k={k} µs" for k in ks]
            + ["polaris max/min", "frontier max/min"],
            rows,
        ),
        data={"polaris": p_sweep, "frontier": f_sweep},
    )
    for n in sizes:
        res.check(
            f"Polaris flatter than Frontier at {format_size(n)}",
            p_sweep.flatness(n) < f_sweep.flatness(n),
            f"{p_sweep.flatness(n):.2f} vs {f_sweep.flatness(n):.2f}",
        )
    big = max(sizes)
    res.check(
        "k-ring gain over classic ring is modest on Polaris (< 1.4x)",
        p_sweep.latency(1, big) / p_sweep.best_latency(big) < 1.4,
        speedup_str(p_sweep.latency(1, big) / p_sweep.best_latency(big)),
    )
    return res


# ----------------------------------------------------------------------
# Supporting studies
# ----------------------------------------------------------------------

def eq13_data_volume(p: int = 128, nbytes: int = 1 << 20) -> ExperimentResult:
    """Eqs. (13)/(14): k-ring's inter-group traffic ``2n(p-k)/p`` per group
    versus the classic ring's ``2n(p-1)/p`` — verified by counting, per
    k-ring group, the bytes its schedule actually sends across group
    boundaries."""
    from ..core.schedule import SendOp  # local import, core only

    rows = []
    checks = []
    # Eq. (13) is derived for uniform groups, so only divisor radices are
    # in scope; uneven remainder groups (k ∤ p) legitimately shift the
    # boundary traffic of individual groups.
    ks = [k for k in (1, 2, 4, 8, 16) if p % k == 0]
    for k in ks:
        sched = build_schedule("allgather", "kring", p, k=k)
        blocks = sched.block_map(nbytes)
        # Bytes group 0 sends + receives across its boundary (all groups
        # are symmetric when k | p).
        crossing = 0
        for prog in sched.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, SendOp):
                    src_g, dst_g = prog.rank // k, op.peer // k
                    if src_g != dst_g and (src_g == 0 or dst_g == 0):
                        crossing += blocks.bytes_of(op.blocks)
        predicted = kring_inter_group_data(nbytes, p, k)
        rel = crossing / predicted if predicted else float("nan")
        rows.append([f"k={k}", crossing, int(predicted), f"{rel:.3f}"])
        checks.append((k, rel))
    ring_pred = ring_inter_group_data(nbytes, p)
    res = ExperimentResult(
        exp_id="eq13",
        title="k-ring inter-group data volume vs eq. (13)",
        paper_claim="k-ring reduces inter-group traffic to 2n(p-k)/p per group",
        text=format_table(
            ["radix", "group-0 boundary bytes (schedule)",
             "eq. (13) prediction", "measured/model"],
            rows,
        ),
        data={"ring_prediction": ring_pred},
    )
    for k, rel in checks:
        res.check(
            f"traffic matches eq. (13) at k={k} (±2%)",
            abs(rel - 1.0) <= 0.02,
            f"ratio {rel:.3f}",
        )
    res.check(
        "eq. (14) is the k=1 case of eq. (13)",
        abs(kring_inter_group_data(nbytes, p, 1) - ring_pred) < 1e-9,
    )
    return res


_MODEL_CASES = [
    ("bcast", "binomial", None),
    ("bcast", "knomial", 4),
    ("bcast", "knomial", 8),
    ("reduce", "binomial", None),
    ("reduce", "knomial", 4),
    ("allgather", "recursive_doubling", None),
    ("allreduce", "recursive_doubling", None),
    ("allreduce", "recursive_multiplying", 4),
    ("allgather", "ring", None),
]


def models_vs_sim(
    p: int = 64, sizes: Sequence[int] = (8, 1024, 65536, 1 << 20)
) -> ExperimentResult:
    """Analytical models (eqs. (1)–(9)) against the reference machine.

    On the reference machine (single port, zero software overheads) the
    simulator realizes the models' assumptions, so agreement should be
    tight for the tree/butterfly algorithms where the paper says the
    models are accurate, and looser where the paper itself notes the
    models idealize (recursive multiplying's overlap, ring allreduce's
    combined-round accounting).
    """
    machine = reference(p)
    params = ModelParams(
        alpha=machine.alpha_inter,
        beta=machine.beta_inter,
        gamma=machine.gamma,
    )
    rows = []
    tight_ratios = []
    for coll, alg, k in _MODEL_CASES:
        sched = build_schedule(coll, alg, p, k=k)
        for n in sizes:
            m_us = model_time(coll, alg, n, p, params, k=k) * 1e6
            s_us = simulate(sched, machine, n).time_us
            ratio = s_us / m_us if m_us else float("nan")
            rows.append(
                [f"{coll}/{alg}" + (f"(k={k})" if k else ""),
                 format_size(n), m_us, s_us, f"{ratio:.2f}"]
            )
            if alg in ("binomial", "recursive_doubling") or (
                alg == "ring" and coll == "allgather"
            ):
                tight_ratios.append(ratio)
    res = ExperimentResult(
        exp_id="models",
        title=f"Analytical model vs simulator (reference machine, p={p})",
        paper_claim="models are fairly accurate for k-nomial; hardware "
                    "effects dominate elsewhere",
        text=format_table(
            ["algorithm", "size", "model µs", "sim µs", "sim/model"], rows
        ),
    )
    res.check(
        "classic-kernel models within 10% on the reference machine",
        all(0.9 <= r <= 1.1 for r in tight_ratios),
        f"ratios {[f'{r:.2f}' for r in tight_ratios]}",
    )
    return res


def variance_study(
    nodes: int = 64,
    nbytes: int = 16384,
    sigma: float = 0.5,
    seeds: Sequence[int] = tuple(range(10)),
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> ExperimentResult:
    """§VI-H: run-to-run variance can change the optimal parameter value.

    Re-runs the Fig. 8(a)-style sweep under the lognormal noise model with
    different seeds and reports how often the winning radix changes —
    reproducing why the paper frames its conclusions as heuristics.
    """
    machine = frontier(nodes, 1)
    winners = []
    for seed in seeds:
        noise = NoiseModel(sigma=sigma, seed=seed)
        sweep = radix_latency_sweep(
            "reduce", "knomial", machine, [nbytes], ks=ks, noise=noise
        )
        winners.append(sweep.best_k(nbytes))
    clean = radix_latency_sweep("reduce", "knomial", machine, [nbytes], ks=ks)
    rows = [[f"seed {s}", k] for s, k in zip(seeds, winners)]
    rows.append(["noise-free", clean.best_k(nbytes)])
    res = ExperimentResult(
        exp_id="variance",
        title=f"Optimal radix under run-to-run variance (σ={sigma})",
        paper_claim="variance changes optimal algorithm/parameter selections",
        text=format_table(["trial", "best k"], rows),
        data={"winners": winners},
    )
    res.check(
        "optimal k varies across runs",
        len(set(winners)) > 1,
        f"winners {sorted(set(winners))}",
    )
    res.check(
        "noise-free winner is among noisy winners' neighborhood",
        any(abs(w - clean.best_k(nbytes)) <= clean.best_k(nbytes)
            for w in winners),
    )
    return res


def selection_config(
    nodes: int = 32,
    sizes: Sequence[int] = (8, 128, 2048, 32768, 524288, 4 << 20),
) -> ExperimentResult:
    """§VI-G: generate the tuned selection configuration and show it beats
    both fixed policies across the sweep."""
    machine = frontier(nodes, 1)
    table = tune(machine, sizes)
    mpich = mpich_policy()
    vendor = vendor_policy()
    from .speedup import policy_latency  # late import, same package

    rows = []
    wins = total = 0
    for coll in ("bcast", "reduce", "allgather", "allreduce"):
        for n in sizes:
            t_tuned = policy_latency(table, coll, machine, n)
            t_mpich = policy_latency(mpich, coll, machine, n)
            t_vendor = policy_latency(vendor, coll, machine, n)
            choice = table.select(coll, machine.nranks, n)
            rows.append(
                [coll, format_size(n), choice.describe(), t_tuned, t_mpich,
                 t_vendor]
            )
            total += 1
            if t_tuned <= min(t_mpich, t_vendor) * 1.001:
                wins += 1
    res = ExperimentResult(
        exp_id="selection",
        title=f"Tuned selection configuration ({machine.name})",
        paper_claim="one configuration file transparently delivers the "
                    "generalized-algorithm speedups",
        text=format_table(
            ["collective", "size", "tuned choice", "tuned µs", "mpich µs",
             "vendor µs"],
            rows,
        ),
        data={"table": table},
    )
    res.check(
        "tuned policy never loses to either fixed policy",
        wins == total,
        f"{wins}/{total} configurations",
    )
    res.check(
        "tuned table selects generalized algorithms somewhere",
        any(
            table.select(c, machine.nranks, n).k not in (None, 1, 2)
            for c in ("bcast", "reduce", "allgather", "allreduce")
            for n in sizes
        ),
    )
    return res


# ----------------------------------------------------------------------
# Helpers and the experiment registry
# ----------------------------------------------------------------------

def _radix_result(
    exp_id: str, title: str, claim: str, sweep: RadixSweep
) -> ExperimentResult:
    rows = []
    for n in sweep.sizes:
        rows.append(
            [format_size(n)]
            + [sweep.latency(k, n) for k in sweep.ks]
            + [f"k={sweep.best_k(n)}"]
        )
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        paper_claim=claim,
        text=format_table(
            ["size"] + [f"k={k} µs" for k in sweep.ks] + ["best"], rows
        ),
        data={"sweep": sweep},
    )


def _vendor_latency(collective: str, machine, nbytes: int) -> float:
    choice = vendor_policy().select(collective, machine.nranks, nbytes)
    entry = info(collective, choice.algorithm)
    sched = build_schedule(
        collective, choice.algorithm, machine.nranks, k=choice.k
    )
    return simulate(sched, machine, nbytes).time_us


def _mostly_monotone_down(seq: Sequence[int]) -> bool:
    """Non-increasing allowing one local wobble (simulated sweeps are
    discrete; the paper's own curves wobble too)."""
    violations = sum(1 for a, b in zip(seq, seq[1:]) if b > a)
    return violations <= 1


def fig_diagrams() -> ExperimentResult:
    """Figs. 1-6: the paper's algorithm-structure diagrams, regenerated
    from the actual schedules (so they can never drift from the code).

    Checks the structural facts each figure's caption states: Fig. 1's
    binomial tree vs Fig. 2's flatter trinomial tree on 6 processes,
    Fig. 3/4's round counts (2 rounds for 4 ranks at k=2, 2 rounds for 9
    ranks at k=3), and Fig. 6's intra/inter alternation for p=6, k=3.
    """
    from ..core.analysis import critical_path_rounds
    from ..core.render import (
        render_knomial_tree,
        render_kring_rounds,
        render_rounds,
    )

    sections = []
    sections.append("Fig. 1 — binomial gather tree, 6 processes:")
    sections.append(render_knomial_tree(6, 2))
    sections.append("")
    sections.append("Fig. 2 — trinomial tree, 6 processes:")
    sections.append(render_knomial_tree(6, 3))
    sections.append("")
    recdbl = build_schedule("allgather", "recursive_doubling", 4)
    sections.append("Fig. 3 — recursive doubling allgather, 4 processes:")
    sections.append(render_rounds(recdbl))
    sections.append("")
    recmul = build_schedule("allgather", "recursive_multiplying", 9, k=3)
    sections.append("Fig. 4 — recursive multiplying allgather, p=9, k=3:")
    sections.append(render_rounds(recmul))
    sections.append("")
    sections.append("Fig. 6 — k-ring allgather, p=6, k=3:")
    sections.append(render_kring_rounds(6, 3))

    res = ExperimentResult(
        exp_id="figdiagrams",
        title="Paper Figs. 1-6 regenerated from the schedules",
        paper_claim="the algorithm structures of \u00a7III-\u00a7V",
        text="\n".join(sections),
    )
    # Figs. 1-2's caption point: an 8th process deepens the binomial tree
    # to 3 levels, while a trinomial tree holds 9 processes at depth 2.
    res.check(
        "an 8th process deepens the binomial tree (Fig. 1)",
        critical_path_rounds(build_schedule("bcast", "binomial", 8)) == 3
        and critical_path_rounds(build_schedule("bcast", "binomial", 7)) == 2,
    )
    res.check(
        "a trinomial tree holds 9 processes at depth 2 (Fig. 2)",
        critical_path_rounds(build_schedule("bcast", "knomial", 9, k=3)) == 2,
    )
    res.check(
        "Fig. 3: recursive doubling on 4 ranks takes 2 rounds",
        critical_path_rounds(recdbl) == 2,
    )
    res.check(
        "Fig. 4: recursive multiplying on 9 ranks at k=3 takes 2 rounds",
        critical_path_rounds(recmul) == 2,
    )
    kring_text = render_kring_rounds(6, 3)
    round_kinds = [
        line.split("(")[1].split(")")[0]
        for line in kring_text.splitlines()[1:]
    ]
    res.check(
        "Fig. 6: rounds alternate intra,intra,inter,intra,intra",
        round_kinds == ["intra", "intra", "inter", "intra", "intra"],
        str(round_kinds),
    )
    return res


def _ablation_entries() -> Dict[str, Callable[[], ExperimentResult]]:
    from .ablations import ABLATIONS  # late import: ablations import us

    return dict(ABLATIONS)


ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_capability,
    "figdiagrams": fig_diagrams,
    "fig7": fig7_slowdown,
    "fig8a": fig8a_reduce_knomial,
    "fig8b": fig8b_allreduce_recmul,
    "fig8c": fig8c_bcast_kring,
    "fig9a": lambda: fig9_speedup("reduce"),
    "fig9b": lambda: fig9_speedup("bcast"),
    "fig9c": lambda: fig9_speedup("allgather"),
    "fig9d": lambda: fig9_speedup("allreduce"),
    "fig10a": fig10a_scale_reduce,
    "fig10b": lambda: fig10bc_scale_recmul("allgather"),
    "fig10c": lambda: fig10bc_scale_recmul("allreduce"),
    "fig11a": fig11a_polaris_knomial,
    "fig11b": fig11b_polaris_recmul,
    "fig11c": fig11c_polaris_kring,
    "eq13": eq13_data_volume,
    "models": models_vs_sim,
    "variance": variance_study,
    "selection": selection_config,
}
ALL_EXPERIMENTS.update(_ablation_entries())


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run a paper experiment by id (see :data:`ALL_EXPERIMENTS`)."""
    try:
        fn = ALL_EXPERIMENTS[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; known: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}"
        ) from None
    return fn()
