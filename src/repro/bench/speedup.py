"""Speedup curves — the measurement behind paper Fig. 9.

For each message size the paper reports the best generalized
algorithm/radix against two baselines:

* the *default-radix* baseline (the same kernel at its classic radix —
  isolating the gain from generalization alone, the dark green line), and
* the *vendor* baseline (what a production user gets from the system MPI —
  the red line).

:func:`speedup_curves` computes both, also recording which generalized
algorithm and radix won each size (the paper's color overlay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.registry import GENERALIZED_ALGORITHMS, info
from ..errors import ReproError
from ..selection.defaults import mpich_policy, vendor_policy
from ..selection.table import Choice, SelectionTable
from ..selection.tuner import radix_grid
from ..simnet.machine import MachineSpec
from ..simnet.noise import NoiseModel
from .sweep import SweepPoint, run_sweep, simulate_point, sweep_errors

__all__ = ["SpeedupPoint", "SpeedupCurve", "speedup_curves", "policy_latency"]


@dataclass(frozen=True)
class SpeedupPoint:
    """One message size's entry in a Fig. 9-style curve."""

    nbytes: int
    best_us: float
    best_choice: Choice
    baseline_us: float
    vendor_us: float

    @property
    def speedup_vs_baseline(self) -> float:
        return self.baseline_us / self.best_us

    @property
    def speedup_vs_vendor(self) -> float:
        return self.vendor_us / self.best_us


@dataclass
class SpeedupCurve:
    """A full Fig. 9-style curve for one collective."""

    collective: str
    machine: str
    points: List[SpeedupPoint]

    def max_speedup_vs_vendor(self) -> float:
        return max(p.speedup_vs_vendor for p in self.points)

    def max_speedup_vs_baseline(self) -> float:
        return max(p.speedup_vs_baseline for p in self.points)

    def winners(self) -> Dict[int, Choice]:
        return {p.nbytes: p.best_choice for p in self.points}


def policy_latency(
    table: SelectionTable,
    collective: str,
    machine: MachineSpec,
    nbytes: int,
    *,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
) -> float:
    """Latency (µs) of the algorithm a selection table picks.

    Served through the sweep engine's point simulator, so a policy that
    picks the same algorithm across many sizes reuses one cached
    schedule, and sizes already timed elsewhere in the sweep (e.g. by a
    Fig. 8 surface on the same machine) hit the simulation memo.
    """
    choice = table.select(collective, machine.nranks, nbytes)
    entry = info(collective, choice.algorithm)
    result = simulate_point(
        machine,
        SweepPoint(
            collective,
            choice.algorithm,
            nbytes,
            k=choice.k,
            root=root if entry.takes_root else 0,
        ),
        noise=noise,
    )
    if result.error is not None:
        raise ReproError(
            f"policy {choice.describe()} failed for {collective} at "
            f"n={nbytes}: {result.error}"
        )
    return result.time_us


def speedup_curves(
    collective: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    baseline: Optional[SelectionTable] = None,
    vendor: Optional[SelectionTable] = None,
    candidates: Optional[Sequence[Tuple[str, Sequence[Optional[int]]]]] = None,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
    jobs: int = 0,
) -> SpeedupCurve:
    """Compute a Fig. 9-style speedup curve.

    Parameters
    ----------
    baseline:
        Selection table for the default comparison; defaults to the MPICH
        policy (fixed-radix classics with standard cutoffs).
    vendor:
        Selection table for the vendor comparison; defaults to the Cray
        MPI stand-in.
    candidates:
        ``(algorithm, ks)`` pairs to search for "our best" (use
        ``[None]`` as the radix list for fixed algorithms).  Defaults to
        every generalized algorithm registered for the collective over the
        standard radix grid — the paper additionally includes its
        exhaustive benchmark of the fixed algorithms, which the Fig. 9
        experiment passes in explicitly.
    jobs:
        Fan the candidate search out over the parallel sweep engine.
        The winners per size — and therefore the whole curve — are
        independent of ``jobs`` (results are bit-identical to serial).
    """
    p = machine.nranks
    baseline = baseline or mpich_policy()
    vendor = vendor or vendor_policy()
    if candidates is None:
        candidates = []
        for coll, alg in GENERALIZED_ALGORITHMS:
            if coll != collective:
                continue
            entry = info(coll, alg)
            candidates.append((alg, radix_grid(p, min_k=entry.min_k)))
    if not candidates:
        raise ReproError(f"no candidate algorithms for {collective}")

    # One sweep point per (algorithm, k, size), candidate-major so every
    # chunk shares a schedule; the engine caches builds and memoizes
    # repeated simulations across curves on the same machine.
    choices: List[Choice] = []
    sweep_points: List[SweepPoint] = []
    for alg, ks in candidates:
        entry = info(collective, alg)
        for k in ks:
            choices.append(Choice(alg, k))
            for nbytes in sizes:
                sweep_points.append(
                    SweepPoint(
                        collective,
                        alg,
                        nbytes,
                        k=k,
                        root=root if entry.takes_root else 0,
                    )
                )
    results = run_sweep(sweep_points, machine, jobs=jobs, noise=noise)
    errors = sweep_errors(results)
    if errors:
        raise ReproError(
            f"{collective} speedup sweep: {len(errors)} point(s) failed: "
            + "; ".join(errors[:4])
        )
    times: Dict[Tuple[int, int], float] = {}
    for i, res in enumerate(results):
        times[(i // len(sizes), i % len(sizes))] = res.time_us

    points = []
    for j, nbytes in enumerate(sizes):
        best_us = float("inf")
        best_choice: Optional[Choice] = None
        # Same candidate order and strict < as the serial search, so tie
        # handling (first candidate wins) is unchanged.
        for i, choice in enumerate(choices):
            t = times[(i, j)]
            if t < best_us:
                best_us = t
                best_choice = choice
        assert best_choice is not None
        points.append(
            SpeedupPoint(
                nbytes=nbytes,
                best_us=best_us,
                best_choice=best_choice,
                baseline_us=policy_latency(
                    baseline, collective, machine, nbytes, root=root, noise=noise
                ),
                vendor_us=policy_latency(
                    vendor, collective, machine, nbytes, root=root, noise=noise
                ),
            )
        )
    return SpeedupCurve(collective=collective, machine=machine.name, points=points)
