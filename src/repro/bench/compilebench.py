"""Standalone interpreter-vs-compiled benchmark artifact.

``python -m repro.bench.compilebench`` (or ``make compile-bench``) runs
only the compiled-execution tier of the perf benchmark — the threaded
backend moving real data through op-by-op IR interpretation vs. the
flat program tables of :mod:`repro.compile` — and writes the result as
a small JSON artifact CI uploads next to the full perf report.

It exists because the full ``repro-bench-perf`` run times the entire
sweep workload (minutes); iterating on the compiler wants a seconds-long
loop that answers exactly one question: *is compiled execution still
>=2x the interpreter with bit-identical buffers?*  The exit status is
the answer (0 yes, 1 no), so the Makefile target doubles as a local
gate.

The artifact shape is the ``interpreter_vs_compiled`` section of the
perf report (schema 4) plus a tiny meta header::

    {"schema": 4, "meta": {...}, "interpreter_vs_compiled": {...}}
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ReproError
from ..parallel import _available_cpus
from ..simnet.machines import by_name
from .perf import SCHEMA_VERSION, _bench_interpreter_vs_compiled

__all__ = ["run_compile_bench", "main"]


def run_compile_bench(*, repeats: int = 30) -> dict:
    """Run the compiled-execution tier and return the artifact dict.

    ``repeats`` is the best-of count per (config, mode) timing; 30
    matches the full perf run.  Raises
    :class:`~repro.errors.ReproError` if compiled and interpreted
    buffers ever differ — that is a correctness bug, not a perf number.
    """
    machine = by_name("reference", 8, 1)
    return {
        "schema": SCHEMA_VERSION,
        "meta": {
            "python": platform.python_version(),
            "cpus_available": _available_cpus(),
            "repeats": repeats,
        },
        "interpreter_vs_compiled": _bench_interpreter_vs_compiled(
            machine, repeats
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: write the artifact, print the summary, gate on 2x."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compilebench",
        description="Benchmark compiled program tables against op-by-op "
        "interpretation on the threaded backend and write the "
        "interpreter-vs-compiled artifact.",
    )
    parser.add_argument("-o", "--output", default="compile_bench.json",
                        metavar="PATH",
                        help="write the JSON artifact here "
                        "(default: compile_bench.json)")
    parser.add_argument("--repeats", type=int, default=30,
                        help="best-of repeat count per timing "
                        "(default 30)")
    args = parser.parse_args(argv)

    try:
        doc = run_compile_bench(repeats=args.repeats)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    Path(args.output).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    tier = doc["interpreter_vs_compiled"]
    for case in tier["cases"]:
        name = f"{case['collective']}/{case['algorithm']}"
        print(
            f"{name:<22} "
            f"interp {case['interpreted_us']:9.1f} us | "
            f"compiled {case['compiled_us']:9.1f} us | "
            f"{case['speedup']:5.2f}x"
        )
    print(
        f"min speedup {tier['min_speedup']:.2f}x, results identical: "
        f"{tier['results_identical']} -> wrote {args.output}"
    )
    if tier["min_speedup"] < 2.0 or not tier["results_identical"]:
        print("error: compiled execution failed the 2x/bit-identical "
              "gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
