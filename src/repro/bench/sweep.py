"""Radix sweeps — the measurement behind paper Figs. 8, 10, and 11.

Two layers live here:

* The **parallel sweep engine**: a sweep is a list of
  :class:`SweepPoint` records — one (collective, algorithm, k, root,
  size) configuration each — that :func:`run_sweep` simulates either
  serially or fanned out over a ``ProcessPoolExecutor`` (``jobs``).
  The determinism contract (pinned by
  ``tests/properties/test_schedule_cache.py``) is:

  1. results come back in point order, bit-identical to the serial run,
     for any ``jobs`` value — simulation is pure and the pool preserves
     submission order;
  2. a failing point never takes down its siblings: each point carries
     its own ``error`` field instead of raising mid-sweep;
  3. schedule builds are served by the content-addressed
     :class:`~repro.core.cache.ScheduleCache` (process-global, one per
     worker), and every point records whether its build was a cache hit
     so hit rates aggregate correctly across worker processes.

  Points sharing one schedule are simulated inside one chunk (contiguous
  grouping), so a (k × sizes) grid builds each schedule once per worker
  instead of once per point.

* :class:`RadixSweep` holds the full (k × message-size) latency surface
  for one generalized algorithm on one machine, with accessors for the
  views the paper plots: latency-vs-k at a size (Fig. 8), latency-vs-size
  at chosen radices against baselines (Fig. 10), and the optimal radix
  per size.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import global_schedule_cache, schedule_key
from ..core.registry import info
from ..errors import ReproError
from ..faults.plan import FaultPlan
from ..obs import OBS, MetricsSnapshot, SimTimeline, SpanRecord, TraceContext
from ..parallel import resolve_jobs, run_chunks
from ..simnet.machine import MachineSpec
from ..simnet.noise import NoiseModel
from ..simnet.simulate import simulate
from ..selection.tuner import radix_grid

__all__ = [
    "SweepPoint",
    "SweepPointResult",
    "SweepStats",
    "sweep_stats",
    "simulate_point",
    "clear_sim_memo",
    "run_sweep",
    "sweep_errors",
    "RadixSweep",
    "radix_latency_sweep",
]


# ----------------------------------------------------------------------
# The parallel sweep engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One sweep configuration: a schedule choice at one message size."""

    collective: str
    algorithm: str
    nbytes: int
    k: Optional[int] = None
    root: int = 0

    def schedule_params(self) -> Tuple[str, str, Optional[int], int]:
        return (self.collective, self.algorithm, self.k, self.root)


@dataclass(frozen=True)
class SweepPointResult:
    """Outcome of one point: a simulated time or an isolated error.

    ``cache_hit`` records whether the schedule build was served by the
    worker's :class:`~repro.core.cache.ScheduleCache`; ``sim_hit``
    whether the whole simulation was served by the memo of previously
    simulated identical points.  Both travel with the result (rather
    than living in worker-process globals) so hit rates aggregate
    correctly across any number of pool workers.
    """

    point: SweepPoint
    time: Optional[float]  # seconds; None when the point errored
    cache_hit: bool
    error: Optional[str] = None
    sim_hit: bool = False

    @property
    def time_us(self) -> float:
        if self.time is None:
            raise ReproError(
                f"sweep point {self.point} failed: {self.error}"
            )
        return self.time * 1e6


@dataclass(frozen=True)
class SweepStats:
    """Aggregate cache/memo accounting for one sweep's results.

    The frozen, ``to_dict()``-bearing consolidation of what used to be
    loose ``cache_hit``/``sim_hit`` booleans — same protocol as
    :class:`~repro.core.cache.CacheStats` and
    :class:`~repro.simnet.trace.TimelineStats`, so sweep accounting
    drops uniformly into :mod:`repro.obs` snapshots and JSON reports.
    """

    points: int
    errors: int
    build_hits: int
    sim_hits: int

    @property
    def build_hit_rate(self) -> float:
        return self.build_hits / self.points if self.points else 0.0

    @property
    def sim_memo_rate(self) -> float:
        return self.sim_hits / self.points if self.points else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "points": self.points,
            "errors": self.errors,
            "build_hits": self.build_hits,
            "sim_hits": self.sim_hits,
            "build_hit_rate": self.build_hit_rate,
            "sim_memo_rate": self.sim_memo_rate,
        }


def sweep_stats(results: Sequence[SweepPointResult]) -> SweepStats:
    """Fold per-point hit booleans into one :class:`SweepStats`."""
    return SweepStats(
        points=len(results),
        errors=sum(1 for r in results if r.error is not None),
        build_hits=sum(1 for r in results if r.cache_hit),
        sim_hits=sum(1 for r in results if r.sim_hit),
    )


# Memo of completed simulations.  simulate() is a pure function of
# (schedule, machine, nbytes, noise, faults) and every component of the
# key hashes by value, so replaying a previously seen point returns the
# identical float by construction — the redundancy this removes is real
# and large: the Fig. 9 speedup search re-simulates the very same
# (algorithm, k, size) points the Fig. 8 surfaces already timed.
_SimKey = Tuple[Tuple[str, str, int, Optional[int], int], MachineSpec,
                int, Optional[NoiseModel], Optional[FaultPlan]]
_SIM_MEMO: Dict[_SimKey, float] = {}
_SIM_MEMO_MAX = 1 << 16


def clear_sim_memo() -> None:
    """Drop every memoized simulation result (perf-bench cold runs)."""
    _SIM_MEMO.clear()


def simulate_point(
    machine: MachineSpec,
    point: SweepPoint,
    *,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    reuse: bool = True,
) -> SweepPointResult:
    """Simulate one point, reusing cached schedules and memoized results.

    ``reuse=False`` bypasses both the schedule cache and the simulation
    memo (a fresh build and a fresh run) — the perf-regression benchmark
    uses it to measure the cold path, and the property tests use it to
    prove reuse never changes a result.  Raises nothing: errors come back
    in the result record.

    With observability enabled the point's wall time lands in the
    ``repro_sweep_point_seconds`` histogram and a per-outcome counter —
    never changing the simulated result itself.
    """
    if not OBS.enabled:
        return _simulate_point_impl(
            machine, point, noise=noise, faults=faults, reuse=reuse
        )
    t0 = time.perf_counter()
    res = _simulate_point_impl(
        machine, point, noise=noise, faults=faults, reuse=reuse
    )
    dt = time.perf_counter() - t0
    outcome = (
        "error" if res.error is not None
        else ("memo" if res.sim_hit else "simulated")
    )
    m = OBS.metrics
    m.counter("repro_sweep_points_total", outcome=outcome).inc()
    m.histogram("repro_sweep_point_seconds").observe(dt)
    return res


def _simulate_point_impl(
    machine: MachineSpec,
    point: SweepPoint,
    *,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    reuse: bool,
) -> SweepPointResult:
    try:
        entry = info(point.collective, point.algorithm)
        root = point.root if entry.takes_root else 0
        if not reuse:
            schedule = entry.build(machine.nranks, k=point.k, root=root)
            sim = simulate(
                schedule, machine, point.nbytes, noise=noise, faults=faults
            )
            return SweepPointResult(point, sim.time, False)
        key = (
            schedule_key(
                point.collective,
                point.algorithm,
                machine.nranks,
                k=point.k,
                root=root,
            ),
            machine,
            point.nbytes,
            noise,
            faults,
        )
        memo_time = _SIM_MEMO.get(key)
        if memo_time is not None:
            return SweepPointResult(point, memo_time, True, sim_hit=True)
        schedule, hit = global_schedule_cache().get_or_build(
            point.collective,
            point.algorithm,
            machine.nranks,
            k=point.k,
            root=root,
        )
        sim = simulate(
            schedule, machine, point.nbytes, noise=noise, faults=faults
        )
        if len(_SIM_MEMO) >= _SIM_MEMO_MAX:
            _SIM_MEMO.clear()
        _SIM_MEMO[key] = sim.time
        return SweepPointResult(point, sim.time, hit)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return SweepPointResult(
            point, None, False, f"{type(exc).__name__}: {exc}"
        )


# A chunk ships everything one worker call needs in a single pickle.
# The trailing TraceContext is None unless the parent sweep is being
# observed — workers join its trace and ship their records back.
_ChunkTask = Tuple[MachineSpec, Optional[NoiseModel], Optional[FaultPlan],
                   bool, Tuple[SweepPoint, ...], Optional[TraceContext]]


@dataclass(frozen=True)
class _ObsEnvelope:
    """A worker chunk's results plus its observability records.

    Spans/timelines/metrics recorded inside a pool worker cannot reach
    the parent's registry directly; they ride home with the results and
    :func:`run_sweep` splices them in, which is how ``--jobs N`` yields
    one merged trace instead of N orphans.
    """

    results: Tuple[SweepPointResult, ...]
    spans: Tuple[SpanRecord, ...]
    timelines: Tuple[SimTimeline, ...]
    metrics: MetricsSnapshot
    busy_s: float


def _run_chunk(task: _ChunkTask):
    """Simulate one chunk of points (runs inside a worker process).

    Never raises: per-point errors are folded into the results so one
    bad configuration cannot poison the pool or its sibling points.
    """
    machine, noise, faults, reuse, points, ctx = task
    if ctx is None or ctx.origin_pid == os.getpid():
        # Plain path — or the parent process itself (serial/degenerate
        # pool), where records land directly in the live registry.  The
        # pid check, not OBS.enabled, identifies a worker: fork-started
        # workers inherit the parent's enabled scope wholesale.
        return [
            simulate_point(
                machine, pt, noise=noise, faults=faults, reuse=reuse
            )
            for pt in points
        ]
    # Pool worker joining an observed parent sweep: open a fresh scope
    # under the parent's trace context, capture, and ship everything back.
    OBS.reset()
    OBS.enable(context=ctx)
    t0 = time.perf_counter()
    try:
        with OBS.span("sweep_chunk", points=len(points)):
            results = [
                simulate_point(
                    machine, pt, noise=noise, faults=faults, reuse=reuse
                )
                for pt in points
            ]
    finally:
        busy = time.perf_counter() - t0
        spans = OBS.tracer.spans()
        timelines = OBS.tracer.timelines()
        snap = OBS.metrics.snapshot()
        OBS.disable()
        OBS.reset()
    return [
        _ObsEnvelope(
            results=tuple(results),
            spans=spans,
            timelines=timelines,
            metrics=snap,
            busy_s=busy,
        )
    ]


def _chunk_points(
    machine: MachineSpec,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    reuse: bool,
    points: Sequence[SweepPoint],
    ctx: Optional[TraceContext] = None,
) -> List[_ChunkTask]:
    """Group consecutive points that share a schedule into one chunk.

    One chunk per distinct (collective, algorithm, k, root) run keeps the
    schedule build amortized inside each worker (built once, hit by every
    other size in the chunk) while still giving the pool one task per
    schedule to balance across.
    """
    chunks: List[_ChunkTask] = []
    group: List[SweepPoint] = []
    for pt in points:
        if group and pt.schedule_params() != group[-1].schedule_params():
            chunks.append((machine, noise, faults, reuse, tuple(group), ctx))
            group = []
        group.append(pt)
    if group:
        chunks.append((machine, noise, faults, reuse, tuple(group), ctx))
    return chunks


def run_sweep(
    points: Sequence[SweepPoint],
    machine: MachineSpec,
    *,
    jobs: int = 0,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    reuse: bool = True,
) -> List[SweepPointResult]:
    """Simulate every point on ``machine``; results in point order.

    ``jobs=0``/``1`` runs serially in-process; ``jobs>=2`` fans chunks
    out to a process pool; ``jobs<0`` uses every core.  Output is
    bit-identical across all of them, and — because simulation is pure —
    across ``reuse`` settings too.  With observability enabled the whole
    sweep is one ``sweep`` span; worker spans and metrics merge back into
    it (see :class:`_ObsEnvelope`), and worker utilization lands in
    ``repro_sweep_worker_busy_seconds_total``.
    """
    if not OBS.enabled:
        chunks = _chunk_points(machine, noise, faults, reuse, points)
        return run_chunks(_run_chunk, chunks, jobs=jobs)
    with OBS.span("sweep", points=len(points), jobs=jobs):
        effective = resolve_jobs(jobs)
        ctx = OBS.tracer.context() if effective >= 2 else None
        chunks = _chunk_points(machine, noise, faults, reuse, points, ctx)
        t0 = time.perf_counter()
        raw = run_chunks(_run_chunk, chunks, jobs=jobs)
        wall = time.perf_counter() - t0
        out: List[SweepPointResult] = []
        busy = 0.0
        merged = 0
        for item in raw:
            if isinstance(item, _ObsEnvelope):
                merged += 1
                OBS.tracer.adopt(item.spans, item.timelines)
                OBS.metrics.merge(item.metrics)
                busy += item.busy_s
                out.extend(item.results)
            else:
                out.append(item)
        if merged:
            m = OBS.metrics
            m.counter("repro_sweep_worker_busy_seconds_total").inc(busy)
            if wall > 0 and effective >= 2:
                m.gauge("repro_sweep_worker_utilization").set_max(
                    busy / (wall * effective)
                )
        return out


def sweep_errors(results: Sequence[SweepPointResult]) -> List[str]:
    """Collect the error strings of failed points (empty when clean)."""
    return [
        f"{r.point.collective}/{r.point.algorithm} k={r.point.k} "
        f"n={r.point.nbytes}: {r.error}"
        for r in results
        if r.error is not None
    ]


# ----------------------------------------------------------------------
# The radix-sweep surface (Figs. 8, 10, 11)
# ----------------------------------------------------------------------


@dataclass
class RadixSweep:
    """Latency surface ``times_us[k][nbytes]`` for one algorithm."""

    collective: str
    algorithm: str
    machine: str
    nranks: int
    sizes: List[int]
    ks: List[int]
    times_us: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def latency(self, k: int, nbytes: int) -> float:
        try:
            return self.times_us[k][nbytes]
        except KeyError:
            raise ReproError(
                f"sweep has no point (k={k}, n={nbytes})"
            ) from None

    def series_for_k(self, k: int) -> List[Tuple[int, float]]:
        """(size, latency) series at a fixed radix — a Fig. 10 line."""
        return [(n, self.latency(k, n)) for n in self.sizes]

    def series_for_size(self, nbytes: int) -> List[Tuple[int, float]]:
        """(k, latency) series at a fixed size — a Fig. 8 line."""
        return [(k, self.latency(k, nbytes)) for k in self.ks]

    def best_k(self, nbytes: int) -> int:
        """Radix minimizing latency at a size (ties → smaller k)."""
        return min(self.ks, key=lambda k: (self.latency(k, nbytes), k))

    def best_k_per_size(self) -> Dict[int, int]:
        return {n: self.best_k(n) for n in self.sizes}

    def best_latency(self, nbytes: int) -> float:
        return min(self.latency(k, nbytes) for k in self.ks)

    def flatness(self, nbytes: int) -> float:
        """max/min latency ratio across k at one size.

        Near 1.0 means the radix barely matters — the quantity behind the
        paper's "parameter value shows minimal effect" claim for k-ring on
        Polaris (Fig. 11c).
        """
        series = [self.latency(k, nbytes) for k in self.ks]
        return max(series) / min(series)


def radix_latency_sweep(
    collective: str,
    algorithm: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    ks: Optional[Sequence[int]] = None,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
    jobs: int = 0,
) -> RadixSweep:
    """Simulate a generalized algorithm across a (k × size) grid.

    With ``ks=None`` the grid is :func:`repro.selection.tuner.radix_grid`
    over the machine's rank count — the same grid the tuner and the
    analytical profiles use.  ``jobs`` fans the grid out over worker
    processes without changing a single result (see :func:`run_sweep`).
    """
    entry = info(collective, algorithm)
    if not entry.takes_k:
        raise ReproError(
            f"{collective}/{algorithm} is not a generalized algorithm"
        )
    p = machine.nranks
    grid = list(ks) if ks is not None else radix_grid(p, min_k=entry.min_k)
    sweep = RadixSweep(
        collective=collective,
        algorithm=algorithm,
        machine=machine.name,
        nranks=p,
        sizes=list(sizes),
        ks=grid,
    )
    points = [
        SweepPoint(
            collective,
            algorithm,
            nbytes,
            k=k,
            root=root if entry.takes_root else 0,
        )
        for k in grid
        for nbytes in sizes
    ]
    results = run_sweep(points, machine, jobs=jobs, noise=noise)
    errors = sweep_errors(results)
    if errors:
        raise ReproError(
            f"{len(errors)} sweep point(s) failed: " + "; ".join(errors[:4])
        )
    for res in results:
        sweep.times_us.setdefault(res.point.k, {})[res.point.nbytes] = (
            res.time_us
        )
    return sweep
