"""Radix sweeps — the measurement behind paper Figs. 8, 10, and 11.

Two layers live here:

* The **parallel sweep engine**: a sweep is a list of
  :class:`SweepPoint` records — one (collective, algorithm, k, root,
  size) configuration each — that :func:`run_sweep` simulates either
  serially or fanned out over a ``ProcessPoolExecutor`` (``jobs``).
  The determinism contract (pinned by
  ``tests/properties/test_schedule_cache.py``) is:

  1. results come back in point order, bit-identical to the serial run,
     for any ``jobs`` value — simulation is pure and the pool preserves
     submission order;
  2. a failing point never takes down its siblings: each point carries
     its own ``error`` field instead of raising mid-sweep;
  3. schedule builds are served by the content-addressed
     :class:`~repro.core.cache.ScheduleCache` (process-global, one per
     worker), and every point records whether its build was a cache hit
     so hit rates aggregate correctly across worker processes.

  Points sharing one schedule are simulated inside one chunk (contiguous
  grouping), so a (k × sizes) grid builds each schedule once per worker
  instead of once per point.

  Since the durability PR the engine is also **crash-safe**: pass
  ``journal=`` to append every completed point to a crash-safe JSONL
  journal (:mod:`repro.store.journal`) and ``resume=True`` to replay it,
  re-running only missing or failed points — the merged results carry
  the same ``(point, time, error)`` content as an uninterrupted run.
  ``store=`` backs schedule builds with a disk-persistent
  :class:`~repro.store.schedules.PersistentScheduleCache` for the
  duration of the sweep, and worker crashes are healed by the hardened
  executor (:mod:`repro.parallel`): a poison point that keeps killing
  its worker is quarantined as a structured error record while its
  siblings complete.

* :class:`RadixSweep` holds the full (k × message-size) latency surface
  for one generalized algorithm on one machine, with accessors for the
  views the paper plots: latency-vs-k at a size (Fig. 8), latency-vs-size
  at chosen radices against baselines (Fig. 10), and the optimal radix
  per size.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.cache import (
    ScheduleCache,
    global_schedule_cache,
    schedule_key,
    set_global_schedule_cache,
)
from ..core.registry import info
from ..errors import ClassAnalysisError, ReproError, StoreError
from ..faults.plan import FaultPlan
from ..obs import OBS, MetricsSnapshot, SimTimeline, SpanRecord, TraceContext
from ..parallel import ChunkFailure, resolve_jobs, run_chunks
from ..simnet.machine import MachineSpec
from ..simnet.machines import resolve as resolve_machine
from ..simnet.noise import NoiseModel
from ..simnet.simulate import ENGINES, simulate
from ..selection.tuner import radix_grid
from ..store.journal import JournalWriter, journal_header, read_journal
from ..store.schedules import open_schedule_store

__all__ = [
    "SweepPoint",
    "SweepPointResult",
    "SweepStats",
    "sweep_stats",
    "simulate_point",
    "clear_sim_memo",
    "run_sweep",
    "sweep_errors",
    "sweep_fingerprint",
    "RadixSweep",
    "radix_latency_sweep",
]

#: Crash-injection hook for the durability tests and the soak harness: a
#: ``collective/algorithm/k/nbytes`` spec in this environment variable
#: makes the matching point kill its process with ``os._exit`` —
#: simulating a worker segfault mid-chunk.  Only meaningful with
#: ``jobs >= 2`` (in the serial path there is no worker to sacrifice).
POISON_ENV = "REPRO_SWEEP_POISON"


# ----------------------------------------------------------------------
# The parallel sweep engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One sweep configuration: a schedule choice at one message size."""

    collective: str
    algorithm: str
    nbytes: int
    k: Optional[int] = None
    root: int = 0

    def schedule_params(self) -> Tuple[str, str, Optional[int], int]:
        return (self.collective, self.algorithm, self.k, self.root)


@dataclass(frozen=True)
class SweepPointResult:
    """Outcome of one point: a simulated time or an isolated error.

    ``cache_hit`` records whether the schedule build was served by the
    worker's :class:`~repro.core.cache.ScheduleCache`; ``sim_hit``
    whether the whole simulation was served by the memo of previously
    simulated identical points.  Both travel with the result (rather
    than living in worker-process globals) so hit rates aggregate
    correctly across any number of pool workers.

    ``traceback`` preserves the worker-side stack for failed points —
    the worker that raised may be long gone (or dead) by the time the
    record is read, and journal replay of a historical run has nothing
    else to explain the failure with.
    """

    point: SweepPoint
    time: Optional[float]  # seconds; None when the point errored
    cache_hit: bool
    error: Optional[str] = None
    sim_hit: bool = False
    traceback: Optional[str] = None

    @property
    def time_us(self) -> float:
        if self.time is None:
            raise ReproError(
                f"sweep point {self.point} failed: {self.error}"
            )
        return self.time * 1e6


@dataclass(frozen=True)
class SweepStats:
    """Aggregate cache/memo accounting for one sweep's results.

    The frozen, ``to_dict()``-bearing consolidation of what used to be
    loose ``cache_hit``/``sim_hit`` booleans — same protocol as
    :class:`~repro.core.cache.CacheStats` and
    :class:`~repro.simnet.trace.TimelineStats`, so sweep accounting
    drops uniformly into :mod:`repro.obs` snapshots and JSON reports.
    """

    points: int
    errors: int
    build_hits: int
    sim_hits: int

    @property
    def build_hit_rate(self) -> float:
        return self.build_hits / self.points if self.points else 0.0

    @property
    def sim_memo_rate(self) -> float:
        return self.sim_hits / self.points if self.points else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "points": self.points,
            "errors": self.errors,
            "build_hits": self.build_hits,
            "sim_hits": self.sim_hits,
            "build_hit_rate": self.build_hit_rate,
            "sim_memo_rate": self.sim_memo_rate,
        }


def sweep_stats(results: Sequence[SweepPointResult]) -> SweepStats:
    """Fold per-point hit booleans into one :class:`SweepStats`."""
    return SweepStats(
        points=len(results),
        errors=sum(1 for r in results if r.error is not None),
        build_hits=sum(1 for r in results if r.cache_hit),
        sim_hits=sum(1 for r in results if r.sim_hit),
    )


# Memo of completed simulations.  simulate() is a pure function of
# (schedule, machine, nbytes, noise, faults) and every component of the
# key hashes by value, so replaying a previously seen point returns the
# identical float by construction — the redundancy this removes is real
# and large: the Fig. 9 speedup search re-simulates the very same
# (algorithm, k, size) points the Fig. 8 surfaces already timed.
_SimKey = Tuple[Tuple[str, str, int, Optional[int], int], MachineSpec,
                int, Optional[NoiseModel], Optional[FaultPlan]]
_SIM_MEMO: Dict[_SimKey, float] = {}
_SIM_MEMO_MAX = 1 << 16

#: Rank count from which sweep points route through the lazy generator
#: schedules (:mod:`repro.core.lazy`) when one covers the point and the
#: engine allows collapsing — above it, materializing p per-rank op lists
#: dominates the sweep's wall clock, below it the build cache is cheap
#: enough that bypassing it buys nothing.
_LAZY_SWEEP_MIN_RANKS = 2048


def clear_sim_memo() -> None:
    """Drop every memoized simulation result (perf-bench cold runs)."""
    _SIM_MEMO.clear()


def simulate_point(
    machine: MachineSpec,
    point: SweepPoint,
    *,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    reuse: bool = True,
    compiled: bool = True,
    engine: str = "auto",
) -> SweepPointResult:
    """Simulate one point, reusing cached schedules and memoized results.

    ``reuse=False`` bypasses both the schedule cache and the simulation
    memo (a fresh build and a fresh run) — the perf-regression benchmark
    uses it to measure the cold path, and the property tests use it to
    prove reuse never changes a result.  Raises nothing: errors come back
    in the result record.

    ``compiled`` selects the compiled simulator feed (the default) or
    op-by-op IR interpretation; ``engine`` the simulation core
    (:data:`~repro.simnet.simulate.ENGINES`).  The simulated time is
    bit-identical across all of them, which is why the memo key
    deliberately ignores both.  At large p (≥ ``_LAZY_SWEEP_MIN_RANKS``)
    a collapsing-capable engine routes eligible points through the lazy
    generator schedules (:func:`repro.core.lazy.lookup`), skipping the
    per-rank materialization entirely.

    With observability enabled the point's wall time lands in the
    ``repro_sweep_point_seconds`` histogram and a per-outcome counter —
    never changing the simulated result itself.
    """
    if not OBS.enabled:
        return _simulate_point_impl(
            machine, point, noise=noise, faults=faults, reuse=reuse,
            compiled=compiled, engine=engine,
        )
    t0 = time.perf_counter()
    res = _simulate_point_impl(
        machine, point, noise=noise, faults=faults, reuse=reuse,
        compiled=compiled, engine=engine,
    )
    dt = time.perf_counter() - t0
    outcome = (
        "error" if res.error is not None
        else ("memo" if res.sim_hit else "simulated")
    )
    m = OBS.metrics
    m.counter("repro_sweep_points_total", outcome=outcome).inc()
    m.histogram("repro_sweep_point_seconds").observe(dt)
    return res


def _simulate_point_impl(
    machine: MachineSpec,
    point: SweepPoint,
    *,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    reuse: bool,
    compiled: bool = True,
    engine: str = "auto",
) -> SweepPointResult:
    try:
        entry = info(point.collective, point.algorithm)
        root = point.root if entry.takes_root else 0
        lazy = _lazy_route(machine, point, root,
                           noise=noise, faults=faults, engine=engine)
        if not reuse:
            if lazy is not None:
                sim = simulate(
                    lazy, machine, point.nbytes, noise=noise, faults=faults,
                    compiled=compiled, engine=engine,
                )
                return SweepPointResult(point, sim.time, False)
            schedule = entry.build(machine.nranks, k=point.k, root=root)
            sim = simulate(
                schedule, machine, point.nbytes, noise=noise, faults=faults,
                compiled=compiled, engine=engine,
            )
            return SweepPointResult(point, sim.time, False)
        key = (
            schedule_key(
                point.collective,
                point.algorithm,
                machine.nranks,
                k=point.k,
                root=root,
            ),
            machine,
            point.nbytes,
            noise,
            faults,
        )
        memo_time = _SIM_MEMO.get(key)
        if memo_time is not None:
            return SweepPointResult(point, memo_time, True, sim_hit=True)
        if lazy is not None:
            sim = simulate(
                lazy, machine, point.nbytes, noise=noise, faults=faults,
                compiled=compiled, engine=engine,
            )
            hit = False
        else:
            schedule, hit = global_schedule_cache().get_or_build(
                point.collective,
                point.algorithm,
                machine.nranks,
                k=point.k,
                root=root,
            )
            sim = simulate(
                schedule, machine, point.nbytes, noise=noise, faults=faults,
                compiled=compiled, engine=engine,
            )
        if len(_SIM_MEMO) >= _SIM_MEMO_MAX:
            _SIM_MEMO.clear()
        _SIM_MEMO[key] = sim.time
        return SweepPointResult(point, sim.time, hit)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return SweepPointResult(
            point,
            None,
            False,
            f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


def _lazy_route(
    machine: MachineSpec,
    point: SweepPoint,
    root: int,
    *,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    engine: str,
):
    """The lazy generator schedule for ``point``, or None to build normally.

    Routing is opt-in by scale: only collapsing-capable engines at
    p ≥ ``_LAZY_SWEEP_MIN_RANKS`` on symmetric runs, and only when the
    class analysis actually succeeds — so a routed point is guaranteed to
    take the collapsed core rather than falling back to a materialization
    that might exceed the lazy op-count guard.
    """
    if engine not in ("auto", "collapsed"):
        return None
    if machine.nranks < _LAZY_SWEEP_MIN_RANKS:
        return None
    if noise is not None or faults is not None:
        return None
    from ..core.lazy import lookup

    lazy = lookup(point.collective, point.algorithm, machine.nranks,
                  k=point.k, root=root)
    if lazy is None:
        return None
    try:
        lazy.classes(machine, point.nbytes)
    except ClassAnalysisError:
        return None
    return lazy


def _maybe_injected_crash(point: SweepPoint) -> None:
    """Kill the process if ``point`` matches the ``POISON_ENV`` spec.

    The crash is deliberately unmaskable (``os._exit`` skips every
    ``finally`` and atexit hook, like a segfault would) — it exists so
    the durability tests and ``repro.bench.soak`` can prove a poisoned
    point is quarantined rather than aborting the sweep.
    """
    spec = os.environ.get(POISON_ENV)
    if not spec:
        return
    parts = spec.split("/")
    if len(parts) != 4:
        return
    if (point.collective, point.algorithm, str(point.k),
            str(point.nbytes)) == tuple(parts):
        os._exit(139)


# A chunk ships everything one worker call needs in a single pickle.
# The trailing TraceContext is None unless the parent sweep is being
# observed — workers join its trace and ship their records back.
_ChunkTask = Tuple[MachineSpec, Optional[NoiseModel], Optional[FaultPlan],
                   bool, bool, str, Tuple[SweepPoint, ...],
                   Optional[TraceContext]]


@dataclass(frozen=True)
class _ObsEnvelope:
    """A worker chunk's results plus its observability records.

    Spans/timelines/metrics recorded inside a pool worker cannot reach
    the parent's registry directly; they ride home with the results and
    :func:`run_sweep` splices them in, which is how ``--jobs N`` yields
    one merged trace instead of N orphans.
    """

    results: Tuple[SweepPointResult, ...]
    spans: Tuple[SpanRecord, ...]
    timelines: Tuple[SimTimeline, ...]
    metrics: MetricsSnapshot
    busy_s: float


def _run_chunk(task: _ChunkTask):
    """Simulate one chunk of points (runs inside a worker process).

    Never raises: per-point errors are folded into the results so one
    bad configuration cannot poison the pool or its sibling points.
    """
    machine, noise, faults, reuse, compiled, engine, points, ctx = task
    if ctx is None or ctx.origin_pid == os.getpid():
        # Plain path — or the parent process itself (serial/degenerate
        # pool), where records land directly in the live registry.  The
        # pid check, not OBS.enabled, identifies a worker: fork-started
        # workers inherit the parent's enabled scope wholesale.
        out = []
        for pt in points:
            _maybe_injected_crash(pt)
            out.append(
                simulate_point(
                    machine, pt, noise=noise, faults=faults, reuse=reuse,
                    compiled=compiled, engine=engine,
                )
            )
        return out
    # Pool worker joining an observed parent sweep: open a fresh scope
    # under the parent's trace context, capture, and ship everything back.
    OBS.reset()
    OBS.enable(context=ctx)
    t0 = time.perf_counter()
    try:
        with OBS.span("sweep_chunk", points=len(points)):
            results = []
            for pt in points:
                _maybe_injected_crash(pt)
                results.append(
                    simulate_point(
                        machine, pt, noise=noise, faults=faults,
                        reuse=reuse, compiled=compiled, engine=engine,
                    )
                )
    finally:
        busy = time.perf_counter() - t0
        spans = OBS.tracer.spans()
        timelines = OBS.tracer.timelines()
        snap = OBS.metrics.snapshot()
        OBS.disable()
        OBS.reset()
    return [
        _ObsEnvelope(
            results=tuple(results),
            spans=spans,
            timelines=timelines,
            metrics=snap,
            busy_s=busy,
        )
    ]


def _chunk_points(
    machine: MachineSpec,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    reuse: bool,
    compiled: bool,
    engine: str,
    points: Sequence[SweepPoint],
    ctx: Optional[TraceContext] = None,
) -> List[_ChunkTask]:
    """Group consecutive points that share a schedule into one chunk.

    One chunk per distinct (collective, algorithm, k, root) run keeps the
    schedule build amortized inside each worker (built once, hit by every
    other size in the chunk) while still giving the pool one task per
    schedule to balance across.
    """
    chunks: List[_ChunkTask] = []
    group: List[SweepPoint] = []
    for pt in points:
        if group and pt.schedule_params() != group[-1].schedule_params():
            chunks.append(
                (machine, noise, faults, reuse, compiled, engine,
                 tuple(group), ctx)
            )
            group = []
        group.append(pt)
    if group:
        chunks.append(
            (machine, noise, faults, reuse, compiled, engine,
             tuple(group), ctx)
        )
    return chunks


def _split_chunk(task: _ChunkTask) -> List[_ChunkTask]:
    """Split a failing chunk into single-point tasks (poison cornering)."""
    machine, noise, faults, reuse, compiled, engine, points, ctx = task
    return [
        (machine, noise, faults, reuse, compiled, engine, (pt,), ctx)
        for pt in points
    ]


def _chunk_error_records(
    task: _ChunkTask, failure: ChunkFailure
) -> List[SweepPointResult]:
    """Structured error records for a quarantined chunk's points.

    The executor hands us a chunk whose worker kept dying (or hanging);
    there is no worker traceback to preserve — the process is gone — so
    the record carries the executor's mechanical story instead.
    """
    points = task[6]
    error = f"ChunkFailure: {failure}"
    note = (
        "worker process lost before a traceback could be captured "
        f"(failure kind: {failure.kind}, attempts: {failure.attempts})"
    )
    return [
        SweepPointResult(pt, None, False, error, traceback=note)
        for pt in points
    ]


# ----------------------------------------------------------------------
# The sweep journal: each completed point becomes one crash-safe record
# ----------------------------------------------------------------------


def _point_key(point: SweepPoint) -> str:
    """The journal identity of one point (duplicates share a key)."""
    return (
        f"{point.collective}/{point.algorithm}/k={point.k}/"
        f"root={point.root}/n={point.nbytes}"
    )


def sweep_fingerprint(
    points: Sequence[SweepPoint],
    machine: Union[str, MachineSpec],
    *,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    reuse: bool = True,
) -> str:
    """Content hash of a sweep configuration.

    Written into the journal header and re-checked on ``resume=True`` so
    a journal can never be spliced into a sweep over a different grid,
    machine, or noise/fault plan — replaying foreign results would
    silently corrupt science.  All components hash by ``repr`` of frozen
    dataclasses, which pin every parameter that affects a result.  A
    machine given by registry name hashes as its resolved spec, so
    ``"reference-64"`` and ``reference(64)`` share journals; the engine
    and ``compiled`` are deliberately absent — they never change a
    result, so a journal written under one resumes under another.
    """
    h = hashlib.sha256()
    h.update(repr(resolve_machine(machine)).encode())
    h.update(f"|noise={noise!r}|faults={faults!r}|reuse={reuse}".encode())
    for pt in points:
        h.update(b"|")
        h.update(_point_key(pt).encode())
    return h.hexdigest()


def _result_record(res: SweepPointResult) -> Dict:
    """One journal line's payload for a completed point."""
    return {
        "kind": "point",
        "key": _point_key(res.point),
        "time": res.time,
        "error": res.error,
        "traceback": res.traceback,
        "cache_hit": res.cache_hit,
        "sim_hit": res.sim_hit,
    }


def _result_from_record(rec: Dict, point: SweepPoint) -> SweepPointResult:
    """Rehydrate a journaled record against the current sweep's point."""
    return SweepPointResult(
        point,
        rec.get("time"),
        bool(rec.get("cache_hit")),
        rec.get("error"),
        sim_hit=bool(rec.get("sim_hit")),
        traceback=rec.get("traceback"),
    )


def _open_sweep_journal(
    path: Union[str, Path],
    resume: bool,
    fingerprint: str,
) -> Tuple[JournalWriter, Dict[str, Dict]]:
    """Open (or resume) a sweep journal.

    Returns the writer plus the successfully completed records to
    replay, keyed by point key.  Resuming validates the header
    fingerprint; a fresh run truncates whatever was there.  Failed
    points are deliberately *not* replayed — resume re-runs them, which
    is how a transient crash heals instead of being remembered forever.
    """
    replayed: Dict[str, Dict] = {}
    has_header = False
    if resume:
        records, _skipped = read_journal(path)
        header = journal_header(records)
        if header is not None:
            if header.get("sweep") != fingerprint:
                raise StoreError(
                    f"journal {path} was written by a different sweep "
                    f"configuration (header fingerprint "
                    f"{header.get('sweep')!r} != {fingerprint!r}); "
                    "refusing to splice foreign results"
                )
            has_header = True
        for rec in records:
            if rec.get("kind") == "point" and rec.get("error") is None:
                replayed[rec["key"]] = rec
    writer = JournalWriter(path, truncate=not resume)
    if not has_header:
        writer.append({"kind": "header", "sweep": fingerprint})
    return writer, replayed


def run_sweep(
    points: Sequence[SweepPoint],
    machine: Union[str, MachineSpec],
    *,
    jobs: int = 0,
    noise: Optional[NoiseModel] = None,
    faults: Optional[FaultPlan] = None,
    reuse: bool = True,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    store: Optional[Union[str, Path, ScheduleCache]] = None,
    retries: int = 2,
    deadline: Optional[float] = None,
    isolate: bool = False,
    compiled: bool = True,
    engine: str = "auto",
) -> List[SweepPointResult]:
    """Simulate every point on ``machine``; results in point order.

    ``machine`` is a spec or a registry name
    (:func:`repro.simnet.machines.get`); ``engine`` selects the
    simulation core per point (:data:`~repro.simnet.simulate.ENGINES`)
    without affecting any result bit.

    ``jobs=0``/``1`` runs serially in-process; ``jobs>=2`` fans chunks
    out to a process pool; ``jobs<0`` uses every core.  Output is
    bit-identical across all of them, and — because simulation is pure —
    across ``reuse`` and ``compiled`` settings too (the compiled
    simulator feed is cost-transparent by construction, which is why the
    sweep fingerprint ignores it: a journal written under either mode
    resumes cleanly under the other).  With observability enabled the whole
    sweep is one ``sweep`` span; worker spans and metrics merge back into
    it (see :class:`_ObsEnvelope`), and worker utilization lands in
    ``repro_sweep_worker_busy_seconds_total``.

    Durability (all optional — the defaults behave exactly as before):

    ``journal``
        Append every completed point to this crash-safe JSONL file as it
        finishes (completion order; the returned list stays in point
        order).  A run killed at any instant loses at most its in-flight
        chunks.
    ``resume``
        Replay the journal first and simulate only missing or failed
        points.  The merged results carry identical ``(point, time,
        error)`` content to an uninterrupted run — only the
        ``cache_hit``/``sim_hit`` execution metadata may differ, since
        the resumed process starts with cold caches.  A journal from a
        different sweep configuration is refused
        (:class:`~repro.errors.StoreError`).
    ``store``
        Path (or ready :class:`~repro.core.cache.ScheduleCache`) backing
        schedule builds with a disk tier for the duration of the sweep;
        forked pool workers inherit the attachment and share the
        directory through its advisory lock.
    ``retries`` / ``deadline`` / ``isolate``
        Passed to the hardened executor (see
        :func:`repro.parallel.run_chunks`): worker crashes re-dispatch
        on a fresh pool, repeat offenders are quarantined as structured
        error records, hung chunks are killed after ``deadline`` seconds
        of stall, and ``isolate=True`` forces real worker processes even
        on single-core hosts (crash isolation needs a process boundary).
    """
    machine = resolve_machine(machine)
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if store is not None and not isinstance(store, ScheduleCache):
        store = open_schedule_store(store)
    previous_cache = None
    if store is not None:
        previous_cache = set_global_schedule_cache(store)
    try:
        fingerprint = None
        writer: Optional[JournalWriter] = None
        replayed: Dict[str, Dict] = {}
        pending: Sequence[SweepPoint] = points
        if journal is not None:
            fingerprint = sweep_fingerprint(
                points, machine, noise=noise, faults=faults, reuse=reuse
            )
            writer, replayed = _open_sweep_journal(
                journal, resume, fingerprint
            )
            if replayed:
                pending = [
                    pt for pt in points if _point_key(pt) not in replayed
                ]
        try:
            computed = _dispatch_sweep(
                pending, machine, jobs=jobs, noise=noise, faults=faults,
                reuse=reuse, compiled=compiled, engine=engine,
                writer=writer, retries=retries, deadline=deadline,
                isolate=isolate,
            )
        finally:
            if writer is not None:
                writer.close()
        if not replayed:
            return computed
        merged: List[SweepPointResult] = []
        fresh = iter(computed)
        for pt in points:
            rec = replayed.get(_point_key(pt))
            if rec is not None:
                merged.append(_result_from_record(rec, pt))
            else:
                merged.append(next(fresh))
        return merged
    finally:
        if previous_cache is not None:
            set_global_schedule_cache(previous_cache)


def _dispatch_sweep(
    points: Sequence[SweepPoint],
    machine: MachineSpec,
    *,
    jobs: int,
    noise: Optional[NoiseModel],
    faults: Optional[FaultPlan],
    reuse: bool,
    compiled: bool,
    engine: str,
    writer: Optional[JournalWriter],
    retries: int,
    deadline: Optional[float],
    isolate: bool,
) -> List[SweepPointResult]:
    """Chunk, fan out, journal, and (with obs) merge worker records."""

    def journal_chunk(_index: int, _task, results) -> None:
        # run_chunks calls this in completion order, in the parent —
        # exactly when a chunk's results are safe to persist.  Envelopes
        # are unwrapped here and *also* kept in the returned stream for
        # the observability merge below.
        for item in results:
            if isinstance(item, _ObsEnvelope):
                for res in item.results:
                    writer.append(_result_record(res))
            else:
                writer.append(_result_record(item))

    on_done = journal_chunk if writer is not None else None
    if not OBS.enabled:
        chunks = _chunk_points(machine, noise, faults, reuse, compiled,
                               engine, points)
        return run_chunks(
            _run_chunk, chunks, jobs=jobs, retries=retries,
            deadline=deadline, on_chunk_error=_chunk_error_records,
            split=_split_chunk, on_chunk_done=on_done, isolate=isolate,
        )
    with OBS.span("sweep", points=len(points), jobs=jobs):
        effective = resolve_jobs(jobs)
        ctx = OBS.tracer.context() if effective >= 2 or isolate else None
        chunks = _chunk_points(machine, noise, faults, reuse, compiled,
                               engine, points, ctx)
        t0 = time.perf_counter()
        raw = run_chunks(
            _run_chunk, chunks, jobs=jobs, retries=retries,
            deadline=deadline, on_chunk_error=_chunk_error_records,
            split=_split_chunk, on_chunk_done=on_done, isolate=isolate,
        )
        wall = time.perf_counter() - t0
        out: List[SweepPointResult] = []
        busy = 0.0
        merged = 0
        for item in raw:
            if isinstance(item, _ObsEnvelope):
                merged += 1
                OBS.tracer.adopt(item.spans, item.timelines)
                OBS.metrics.merge(item.metrics)
                busy += item.busy_s
                out.extend(item.results)
            else:
                out.append(item)
        if merged:
            m = OBS.metrics
            m.counter("repro_sweep_worker_busy_seconds_total").inc(busy)
            if wall > 0 and effective >= 2:
                m.gauge("repro_sweep_worker_utilization").set_max(
                    busy / (wall * effective)
                )
        return out


def sweep_errors(results: Sequence[SweepPointResult]) -> List[str]:
    """Collect the error strings of failed points (empty when clean)."""
    return [
        f"{r.point.collective}/{r.point.algorithm} k={r.point.k} "
        f"n={r.point.nbytes}: {r.error}"
        for r in results
        if r.error is not None
    ]


# ----------------------------------------------------------------------
# The radix-sweep surface (Figs. 8, 10, 11)
# ----------------------------------------------------------------------


@dataclass
class RadixSweep:
    """Latency surface ``times_us[k][nbytes]`` for one algorithm."""

    collective: str
    algorithm: str
    machine: str
    nranks: int
    sizes: List[int]
    ks: List[int]
    times_us: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def latency(self, k: int, nbytes: int) -> float:
        try:
            return self.times_us[k][nbytes]
        except KeyError:
            raise ReproError(
                f"sweep has no point (k={k}, n={nbytes})"
            ) from None

    def series_for_k(self, k: int) -> List[Tuple[int, float]]:
        """(size, latency) series at a fixed radix — a Fig. 10 line."""
        return [(n, self.latency(k, n)) for n in self.sizes]

    def series_for_size(self, nbytes: int) -> List[Tuple[int, float]]:
        """(k, latency) series at a fixed size — a Fig. 8 line."""
        return [(k, self.latency(k, nbytes)) for k in self.ks]

    def best_k(self, nbytes: int) -> int:
        """Radix minimizing latency at a size (ties → smaller k)."""
        return min(self.ks, key=lambda k: (self.latency(k, nbytes), k))

    def best_k_per_size(self) -> Dict[int, int]:
        return {n: self.best_k(n) for n in self.sizes}

    def best_latency(self, nbytes: int) -> float:
        return min(self.latency(k, nbytes) for k in self.ks)

    def flatness(self, nbytes: int) -> float:
        """max/min latency ratio across k at one size.

        Near 1.0 means the radix barely matters — the quantity behind the
        paper's "parameter value shows minimal effect" claim for k-ring on
        Polaris (Fig. 11c).
        """
        series = [self.latency(k, nbytes) for k in self.ks]
        return max(series) / min(series)


def radix_latency_sweep(
    collective: str,
    algorithm: str,
    machine: Union[str, MachineSpec],
    sizes: Sequence[int],
    *,
    ks: Optional[Sequence[int]] = None,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
    jobs: int = 0,
    engine: str = "auto",
) -> RadixSweep:
    """Simulate a generalized algorithm across a (k × size) grid.

    With ``ks=None`` the grid is :func:`repro.selection.tuner.radix_grid`
    over the machine's rank count — the same grid the tuner and the
    analytical profiles use.  ``jobs`` fans the grid out over worker
    processes and ``engine`` selects the simulation core, neither
    changing a single result (see :func:`run_sweep`).
    """
    machine = resolve_machine(machine)
    entry = info(collective, algorithm)
    if not entry.takes_k:
        raise ReproError(
            f"{collective}/{algorithm} is not a generalized algorithm"
        )
    p = machine.nranks
    grid = list(ks) if ks is not None else radix_grid(p, min_k=entry.min_k)
    sweep = RadixSweep(
        collective=collective,
        algorithm=algorithm,
        machine=machine.name,
        nranks=p,
        sizes=list(sizes),
        ks=grid,
    )
    points = [
        SweepPoint(
            collective,
            algorithm,
            nbytes,
            k=k,
            root=root if entry.takes_root else 0,
        )
        for k in grid
        for nbytes in sizes
    ]
    results = run_sweep(points, machine, jobs=jobs, noise=noise,
                        engine=engine)
    errors = sweep_errors(results)
    if errors:
        raise ReproError(
            f"{len(errors)} sweep point(s) failed: " + "; ".join(errors[:4])
        )
    for res in results:
        sweep.times_us.setdefault(res.point.k, {})[res.point.nbytes] = (
            res.time_us
        )
    return sweep
