"""Radix sweeps — the measurement behind paper Figs. 8, 10, and 11.

A :class:`RadixSweep` holds the full (k × message-size) latency surface
for one generalized algorithm on one machine, with accessors for the
views the paper plots: latency-vs-k at a size (Fig. 8), latency-vs-size at
chosen radices against baselines (Fig. 10), and the optimal radix per
size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.registry import build_schedule, info
from ..errors import ReproError
from ..simnet.machine import MachineSpec
from ..simnet.noise import NoiseModel
from ..simnet.simulate import simulate
from ..selection.tuner import radix_grid

__all__ = ["RadixSweep", "radix_latency_sweep"]


@dataclass
class RadixSweep:
    """Latency surface ``times_us[k][nbytes]`` for one algorithm."""

    collective: str
    algorithm: str
    machine: str
    nranks: int
    sizes: List[int]
    ks: List[int]
    times_us: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def latency(self, k: int, nbytes: int) -> float:
        try:
            return self.times_us[k][nbytes]
        except KeyError:
            raise ReproError(
                f"sweep has no point (k={k}, n={nbytes})"
            ) from None

    def series_for_k(self, k: int) -> List[Tuple[int, float]]:
        """(size, latency) series at a fixed radix — a Fig. 10 line."""
        return [(n, self.latency(k, n)) for n in self.sizes]

    def series_for_size(self, nbytes: int) -> List[Tuple[int, float]]:
        """(k, latency) series at a fixed size — a Fig. 8 line."""
        return [(k, self.latency(k, nbytes)) for k in self.ks]

    def best_k(self, nbytes: int) -> int:
        """Radix minimizing latency at a size (ties → smaller k)."""
        return min(self.ks, key=lambda k: (self.latency(k, nbytes), k))

    def best_k_per_size(self) -> Dict[int, int]:
        return {n: self.best_k(n) for n in self.sizes}

    def best_latency(self, nbytes: int) -> float:
        return min(self.latency(k, nbytes) for k in self.ks)

    def flatness(self, nbytes: int) -> float:
        """max/min latency ratio across k at one size.

        Near 1.0 means the radix barely matters — the quantity behind the
        paper's "parameter value shows minimal effect" claim for k-ring on
        Polaris (Fig. 11c).
        """
        series = [self.latency(k, nbytes) for k in self.ks]
        return max(series) / min(series)


def radix_latency_sweep(
    collective: str,
    algorithm: str,
    machine: MachineSpec,
    sizes: Sequence[int],
    *,
    ks: Optional[Sequence[int]] = None,
    root: int = 0,
    noise: Optional[NoiseModel] = None,
) -> RadixSweep:
    """Simulate a generalized algorithm across a (k × size) grid.

    With ``ks=None`` the grid is :func:`repro.selection.tuner.radix_grid`
    over the machine's rank count — the same grid the tuner and the
    analytical profiles use.
    """
    entry = info(collective, algorithm)
    if not entry.takes_k:
        raise ReproError(
            f"{collective}/{algorithm} is not a generalized algorithm"
        )
    p = machine.nranks
    grid = list(ks) if ks is not None else radix_grid(p, min_k=entry.min_k)
    sweep = RadixSweep(
        collective=collective,
        algorithm=algorithm,
        machine=machine.name,
        nranks=p,
        sizes=list(sizes),
        ks=grid,
    )
    for k in grid:
        schedule = build_schedule(
            collective, algorithm, p, k=k, root=root if entry.takes_root else 0
        )
        sweep.times_us[k] = {}
        for nbytes in sizes:
            sweep.times_us[k][nbytes] = simulate(
                schedule, machine, nbytes, noise=noise
            ).time_us
    return sweep
