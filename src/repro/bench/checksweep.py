"""Registry-wide static-analysis sweep (the ``repro-check --all`` gate).

Runs :func:`repro.check.run_checks` over every registered
``(collective, algorithm)`` pair across the acceptance grid —
``p ∈ {2..17, 32, 64}`` (through every non-power corner up to 17, then
the two scale points) × ``k ∈ {2..8}`` clamped to each algorithm's
``min_k``/:func:`~repro.core.registry.max_radix` — and reports one
record per configuration.

Parallelism follows the repo's determinism contract
(:mod:`repro.parallel`): points are chunked per (collective, algorithm)
pair, the worker is a module-level picklable function, and results come
back in chunk-submission order, so the sweep output is bit-identical at
any ``--jobs`` level.  Each worker process grows its own schedule/check
caches; within a chunk the fingerprint memo already collapses repeated
content (e.g. clamped radices aliasing the same schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..check import DEFAULT_NBYTES, check_schedule
from ..core.registry import _REGISTRY, max_radix
from ..errors import ReproError
from ..parallel import run_chunks

__all__ = [
    "CheckPoint",
    "CheckRecord",
    "default_grid",
    "grid_points",
    "run_check_sweep",
    "summarize_check_sweep",
]

#: The acceptance grid: every count through the non-power corners up to
#: 17, plus the 32- and 64-rank scale points.
DEFAULT_PS: Tuple[int, ...] = tuple(range(2, 18)) + (32, 64)

#: Radix grid; clamped per algorithm to [min_k, max_radix].
DEFAULT_KS: Tuple[int, ...] = tuple(range(2, 9))


@dataclass(frozen=True)
class CheckPoint:
    """One sweep configuration to analyze.

    ``engine="collapsed"`` additionally runs the rank-equivalence-class
    analysis (:func:`repro.compile.classify`) on a symmetric reference
    machine and records the class count — still purely static: the
    analysis verifies the relabeling-bijection invariants without ever
    touching the simulator.
    """

    collective: str
    algorithm: str
    p: int
    k: Optional[int] = None
    nbytes: int = DEFAULT_NBYTES
    eager_threshold: Optional[int] = None
    engine: str = "materialized"


@dataclass(frozen=True)
class CheckRecord:
    """One analyzed configuration: verdict plus finding counts.

    ``error`` carries a build/analysis crash (registry rejected the
    parameters, say); such records fail the sweep like finding errors
    do.  ``findings`` holds the serialized findings for failing points
    only — clean points stay light so the full-grid JSON is readable.
    """

    collective: str
    algorithm: str
    p: int
    k: Optional[int]
    ok: bool
    errors: int = 0
    warnings: int = 0
    infos: int = 0
    findings: Tuple[Dict[str, object], ...] = ()
    error: Optional[str] = None
    nclasses: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (stable keys)."""
        out: Dict[str, object] = {
            "collective": self.collective,
            "algorithm": self.algorithm,
            "p": self.p,
            "k": self.k,
            "ok": self.ok,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
        }
        if self.findings:
            out["findings"] = [dict(f) for f in self.findings]
        if self.error is not None:
            out["error"] = self.error
        if self.nclasses is not None:
            out["nclasses"] = self.nclasses
        return out


def default_grid(
    entry, ps: Sequence[int] = DEFAULT_PS, ks: Sequence[int] = DEFAULT_KS
) -> List[Tuple[int, Optional[int]]]:
    """The (p, k) configurations to check for one registry entry.

    Radices are clamped to ``[min_k, max_radix(p)]`` then deduplicated,
    so e.g. k ∈ {2..8} at p = 4 collapses to {2, 3, 4}.
    """
    points: List[Tuple[int, Optional[int]]] = []
    for p in ps:
        if not entry.takes_k:
            points.append((p, None))
            continue
        cap = max_radix(entry.collective, entry.name, p)
        seen = set()
        for k in ks:
            kk = min(max(k, entry.min_k), cap)
            if kk not in seen:
                seen.add(kk)
                points.append((p, kk))
        # min_k below the sweep floor (k-ring's group size 1 = classic
        # ring) is part of the surface; include it explicitly.
        if entry.min_k < min(ks) and entry.min_k not in seen:
            points.append((p, entry.min_k))
    return points


def grid_points(
    ps: Sequence[int] = DEFAULT_PS,
    ks: Sequence[int] = DEFAULT_KS,
    *,
    nbytes: int = DEFAULT_NBYTES,
    eager_threshold: Optional[int] = None,
    collective: Optional[str] = None,
    algorithm: Optional[str] = None,
    engine: str = "materialized",
) -> List[CheckPoint]:
    """Expand the registry × grid into concrete sweep points."""
    points: List[CheckPoint] = []
    for (coll, alg), entry in sorted(_REGISTRY.items()):
        if collective is not None and coll != collective:
            continue
        if algorithm is not None and alg != algorithm:
            continue
        for p, k in default_grid(entry, ps, ks):
            points.append(
                CheckPoint(
                    collective=coll,
                    algorithm=alg,
                    p=p,
                    k=k,
                    nbytes=nbytes,
                    eager_threshold=eager_threshold,
                    engine=engine,
                )
            )
    return points


def _check_chunk(points: Sequence[CheckPoint]) -> List[CheckRecord]:
    """Worker: analyze one chunk of points, isolating per-point errors."""
    records: List[CheckRecord] = []
    for pt in points:
        try:
            report = check_schedule(
                pt.collective,
                pt.algorithm,
                pt.p,
                k=pt.k,
                nbytes=pt.nbytes,
                eager_threshold=pt.eager_threshold,
            )
        except ReproError as exc:
            records.append(
                CheckRecord(
                    collective=pt.collective,
                    algorithm=pt.algorithm,
                    p=pt.p,
                    k=pt.k,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        nclasses = None
        if pt.engine == "collapsed":
            try:
                nclasses = _classify_point(pt)
            except ReproError as exc:
                records.append(
                    CheckRecord(
                        collective=pt.collective,
                        algorithm=pt.algorithm,
                        p=pt.p,
                        k=pt.k,
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
        records.append(
            CheckRecord(
                collective=pt.collective,
                algorithm=pt.algorithm,
                p=pt.p,
                k=pt.k,
                ok=report.ok,
                errors=report.errors,
                warnings=report.warnings,
                infos=report.infos,
                findings=tuple(
                    f.to_dict()
                    for f in report.findings
                    if f.severity == "error"
                )
                if not report.ok
                else (),
                nclasses=nclasses,
            )
        )
    return records


def _classify_point(pt: CheckPoint) -> int:
    """Class count for one grid point on a symmetric reference machine.

    Purely static: :func:`repro.compile.get_or_classify` verifies the
    peer-relabeling bijection invariants while partitioning, so a point
    that survives this call is proven safe for the collapsed simulation
    core — without ever running it.
    """
    from ..compile import get_or_classify
    from ..core.cache import global_schedule_cache
    from ..simnet.machines import reference

    schedule, _ = global_schedule_cache().get_or_build(
        pt.collective, pt.algorithm, pt.p, k=pt.k, root=0
    )
    return get_or_classify(schedule, reference(pt.p), pt.nbytes).nclasses


def run_check_sweep(
    points: Sequence[CheckPoint], *, jobs: int = 0
) -> List[CheckRecord]:
    """Analyze every point, chunked per (collective, algorithm) pair.

    Deterministic at any ``jobs`` level: chunks are formed in sorted
    point order and :func:`repro.parallel.run_chunks` flattens results
    in submission order.
    """
    chunks: List[List[CheckPoint]] = []
    current_pair: Optional[Tuple[str, str]] = None
    for pt in points:
        pair = (pt.collective, pt.algorithm)
        if pair != current_pair:
            chunks.append([])
            current_pair = pair
        chunks[-1].append(pt)
    return run_chunks(_check_chunk, chunks, jobs=jobs)


def summarize_check_sweep(records: Sequence[CheckRecord]) -> Dict[str, object]:
    """Aggregate a sweep into the verdict dict the CLI/CI report prints."""
    failing = [r for r in records if not r.ok]
    by_pair: Dict[str, int] = {}
    for r in failing:
        key = f"{r.collective}/{r.algorithm}"
        by_pair[key] = by_pair.get(key, 0) + 1
    out: Dict[str, object] = {
        "points": len(records),
        "ok": len(records) - len(failing),
        "failing": len(failing),
        "warnings": sum(r.warnings for r in records),
        "infos": sum(r.infos for r in records),
        "failing_by_pair": dict(sorted(by_pair.items())),
    }
    classified = [r for r in records if r.nclasses is not None]
    if classified:
        # --engine collapsed: how hard the grid collapses — the ratio
        # is the sublinearity the batched core buys on this grid.
        out["classes"] = {
            "points": len(classified),
            "total_ranks": sum(r.p for r in classified),
            "total_classes": sum(r.nclasses for r in classified),
        }
    return out
