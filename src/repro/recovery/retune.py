"""Degraded-mode re-tuning: re-pick ``(algorithm, k)`` after a degradation.

A link that survives but runs slow (a flapping cable, a congested
dragonfly global link) changes which generalized algorithm — and which
radix — wins.  A wide k-nomial that was optimal on a healthy fabric
funnels a large fan-in through the degraded link; a different radix (or
k-ring's link-aware rotation) can route around the penalty.

This module turns the detector's :class:`~repro.recovery.detect.LinkDegraded`
notifications back into a :class:`~repro.faults.plan.FaultPlan` carrying
only the degradations, then re-runs the selection sweep under that plan
(:func:`repro.selection.tuner.sweep_collective` grew ``faults=`` for
exactly this) and returns the new winner.  Deterministic: the sweep is
bit-identical at any ``jobs``, so the re-pick is too.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..errors import SelectionError
from ..faults.plan import FaultPlan, LinkFault
from ..obs import OBS
from ..simnet.machine import MachineSpec
from .detect import LinkDegraded

__all__ = ["degraded_plan", "retune_degraded"]


def degraded_plan(
    degraded: Iterable[LinkDegraded], *, seed: int = 0
) -> Optional[FaultPlan]:
    """A fault plan carrying only the observed degradations (no loss).

    This is what re-tuning sweeps under: the simulator applies the link
    delay/bandwidth penalties while everything still completes.
    """
    links = tuple(
        LinkFault(
            src=d.src,
            dst=d.dst,
            delay_factor=d.delay_factor,
            bandwidth_factor=d.bandwidth_factor,
        )
        for d in degraded
        if d.delay_factor > 1.0 or d.bandwidth_factor > 1.0
    )
    if not links:
        return None
    return FaultPlan(seed=seed, links=links)


def retune_degraded(
    collective: str,
    machine: MachineSpec,
    nbytes: int,
    degraded: Iterable[LinkDegraded],
    *,
    algorithms: Optional[Sequence[str]] = None,
    root: int = 0,
    jobs: int = 0,
) -> Tuple[str, Optional[int]]:
    """Best ``(algorithm, k)`` for ``collective`` at ``nbytes`` given the
    degradations.

    Sweeps the registered (or given) algorithms over the radix grid under
    a plan built from ``degraded`` and returns the argmin.  With no
    effective degradation this is the plain healthy-machine winner.
    """
    from ..selection.tuner import sweep_collective

    plan = degraded_plan(degraded)
    sweep = sweep_collective(
        collective,
        machine,
        [int(nbytes)],
        algorithms=algorithms,
        root=root,
        faults=plan,
        jobs=jobs,
    )
    best = sweep.best(int(nbytes))
    if OBS.enabled:
        OBS.metrics.counter(
            "repro_recovery_retunes_total", collective=collective
        ).inc()
    return best.choice.algorithm, best.choice.k


def retune_or_keep(
    collective: str,
    algorithm: str,
    machine: MachineSpec,
    nbytes: int,
    degraded: Iterable[LinkDegraded],
    *,
    k: Optional[int] = None,
    root: int = 0,
    jobs: int = 0,
) -> Tuple[str, Optional[int]]:
    """Like :func:`retune_degraded`, but sticky: keeps the incumbent
    ``(algorithm, k)`` when the sweep cannot run (e.g. an algorithm set
    with no registered entry for this collective) *and* when the sweep's
    winner merely ties the incumbent's time — switching schedules is not
    free, so a re-pick must strictly beat what is already running."""
    from ..selection.tuner import sweep_collective
    from ..selection.table import Choice

    try:
        sweep = sweep_collective(
            collective,
            machine,
            [int(nbytes)],
            root=root,
            faults=degraded_plan(degraded),
            jobs=jobs,
        )
        best = sweep.best(int(nbytes))
    except SelectionError:
        return algorithm, k
    incumbent = sweep.times_for(Choice(algorithm, k)).get(int(nbytes))
    if incumbent is not None and best.time == incumbent:
        return algorithm, k
    if OBS.enabled:
        OBS.metrics.counter(
            "repro_recovery_retunes_total", collective=collective
        ).inc()
    return best.choice.algorithm, best.choice.k
