"""Self-healing collectives: detect, shrink, rebuild, resume.

ULFM-inspired fault tolerance over both execution backends.  A failure
mid-collective — an injected crash, an exhausted retry budget, a silent
rank — no longer ends in a terminal
:class:`~repro.errors.PartialFailure`: the
:class:`~repro.recovery.policy.RecoveryPolicy` decides whether to abort,
shrink the group and rerun over survivors, or substitute spare
processes, and the loop rebuilds the schedule for the new group size
through the :class:`~repro.core.cache.ScheduleCache` (the paper's
generalized algorithms are parameterized by ``p``, so "rebuild for the
survivors" is just another registry build — the property that makes
shrink recovery natural here).

Entry points:

* :func:`~repro.recovery.execute.execute_with_recovery` — real data,
  threaded backend, wall-clock recovery (also reachable as
  ``repro.execute(..., recovery=...)``);
* :func:`~repro.recovery.sim.simulate_with_recovery` — simulated
  time-to-recovery on a modeled machine, deterministic and
  sweep-friendly;
* :func:`~repro.recovery.retune.retune_degraded` — re-pick
  ``(algorithm, k)`` under degraded links.

See DESIGN.md §11 for the recovery model (detector semantics, shrink
protocol, resume-state invariants).
"""

from .detect import (
    HeartbeatDetector,
    LinkDegraded,
    RankFailure,
    failures_from,
    simulated_failures,
    suspects_of,
)
from .execute import RecoveryRun, execute_with_recovery
from .policy import (
    RECOVERY_MODES,
    RecoveryPolicy,
    RecoveryReport,
    RoundRecord,
    normalize_policy,
)
from .retune import degraded_plan, retune_degraded
from .shrink import elect_root, shrink_machine, shrink_plan, substitute_plan
from .sim import SimRecoveryResult, detection_timeout, simulate_with_recovery

__all__ = [
    "HeartbeatDetector",
    "LinkDegraded",
    "RankFailure",
    "failures_from",
    "simulated_failures",
    "suspects_of",
    "RecoveryRun",
    "execute_with_recovery",
    "RECOVERY_MODES",
    "RecoveryPolicy",
    "RecoveryReport",
    "RoundRecord",
    "normalize_policy",
    "degraded_plan",
    "retune_degraded",
    "elect_root",
    "shrink_machine",
    "shrink_plan",
    "substitute_plan",
    "SimRecoveryResult",
    "detection_timeout",
    "simulate_with_recovery",
]
