"""Recovery policy and the report it produces.

:class:`RecoveryPolicy` is the one knob surface for self-healing: what to
do on failure (``abort`` / ``shrink`` / ``spare``), how many
detect-shrink-rebuild rounds to attempt before surrendering, how many
spare processes can be substituted, and the detection timeout the
heartbeat (or simulated) detector uses.  It is frozen — policies are
values, safely shared across rounds and processes.

:class:`RecoveryReport` is the flight recorder: one :class:`RoundRecord`
per attempt, carrying the detected failures, the survivor set agreed on,
and the fingerprint of the rebuilt schedule.  The property tests pin
these (same seed → same survivors, same fingerprints); the chaos harness
and the CI artifact serialize them via :meth:`RecoveryReport.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import ExecutionError
from .detect import LinkDegraded, RankFailure

__all__ = [
    "RECOVERY_MODES",
    "RecoveryPolicy",
    "normalize_policy",
    "RoundRecord",
    "RecoveryReport",
]

RECOVERY_MODES = ("abort", "shrink", "spare")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How an execution reacts to detected rank failures.

    ``mode``:

    * ``"abort"`` — classic MPI: any failure raises
      :class:`~repro.errors.RecoveryError` immediately.
    * ``"shrink"`` — ULFM shrink-and-retry: drop the failed ranks, rebuild
      the schedule over the survivors, re-contribute survivor inputs, and
      rerun.  The result is the collective *over the survivors* (what a
      shrunk communicator computes); data held only by a failed rank —
      a bcast/scatter root — is unrecoverable in this mode.
    * ``"spare"`` — substitute-spare: each failed rank's slot is adopted
      by a fresh spare process that restores the slot's input from its
      checkpoint, so the *original* p-rank result is preserved.  Bounded
      by ``spares``; when spares run out the policy degrades to shrink.

    ``max_rounds`` bounds detect→shrink→rebuild→rerun attempts (each new
    failure costs a round).  ``min_ranks`` is the floor the group may
    shrink to.  ``detection_timeout`` (seconds for the threaded backend,
    microseconds for the simulator) overrides the backend's derived
    heartbeat timeout when set.  ``retune`` re-picks ``(algorithm, k)``
    for degraded links before rebuilding.
    """

    mode: str = "shrink"
    max_rounds: int = 4
    spares: int = 0
    min_ranks: int = 1
    detection_timeout: Optional[float] = None
    retune: bool = False

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise ExecutionError(
                f"unknown recovery mode {self.mode!r}; "
                f"expected one of {RECOVERY_MODES}"
            )
        if self.max_rounds < 1:
            raise ExecutionError(
                f"recovery max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.spares < 0:
            raise ExecutionError(f"recovery spares must be >= 0, got {self.spares}")
        if self.min_ranks < 1:
            raise ExecutionError(
                f"recovery min_ranks must be >= 1, got {self.min_ranks}"
            )
        if self.detection_timeout is not None and self.detection_timeout <= 0:
            raise ExecutionError(
                f"recovery detection_timeout must be > 0, "
                f"got {self.detection_timeout}"
            )

    def describe(self) -> str:
        """One-line summary of the policy (mode, round cap, options)."""
        bits = [self.mode, f"max_rounds={self.max_rounds}"]
        if self.spares:
            bits.append(f"spares={self.spares}")
        if self.retune:
            bits.append("retune")
        return " ".join(bits)


def normalize_policy(
    recovery: Union[None, str, RecoveryPolicy]
) -> Optional[RecoveryPolicy]:
    """Accept the ``recovery=`` argument in all its spellings.

    ``None`` means recovery off (failures raise as before); a string is a
    mode with default knobs; a :class:`RecoveryPolicy` passes through.
    """
    if recovery is None:
        return None
    if isinstance(recovery, RecoveryPolicy):
        return recovery
    if isinstance(recovery, str):
        return RecoveryPolicy(mode=recovery)
    raise ExecutionError(
        f"recovery must be None, a mode string, or a RecoveryPolicy; "
        f"got {type(recovery).__name__}"
    )


@dataclass(frozen=True)
class RoundRecord:
    """One detect→shrink→rebuild→rerun attempt.

    ``survivors`` are the *global* ranks (original numbering, spares
    included) whose slots this round executed over; ``fingerprint`` is
    the rebuilt schedule's content hash; ``action`` is what the policy
    did after the previous round's failures ("initial", "shrink",
    "spare", "retune").
    """

    round: int
    action: str
    nranks: int
    survivors: Tuple[int, ...]
    fingerprint: str
    algorithm: str
    k: Optional[int]
    failures: Tuple[RankFailure, ...] = ()
    degraded: Tuple[LinkDegraded, ...] = ()
    succeeded: bool = False

    def to_dict(self) -> dict:
        """JSON-ready form (as embedded in recovery reports)."""
        return {
            "round": self.round,
            "action": self.action,
            "nranks": self.nranks,
            "survivors": list(self.survivors),
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "k": self.k,
            "failures": [f.describe() for f in self.failures],
            "degraded": [d.describe() for d in self.degraded],
            "succeeded": self.succeeded,
        }


@dataclass
class RecoveryReport:
    """The full recovery history of one collective execution."""

    policy: RecoveryPolicy
    rounds: List[RoundRecord] = field(default_factory=list)
    recovered: bool = False
    time_to_recovery: float = 0.0   # backend clock units (s wall / us sim)

    @property
    def nrounds(self) -> int:
        """Number of execution rounds, including the failed ones."""
        return len(self.rounds)

    @property
    def survivors(self) -> Tuple[int, ...]:
        """Survivor set of the last round (the final group)."""
        return self.rounds[-1].survivors if self.rounds else ()

    @property
    def failures(self) -> Tuple[RankFailure, ...]:
        """Every failure detected across all rounds, in detection order."""
        out: List[RankFailure] = []
        for record in self.rounds:
            out.extend(record.failures)
        return tuple(out)

    def fingerprints(self) -> Tuple[str, ...]:
        """Schedule fingerprint per round — the determinism invariant."""
        return tuple(r.fingerprint for r in self.rounds)

    def to_dict(self) -> dict:
        """JSON-ready form (what ``repro-recover -o`` serializes)."""
        return {
            "policy": self.policy.describe(),
            "recovered": self.recovered,
            "time_to_recovery": self.time_to_recovery,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def describe(self) -> str:
        """One-line human summary: outcome, rounds, failures, survivors."""
        if not self.rounds:
            return "no rounds executed"
        last = self.rounds[-1]
        status = "recovered" if self.recovered else "UNRECOVERED"
        nfail = len(self.failures)
        return (
            f"{status} after {self.nrounds} round(s): "
            f"{nfail} failure(s), final group {last.nranks} rank(s) "
            f"[{last.algorithm}"
            + (f" k={last.k}" if last.k is not None else "")
            + "]"
        )
