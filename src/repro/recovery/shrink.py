"""Communicator shrink: remapping fault plans, roots, and machines.

When the group shrinks from ``p`` local ranks to the survivors, every
rank-indexed artifact must be renumbered into the new dense ``[0, p')``
space: the :class:`~repro.faults.plan.FaultPlan` (so faults declared on
survivors keep firing in later rounds, and faults on the dead are
dropped), the collective root (re-elected when the old root died), and
the simulated :class:`~repro.simnet.machine.MachineSpec` (fewer ranks,
same fabric).  All pure functions of their inputs — shrink is as
deterministic as the failures that triggered it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import MachineError
from ..faults.plan import Crash, FaultPlan, LinkFault, Straggler
from ..simnet.machine import MachineSpec

__all__ = ["shrink_plan", "substitute_plan", "elect_root", "shrink_machine"]


def _position_map(survivors: Sequence[int]) -> dict:
    return {old: new for new, old in enumerate(survivors)}


def shrink_plan(
    plan: Optional[FaultPlan], survivors: Sequence[int]
) -> Optional[FaultPlan]:
    """Renumber a fault plan into the survivors' dense rank space.

    Faults addressing a dead rank are dropped; faults on survivors are
    remapped to their new indices so multi-failure scenarios unfold round
    by round (a crash declared on old rank 5 still fires after old rank 1
    died, now addressed as the shrunk group's rank 4).  Global rates
    (drop/dup/delay) and the seed carry over unchanged — the counter-based
    RNG keys on (link, seq, attempt), so survivor traffic stays seeded
    identically regardless of group size.
    """
    if plan is None:
        return None
    pos = _position_map(survivors)
    links = tuple(
        LinkFault(
            src=pos[lf.src],
            dst=pos[lf.dst],
            drop_rate=lf.drop_rate,
            dup_rate=lf.dup_rate,
            delay_factor=lf.delay_factor,
            bandwidth_factor=lf.bandwidth_factor,
        )
        for lf in plan.links
        if lf.src in pos and lf.dst in pos
    )
    stragglers = tuple(
        Straggler(rank=pos[s.rank], factor=s.factor)
        for s in plan.stragglers
        if s.rank in pos
    )
    crashes = tuple(
        Crash(rank=pos[c.rank], step=c.step)
        for c in plan.crashes
        if c.rank in pos
    )
    return FaultPlan(
        drop_rate=plan.drop_rate,
        dup_rate=plan.dup_rate,
        delay_rate=plan.delay_rate,
        delay_factor=plan.delay_factor,
        seed=plan.seed,
        links=links,
        stragglers=stragglers,
        crashes=crashes,
        retry=plan.retry,
        straggler_step_delay=plan.straggler_step_delay,
    )


def substitute_plan(
    plan: Optional[FaultPlan], replaced: Sequence[int]
) -> Optional[FaultPlan]:
    """Drop faults addressed at slots a spare just adopted.

    The group keeps its size and numbering — only the processes behind
    the ``replaced`` local slots are fresh — so the plan keeps its rank
    space too, minus the faults that already fired on (or were aimed at)
    the replaced slots.  Without this, a substituted spare would
    immediately re-crash on the same declared ``Crash`` and recovery
    could never converge.
    """
    if plan is None:
        return None
    dead = set(replaced)
    return FaultPlan(
        drop_rate=plan.drop_rate,
        dup_rate=plan.dup_rate,
        delay_rate=plan.delay_rate,
        delay_factor=plan.delay_factor,
        seed=plan.seed,
        links=tuple(
            lf for lf in plan.links if lf.src not in dead and lf.dst not in dead
        ),
        stragglers=tuple(s for s in plan.stragglers if s.rank not in dead),
        crashes=tuple(c for c in plan.crashes if c.rank not in dead),
        retry=plan.retry,
        straggler_step_delay=plan.straggler_step_delay,
    )


def elect_root(
    root_global: int, survivors: Sequence[int]
) -> Tuple[int, bool]:
    """Map a rooted collective's root into the shrunk group.

    Returns ``(local_root, alive)``: the survivor-local index of the old
    root when it survived, else the lowest-numbered survivor (ULFM's
    usual deterministic re-election) with ``alive=False`` so the caller
    can decide whether the root's data is recoverable.
    """
    pos = _position_map(survivors)
    if root_global in pos:
        return pos[root_global], True
    return 0, False


def shrink_machine(machine: MachineSpec, nranks: int) -> MachineSpec:
    """A machine spec for the shrunk group, same fabric parameters.

    Keeps the node geometry when the survivor count still fills whole
    nodes (and whole dragonfly groups); otherwise falls back to one rank
    per node with no dragonfly layer — the conservative all-internode
    assumption, since survivors of node failures rarely stay
    block-packed anyway.
    """
    if nranks == machine.nranks:
        return machine
    if machine.ppn > 1 and nranks % machine.ppn == 0:
        try:
            return machine.with_(nodes=nranks // machine.ppn)
        except MachineError:
            pass  # shrunk node count no longer fills dragonfly groups
    try:
        return machine.with_(nodes=nranks, ppn=1)
    except MachineError:
        return machine.with_(nodes=nranks, ppn=1, dragonfly=None)
