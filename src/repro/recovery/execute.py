"""Shrink-and-retry execution on real data: the threaded recovery loop.

:func:`execute_with_recovery` wraps the build→run→check pipeline of
:func:`repro.api.execute` in detect→shrink→rebuild→rerun rounds:

1. Build the schedule for the current group (through a
   :class:`~repro.core.cache.ScheduleCache`, so rebuilds after a shrink
   are near-free on repeat failures) and run it.
2. On a :class:`~repro.errors.PartialFailure`, convert the structured
   fault diagnoses into :class:`~repro.recovery.detect.RankFailure`
   notifications.  Every survivor observes the same
   :class:`~repro.errors.PartialFailure` (the transport aggregates the
   per-rank faults into one exception), so "agreeing on the survivor
   set" is sorting the blamed ranks — deterministic by construction,
   no consensus round needed.
3. Apply the :class:`~repro.recovery.policy.RecoveryPolicy`: abort,
   shrink the group, or substitute spares; renumber the fault plan
   accordingly; go to 1.

Resume state is *re-contribution*: survivors re-enter the collective
with their original inputs, so the result over the shrunk group is the
collective over survivor inputs — bitwise-correct by construction, with
no partially-reduced buffer surgery.  (The lockstep runner's
``rank_steps`` completion state says how far each rank got — useful for
diagnosis and time accounting — but correctness never depends on
salvaging half-reduced data.)  The two bookkeeping arrays:

* ``slots[i]`` — the original rank whose *input* local slot ``i``
  contributes.  Shrink deletes entries; spare substitution keeps them
  (the spare adopts the slot's input from its checkpoint — the seeded
  ``make_inputs`` arrays stand in for application checkpoint state).
* ``hosts[i]`` — the process hosting slot ``i`` (spares get fresh ids
  ``p, p+1, …``), which is what the report's survivor sets record.

A dead bcast/scatter root is the one unrecoverable shrink case (its data
existed nowhere else); ``spare`` mode exists exactly for that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.blocks import BlockMap
from ..core.cache import ScheduleCache, global_schedule_cache
from ..core.schedule import Schedule
from ..errors import ExecutionError, PartialFailure, RecoveryError
from ..faults.plan import FaultPlan
from ..obs import OBS
from ..runtime.buffers import (
    check_outputs,
    initial_buffers,
    make_inputs,
    reference_result,
)
from ..runtime.executor import execute as execute_lockstep
from ..runtime.ops import SUM, ReduceOp
from ..runtime.threaded import execute_threaded
from .detect import (
    HeartbeatDetector,
    emit_notifications,
    failures_from,
)
from .policy import (
    RecoveryPolicy,
    RecoveryReport,
    RoundRecord,
    normalize_policy,
)
from .shrink import elect_root, shrink_plan, substitute_plan

__all__ = ["RecoveryRun", "execute_with_recovery", "shrunk_inputs"]


@dataclass
class RecoveryRun:
    """Result of a recovered execution.

    ``schedule``/``inputs``/``buffers``/``expected`` describe the *final
    successful round* (local numbering of the final group); ``slots``
    maps each final local rank to the original rank whose input it
    contributed; ``hosts`` to the process that hosted it (ids ``>= p``
    are spares); ``report`` is the full recovery history.
    """

    schedule: Schedule
    inputs: List[np.ndarray]
    buffers: List[np.ndarray]
    expected: Dict[int, np.ndarray]
    slots: Tuple[int, ...]
    hosts: Tuple[int, ...]
    report: RecoveryReport

    @property
    def survivors(self) -> Tuple[int, ...]:
        """Original ranks whose data the final result covers."""
        return self.slots


def shrunk_inputs(
    collective: str,
    inputs: List[np.ndarray],
    count: int,
    slots: Tuple[int, ...],
    *,
    root: int = 0,
    dtype: np.dtype = np.dtype(np.int64),
) -> Tuple[List[np.ndarray], int, int]:
    """Re-contributed inputs for the group ``slots`` of an original
    ``p``-rank collective.

    Returns ``(local_inputs, local_count, local_root)``.  Reduction
    collectives keep the full ``count``; gather-family shrink to the sum
    of the surviving blocks (ascending-slot order keeps the MPICH
    larger-blocks-first invariant, so the survivor block sizes are
    exactly ``BlockMap(local_count, p')``'s); bcast keeps the root's
    vector; scatter keeps only the surviving blocks of it.  Raises
    :class:`~repro.errors.RecoveryError` when the data cannot be
    reconstructed (dead bcast/scatter root).
    """
    p = len(inputs)
    pp = len(slots)
    blocks = BlockMap(count, p)
    root_alive = root in slots
    local_root = slots.index(root) if root_alive else 0

    if collective in ("reduce", "allreduce", "reduce_scatter"):
        return [inputs[g] for g in slots], count, local_root
    if collective in ("gather", "allgather"):
        local = [inputs[g] for g in slots]
        return local, sum(len(x) for x in local), local_root
    if collective == "bcast":
        if not root_alive:
            raise RecoveryError(
                f"bcast root {root} failed and no survivor holds its data; "
                f"use recovery mode 'spare' to restore it"
            )
        return (
            [
                inputs[root] if i == local_root else np.empty(0, dtype=dtype)
                for i in range(pp)
            ],
            count,
            local_root,
        )
    if collective == "scatter":
        if not root_alive:
            raise RecoveryError(
                f"scatter root {root} failed and no survivor holds its "
                f"data; use recovery mode 'spare' to restore it"
            )
        kept = np.concatenate(
            [inputs[root][slice(*blocks.range_of(g))] for g in slots]
        )
        return (
            [
                kept if i == local_root else np.empty(0, dtype=dtype)
                for i in range(pp)
            ],
            len(kept),
            local_root,
        )
    raise RecoveryError(
        f"collective {collective!r} does not support shrink recovery"
    )


def _policy_action(
    policy: RecoveryPolicy,
    slots: List[int],
    hosts: List[int],
    blamed_local: Tuple[int, ...],
    spares_left: int,
    next_spare: int,
) -> Tuple[str, List[int], List[int], int, int]:
    """Apply one round's worth of policy to the group bookkeeping.

    Returns ``(action, slots, hosts, spares_left, next_spare)``; raising
    is the caller's job (it owns the report).
    """
    if policy.mode == "spare" and spares_left >= len(blamed_local):
        hosts = list(hosts)
        for local in blamed_local:
            hosts[local] = next_spare
            next_spare += 1
        return "spare", list(slots), hosts, spares_left - len(blamed_local), next_spare
    # shrink (or spare mode out of spares — degrade to shrink)
    dead = set(blamed_local)
    slots = [g for i, g in enumerate(slots) if i not in dead]
    hosts = [h for i, h in enumerate(hosts) if i not in dead]
    return "shrink", slots, hosts, spares_left, next_spare


def execute_with_recovery(
    collective: str,
    algorithm: str,
    *,
    p: int,
    count: int,
    recovery: Union[str, RecoveryPolicy] = "shrink",
    backend: str = "threaded",
    k: Optional[int] = None,
    root: int = 0,
    op: ReduceOp = SUM,
    dtype: np.dtype = np.dtype(np.int64),
    seed: int = 0,
    check: bool = True,
    rtol: float = 0.0,
    atol: float = 0.0,
    timeout: float = 30.0,
    faults: Optional[FaultPlan] = None,
    cache: Optional[ScheduleCache] = None,
    compiled: bool = True,
) -> RecoveryRun:
    """Run a collective end to end, healing injected failures.

    The self-healing counterpart of :func:`repro.api.execute` — same
    build/run/check pipeline, but a :class:`~repro.errors.PartialFailure`
    triggers the policy's detect→shrink→rebuild→rerun loop instead of
    propagating.  Returns a :class:`RecoveryRun` whose ``report`` says
    what failed, what the group shrank to, and how long healing took;
    raises :class:`~repro.errors.RecoveryError` (report attached) when
    the policy gives up.

    ``compiled`` selects compiled-table vs interpreted execution for
    every round, including reruns on rebuilt (shrunk) schedules —
    results and the healing trajectory are identical either way.
    """
    policy = normalize_policy(recovery)
    if policy is None:
        raise ExecutionError(
            "execute_with_recovery needs a recovery policy; "
            "use repro.execute for the unrecovered path"
        )
    if backend not in ("lockstep", "threaded"):
        raise ExecutionError(
            f"unknown backend {backend!r}; expected 'lockstep' or 'threaded'"
        )
    if backend == "lockstep" and faults is not None:
        raise ExecutionError(
            "faults require backend='threaded' (the lockstep engine has "
            "no wire to lose messages on)"
        )
    cache = cache or global_schedule_cache()
    rng = np.random.default_rng(seed)
    inputs = make_inputs(collective, p, count, dtype=dtype, root=root, rng=rng)

    slots: List[int] = list(range(p))
    hosts: List[int] = list(range(p))
    spares_left = policy.spares
    next_spare = p
    plan = faults
    action = "initial"
    report = RecoveryReport(policy=policy)
    first_failure_at: Optional[float] = None

    span = (
        OBS.span(
            "recover",
            collective=collective,
            algorithm=algorithm,
            policy=policy.describe(),
        )
        if OBS.enabled
        else None
    )
    if span is not None:
        span.__enter__()
    try:
        for round_idx in range(policy.max_rounds):
            try:
                local_inputs, local_count, local_root = shrunk_inputs(
                    collective, inputs, count, tuple(slots),
                    root=root, dtype=dtype,
                )
            except RecoveryError as exc:
                raise RecoveryError(str(exc), report=report) from None
            schedule, _ = cache.get_or_build(
                collective, algorithm, len(slots), k=k, root=local_root
            )
            record = RoundRecord(
                round=round_idx,
                action=action,
                nranks=len(slots),
                survivors=tuple(hosts),
                fingerprint=schedule.fingerprint(),
                algorithm=algorithm,
                k=schedule.k,
            )
            buffers = initial_buffers(
                schedule, local_inputs, local_count, dtype=dtype
            )
            # A fresh heartbeat detector per round: workers beat it as
            # they complete steps, and the transport confirms structured
            # faults on it before raising.
            detector = HeartbeatDetector(
                len(slots),
                timeout=policy.detection_timeout or timeout,
                now=time.monotonic(),
            )
            try:
                if backend == "lockstep":
                    execute_lockstep(schedule, buffers, op=op,
                                     compiled=compiled)
                else:
                    execute_threaded(
                        schedule, buffers, op=op, timeout=timeout,
                        faults=plan, detector=detector, compiled=compiled,
                    )
            except PartialFailure as exc:
                now = time.monotonic()
                if first_failure_at is None:
                    first_failure_at = now
                failures = failures_from(exc.faults, detected_at=now)
                if not failures:  # pragma: no cover - faults always present
                    raise
                emit_notifications(failures, backend=backend)
                # The record carries the failures detected *in* its round
                # (matching the simulated loop), so an abort report still
                # names who died.
                record = dc_replace(record, failures=failures)
                report.rounds.append(record)
                if policy.mode == "abort":
                    raise RecoveryError(
                        f"{schedule.describe()}: aborting on "
                        f"{len(failures)} failure(s) "
                        f"({', '.join(f.describe() for f in failures)})",
                        report=report,
                    ) from exc
                blamed_local = tuple(
                    sorted({f.rank for f in failures if f.rank < len(slots)})
                )
                if len(slots) - len(blamed_local) < policy.min_ranks:
                    raise RecoveryError(
                        f"{schedule.describe()}: {len(blamed_local)} "
                        f"failure(s) would shrink the group below "
                        f"min_ranks={policy.min_ranks}",
                        report=report,
                    ) from exc
                old_size = len(slots)
                action, slots, hosts, spares_left, next_spare = _policy_action(
                    policy, slots, hosts, blamed_local, spares_left, next_spare
                )
                if action == "spare":
                    plan = substitute_plan(plan, blamed_local)
                else:
                    survivors_local = [
                        i for i in range(old_size)
                        if i not in set(blamed_local)
                    ]
                    plan = shrink_plan(plan, survivors_local)
                continue
            # Success.
            expected = reference_result(
                collective, local_inputs, local_count, op=op, root=local_root
            )
            if check:
                check_outputs(
                    schedule, buffers, expected, local_count,
                    rtol=rtol, atol=atol,
                )
            report.rounds.append(dc_replace(record, succeeded=True))
            report.recovered = True
            if first_failure_at is not None:
                report.time_to_recovery = time.monotonic() - first_failure_at
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_recovery_runs_total",
                    backend=backend,
                    outcome="recovered" if round_idx else "clean",
                ).inc()
            return RecoveryRun(
                schedule=schedule,
                inputs=local_inputs,
                buffers=buffers,
                expected=expected,
                slots=tuple(slots),
                hosts=tuple(hosts),
                report=report,
            )
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_recovery_runs_total",
                backend=backend,
                outcome="exhausted",
            ).inc()
        raise RecoveryError(
            f"{collective}/{algorithm}: recovery budget exhausted after "
            f"{policy.max_rounds} round(s) "
            f"({len(report.failures)} failure(s) total)",
            report=report,
        )
    finally:
        if span is not None:
            span.__exit__(None, None, None)
