"""Failure detection: heartbeats for real threads, statics for the sim.

Two detectors share one vocabulary of structured notifications —
:class:`RankFailure` and :class:`LinkDegraded` — so the recovery policy
layer (:mod:`repro.recovery.policy`) is backend-agnostic:

* :class:`HeartbeatDetector` is the wall-clock detector the threaded
  transport and sessions feed.  Ranks beat on every completed step; a
  rank silent for longer than the timeout becomes *suspected*, a late
  heartbeat cancels the suspicion (the classic eventually-perfect
  detector compromise), and a structured fault observation *confirms* it
  (confirmed failures are final — no heartbeat resurrects them).  The
  detector itself is deterministic: it never reads a clock, callers pass
  time in, which is what makes the edge cases unit-testable.
* :func:`simulated_failures` is the simulator's detector.  Schedules are
  static and every :class:`~repro.faults.plan.FaultPlan` decision is
  deterministic, so who dies and which links degrade is computable
  without running anything: it replays the plan through
  :func:`repro.faults.sim.analyze` and emits the notifications the
  heartbeat detector *would* have produced.

Suspicion semantics follow ULFM: an exhausted retry budget on a link is
blamed on the *sender* (the receiver cannot distinguish a dead peer from
a dead link, so the peer is declared failed — false positives are the
price of progress, and why the ``spare`` policy exists for data that
cannot be re-contributed).

Every notification is mirrored into :mod:`repro.obs` when enabled
(``repro_recovery_failures_detected_total`` /
``repro_recovery_links_degraded_total``), so chaos runs chart detection
the same way they chart retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.schedule import Schedule
from ..errors import ExecutionError, FaultError
from ..faults.plan import FaultPlan
from ..faults.sim import analyze, match_messages
from ..obs import OBS

__all__ = [
    "RankFailure",
    "LinkDegraded",
    "HeartbeatDetector",
    "suspects_of",
    "failures_from",
    "simulated_failures",
    "emit_notifications",
]


@dataclass(frozen=True)
class RankFailure:
    """A rank declared failed, and why.

    ``kind`` mirrors :class:`~repro.errors.FaultError` kinds (``crash``,
    ``retries_exhausted``, ``timeout``) plus the detector's own
    ``heartbeat`` (silence past the timeout with no structured fault to
    pin it on).  ``step`` is the schedule step the rank died at (or the
    last step it was seen alive at, for heartbeat suspicions); ``peer``
    is the rank that observed the failure, where one did.
    """

    rank: int
    kind: str = "crash"
    step: Optional[int] = None
    peer: Optional[int] = None
    detected_at: Optional[float] = None  # backend clock: wall or simulated

    def describe(self) -> str:
        """One-line summary naming the rank, kind, step, and observer."""
        bits = [f"rank {self.rank} ({self.kind}"]
        if self.step is not None:
            bits.append(f" at step {self.step}")
        if self.peer is not None:
            bits.append(f", observed by rank {self.peer}")
        return "".join(bits) + ")"


@dataclass(frozen=True)
class LinkDegraded:
    """A link running slow (but alive) — input to degraded-mode re-tuning."""

    src: int
    dst: int
    delay_factor: float = 1.0
    bandwidth_factor: float = 1.0
    drop_rate: float = 0.0

    def describe(self) -> str:
        """One-line summary of the degraded link and its factors."""
        return (
            f"link {self.src}->{self.dst} degraded "
            f"(delay x{self.delay_factor:g}, bandwidth /"
            f"{self.bandwidth_factor:g}, drop {self.drop_rate:g})"
        )


class HeartbeatDetector:
    """Deterministic heartbeat/timeout failure detector.

    The caller owns the clock: feed :meth:`heartbeat` as ranks make
    progress and :meth:`poll` at observation points.  A rank whose last
    heartbeat is older than ``timeout`` becomes suspected; a later
    heartbeat cancels the suspicion unless the failure was confirmed
    (via :meth:`confirm`, from a structured fault observation).
    """

    def __init__(self, nranks: int, timeout: float, *, now: float = 0.0) -> None:
        if nranks < 1:
            raise ExecutionError(f"detector needs nranks >= 1, got {nranks}")
        if timeout <= 0:
            raise ExecutionError(f"detector timeout must be > 0, got {timeout}")
        self.nranks = nranks
        self.timeout = timeout
        self._last: Dict[int, float] = {r: now for r in range(nranks)}
        self._last_step: Dict[int, int] = {}
        self._suspected: Dict[int, RankFailure] = {}
        self._confirmed: Dict[int, RankFailure] = {}
        self._cancellations = 0

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ExecutionError(
                f"detector rank {rank} out of range [0, {self.nranks})"
            )

    def heartbeat(self, rank: int, now: float, *, step: Optional[int] = None) -> bool:
        """Record liveness; returns True when it cancels a suspicion."""
        self._check_rank(rank)
        self._last[rank] = now
        if step is not None:
            self._last_step[rank] = step
        if rank in self._suspected and rank not in self._confirmed:
            del self._suspected[rank]
            self._cancellations += 1
            return True
        return False

    def confirm(
        self,
        rank: int,
        *,
        kind: str = "crash",
        step: Optional[int] = None,
        peer: Optional[int] = None,
        now: Optional[float] = None,
    ) -> RankFailure:
        """Mark ``rank`` definitively failed (no heartbeat undoes this)."""
        self._check_rank(rank)
        failure = RankFailure(
            rank=rank, kind=kind, step=step, peer=peer, detected_at=now
        )
        self._confirmed[rank] = failure
        self._suspected.pop(rank, None)
        return failure

    def poll(self, now: float) -> List[RankFailure]:
        """Suspect every silent rank; returns the *newly* suspected ones."""
        fresh: List[RankFailure] = []
        for rank in range(self.nranks):
            if rank in self._confirmed or rank in self._suspected:
                continue
            if now - self._last[rank] > self.timeout:
                failure = RankFailure(
                    rank=rank,
                    kind="heartbeat",
                    step=self._last_step.get(rank),
                    detected_at=now,
                )
                self._suspected[rank] = failure
                fresh.append(failure)
        return fresh

    def suspects(self) -> Tuple[RankFailure, ...]:
        """Current unconfirmed suspicions, in rank order."""
        return tuple(self._suspected[r] for r in sorted(self._suspected))

    def confirmed(self) -> Tuple[RankFailure, ...]:
        """Confirmed failures, in rank order."""
        return tuple(self._confirmed[r] for r in sorted(self._confirmed))

    @property
    def cancellations(self) -> int:
        """How many suspicions were cancelled by a late heartbeat."""
        return self._cancellations

    def alive(self) -> Tuple[int, ...]:
        """Ranks neither suspected nor confirmed failed."""
        dead = set(self._suspected) | set(self._confirmed)
        return tuple(r for r in range(self.nranks) if r not in dead)


def suspects_of(faults: Iterable[FaultError]) -> Tuple[int, ...]:
    """The ranks a set of structured fault observations blames.

    A ``crash`` blames the crashed rank; an exhausted retry budget blames
    the *peer* the receiver was waiting on (ULFM semantics: a dead link is
    indistinguishable from a dead sender, so the sender is declared
    failed).  Sorted, deduplicated.
    """
    blamed: Set[int] = set()
    for fault in faults:
        if fault.kind == "retries_exhausted" and fault.peer is not None:
            blamed.add(fault.peer)
        elif fault.rank is not None:
            blamed.add(fault.rank)
    return tuple(sorted(blamed))


def failures_from(
    faults: Iterable[FaultError], *, detected_at: Optional[float] = None
) -> Tuple[RankFailure, ...]:
    """Convert structured fault errors into :class:`RankFailure` records,
    one per blamed rank (first observation wins)."""
    seen: Dict[int, RankFailure] = {}
    for fault in faults:
        if fault.kind == "retries_exhausted" and fault.peer is not None:
            rank, peer = fault.peer, fault.rank
        elif fault.rank is not None:
            rank, peer = fault.rank, fault.peer
        else:  # pragma: no cover - faults always carry a rank today
            continue
        if rank not in seen:
            seen[rank] = RankFailure(
                rank=rank,
                kind=fault.kind,
                step=fault.step,
                peer=peer,
                detected_at=detected_at,
            )
    return tuple(seen[r] for r in sorted(seen))


def simulated_failures(
    schedule: Schedule, plan: Optional[FaultPlan]
) -> Tuple[Tuple[RankFailure, ...], Tuple[LinkDegraded, ...]]:
    """The simulator's detector: what the plan will kill, statically.

    Replays ``plan`` through the static fault analysis
    (:func:`repro.faults.sim.analyze`) and reports the resulting
    notifications: a :class:`RankFailure` per crashed rank and per sender
    of a message whose every retry is dropped (dead link → sender blamed,
    matching :func:`suspects_of`), and a :class:`LinkDegraded` per
    declared link fault that slows traffic without killing it.
    """
    if plan is None or not plan.is_active:
        return (), ()
    degraded = tuple(
        LinkDegraded(
            src=lf.src,
            dst=lf.dst,
            delay_factor=lf.delay_factor,
            bandwidth_factor=lf.bandwidth_factor,
            drop_rate=lf.drop_rate,
        )
        for lf in plan.links
        if (lf.delay_factor > 1.0 or lf.bandwidth_factor > 1.0)
        and lf.drop_rate < 1.0
    )
    metas = match_messages(schedule)
    statics = analyze(schedule, plan, metas)
    if statics is None:
        return (), degraded
    failures: Dict[int, RankFailure] = {}
    for rank in sorted(statics.crashed):
        failures[rank] = RankFailure(
            rank=rank, kind="crash", step=plan.crash_step(rank)
        )
    for idx in sorted(statics.failed):
        meta = metas[idx]
        if meta.src not in failures:
            failures[meta.src] = RankFailure(
                rank=meta.src,
                kind="retries_exhausted",
                step=meta.send_step,
                peer=meta.dst,
            )
    return tuple(failures[r] for r in sorted(failures)), degraded


def emit_notifications(
    failures: Iterable[RankFailure],
    degraded: Iterable[LinkDegraded] = (),
    *,
    backend: str = "threaded",
) -> None:
    """Mirror detection events into the observability scope (when on)."""
    if not OBS.enabled:
        return
    m = OBS.metrics
    for failure in failures:
        m.counter(
            "repro_recovery_failures_detected_total",
            backend=backend,
            kind=failure.kind,
        ).inc()
    for _ in degraded:
        m.counter(
            "repro_recovery_links_degraded_total", backend=backend
        ).inc()
