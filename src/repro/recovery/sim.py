"""Simulated self-healing: time-to-recovery on the modeled machine.

The simulator's recovery loop mirrors the threaded one
(:mod:`repro.recovery.execute`) but in simulated time, which is what the
recovery sweeps chart: how long from the crash until the survivors have
a result, and what the rebuilt collective costs.

Each round:

1. the static detector (:func:`repro.recovery.detect.simulated_failures`)
   derives which ranks the fault plan kills;
2. the discrete-event simulator runs the schedule anyway, charging the
   *progress time* — how far the live part of the schedule got before
   draining (crashed/stalled ranks hold their peers up exactly as long
   as the message matching says they do);
3. the detection timeout is charged (heartbeats are not simulated as
   traffic; the detector's timeout is the modeled delay between the
   failure and every survivor agreeing on it — see
   :func:`detection_timeout`);
4. the policy shrinks the group or substitutes spares, the schedule is
   rebuilt over the survivors via the
   :class:`~repro.core.cache.ScheduleCache`, and the shrunk group rains
   through again.

Everything here is a pure function of ``(collective, algorithm, machine,
nbytes, plan, policy)`` — no wall clock, no RNG — so recovery sweeps are
bit-identical at any ``--jobs`` setting, the property the parallel sweep
engine guarantees for plain sweeps.  An unrecoverable scenario returns a
:class:`SimRecoveryResult` with ``recovered=False`` (sweeps chart
failures; they don't crash), unlike the threaded path which raises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional, Tuple, Union

from ..core.blocks import block_sizes
from ..core.cache import ScheduleCache, global_schedule_cache
from ..errors import ExecutionError
from ..faults.plan import FaultPlan
from ..obs import OBS
from ..simnet.machine import MachineSpec
from ..simnet.simulate import SimResult, simulate
from .detect import emit_notifications, simulated_failures
from .policy import (
    RecoveryPolicy,
    RecoveryReport,
    RoundRecord,
    normalize_policy,
)
from .shrink import shrink_machine, shrink_plan, substitute_plan

__all__ = [
    "SimRecoveryResult",
    "detection_timeout",
    "simulate_with_recovery",
]


@dataclass(frozen=True)
class SimRecoveryResult:
    """Simulated cost of a collective that healed (or failed to).

    All times in seconds (``*_us`` properties convert).  ``time`` is the
    end-to-end makespan: progress before each failure, detection
    timeouts, and the final successful run.  ``time_to_recovery`` spans
    first failure to the start of the last round (0.0 for a clean run);
    ``post_recovery_time`` is the final round's cost alone.
    """

    time: float
    time_to_recovery: float
    post_recovery_time: float
    rounds: int
    survivors: Tuple[int, ...]
    recovered: bool
    result: Optional[SimResult]
    report: RecoveryReport

    @property
    def time_us(self) -> float:
        """End-to-end makespan in simulator microseconds."""
        return self.time * 1e6

    @property
    def time_to_recovery_us(self) -> float:
        """First failure to the start of the last round, in µs."""
        return self.time_to_recovery * 1e6

    @property
    def post_recovery_us(self) -> float:
        """Cost of the final (successful) round alone, in µs."""
        return self.post_recovery_time * 1e6


def detection_timeout(machine: MachineSpec, policy: RecoveryPolicy) -> float:
    """The modeled failure-detection delay, in seconds.

    ``policy.detection_timeout`` when set; otherwise ten heartbeat
    intervals of the machine's small-message latency — the conventional
    suspicion threshold (a few missed heartbeats) scaled to the fabric
    the heartbeats ride on.
    """
    if policy.detection_timeout is not None:
        return policy.detection_timeout
    return 10.0 * (machine.alpha_inter + machine.port_msg_overhead)


def _shrunk_nbytes(collective: str, nbytes: int, p: int, slots: Tuple[int, ...]) -> int:
    """Total wire payload for the shrunk group.

    Gather-family totals are the sum of per-rank contributions, so they
    shrink with the group; rooted-vector and reduction collectives keep
    the full buffer.
    """
    if collective in ("gather", "allgather", "scatter", "reduce_scatter"):
        sizes = block_sizes(nbytes, p)
        return sum(sizes[g] for g in slots)
    return nbytes


def simulate_with_recovery(
    collective: str,
    algorithm: str,
    machine: MachineSpec,
    nbytes: int,
    *,
    recovery: Union[str, RecoveryPolicy] = "shrink",
    k: Optional[int] = None,
    root: int = 0,
    faults: Optional[FaultPlan] = None,
    noise=None,
    cache: Optional[ScheduleCache] = None,
) -> SimRecoveryResult:
    """Simulate a collective under ``faults`` with self-healing.

    Deterministic: same arguments → same result, bit for bit.  Returns a
    :class:`SimRecoveryResult`; surrendering (abort policy, budget
    exhausted, group below ``min_ranks``, dead rooted-collective root
    with no spare) yields ``recovered=False`` rather than raising, so
    recovery sweeps can chart unrecoverable corners.
    """
    policy = normalize_policy(recovery)
    if policy is None:
        raise ExecutionError(
            "simulate_with_recovery needs a recovery policy; "
            "use repro.simulate for the unrecovered path"
        )
    cache = cache or global_schedule_cache()
    p = machine.nranks

    slots: List[int] = list(range(p))
    hosts: List[int] = list(range(p))
    spares_left = policy.spares
    next_spare = p
    plan = faults
    action = "initial"
    report = RecoveryReport(policy=policy)
    total = 0.0
    failed_at: Optional[float] = None

    def surrender() -> SimRecoveryResult:
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_recovery_runs_total", backend="sim",
                outcome="unrecovered",
            ).inc()
        return SimRecoveryResult(
            time=total,
            time_to_recovery=(total - failed_at) if failed_at is not None else 0.0,
            post_recovery_time=0.0,
            rounds=report.nrounds,
            survivors=tuple(hosts),
            recovered=False,
            result=None,
            report=report,
        )

    for round_idx in range(policy.max_rounds):
        p_cur = len(slots)
        root_alive = root in slots
        local_root = slots.index(root) if root_alive else 0
        if collective in ("bcast", "scatter") and not root_alive:
            # The root's data existed nowhere else: unrecoverable by
            # shrinking.  (Spare mode replaces the root's slot before we
            # ever get here.)
            return surrender()
        machine_cur = shrink_machine(machine, p_cur)
        nbytes_cur = _shrunk_nbytes(collective, nbytes, p, tuple(slots))
        schedule, _ = cache.get_or_build(
            collective, algorithm, p_cur, k=k, root=local_root
        )
        failures, degraded = simulated_failures(schedule, plan)
        if policy.retune and degraded and round_idx == 0:
            # Degraded links change which (algorithm, k) wins: re-pick
            # once, up front, under the observed degradations.
            from .retune import retune_or_keep

            algorithm, k = retune_or_keep(
                collective, algorithm, machine_cur, nbytes_cur, degraded,
                k=k, root=local_root,
            )
            schedule, _ = cache.get_or_build(
                collective, algorithm, p_cur, k=k, root=local_root
            )
            failures, degraded = simulated_failures(schedule, plan)
            action = "retune"
        record = RoundRecord(
            round=round_idx,
            action=action,
            nranks=p_cur,
            survivors=tuple(hosts),
            fingerprint=schedule.fingerprint(),
            algorithm=algorithm,
            k=schedule.k,
            failures=failures,
            degraded=degraded,
        )
        res = simulate(
            schedule, machine_cur, nbytes_cur, noise=noise, faults=plan
        )
        if not failures and res.complete:
            total += res.time
            report.rounds.append(dc_replace(record, succeeded=True))
            report.recovered = True
            ttr = 0.0
            if failed_at is not None:
                ttr = (total - res.time) - failed_at
                report.time_to_recovery = ttr
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_recovery_runs_total", backend="sim",
                    outcome="recovered" if round_idx else "clean",
                ).inc()
            return SimRecoveryResult(
                time=total,
                time_to_recovery=ttr,
                post_recovery_time=res.time,
                rounds=report.nrounds,
                survivors=tuple(hosts),
                recovered=True,
                result=res,
                report=report,
            )
        # Failure round: charge the progress made plus detection delay.
        emit_notifications(failures, degraded, backend="sim")
        report.rounds.append(record)
        progress = res.time
        detect = detection_timeout(machine_cur, policy)
        if failed_at is None:
            failed_at = total + progress
        total += progress + detect
        if policy.mode == "abort":
            return surrender()
        blamed_local = tuple(
            sorted({f.rank for f in failures if 0 <= f.rank < p_cur})
        )
        if not blamed_local:  # pragma: no cover - incomplete sim implies blame
            return surrender()
        if p_cur - len(blamed_local) < policy.min_ranks:
            return surrender()
        if policy.mode == "spare" and spares_left >= len(blamed_local):
            for local in blamed_local:
                hosts[local] = next_spare
                next_spare += 1
            spares_left -= len(blamed_local)
            plan = substitute_plan(plan, blamed_local)
            action = "spare"
        else:
            dead = set(blamed_local)
            survivors_local = [i for i in range(p_cur) if i not in dead]
            slots = [slots[i] for i in survivors_local]
            hosts = [hosts[i] for i in survivors_local]
            plan = shrink_plan(plan, survivors_local)
            action = "shrink"
    return surrender()
