"""Non-generalized baseline algorithms.

These are the comparison points the paper measures against (§VI-B): the
fixed-radix MPICH algorithms, the naïve "linear" algorithms MPICH uses for
some small-communicator cases, and the composite large-message workhorses
(van-de-Geijn scatter-allgather broadcast and Rabenseifner
reduce-scatter-allgather allreduce).

The radix-2 tree and butterfly baselines (binomial, recursive doubling)
live in :mod:`repro.core.knomial` and :mod:`repro.core.recursive` as exact
``k = 2`` specializations of the generalized builders — by construction
there is no drift between a generalized algorithm at its default radix and
its classic counterpart, which is the property paper Fig. 7 checks.
"""

from __future__ import annotations

from typing import List

from ..errors import ScheduleError
from .knomial import knomial_scatter
from .primitives import (
    absolute_rank,
    all_blocks,
    check_root,
    compose,
    dualize_allgather,
    empty_programs,
)
from .recursive import recursive_multiplying_allgather
from .ring import ring_allgather
from .schedule import RankProgram, RecvOp, Schedule, SendOp

__all__ = [
    "linear_bcast",
    "linear_reduce",
    "linear_gather",
    "linear_scatter",
    "scatter_allgather_bcast",
    "reduce_scatter_allgather_allreduce",
    "recursive_halving_reduce_scatter",
]


def linear_bcast(p: int, *, root: int = 0) -> Schedule:
    """Naïve broadcast: the root sends to every rank sequentially.

    Cost ``(p-1)(α + βn)`` — the paper's §III-B motivating example of what
    tree algorithms beat.  Sequential (one step per destination), so the
    simulator charges full serialization.
    """
    check_root(root, p)
    programs = empty_programs(p)
    payload = all_blocks(1)
    for relr in range(1, p):
        dst = absolute_rank(relr, root, p)
        programs[root].add(SendOp(peer=dst, blocks=payload))
        programs[dst].add(RecvOp(peer=root, blocks=payload))
    return Schedule(
        collective="bcast",
        algorithm="linear",
        nranks=p,
        nblocks=1,
        programs=programs,
        root=root,
    )


def linear_reduce(p: int, *, root: int = 0) -> Schedule:
    """Naïve reduction: the root receives and folds every contribution
    sequentially (``(p-1)(α + (β+γ)n)``)."""
    check_root(root, p)
    programs = empty_programs(p)
    payload = all_blocks(1)
    for relr in range(1, p):
        src = absolute_rank(relr, root, p)
        programs[root].add(RecvOp(peer=src, blocks=payload, reduce=True))
        programs[src].add(SendOp(peer=root, blocks=payload))
    return Schedule(
        collective="reduce",
        algorithm="linear",
        nranks=p,
        nblocks=1,
        programs=programs,
        root=root,
    )


def linear_gather(p: int, *, root: int = 0) -> Schedule:
    """Naïve gather: the root receives each rank's block sequentially."""
    check_root(root, p)
    programs = empty_programs(p)
    for relr in range(1, p):
        src = absolute_rank(relr, root, p)
        programs[root].add(RecvOp(peer=src, blocks=(src,)))
        programs[src].add(SendOp(peer=root, blocks=(src,)))
    return Schedule(
        collective="gather",
        algorithm="linear",
        nranks=p,
        nblocks=p,
        programs=programs,
        root=root,
    )


def linear_scatter(p: int, *, root: int = 0) -> Schedule:
    """Naïve scatter: the root sends each rank its block sequentially."""
    check_root(root, p)
    programs = empty_programs(p)
    for relr in range(1, p):
        dst = absolute_rank(relr, root, p)
        programs[root].add(SendOp(peer=dst, blocks=(dst,)))
        programs[dst].add(RecvOp(peer=root, blocks=(dst,)))
    return Schedule(
        collective="scatter",
        algorithm="linear",
        nranks=p,
        nblocks=p,
        programs=programs,
        root=root,
    )


def scatter_allgather_bcast(p: int, *, root: int = 0) -> Schedule:
    """Van de Geijn large-message broadcast: binomial scatter + ring
    allgather — MPICH's classic choice above the medium-size cutoff and
    the paper's ``ring`` bcast baseline."""
    scatter = knomial_scatter(p, 2, root=root)
    allgather = ring_allgather(p)
    return compose("bcast", "scatter_allgather", [scatter, allgather], root=root)


def recursive_halving_reduce_scatter(p: int) -> Schedule:
    """Recursive-halving reduce-scatter: the time-reversed dual of the
    recursive doubling allgather (pairwise exchanges of halving extent and
    halving data)."""
    return dualize_allgather(
        recursive_multiplying_allgather(p, 2), "recursive_halving"
    )


def reduce_scatter_allgather_allreduce(p: int) -> Schedule:
    """Rabenseifner's allreduce: recursive-halving reduce-scatter followed
    by recursive-doubling allgather — MPICH's large-message allreduce and
    the strongest fixed-radix baseline for paper Fig. 9(d)."""
    rs = recursive_halving_reduce_scatter(p)
    ag = recursive_multiplying_allgather(p, 2)
    return compose("allreduce", "reduce_scatter_allgather", [rs, ag])


def reduce_scatter_gather_reduce(p: int, *, root: int = 0) -> Schedule:
    """Rabenseifner's reduce: recursive-halving reduce-scatter followed by
    a binomial gather to the root — MPICH's large-message MPI_Reduce.

    This is the algorithm a well-tuned production MPI switches to above
    the binomial cutoff; its absence from a selection policy is exactly
    the kind of mis-selection the paper observes in Cray MPI for large
    reduces (Fig. 9a's >4.5× region).
    """
    check_root(root, p)
    rs = recursive_halving_reduce_scatter(p)
    gather = knomial_gather_for_reduce(p, root)
    return compose("reduce", "reduce_scatter_gather", [rs, gather], root=root)


def knomial_gather_for_reduce(p: int, root: int) -> Schedule:
    """Binomial gather phase of Rabenseifner's reduce.

    Identical communication to :func:`repro.core.knomial.knomial_gather`,
    but typed as a ``reduce`` phase: after the reduce-scatter each rank
    holds the fully reduced block that carries its own index, and the
    gather moves those blocks (not raw inputs) to the root.
    """
    from .knomial import knomial_gather  # local import avoids a cycle

    gather = knomial_gather(p, 2, root=root)
    return Schedule(
        collective="reduce",
        algorithm="reduce_scatter_gather",
        nranks=p,
        nblocks=p,
        programs=gather.programs,
        root=root,
        meta={"phase": "gather-after-reduce-scatter"},
    )
