"""Pipelined (segmented) collectives: the chain broadcast.

The paper's generalization story is about exposing a structural parameter
(the radix) that classic algorithms fix.  Pipelining is the *other*
classic tunable the related work leans on (Awan et al.'s pipelined bcast
for deep learning, §VII): split the buffer into ``segments`` chunks and
stream them down a chain, so the whole chain works concurrently on
different segments.  For very large broadcasts the chain is
bandwidth-optimal: total cost ``(S + p - 2)·(α + β·n/S)``, minimized at
``S* = √(n·β·(p-2)/α)`` — another knob/size trade exactly like the radix,
and the segment-count sweep mirrors the paper's Fig. 8 methodology
(``benchmarks/bench_pipeline_segments.py``).
"""

from __future__ import annotations

import math

from ..errors import ScheduleError
from .blocks import BlockMap
from .primitives import absolute_rank, check_root, empty_programs, relative_rank
from .schedule import RankProgram, RecvOp, Schedule, SendOp

__all__ = ["chain_bcast", "optimal_segments"]


def chain_bcast(p: int, segments: int, *, root: int = 0) -> Schedule:
    """Segmented chain broadcast.

    The ranks form a line (in relative order from the root); each segment
    flows down the chain one hop per step, with every rank forwarding
    segment ``s`` while receiving segment ``s + 1`` — steady-state
    bandwidth on every link simultaneously.

    ``segments`` plays the role the radix plays for the paper's kernels:
    more segments hide the chain's ``p - 2`` forwarding latencies behind
    smaller per-hop transfers, at the cost of ``S`` extra message
    latencies.
    """
    check_root(root, p)
    if segments < 1:
        raise ScheduleError(f"segments must be >= 1, got {segments}")
    programs = empty_programs(p)
    for rank in range(p):
        relr = relative_rank(rank, root, p)
        prev = absolute_rank(relr - 1, root, p) if relr > 0 else None
        nxt = absolute_rank(relr + 1, root, p) if relr < p - 1 else None
        prog = programs[rank]
        if prev is None:
            # Root: stream every segment downstream back to back.
            for s in range(segments):
                if nxt is not None:
                    prog.add(SendOp(peer=nxt, blocks=(s,)))
            continue
        # Interior/tail ranks double-buffer: while forwarding segment s,
        # the receive for segment s+1 is already posted — the overlap that
        # gives the pipeline its (S + p - 2)-step steady state.
        prog.add(RecvOp(peer=prev, blocks=(0,)))
        for s in range(segments):
            ops = []
            if nxt is not None:
                ops.append(SendOp(peer=nxt, blocks=(s,)))
            if s + 1 < segments:
                ops.append(RecvOp(peer=prev, blocks=(s + 1,)))
            prog.add_step(ops)
    return Schedule(
        collective="bcast",
        algorithm="chain" if segments == 1 else "pipelined_chain",
        nranks=p,
        nblocks=segments,
        programs=programs,
        root=root,
        k=segments,
        meta={"segments": segments},
    )


def optimal_segments(nbytes: float, p: int, alpha: float, beta: float) -> int:
    """Closed-form optimal segment count ``S* = √(n·β·(p-2)/α)``.

    Derived by minimizing ``(S + p - 2)(α + βn/S)`` over ``S``; clamped to
    ``[1, nbytes]`` (a segment must carry at least a byte).

    >>> optimal_segments(0, 8, 1e-6, 1e-9)
    1
    """
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    if nbytes < 0 or alpha <= 0 or beta < 0:
        raise ScheduleError("need nbytes >= 0, alpha > 0, beta >= 0")
    if p <= 2 or nbytes == 0:
        return 1
    s = math.sqrt(nbytes * beta * (p - 2) / alpha)
    return max(1, min(int(round(s)), int(nbytes) or 1))
