"""ASCII rendering of algorithm structure — the paper's Figs. 1–6.

The paper explains each kernel with a diagram: the binomial/trinomial
gather trees (Figs. 1–2), the recursive doubling/multiplying exchange
rounds (Figs. 3–4), the ring (Fig. 5), and the k-ring round structure
(Fig. 6).  These renderers regenerate those diagrams from the *actual
schedules*, so the pictures can never drift from the code — and the
``figdiagrams`` experiment checks the structural facts each paper figure
is captioned with (tree depths, round counts, who-talks-to-whom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ScheduleError
from .knomial import knomial_children
from .schedule import RecvOp, Schedule, SendOp

__all__ = ["render_knomial_tree", "render_rounds", "render_kring_rounds"]


def render_knomial_tree(p: int, k: int, *, root: int = 0) -> str:
    """Draw the k-nomial tree the way Figs. 1–2 do (root at top).

    >>> print(render_knomial_tree(6, 3))  # doctest: +NORMALIZE_WHITESPACE
    0
    ├── 3
    │   ├── 4
    │   └── 5
    ├── 1
    └── 2
    """
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    lines: List[str] = [str(root)]

    def visit(relr: int, prefix: str) -> None:
        children = knomial_children(relr, p, k)
        for idx, (child, _) in enumerate(children):
            last = idx == len(children) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + str((child + root) % p))
            visit(child, prefix + ("    " if last else "│   "))

    visit(0, "")
    return "\n".join(lines)


def _peer_arrows(schedule: Schedule, step_index_by_rank: Dict[int, int]) -> List[str]:
    arrows = []
    for rank, idx in step_index_by_rank.items():
        steps = schedule.programs[rank].steps
        if idx >= len(steps):
            continue
        for op in steps[idx].ops:
            if isinstance(op, SendOp):
                arrows.append(f"{rank}→{op.peer}")
    return arrows


def render_rounds(schedule: Schedule, *, max_rounds: Optional[int] = None) -> str:
    """Render a rank-symmetric schedule round by round (Figs. 3–6 style).

    Each line lists one logical round's messages as ``src→dst[blocks]``.
    Only meaningful for schedules whose ranks advance in lockstep (the
    butterfly/ring/dissemination families); tree schedules should use
    :func:`render_knomial_tree`.
    """
    nsteps = max(len(prog.steps) for prog in schedule.programs) if (
        schedule.programs
    ) else 0
    if max_rounds is not None:
        nsteps = min(nsteps, max_rounds)
    lines = [schedule.describe()]
    for step in range(nsteps):
        parts = []
        for prog in schedule.programs:
            if step >= len(prog.steps):
                continue
            for op in prog.steps[step].ops:
                if isinstance(op, SendOp):
                    blocks = (
                        ""
                        if schedule.nblocks == 1
                        else "[" + ",".join(map(str, op.blocks)) + "]"
                    )
                    parts.append(f"{prog.rank}→{op.peer}{blocks}")
        lines.append(f"  round {step + 1}: " + "  ".join(parts))
    return "\n".join(lines)


def render_kring_rounds(p: int, k: int) -> str:
    """Fig. 6: the k-ring allgather's alternating intra/inter structure.

    >>> text = render_kring_rounds(6, 3)
    >>> "inter" in text and "intra" in text
    True
    """
    from .ring import kring_allgather, kring_groups

    sched = kring_allgather(p, k)
    groups = kring_groups(p, k)
    group_of = {}
    for gi, grp in enumerate(groups):
        for r in grp:
            group_of[r] = gi
    nsteps = max(len(prog.steps) for prog in sched.programs)
    lines = [f"k-ring allgather p={p} k={k} (groups {groups})"]
    for step in range(nsteps):
        parts = []
        kinds = set()
        for prog in sched.programs:
            if step >= len(prog.steps):
                continue
            for op in prog.steps[step].ops:
                if isinstance(op, SendOp):
                    kind = (
                        "intra"
                        if group_of[prog.rank] == group_of[op.peer]
                        else "inter"
                    )
                    kinds.add(kind)
                    parts.append(f"{prog.rank}→{op.peer}")
        kind_label = "/".join(sorted(kinds)) if kinds else "idle"
        lines.append(f"  round {step + 1} ({kind_label}): " + "  ".join(parts))
    return "\n".join(lines)
