"""Core collective algorithms — the paper's contribution.

Everything here is topology- and data-agnostic: algorithms compile to the
schedule IR (:mod:`repro.core.schedule`), which the runtime executes on
real buffers (:mod:`repro.runtime`) and the simulator times on modeled
hardware (:mod:`repro.simnet`).
"""

from .alltoall import bruck_alltoall, pairwise_alltoall
from .analysis import critical_path_bytes, critical_path_rounds, volume_profile
from .blocks import BlockMap, ExplicitBlockMap, block_offsets, block_sizes
from .bruck import bruck_allgather, dissemination_barrier
from .hierarchical import hierarchical_allreduce, remap_ranks
from .pipeline import chain_bcast, optimal_segments
from .knomial import (
    knomial_allgather,
    knomial_allreduce,
    knomial_bcast,
    knomial_gather,
    knomial_reduce,
    knomial_scatter,
)
from .primitives import compose, dualize_allgather
from .render import render_knomial_tree, render_kring_rounds, render_rounds
from .recursive import (
    recursive_doubling_allgather,
    recursive_doubling_allreduce,
    recursive_doubling_bcast,
    recursive_multiplying_allgather,
    recursive_multiplying_allreduce,
    recursive_multiplying_bcast,
)
from .cache import (
    CacheStats,
    ScheduleCache,
    cached_build_schedule,
    global_schedule_cache,
    schedule_key,
)
from .registry import (
    COLLECTIVES,
    GENERALIZED_ALGORITHMS,
    ROOTED_COLLECTIVES,
    TABLE1,
    AlgorithmInfo,
    algorithms_for,
    build_schedule,
    info,
    max_radix,
)
from .ring import (
    kring_allgather,
    kring_allreduce,
    kring_bcast,
    kring_reduce_scatter,
    ring_allgather,
    ring_allreduce,
    ring_bcast,
    ring_reduce_scatter,
)
from .schedule import CopyOp, RankProgram, RecvOp, Schedule, SendOp, Step
from .serialize import load_schedule, save_schedule, schedule_from_json, schedule_to_json
from .validate import ValidationReport, verify

__all__ = [
    # IR
    "Schedule",
    "RankProgram",
    "Step",
    "SendOp",
    "RecvOp",
    "CopyOp",
    "BlockMap",
    "ExplicitBlockMap",
    "block_sizes",
    "block_offsets",
    # registry
    "COLLECTIVES",
    "ROOTED_COLLECTIVES",
    "GENERALIZED_ALGORITHMS",
    "TABLE1",
    "AlgorithmInfo",
    "algorithms_for",
    "build_schedule",
    "info",
    "max_radix",
    # schedule cache
    "ScheduleCache",
    "CacheStats",
    "schedule_key",
    "cached_build_schedule",
    "global_schedule_cache",
    # verification
    "verify",
    "ValidationReport",
    # algorithm builders
    "knomial_bcast",
    "knomial_reduce",
    "knomial_gather",
    "knomial_scatter",
    "knomial_allgather",
    "knomial_allreduce",
    "recursive_doubling_bcast",
    "recursive_doubling_allgather",
    "recursive_doubling_allreduce",
    "recursive_multiplying_bcast",
    "recursive_multiplying_allgather",
    "recursive_multiplying_allreduce",
    "ring_bcast",
    "ring_allgather",
    "ring_allreduce",
    "ring_reduce_scatter",
    "kring_bcast",
    "kring_allgather",
    "kring_allreduce",
    "kring_reduce_scatter",
    # extensions
    "bruck_allgather",
    "dissemination_barrier",
    "pairwise_alltoall",
    "bruck_alltoall",
    "chain_bcast",
    "optimal_segments",
    "hierarchical_allreduce",
    "remap_ranks",
    # analysis & rendering
    "critical_path_rounds",
    "critical_path_bytes",
    "volume_profile",
    "render_knomial_tree",
    "render_kring_rounds",
    "render_rounds",
    # serialization
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
    # composition utilities
    "compose",
    "dualize_allgather",
]
