"""Block partitioning of collective buffers.

Every schedule in :mod:`repro.core` moves data at *block* granularity: the
collective buffer is split into ``nblocks`` contiguous blocks, and schedule
operations name the block ids they carry.  This module owns the arithmetic
for that partition.

Two unit systems use the same partition logic:

* the **data executors** (:mod:`repro.runtime`) partition *element counts*
  so block ``b`` maps to a NumPy slice, and
* the **network simulator** (:mod:`repro.simnet`) partitions *byte counts*
  so each message's wire size can be computed.

The partition follows the MPICH convention for non-divisible sizes: the
first ``total % nblocks`` blocks are one unit larger than the rest, so
block sizes differ by at most one and every block is non-empty whenever
``total >= nblocks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from ..errors import ScheduleError

__all__ = ["BlockMap", "block_sizes", "block_offsets"]


def block_sizes(total: int, nblocks: int) -> Tuple[int, ...]:
    """Split ``total`` units into ``nblocks`` near-equal contiguous blocks.

    The first ``total % nblocks`` blocks receive one extra unit, matching
    MPICH's handling of counts that are not divisible by the communicator
    size.

    >>> block_sizes(10, 4)
    (3, 3, 2, 2)
    >>> block_sizes(4, 4)
    (1, 1, 1, 1)
    >>> block_sizes(2, 4)
    (1, 1, 0, 0)
    """
    if nblocks <= 0:
        raise ScheduleError(f"nblocks must be positive, got {nblocks}")
    if total < 0:
        raise ScheduleError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, nblocks)
    return tuple(base + 1 if b < extra else base for b in range(nblocks))


def block_offsets(sizes: Sequence[int]) -> Tuple[int, ...]:
    """Exclusive prefix sum of ``sizes``: the start offset of each block.

    >>> block_offsets((3, 3, 2, 2))
    (0, 3, 6, 8)
    """
    offsets = []
    acc = 0
    for s in sizes:
        offsets.append(acc)
        acc += s
    return tuple(offsets)


@dataclass(frozen=True)
class BlockMap:
    """Immutable mapping from block ids to contiguous [offset, offset+size) ranges.

    Parameters
    ----------
    total:
        Total number of units (elements or bytes) in the collective buffer.
    nblocks:
        Number of blocks the buffer is split into.  Tree algorithms that
        move whole buffers use ``nblocks == 1``; scatter/ring-family
        algorithms use ``nblocks == p``.
    """

    total: int
    nblocks: int

    def __post_init__(self) -> None:
        # Validate eagerly so downstream code can trust the invariants.
        block_sizes(self.total, self.nblocks)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Per-block sizes (computed, not stored, to keep the object tiny)."""
        return block_sizes(self.total, self.nblocks)

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Per-block start offsets."""
        return block_offsets(self.sizes)

    def size_of(self, block: int) -> int:
        """Size of a single block."""
        self._check(block)
        base, extra = divmod(self.total, self.nblocks)
        return base + 1 if block < extra else base

    def offset_of(self, block: int) -> int:
        """Start offset of a single block (O(1), no prefix-sum walk)."""
        self._check(block)
        base, extra = divmod(self.total, self.nblocks)
        if block < extra:
            return block * (base + 1)
        return extra * (base + 1) + (block - extra) * base

    def range_of(self, block: int) -> Tuple[int, int]:
        """``(start, stop)`` half-open range of a block."""
        start = self.offset_of(block)
        return start, start + self.size_of(block)

    def bytes_of(self, blocks: Iterable[int]) -> int:
        """Total size of a set of blocks (despite the name, unit-agnostic)."""
        return sum(self.size_of(b) for b in blocks)

    def slices(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(block, start, stop)`` over all blocks."""
        for b in range(self.nblocks):
            start, stop = self.range_of(b)
            yield b, start, stop

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise ScheduleError(
                f"block {block} out of range for BlockMap(nblocks={self.nblocks})"
            )


@dataclass(frozen=True)
class ExplicitBlockMap:
    """Block partition with caller-supplied (possibly uneven, possibly
    zero) block sizes — the geometry behind the v-variant collectives
    (gatherv/scatterv), where each rank contributes a different count.

    Implements the same interface as :class:`BlockMap`, so any schedule
    can be executed or simulated against it: the algorithms name block
    *ids*; only the unit arithmetic changes.
    """

    block_sizes_: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.block_sizes_:
            raise ScheduleError("ExplicitBlockMap needs at least one block")
        if any(s < 0 for s in self.block_sizes_):
            raise ScheduleError(
                f"block sizes must be non-negative: {self.block_sizes_}"
            )

    @property
    def total(self) -> int:
        return sum(self.block_sizes_)

    @property
    def nblocks(self) -> int:
        return len(self.block_sizes_)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(self.block_sizes_)

    @property
    def offsets(self) -> Tuple[int, ...]:
        return block_offsets(self.block_sizes_)

    def size_of(self, block: int) -> int:
        self._check(block)
        return self.block_sizes_[block]

    def offset_of(self, block: int) -> int:
        self._check(block)
        return sum(self.block_sizes_[:block])

    def range_of(self, block: int) -> Tuple[int, int]:
        start = self.offset_of(block)
        return start, start + self.block_sizes_[block]

    def bytes_of(self, blocks: Iterable[int]) -> int:
        return sum(self.size_of(b) for b in blocks)

    def slices(self) -> Iterator[Tuple[int, int, int]]:
        for b in range(self.nblocks):
            start, stop = self.range_of(b)
            yield b, start, stop

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise ScheduleError(
                f"block {block} out of range for "
                f"ExplicitBlockMap(nblocks={self.nblocks})"
            )
