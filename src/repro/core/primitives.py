"""Shared building blocks for collective schedule constructors.

The algorithm modules (:mod:`repro.core.knomial`, :mod:`repro.core.recursive`,
:mod:`repro.core.ring`) all need the same small toolbox: relative-rank
arithmetic for rooted trees, radix validation, schedule concatenation for
composite algorithms (allgather = gather + bcast, allreduce =
reduce-scatter + allgather, ...), and the time-reversal *dualization* that
turns any tree-structured allgather into a reduce-scatter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScheduleError
from .schedule import CopyOp, Op, RankProgram, RecvOp, Schedule, SendOp

__all__ = [
    "check_radix",
    "check_root",
    "relative_rank",
    "absolute_rank",
    "all_blocks",
    "empty_programs",
    "concat_programs",
    "compose",
    "dualize_allgather",
    "largest_power_leq",
    "ilog",
]


def check_radix(k: int, minimum: int = 2) -> int:
    """Validate a radix parameter; returns it for chaining."""
    if not isinstance(k, int):
        raise ScheduleError(f"radix k must be an int, got {type(k).__name__}")
    if k < minimum:
        raise ScheduleError(f"radix k must be >= {minimum}, got {k}")
    return k


def check_root(root: int, p: int) -> int:
    """Validate a root rank; returns it for chaining."""
    if not 0 <= root < p:
        raise ScheduleError(f"root {root} out of range for p={p}")
    return root


def relative_rank(rank: int, root: int, p: int) -> int:
    """Rank relative to the root (root becomes 0), MPICH-style."""
    return (rank - root + p) % p


def absolute_rank(relr: int, root: int, p: int) -> int:
    """Inverse of :func:`relative_rank`."""
    return (relr + root) % p


def all_blocks(nblocks: int) -> Tuple[int, ...]:
    """Tuple of every block id — whole-buffer sends/recvs."""
    return tuple(range(nblocks))


def empty_programs(p: int) -> List[RankProgram]:
    """One empty program per rank."""
    return [RankProgram(rank=r) for r in range(p)]


def concat_programs(
    first: Sequence[RankProgram], second: Sequence[RankProgram]
) -> List[RankProgram]:
    """Sequential composition: every rank runs ``first`` then ``second``.

    Correct because the runner's per-channel FIFO matching is global across
    the concatenated program, and each phase is internally matched — phase
    boundaries therefore never interleave messages across phases for any
    (src, dst) pair out of order.
    """
    if len(first) != len(second):
        raise ScheduleError(
            f"cannot concatenate programs for {len(first)} and "
            f"{len(second)} ranks"
        )
    out = []
    for a, b in zip(first, second):
        prog = RankProgram(rank=a.rank)
        prog.steps = list(a.steps) + list(b.steps)
        out.append(prog)
    return out


def compose(
    collective: str,
    algorithm: str,
    phases: Sequence[Schedule],
    *,
    root: Optional[int] = None,
    k: Optional[int] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Schedule:
    """Build a composite schedule from sequential phases.

    All phases must agree on ``nranks`` and ``nblocks``.  Phase names are
    recorded in the composite's ``meta`` for reporting.
    """
    if not phases:
        raise ScheduleError("compose needs at least one phase")
    p = phases[0].nranks
    nb = phases[0].nblocks
    for ph in phases[1:]:
        if ph.nranks != p or ph.nblocks != nb:
            raise ScheduleError(
                f"phase {ph.describe()} disagrees on geometry with "
                f"{phases[0].describe()}"
            )
    programs = phases[0].programs
    for ph in phases[1:]:
        programs = concat_programs(programs, ph.programs)
    full_meta: Dict[str, object] = {"phases": [ph.describe() for ph in phases]}
    if meta:
        full_meta.update(meta)
    return Schedule(
        collective=collective,
        algorithm=algorithm,
        nranks=p,
        nblocks=nb,
        programs=programs,
        root=root,
        k=k,
        meta=full_meta,
    )


def dualize_allgather(allgather: Schedule, algorithm: str) -> Schedule:
    """Time-reverse an allgather into its dual reduce-scatter.

    In an allgather, every block travels a tree from its owner to all other
    ranks, and each rank receives each block exactly once.  Reversing time
    and flipping every ``SendOp`` into a reducing ``RecvOp`` (and vice
    versa) turns those distribution trees into reduction trees rooted at
    each block's owner: a communication-identical reduce-scatter.  This is
    the classic ring-allreduce duality (Patarasuk & Yuan) applied
    mechanically at the IR level; it gives us reduce-scatter variants of
    the classic ring, the k-ring, and recursive multiplying for free, with
    correctness guaranteed by the symbolic validator.
    """
    if allgather.collective != "allgather":
        raise ScheduleError(
            f"dualize_allgather expects an allgather schedule, got "
            f"{allgather.collective}"
        )
    # Structural precondition: each block must reach each rank exactly once,
    # and never return to the rank that contributed it.  (Re-receipt would
    # reverse into a double-counted reduction.)
    for prog in allgather.programs:
        seen = {prog.rank}  # a rank "has" its own block from the start
        for _, op in prog.iter_ops():
            if isinstance(op, RecvOp):
                for b in op.blocks:
                    if b in seen:
                        raise ScheduleError(
                            f"cannot dualize {allgather.describe()}: rank "
                            f"{prog.rank} receives block {b} more than once"
                        )
                    seen.add(b)
    programs: List[RankProgram] = []
    for prog in allgather.programs:
        dual = RankProgram(rank=prog.rank)
        for step in reversed(prog.steps):
            ops: List[Op] = []
            # Receives must be flipped to sends first within a step so the
            # runner snapshots them before any same-step reduction applies;
            # op ordering within a step has no timing meaning otherwise.
            for op in step.ops:
                if isinstance(op, RecvOp):
                    if op.reduce:
                        raise ScheduleError(
                            "cannot dualize an allgather containing "
                            "reducing receives"
                        )
                    ops.append(SendOp(peer=op.peer, blocks=op.blocks))
            for op in step.ops:
                if isinstance(op, SendOp):
                    ops.append(RecvOp(peer=op.peer, blocks=op.blocks, reduce=True))
                elif isinstance(op, CopyOp):
                    raise ScheduleError(
                        "cannot dualize an allgather containing local copies"
                    )
            dual.add_step(ops)
        programs.append(dual)
    return Schedule(
        collective="reduce_scatter",
        algorithm=algorithm,
        nranks=allgather.nranks,
        nblocks=allgather.nblocks,
        programs=programs,
        root=None,
        k=allgather.k,
        meta={"dual_of": allgather.describe()},
    )


def largest_power_leq(k: int, p: int) -> Tuple[int, int]:
    """Largest ``k**m <= p``; returns ``(k**m, m)``.

    >>> largest_power_leq(3, 10)
    (9, 2)
    >>> largest_power_leq(2, 8)
    (8, 3)
    """
    check_radix(k)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    q, m = 1, 0
    while q * k <= p:
        q *= k
        m += 1
    return q, m


def ilog(k: int, p: int) -> int:
    """Ceiling of ``log_k(p)`` for integers (number of tree/exchange rounds).

    >>> ilog(2, 8)
    3
    >>> ilog(3, 10)
    3
    """
    check_radix(k)
    rounds, reach = 0, 1
    while reach < p:
        reach *= k
        rounds += 1
    return rounds
