"""Ring and k-ring algorithms (paper §V).

The classic ring algorithm is bandwidth-optimal but link-agnostic: every
round moves one block to the right neighbor, and the implicit barrier
between rounds means the whole ring advances at the pace of its *slowest*
link.  On exascale nodes, where intranode links (Infinity Fabric, NVLink)
are several times faster than the internode NICs, that wastes the fast
links (§II-B3).

The *k-ring* generalization breaks the ring into ``g = ⌈p/k⌉`` groups of
(up to) ``k`` consecutive ranks.  Communication alternates between
``k - 1``-round *intra-group* ring epochs (fast links when ``k`` matches
the processes-per-node count) and single *inter-group* rounds in which each
group hands the block set it just finished circulating to the next group.
Per paper eq. (13), inter-group traffic drops from ``2n(p-1)/p`` (classic
ring) to ``2n(p-k)/p``.

Degenerate radices recover the classic ring exactly: ``k = 1`` (every group
is a singleton, all rounds are inter-group) and ``k >= p`` (one group, all
rounds intra) both produce the same p-1-round neighbor exchange.

Non-uniform groups (``k ∤ p``) — one of the corner cases the paper calls
out (§VI-A) — are handled by circulating *block sets* rather than single
blocks: in an inter round a group's finished set is split into contiguous
chunks, one per member of the receiving group (chunks may be empty or hold
several blocks when group sizes differ), and the following intra epoch
circulates each member's chunk until the group holds the union.

Allreduce composes the time-reversed dual of the k-ring allgather (a
k-ring reduce-scatter, see :func:`repro.core.primitives.dualize_allgather`)
with the k-ring allgather itself — the paper's "partitions offset by one"
construction expressed mechanically.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ScheduleError
from .knomial import knomial_scatter
from .primitives import compose, dualize_allgather, empty_programs
from .schedule import Op, RankProgram, RecvOp, Schedule, SendOp

__all__ = [
    "kring_groups",
    "kring_allgather",
    "kring_bcast",
    "kring_allreduce",
    "kring_reduce_scatter",
    "ring_allgather",
    "ring_bcast",
    "ring_allreduce",
    "ring_reduce_scatter",
]


def kring_groups(p: int, k: int) -> List[List[int]]:
    """Partition ranks 0..p-1 into contiguous groups of size ``k`` (the
    last group takes the remainder).

    >>> kring_groups(6, 3)
    [[0, 1, 2], [3, 4, 5]]
    >>> kring_groups(7, 3)
    [[0, 1, 2], [3, 4, 5], [6]]
    >>> kring_groups(4, 1)
    [[0], [1], [2], [3]]
    """
    if k < 1:
        raise ScheduleError(f"k-ring group size must be >= 1, got {k}")
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    return [list(range(lo, min(lo + k, p))) for lo in range(0, p, k)]


def _chunk(blocks: Sequence[int], parts: int) -> List[Tuple[int, ...]]:
    """Split a sorted block set into ``parts`` contiguous chunks, first
    chunks one longer when sizes don't divide (may yield empty chunks)."""
    base, extra = divmod(len(blocks), parts)
    out: List[Tuple[int, ...]] = []
    pos = 0
    for i in range(parts):
        size = base + 1 if i < extra else base
        out.append(tuple(blocks[pos : pos + size]))
        pos += size
    return out


def kring_allgather(p: int, k: int) -> Schedule:
    """K-ring allgather (paper Fig. 6; cost model (11)/(12)).

    Per rank, the program is ``g`` intra-group ring epochs of
    ``(group size - 1)`` rounds each, interleaved with ``g - 1``
    inter-group rounds.  An intra epoch circulates the block set delivered
    by the previous inter round; an inter round forwards the set the group
    just completed to the next group, chunked per receiving member.
    """
    groups = kring_groups(p, k)
    g = len(groups)
    programs = empty_programs(p)

    # portions[j][i] = the block chunk member i of group j circulates in
    # the current intra epoch.  Epoch 0 seeds each member with its own block.
    portions: List[List[Tuple[int, ...]]] = [
        [(rank,) for rank in grp] for grp in groups
    ]

    def intra_epoch() -> None:
        """Circulate each group's member portions around its intra ring."""
        for j, grp in enumerate(groups):
            s = len(grp)
            if s == 1:
                continue
            for t in range(1, s):
                for i, rank in enumerate(grp):
                    ops: List[Op] = []
                    outgoing = portions[j][(i - t + 1) % s]
                    incoming = portions[j][(i - t) % s]
                    if outgoing:
                        ops.append(SendOp(peer=grp[(i + 1) % s], blocks=outgoing))
                    if incoming:
                        ops.append(RecvOp(peer=grp[(i - 1) % s], blocks=incoming))
                    programs[rank].add_step(ops)

    # Epoch 0: every group circulates its own blocks.
    intra_epoch()

    for e in range(1, g):
        # Inter round e: group j forwards the set it completed in epoch
        # e-1 (the blocks of group j-(e-1)) to group j+1.
        new_portions: List[List[Tuple[int, ...]]] = []
        inter_ops: List[List[Op]] = [[] for _ in range(p)]
        for j, grp in enumerate(groups):
            src_group = groups[(j - e) % g]  # what group j will receive now
            nxt = groups[(j + 1) % g]
            s = len(grp)
            # Outgoing: the set completed last epoch, chunked for `nxt`.
            completed = sorted(b for member in portions[j] for b in member)
            out_chunks = _chunk(completed, len(nxt))
            for i_dst, chunk in enumerate(out_chunks):
                if chunk:
                    sender = grp[i_dst % s]
                    inter_ops[sender].append(
                        SendOp(peer=nxt[i_dst], blocks=chunk)
                    )
            # Incoming: group j-1's completed set (blocks of group j-e),
            # chunked for us.
            prv = groups[(j - 1) % g]
            in_chunks = _chunk(sorted(r for r in src_group), s)
            member_portions: List[Tuple[int, ...]] = []
            for i, rank in enumerate(grp):
                chunk = in_chunks[i]
                if chunk:
                    sender = prv[i % len(prv)]
                    inter_ops[rank].append(
                        RecvOp(peer=sender, blocks=chunk)
                    )
                member_portions.append(chunk)
            new_portions.append(member_portions)
        for rank in range(p):
            programs[rank].add_step(inter_ops[rank])
        portions = new_portions
        # Epoch e: circulate the freshly received chunks within each group.
        intra_epoch()

    return Schedule(
        collective="allgather",
        algorithm="kring" if 1 < k < p else "ring",
        nranks=p,
        nblocks=p,
        programs=programs,
        k=k,
        meta={"groups": [len(grp) for grp in groups]},
    )


def kring_bcast(p: int, k: int, *, root: int = 0) -> Schedule:
    """K-ring broadcast: binomial scatter of the root buffer, then k-ring
    allgather — the "scatter-allgather" structure the paper reuses for all
    large-message broadcasts (§V-C)."""
    scatter = knomial_scatter(p, 2, root=root) if p > 1 else knomial_scatter(1, 2)
    allgather = kring_allgather(p, k)
    return compose(
        "bcast",
        allgather.algorithm,
        [scatter, allgather],
        root=root,
        k=k,
    )


def kring_reduce_scatter(p: int, k: int) -> Schedule:
    """K-ring reduce-scatter: the time-reversed dual of the k-ring
    allgather (each block's distribution path becomes its reduction tree)."""
    return dualize_allgather(kring_allgather(p, k), "kring" if 1 < k < p else "ring")


def kring_allreduce(p: int, k: int) -> Schedule:
    """K-ring allreduce: k-ring reduce-scatter followed by k-ring
    allgather — the paper's "partitions offset by 1" variant (§V-C), with
    classic ring allreduce (Patarasuk–Yuan) as the ``k ∈ {1, p}`` special
    case."""
    rs = kring_reduce_scatter(p, k)
    ag = kring_allgather(p, k)
    sched = compose("allreduce", ag.algorithm, [rs, ag], k=k)
    return sched


# ----------------------------------------------------------------------
# Classic ring baselines (exact k-ring degenerations)
# ----------------------------------------------------------------------

def ring_allgather(p: int) -> Schedule:
    """Classic ring allgather (model (8)/(9)): one group covering all of
    ``p``, i.e. ``kring_allgather(p, k=p)``."""
    sched = kring_allgather(p, max(p, 1))
    sched.k = None
    return sched


def ring_bcast(p: int, *, root: int = 0) -> Schedule:
    """Classic large-message broadcast: binomial scatter + ring allgather."""
    sched = kring_bcast(p, max(p, 1), root=root)
    sched.k = None
    return sched


def ring_reduce_scatter(p: int) -> Schedule:
    """Classic ring reduce-scatter (dual of the ring allgather)."""
    sched = kring_reduce_scatter(p, max(p, 1))
    sched.k = None
    return sched


def ring_allreduce(p: int) -> Schedule:
    """Classic ring allreduce (Patarasuk–Yuan): ring reduce-scatter + ring
    allgather."""
    sched = kring_allreduce(p, max(p, 1))
    sched.k = None
    return sched
