"""Content-addressed schedule cache.

Sweeps (Figs. 8–11), the tuner, and the data executors all ask the
registry for the same schedules over and over: one (collective,
algorithm, p, k, root) point is typically simulated at every message
size on the grid, and the tuner revisits the identical point for several
collectives' baselines.  Building a schedule is pure — the registry
builders are deterministic functions of their parameters — so the
compiled :class:`~repro.core.schedule.Schedule` can be reused verbatim.

This module provides that reuse:

* :func:`schedule_key` — the canonical cache key.  Defaults are
  normalized through the registry (``k=None`` on a generalized algorithm
  resolves to its ``default_k``; ``root`` collapses to 0 for unrooted
  collectives), so every parameter spelling of the same content maps to
  one key.  The key *is* the content address: two equal keys always name
  step-for-step identical schedules, which
  ``tests/properties/test_schedule_cache.py`` pins down via
  :meth:`~repro.core.schedule.Schedule.fingerprint`.
* :class:`ScheduleCache` — a bounded, thread-safe LRU mapping keys to
  built schedules, with hit/miss/eviction counters the perf benchmark
  reports.
* :func:`cached_build_schedule` — drop-in for
  :func:`repro.core.registry.build_schedule` backed by a process-global
  cache (each parallel-sweep worker process grows its own).

Cached schedules are shared objects: the IR is immutable by convention
(ops and steps are frozen dataclasses; nothing in the runtime, simulator,
or validator mutates a built schedule).  Callers that want to annotate
``meta`` must copy the schedule first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ScheduleError
from ..obs import OBS
from .registry import info
from .schedule import Schedule

__all__ = [
    "ScheduleKey",
    "schedule_key",
    "CacheStats",
    "ScheduleCache",
    "global_schedule_cache",
    "set_global_schedule_cache",
    "cached_build_schedule",
]

#: (collective, algorithm, p, k, root) with defaults resolved.
ScheduleKey = Tuple[str, str, int, Optional[int], int]


def schedule_key(
    collective: str,
    algorithm: str,
    p: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
) -> ScheduleKey:
    """Canonical cache key for a schedule build request.

    Mirrors :meth:`AlgorithmInfo.build`'s parameter handling exactly, so
    a key never aliases two different schedules and never splits one
    schedule across two keys:

    >>> schedule_key("allreduce", "knomial", 8) == \\
    ...     schedule_key("allreduce", "knomial", 8, k=2)
    True
    >>> schedule_key("allreduce", "ring", 8, root=5)[4]
    0
    """
    entry = info(collective, algorithm)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    if entry.takes_k:
        if k is None:
            k = entry.default_k
        if k is None:
            raise ScheduleError(
                f"{collective}/{algorithm} requires a radix k"
            )
        k = int(k)
    elif k is not None:
        raise ScheduleError(
            f"{collective}/{algorithm} does not take a radix (got k={k})"
        )
    root = int(root) if entry.takes_root else 0
    return (collective, algorithm, int(p), k, root)


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one :class:`ScheduleCache`'s counters.

    Returned by :meth:`ScheduleCache.stats`; shares the ``to_dict()``
    stats protocol with :class:`~repro.bench.sweep.SweepStats` and
    :class:`~repro.simnet.trace.TimelineStats`, so :mod:`repro.obs`
    snapshots and JSON exports are uniform across subsystems.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    # Back-compat spelling (pre-obs callers used as_dict()).
    as_dict = to_dict


class ScheduleCache:
    """Bounded LRU cache of built schedules, keyed by :func:`schedule_key`.

    Thread-safe: the threaded runtime's per-rank workers may build
    schedules concurrently.  ``maxsize`` bounds memory — a 1024-rank
    k-nomial schedule is a few MB of IR, and sweeps revisit far fewer
    than the default 512 distinct points.
    """

    def __init__(self, maxsize: int = 512, name: str = "schedule") -> None:
        if maxsize < 1:
            raise ScheduleError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: "OrderedDict[ScheduleKey, Schedule]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> CacheStats:
        """Frozen snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits, misses=self._misses, evictions=self._evictions
        )

    def get_or_build(
        self,
        collective: str,
        algorithm: str,
        p: int,
        *,
        k: Optional[int] = None,
        root: int = 0,
    ) -> Tuple[Schedule, bool]:
        """Return ``(schedule, hit)`` — building and inserting on a miss."""
        key = schedule_key(collective, algorithm, p, k=k, root=root)
        with self._lock:
            sched = self._entries.get(key)
            if sched is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                if OBS.enabled:
                    OBS.metrics.counter(
                        "repro_cache_lookups_total",
                        cache=self.name,
                        outcome="hit",
                    ).inc()
                return sched, True
            self._misses += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_lookups_total", cache=self.name, outcome="miss"
            ).inc()
        # Build outside the lock: builders are pure, so a racing duplicate
        # build wastes a little work but stays correct (last insert wins,
        # both objects are step-identical).
        sched = info(collective, algorithm).build(p, k=k, root=root)
        evicted = 0
        with self._lock:
            self._entries[key] = sched
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted and OBS.enabled:
            OBS.metrics.counter(
                "repro_cache_evictions_total", cache=self.name
            ).inc(evicted)
        return sched, False

    def build(
        self,
        collective: str,
        algorithm: str,
        p: int,
        *,
        k: Optional[int] = None,
        root: int = 0,
    ) -> Schedule:
        """Like :func:`repro.core.registry.build_schedule`, but cached."""
        return self.get_or_build(collective, algorithm, p, k=k, root=root)[0]

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


_GLOBAL = ScheduleCache()


def global_schedule_cache() -> ScheduleCache:
    """The process-global cache behind :func:`cached_build_schedule`.

    Each parallel-sweep worker process has its own instance; hit-rate
    accounting across workers therefore travels with per-point results
    (see :mod:`repro.bench.sweep`), not through this object.
    """
    return _GLOBAL


def set_global_schedule_cache(cache: ScheduleCache) -> ScheduleCache:
    """Swap the process-global cache; returns the previous instance.

    The sanctioned hook for :mod:`repro.store` to back the global cache
    with a disk store (a
    :class:`~repro.store.schedules.PersistentScheduleCache` *is a*
    :class:`ScheduleCache`).  Every existing call site keeps working
    because both :func:`global_schedule_cache` and
    :func:`cached_build_schedule` read the module global at call time.
    Callers should restore the previous instance when done (sweeps do
    this in a ``finally``), so attachment never leaks across runs.
    """
    global _GLOBAL
    if not isinstance(cache, ScheduleCache):
        raise ScheduleError(
            f"global schedule cache must be a ScheduleCache, "
            f"got {type(cache).__name__}"
        )
    previous = _GLOBAL
    _GLOBAL = cache
    return previous


def cached_build_schedule(
    collective: str,
    algorithm: str,
    p: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
) -> Schedule:
    """Cached drop-in for :func:`repro.core.registry.build_schedule`."""
    return _GLOBAL.build(collective, algorithm, p, k=k, root=root)
