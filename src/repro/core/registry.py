"""Algorithm registry: names → schedule builders (paper Table I).

This is the single lookup point the executors, the simulator harness, the
selection layer, and the benchmarks use to construct schedules.  Each
entry normalizes the underlying builder to the uniform call signature
``build(p, k=..., root=...)`` and declares whether the algorithm is
*generalized* (exposes a tunable radix — the paper's contribution) or a
fixed baseline, and what its default radix is (the value at which it
coincides exactly with its classic counterpart, the property Fig. 7
relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ScheduleError
from . import alltoall, baselines, bruck, knomial, pipeline, recursive, ring
from .primitives import dualize_allgather
from .schedule import Schedule

__all__ = [
    "AlgorithmInfo",
    "COLLECTIVES",
    "ROOTED_COLLECTIVES",
    "GENERALIZED_ALGORITHMS",
    "TABLE1",
    "algorithms_for",
    "info",
    "build_schedule",
    "max_radix",
]

COLLECTIVES = (
    "bcast",
    "reduce",
    "gather",
    "scatter",
    "allgather",
    "allreduce",
    "reduce_scatter",
    "alltoall",
    "barrier",
)

ROOTED_COLLECTIVES = ("bcast", "reduce", "gather", "scatter")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry metadata for one (collective, algorithm) entry."""

    collective: str
    name: str
    builder: Callable[..., Schedule]
    takes_k: bool
    takes_root: bool
    generalized: bool
    default_k: Optional[int] = None
    kernel: Optional[str] = None  # base communication kernel (Table I row)
    min_k: int = 2

    def build(self, p: int, *, k: Optional[int] = None, root: int = 0) -> Schedule:
        """Build a schedule, validating and defaulting parameters."""
        if p < 1:
            raise ScheduleError(f"p must be >= 1, got {p}")
        kwargs: Dict[str, object] = {}
        if self.takes_k:
            if k is None:
                k = self.default_k
            if k is None:
                raise ScheduleError(
                    f"{self.collective}/{self.name} requires a radix k"
                )
            kwargs["k"] = k
        elif k is not None:
            raise ScheduleError(
                f"{self.collective}/{self.name} does not take a radix "
                f"(got k={k})"
            )
        if self.takes_root:
            kwargs["root"] = root
        elif root != 0:
            raise ScheduleError(
                f"{self.collective}/{self.name} does not take a root "
                f"(got root={root})"
            )
        return self.builder(p, **kwargs)


def _recursive_multiplying_reduce_scatter(p: int, *, k: int) -> Schedule:
    """Dual of the recursive multiplying allgather — an extension beyond
    the paper's ten algorithms (its reduce-scatter counterpart), used by
    ablation benchmarks."""
    return dualize_allgather(
        recursive.recursive_multiplying_allgather(p, k),
        "recursive_multiplying" if k != 2 else "recursive_halving",
    )


def _entry(
    collective: str,
    name: str,
    builder: Callable[..., Schedule],
    *,
    takes_k: bool = False,
    takes_root: bool = False,
    generalized: bool = False,
    default_k: Optional[int] = None,
    kernel: Optional[str] = None,
    min_k: int = 2,
) -> AlgorithmInfo:
    return AlgorithmInfo(
        collective=collective,
        name=name,
        builder=builder,
        takes_k=takes_k,
        takes_root=takes_root,
        generalized=generalized,
        default_k=default_k,
        kernel=kernel,
        min_k=min_k,
    )


def _binomial(fn: Callable[..., Schedule]) -> Callable[..., Schedule]:
    """Fix a k-nomial builder at radix 2 (the classic binomial baseline)."""

    def build(p: int, **kwargs: object) -> Schedule:
        return fn(p, 2, **kwargs)

    return build


def _knomial(fn: Callable[..., Schedule]) -> Callable[..., Schedule]:
    """Adapt ``fn(p, k, ...)`` to the registry's keyword calling style."""

    def build(p: int, *, k: int, **kwargs: object) -> Schedule:
        return fn(p, k, **kwargs)

    return build


_REGISTRY: Dict[Tuple[str, str], AlgorithmInfo] = {}


def _register(entry: AlgorithmInfo) -> None:
    key = (entry.collective, entry.name)
    if key in _REGISTRY:
        raise ScheduleError(f"duplicate registry entry {key}")
    _REGISTRY[key] = entry


# --- bcast -------------------------------------------------------------
_register(_entry("bcast", "linear", baselines.linear_bcast, takes_root=True,
                 kernel="linear"))
_register(_entry("bcast", "binomial", _binomial(knomial.knomial_bcast),
                 takes_root=True, kernel="binomial"))
_register(_entry("bcast", "knomial", _knomial(knomial.knomial_bcast),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=2, kernel="binomial"))
_register(_entry("bcast", "recursive_doubling",
                 recursive.recursive_doubling_bcast, takes_root=True,
                 kernel="recursive_doubling"))
_register(_entry("bcast", "recursive_multiplying",
                 _knomial(recursive.recursive_multiplying_bcast),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=2, kernel="recursive_doubling"))
_register(_entry("bcast", "scatter_allgather",
                 baselines.scatter_allgather_bcast, takes_root=True,
                 kernel="ring"))
_register(_entry("bcast", "ring", ring.ring_bcast, takes_root=True,
                 kernel="ring"))
_register(_entry("bcast", "kring", _knomial(ring.kring_bcast),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=1, kernel="ring", min_k=1))
# Extension beyond Table I: the segmented chain pipeline; its "radix" is
# the segment count (see repro.core.pipeline).
_register(_entry("bcast", "pipelined_chain",
                 lambda p, *, k, root=0: pipeline.chain_bcast(p, k, root=root),
                 takes_k=True, takes_root=True, default_k=1,
                 kernel="chain", min_k=1))

# --- reduce ------------------------------------------------------------
_register(_entry("reduce", "linear", baselines.linear_reduce,
                 takes_root=True, kernel="linear"))
_register(_entry("reduce", "binomial", _binomial(knomial.knomial_reduce),
                 takes_root=True, kernel="binomial"))
_register(_entry("reduce", "knomial", _knomial(knomial.knomial_reduce),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=2, kernel="binomial"))
_register(_entry("reduce", "reduce_scatter_gather",
                 baselines.reduce_scatter_gather_reduce, takes_root=True,
                 kernel="recursive_doubling"))

# --- gather / scatter ---------------------------------------------------
_register(_entry("gather", "linear", baselines.linear_gather,
                 takes_root=True, kernel="linear"))
_register(_entry("gather", "binomial", _binomial(knomial.knomial_gather),
                 takes_root=True, kernel="binomial"))
_register(_entry("gather", "knomial", _knomial(knomial.knomial_gather),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=2, kernel="binomial"))
_register(_entry("scatter", "linear", baselines.linear_scatter,
                 takes_root=True, kernel="linear"))
_register(_entry("scatter", "binomial", _binomial(knomial.knomial_scatter),
                 takes_root=True, kernel="binomial"))
_register(_entry("scatter", "knomial", _knomial(knomial.knomial_scatter),
                 takes_k=True, takes_root=True, generalized=True,
                 default_k=2, kernel="binomial"))

# --- allgather ----------------------------------------------------------
_register(_entry("allgather", "binomial",
                 _binomial(knomial.knomial_allgather), kernel="binomial"))
_register(_entry("allgather", "knomial",
                 _knomial(knomial.knomial_allgather), takes_k=True,
                 generalized=True, default_k=2, kernel="binomial"))
_register(_entry("allgather", "recursive_doubling",
                 recursive.recursive_doubling_allgather,
                 kernel="recursive_doubling"))
_register(_entry("allgather", "recursive_multiplying",
                 _knomial(recursive.recursive_multiplying_allgather),
                 takes_k=True, generalized=True, default_k=2,
                 kernel="recursive_doubling"))
_register(_entry("allgather", "ring", ring.ring_allgather, kernel="ring"))
_register(_entry("allgather", "kring", _knomial(ring.kring_allgather),
                 takes_k=True, generalized=True, default_k=1,
                 kernel="ring", min_k=1))
# Extension beyond Table I: the rotation-based Bruck exchange, generalized
# over its port count — handles any p with no fold/unfold (see
# repro.core.bruck).
_register(_entry("allgather", "bruck", _knomial(bruck.bruck_allgather),
                 takes_k=True, default_k=2, kernel="bruck"))

# --- allreduce ----------------------------------------------------------
_register(_entry("allreduce", "binomial",
                 _binomial(knomial.knomial_allreduce), kernel="binomial"))
_register(_entry("allreduce", "knomial",
                 _knomial(knomial.knomial_allreduce), takes_k=True,
                 generalized=True, default_k=2, kernel="binomial"))
_register(_entry("allreduce", "recursive_doubling",
                 recursive.recursive_doubling_allreduce,
                 kernel="recursive_doubling"))
_register(_entry("allreduce", "recursive_multiplying",
                 _knomial(recursive.recursive_multiplying_allreduce),
                 takes_k=True, generalized=True, default_k=2,
                 kernel="recursive_doubling"))
_register(_entry("allreduce", "ring", ring.ring_allreduce, kernel="ring"))
_register(_entry("allreduce", "kring", _knomial(ring.kring_allreduce),
                 takes_k=True, generalized=True, default_k=1,
                 kernel="ring", min_k=1))
_register(_entry("allreduce", "reduce_scatter_allgather",
                 baselines.reduce_scatter_allgather_allreduce,
                 kernel="recursive_doubling"))

# --- reduce_scatter -----------------------------------------------------
_register(_entry("reduce_scatter", "recursive_halving",
                 baselines.recursive_halving_reduce_scatter,
                 kernel="recursive_doubling"))
_register(_entry("reduce_scatter", "recursive_multiplying",
                 _recursive_multiplying_reduce_scatter, takes_k=True,
                 generalized=True, default_k=2,
                 kernel="recursive_doubling"))
_register(_entry("reduce_scatter", "ring", ring.ring_reduce_scatter,
                 kernel="ring"))
_register(_entry("reduce_scatter", "kring",
                 _knomial(ring.kring_reduce_scatter), takes_k=True,
                 generalized=True, default_k=1, kernel="ring", min_k=1))

# --- alltoall (extension: the Fan et al. [12] generalized-Bruck lineage) -
_register(_entry("alltoall", "pairwise", alltoall.pairwise_alltoall,
                 kernel="pairwise"))
_register(_entry("alltoall", "bruck",
                 lambda p, *, k: alltoall.bruck_alltoall(p, k),
                 takes_k=True, default_k=2, kernel="bruck"))

# --- barrier (extension: Hoefler's n-way dissemination, cited as [19]) --
_register(_entry("barrier", "dissemination",
                 lambda p: bruck.dissemination_barrier(p, 2),
                 kernel="dissemination"))
_register(_entry("barrier", "k_dissemination",
                 _knomial(bruck.dissemination_barrier), takes_k=True,
                 default_k=2, kernel="dissemination"))


#: Paper Table I — the ten generalized implementations.
GENERALIZED_ALGORITHMS: Tuple[Tuple[str, str], ...] = (
    ("bcast", "knomial"),
    ("reduce", "knomial"),
    ("allgather", "knomial"),
    ("allreduce", "knomial"),
    ("bcast", "recursive_multiplying"),
    ("allgather", "recursive_multiplying"),
    ("allreduce", "recursive_multiplying"),
    ("bcast", "kring"),
    ("allgather", "kring"),
    ("allreduce", "kring"),
)

#: Paper Table I in row form: base kernel → (generalized kernel, collectives).
TABLE1: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "binomial": ("knomial", ("reduce", "bcast", "allgather", "allreduce")),
    "recursive_doubling": (
        "recursive_multiplying",
        ("bcast", "allgather", "allreduce"),
    ),
    "ring": ("kring", ("bcast", "allgather", "allreduce")),
}


def algorithms_for(collective: str) -> List[str]:
    """Algorithm names registered for a collective, sorted."""
    if collective not in COLLECTIVES:
        raise ScheduleError(f"unknown collective {collective!r}")
    return sorted(n for (c, n) in _REGISTRY if c == collective)


def info(collective: str, algorithm: str) -> AlgorithmInfo:
    """Registry entry lookup; raises :class:`ScheduleError` if absent."""
    try:
        return _REGISTRY[(collective, algorithm)]
    except KeyError:
        known = ", ".join(algorithms_for(collective)) if collective in COLLECTIVES else ""
        raise ScheduleError(
            f"no algorithm {algorithm!r} for collective {collective!r}"
            + (f" (known: {known})" if known else "")
        ) from None


def build_schedule(
    collective: str,
    algorithm: str,
    p: int,
    *,
    k: Optional[int] = None,
    root: int = 0,
) -> Schedule:
    """Uniform front door: build any registered schedule.

    >>> s = build_schedule("allreduce", "recursive_multiplying", 16, k=4)
    >>> s.describe()
    'allreduce recursive_multiplying p=16 k=4'
    """
    return info(collective, algorithm).build(p, k=k, root=root)


def max_radix(collective: str, algorithm: str, p: int) -> int:
    """Largest radix worth sweeping for an algorithm at ``p`` ranks.

    Tree and butterfly radices saturate at ``p`` (a radix-p tree is flat);
    k-ring group sizes saturate at ``p`` (one group = classic ring).
    """
    entry = info(collective, algorithm)
    if not entry.takes_k:
        raise ScheduleError(f"{collective}/{algorithm} has no radix")
    return max(p, entry.min_k)
