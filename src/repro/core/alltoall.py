"""All-to-all algorithms: pairwise exchange and the k-port Bruck routing.

The paper's related work closes with Fan et al. [12] generalizing Bruck's
algorithm for all-to-all — the same radix-generalization move applied to
the remaining heavyweight collective.  This module implements that
lineage on the schedule IR:

* :func:`pairwise_alltoall` — the classic ``p - 1``-round exchange: in
  round ``t`` every rank sends its block for ``(r + t) mod p`` directly
  and receives its block from ``(r - t) mod p``.  Every block moves
  exactly once (bandwidth-optimal), but small messages pay ``p - 1``
  latencies.
* :func:`bruck_alltoall` — store-and-forward digit routing: block
  ``(s, d)`` travels by the base-``k`` digits of ``(d - s) mod p``, so
  everything arrives within ``⌈log_k p⌉`` rounds at the cost of each
  block being forwarded up to ``⌈log_k p⌉`` times.  The radix trades
  rounds against forwarding volume — the all-to-all analogue of the
  paper's recursive multiplying trade-off.

Block geometry: all-to-all needs ``p²`` logical blocks — block
``s·p + d`` is the data rank ``s`` owes rank ``d``.  Buffers span the
whole block space (each rank starts holding its row and must end holding
its column); relay ranks legitimately carry third-party blocks in
transit, which the contribution-set validator checks end to end.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ScheduleError
from .primitives import check_radix, empty_programs, ilog
from .schedule import Op, RecvOp, Schedule, SendOp

__all__ = ["pairwise_alltoall", "bruck_alltoall", "alltoall_block"]


def alltoall_block(src: int, dst: int, p: int) -> int:
    """Block id carrying rank ``src``'s data for rank ``dst``.

    >>> alltoall_block(2, 1, 4)
    9
    """
    if not (0 <= src < p and 0 <= dst < p):
        raise ScheduleError(f"ranks ({src}, {dst}) out of range for p={p}")
    return src * p + dst


def pairwise_alltoall(p: int) -> Schedule:
    """Pairwise-exchange all-to-all: ``p - 1`` rounds, every block moves
    exactly once (cost ``(p-1)·(α + β·n/p²)`` per eq.-(8)-style counting)."""
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    programs = empty_programs(p)
    for t in range(1, p):
        for rank in range(p):
            to = (rank + t) % p
            frm = (rank - t) % p
            programs[rank].add(
                SendOp(peer=to, blocks=(alltoall_block(rank, to, p),)),
                RecvOp(peer=frm, blocks=(alltoall_block(frm, rank, p),)),
            )
    return Schedule(
        collective="alltoall",
        algorithm="pairwise",
        nranks=p,
        nblocks=p * p,
        programs=programs,
        meta={"rounds": max(p - 1, 0)},
    )


def _digits(value: int, k: int, rounds: int) -> List[int]:
    """Base-k digits of ``value``, least significant first, padded."""
    out = []
    for _ in range(rounds):
        out.append(value % k)
        value //= k
    return out


def bruck_alltoall(p: int, k: int = 2) -> Schedule:
    """K-port Bruck all-to-all: ``⌈log_k p⌉`` rounds of digit routing.

    Round ``i``: every rank forwards, to each partner ``j·k^i`` ahead of
    it (``j = 1..k-1``), all blocks it currently holds whose remaining
    displacement ``(dst - here) mod p`` has base-k digit ``i`` equal to
    ``j``.  Messages aggregate many blocks, so small per-pair payloads
    amortize latency — the small-message regime where [12]'s generalized
    Bruck wins, reproduced by ``bench_alltoall_crossover.py``.
    """
    check_radix(k)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    programs = empty_programs(p)
    rounds = ilog(k, p)
    # held[r] = blocks currently at rank r (as (src, dst) pairs).
    held: List[List[Tuple[int, int]]] = [
        [(r, d) for d in range(p)] for r in range(p)
    ]
    for i in range(rounds):
        stride = k**i
        outgoing: Dict[int, Dict[int, List[Tuple[int, int]]]] = {
            r: {} for r in range(p)
        }
        for r in range(p):
            keep = []
            for (s, d) in held[r]:
                digit = _digits((d - r) % p, k, rounds)[i]
                if digit == 0:
                    keep.append((s, d))
                else:
                    outgoing[r].setdefault(digit, []).append((s, d))
            held[r] = keep
        for r in range(p):
            ops: List[Op] = []
            for j in sorted(outgoing[r]):
                peer = (r + j * stride) % p
                blocks = tuple(
                    sorted(alltoall_block(s, d, p) for s, d in outgoing[r][j])
                )
                if peer == r:
                    # wrapped all the way around: the blocks stay local
                    held[r].extend(outgoing[r][j])
                    continue
                ops.append(SendOp(peer=peer, blocks=blocks))
            for j in sorted(
                jj for jj in range(1, k)
                if outgoing[(r - jj * stride) % p].get(jj)
                and (r - jj * stride) % p != r
            ):
                src_rank = (r - j * stride) % p
                incoming = outgoing[src_rank][j]
                blocks = tuple(
                    sorted(alltoall_block(s, d, p) for s, d in incoming)
                )
                ops.append(RecvOp(peer=src_rank, blocks=blocks))
                held[r].extend(incoming)
            programs[r].add_step(ops)
    for r in range(p):
        expect = sorted((s, r) for s in range(p))
        if sorted(held[r]) != expect:
            raise ScheduleError(
                f"internal error: rank {r} ends holding {sorted(held[r])[:4]}..."
            )
    return Schedule(
        collective="alltoall",
        algorithm="bruck" if k == 2 else "bruck_kport",
        nranks=p,
        nblocks=p * p,
        programs=programs,
        k=k,
        meta={"rounds": rounds},
    )
