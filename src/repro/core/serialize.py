"""Schedule serialization: JSON round trip for the schedule IR.

Schedules are pure data, and making them serializable buys three things a
schedule-IR library needs:

* **Inspection** — dump any algorithm's communication structure to a file
  and diff it against another radix/process count (``repro-validate
  --dump``).
* **Interchange** — external tools (visualizers, other simulators, an
  MPICH code generator) can consume the exact schedules this library
  verified.
* **Regression pinning** — tests can assert an algorithm's structure
  hasn't drifted by comparing serialized forms.

The format is deliberately literal (one JSON object per op) rather than
compressed: schedules are megabytes only at scales where you'd regenerate
them from the builder anyway.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import ScheduleError
from .schedule import CopyOp, Op, RankProgram, RecvOp, Schedule, SendOp

__all__ = ["schedule_to_json", "schedule_from_json", "save_schedule", "load_schedule"]

_FORMAT_VERSION = 1


def _op_to_dict(op: Op) -> Dict:
    if isinstance(op, SendOp):
        return {"op": "send", "peer": op.peer, "blocks": list(op.blocks)}
    if isinstance(op, RecvOp):
        return {
            "op": "recv",
            "peer": op.peer,
            "blocks": list(op.blocks),
            "reduce": op.reduce,
        }
    if isinstance(op, CopyOp):
        return {"op": "copy", "src": op.src, "dst": op.dst}
    raise ScheduleError(f"cannot serialize op {op!r}")


def _op_from_dict(raw: Dict) -> Op:
    kind = raw.get("op")
    if kind == "send":
        return SendOp(peer=raw["peer"], blocks=tuple(raw["blocks"]))
    if kind == "recv":
        return RecvOp(
            peer=raw["peer"],
            blocks=tuple(raw["blocks"]),
            reduce=bool(raw.get("reduce", False)),
        )
    if kind == "copy":
        return CopyOp(src=raw["src"], dst=raw["dst"])
    raise ScheduleError(f"unknown op kind {kind!r} in serialized schedule")


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule to a JSON string (stable key order)."""
    payload = {
        "format": _FORMAT_VERSION,
        "collective": schedule.collective,
        "algorithm": schedule.algorithm,
        "nranks": schedule.nranks,
        "nblocks": schedule.nblocks,
        "root": schedule.root,
        "k": schedule.k,
        "meta": _jsonable_meta(schedule.meta),
        "programs": [
            [[_op_to_dict(op) for op in step.ops] for step in prog.steps]
            for prog in schedule.programs
        ],
    }
    return json.dumps(payload, sort_keys=True)


def _jsonable_meta(meta: Dict) -> Dict:
    """Meta may hold tuples/ints; coerce to JSON-safe structures."""
    out = {}
    for key, value in meta.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, (str, int, float, bool, list, dict)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def schedule_from_json(text: str) -> Schedule:
    """Reconstruct a schedule; raises :class:`ScheduleError` on malformed
    input (including structurally invalid schedules — the Schedule
    constructor re-validates ranges)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"malformed schedule JSON: {exc}") from exc
    if not isinstance(payload, dict) or "programs" not in payload:
        raise ScheduleError("schedule JSON must be an object with 'programs'")
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    programs: List[RankProgram] = []
    for rank, raw_prog in enumerate(payload["programs"]):
        prog = RankProgram(rank=rank)
        for raw_step in raw_prog:
            prog.add_step([_op_from_dict(raw) for raw in raw_step])
        programs.append(prog)
    return Schedule(
        collective=payload["collective"],
        algorithm=payload["algorithm"],
        nranks=payload["nranks"],
        nblocks=payload["nblocks"],
        programs=programs,
        root=payload.get("root"),
        k=payload.get("k"),
        meta=payload.get("meta", {}),
    )


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> Path:
    """Write a schedule to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(schedule_to_json(schedule))
    return path


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_json(Path(path).read_text())
