"""Bruck-family algorithms: k-port Bruck allgather and the n-way
dissemination barrier.

These extend the paper's ten algorithms along its own related-work axis:
Bruck's algorithm [7] and Hoefler's n-way dissemination barrier [19] are
the classic *rotation-based* exchange patterns, and they generalize over a
radix exactly like the paper's kernels do (Fan et al. [12] do the same for
all-to-all).  Two properties make them valuable here:

* **No fold/unfold.**  Unlike the recursive multiplying butterfly, the
  Bruck exchange handles *any* process count natively — the final round
  simply truncates — so it is the stronger choice for awkward ``p`` where
  the butterfly pays two extra latencies (an ablation the benchmarks
  exercise).
* **Overlapping information flow.**  The dissemination barrier's final
  truncated round delivers overlapping "heard-from" sets.  That is
  harmless for a barrier (membership is idempotent) but would
  double-count a SUM, so these schedules carry the ``idempotent_only``
  marker and the symbolic validator relaxes exactly its disjointness rule
  for them — a precise demonstration of why that rule exists for
  everything else.

Block bookkeeping note: the textbook Bruck allgather stores incoming
blocks at *rotated local positions* and ends with a local rotation.  The
schedule IR names blocks by absolute id, which makes the rotation an
artifact of position-based storage — it disappears entirely, and each
block is received exactly once (so the schedule is also dualizable).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ScheduleError
from .primitives import check_radix, empty_programs, ilog
from .schedule import Op, RecvOp, Schedule, SendOp

__all__ = [
    "bruck_allgather",
    "dissemination_barrier",
    "bruck_window",
]


def bruck_window(rank: int, size: int, p: int) -> Tuple[int, ...]:
    """The contiguous (mod p) block window ``[rank, rank+size)`` a rank
    holds partway through the Bruck exchange.

    >>> bruck_window(5, 3, 6)
    (5, 0, 1)
    """
    if not 0 < size <= p:
        raise ScheduleError(f"window size {size} out of range for p={p}")
    return tuple((rank + t) % p for t in range(size))


def bruck_allgather(p: int, k: int = 2) -> Schedule:
    """K-port Bruck allgather: ``⌈log_k p⌉`` rounds for *any* ``p``.

    Round ``i`` (stride ``k^i``): every rank sends, to each of up to
    ``k-1`` partners at distances ``j·k^i`` *behind* it, the prefix of its
    current window the partner is missing; windows multiply by ``k`` per
    round, truncated at ``p``.  Cost model: ``⌈log_k p⌉·α + β·n·(p-1)/p``
    — the same telescoped bandwidth as recursive multiplying, but with no
    remainder fold.
    """
    check_radix(k)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    programs = empty_programs(p)
    stride = 1
    while stride < p:
        target = min(stride * k, p)
        for rank in range(p):
            ops: List[Op] = []
            # Sends: partner j·stride behind me takes my window prefix.
            for j in range(1, k):
                dist = j * stride
                if dist >= target:
                    break
                take = min(stride, target - dist)
                peer = (rank - dist) % p
                if peer == rank:
                    continue  # wrapped all the way: nothing to exchange
                ops.append(
                    SendOp(peer=peer, blocks=bruck_window(rank, take, p))
                )
            # Receives: partner j·stride ahead extends my window.
            for j in range(1, k):
                dist = j * stride
                if dist >= target:
                    break
                take = min(stride, target - dist)
                peer = (rank + dist) % p
                if peer == rank:
                    continue
                ops.append(
                    RecvOp(peer=peer, blocks=bruck_window(peer, take, p))
                )
            programs[rank].add_step(ops)
        stride = target
    return Schedule(
        collective="allgather",
        algorithm="bruck" if k == 2 else "bruck_kport",
        nranks=p,
        nblocks=p,
        programs=programs,
        k=k,
        meta={"rounds": ilog(k, p)},
    )


def dissemination_barrier(p: int, k: int = 2) -> Schedule:
    """N-way dissemination barrier (Hoefler et al. [19]).

    Round ``i``: every rank signals the ``k-1`` ranks ``j·k^i`` *ahead* of
    it.  After ``⌈log_k p⌉`` rounds every rank has transitively heard from
    every other, so all ranks must have entered the barrier.  Messages are
    zero-byte tokens; the schedule's single block tracks the "heard-from"
    set symbolically, and the final truncated round legitimately delivers
    overlapping sets — hence the ``idempotent_only`` marker.
    """
    check_radix(k)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    programs = empty_programs(p)
    stride = 1
    while stride < p:
        reach = min(stride * k, p)
        for rank in range(p):
            ops: List[Op] = []
            for j in range(1, k):
                dist = j * stride
                if dist >= reach:
                    break
                peer = (rank + dist) % p
                if peer != rank:
                    ops.append(SendOp(peer=peer, blocks=(0,)))
            for j in range(1, k):
                dist = j * stride
                if dist >= reach:
                    break
                peer = (rank - dist) % p
                if peer != rank:
                    ops.append(RecvOp(peer=peer, blocks=(0,), reduce=True))
            programs[rank].add_step(ops)
        stride = reach
    return Schedule(
        collective="barrier",
        algorithm="dissemination" if k == 2 else "k_dissemination",
        nranks=p,
        nblocks=1,
        programs=programs,
        k=k,
        meta={"rounds": ilog(k, p), "idempotent_only": True},
    )
