"""Generic schedule runner: message matching shared by all executors.

The runner walks every rank's program concurrently (cooperatively, in a
progress loop), matching messages between (src, dst) pairs in FIFO order —
the MPI non-overtaking rule.  It is parameterized over a :class:`DataModel`
so the same matching logic drives:

* the symbolic validator (:mod:`repro.core.validate`), whose payloads are
  contribution sets, and
* the NumPy data executor (:mod:`repro.runtime.executor`), whose payloads
  are real array copies.

Semantics implemented here (see :mod:`repro.core.schedule` for the
contract):

* when a rank *starts* a step, its sends snapshot the current local state
  and are enqueued immediately (nonblocking sends with unlimited buffering);
* local copies apply at step start, after the send snapshot;
* the step completes when every receive has a matching in-flight message;
  receives are applied in op order within the step;
* a full pass over all unfinished ranks with no postings and no completions
  is a deadlock, reported with the blocked ranks and what they wait for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generic, List, Protocol, Tuple, TypeVar

from ..errors import ExecutionError
from .schedule import CopyOp, RecvOp, Schedule, SendOp

__all__ = ["DataModel", "RunResult", "run_schedule"]

P = TypeVar("P")  # payload type


class DataModel(Protocol[P]):
    """Pluggable data semantics for :func:`run_schedule`."""

    def snapshot(self, rank: int, op: SendOp) -> P:
        """Capture the payload a send carries, from rank's current state."""

    def apply_recv(self, rank: int, op: RecvOp, payload: P) -> None:
        """Store (or reduce, per ``op.reduce``) an incoming payload."""

    def apply_copy(self, rank: int, op: CopyOp) -> None:
        """Apply a local block copy."""


@dataclass
class _Message(Generic[P]):
    """An in-flight message: the sender's block ids plus the payload."""

    blocks: Tuple[int, ...]
    payload: P


@dataclass
class RunResult:
    """Bookkeeping returned by :func:`run_schedule`.

    ``rank_steps`` is the per-rank completion state — how many steps each
    rank finished.  On a clean run it equals every program's length; it
    exists so recovery (:mod:`repro.recovery`) can report how far each
    rank got, the resume-state the shrink protocol's re-contribution
    semantics are defined against (DESIGN.md §11).
    """

    delivered_messages: int
    progress_passes: int
    rank_steps: Tuple[int, ...] = ()


def run_schedule(schedule: Schedule, model: DataModel[P]) -> RunResult:
    """Run ``schedule`` against ``model``; raises on deadlock or mismatch."""
    p = schedule.nranks
    programs = schedule.programs
    channels: Dict[Tuple[int, int], Deque[_Message[P]]] = {}
    pc = [0] * p  # next step index per rank
    posted = [False] * p
    delivered = 0
    passes = 0

    def channel(src: int, dst: int) -> Deque[_Message[P]]:
        key = (src, dst)
        ch = channels.get(key)
        if ch is None:
            ch = channels[key] = deque()
        return ch

    # Compile the per-step receive requirements once: the progress loop
    # below revisits blocked steps on every pass, and re-filtering ops and
    # re-counting per-peer needs each time makes the loop O(passes × ops)
    # instead of O(passes + ops).
    step_recvs: List[List[List[RecvOp]]] = []
    step_needs: List[List[List[Tuple[int, int]]]] = []
    for rank in range(p):
        per_rank_recvs: List[List[RecvOp]] = []
        per_rank_needs: List[List[Tuple[int, int]]] = []
        for step in programs[rank].steps:
            recvs = [op for op in step.ops if isinstance(op, RecvOp)]
            needed: Dict[int, int] = {}
            for op in recvs:
                needed[op.peer] = needed.get(op.peer, 0) + 1
            per_rank_recvs.append(recvs)
            per_rank_needs.append(list(needed.items()))
        step_recvs.append(per_rank_recvs)
        step_needs.append(per_rank_needs)

    unfinished = sum(1 for r in range(p) if programs[r].steps)
    while unfinished:
        passes += 1
        changed = False
        for rank in range(p):
            steps = programs[rank].steps
            if pc[rank] >= len(steps):
                continue
            step = steps[pc[rank]]
            if not posted[rank]:
                # Post: snapshot + enqueue sends, then apply local copies.
                for op in step.ops:
                    if isinstance(op, SendOp):
                        channel(rank, op.peer).append(
                            _Message(op.blocks, model.snapshot(rank, op))
                        )
                for op in step.ops:
                    if isinstance(op, CopyOp):
                        model.apply_copy(rank, op)
                posted[rank] = True
                changed = True

            # The step's per-peer message needs were compiled up front;
            # check availability before consuming anything (a step is
            # atomic at the waitall boundary).
            ready = all(
                len(channels.get((peer, rank), ())) >= cnt
                for peer, cnt in step_needs[rank][pc[rank]]
            )
            if not ready:
                continue

            for op in step_recvs[rank][pc[rank]]:
                msg = channel(op.peer, rank).popleft()
                if msg.blocks != op.blocks:
                    raise ExecutionError(
                        f"{schedule.describe()}: rank {rank} step {pc[rank]} "
                        f"expected blocks {op.blocks} from rank {op.peer} "
                        f"but the in-flight message carries {msg.blocks}"
                    )
                model.apply_recv(rank, op, msg.payload)
                delivered += 1
            pc[rank] += 1
            posted[rank] = False
            changed = True
            if pc[rank] >= len(steps):
                unfinished -= 1

        if not changed and unfinished:
            blocked = _describe_blocked(schedule, pc, channels)
            raise ExecutionError(
                f"{schedule.describe()}: deadlock — no rank can make "
                f"progress.\n{blocked}"
            )

    leftovers = {k: len(v) for k, v in channels.items() if v}
    if leftovers:
        raise ExecutionError(
            f"{schedule.describe()}: {sum(leftovers.values())} message(s) "
            f"were sent but never received: {leftovers}"
        )
    return RunResult(
        delivered_messages=delivered,
        progress_passes=passes,
        rank_steps=tuple(pc),
    )


def _describe_blocked(
    schedule: Schedule,
    pc: List[int],
    channels: Dict[Tuple[int, int], Deque[Any]],
) -> str:
    """Build a human-readable deadlock report."""
    lines = []
    for rank, prog in enumerate(schedule.programs):
        if pc[rank] >= len(prog.steps):
            continue
        step = prog.steps[pc[rank]]
        waits = []
        for op in step.ops:
            if isinstance(op, RecvOp):
                have = len(channels.get((op.peer, rank), ()))
                waits.append(f"recv{list(op.blocks)}<-{op.peer}(have {have})")
        lines.append(f"  rank {rank} at step {pc[rank]}: waiting on {waits}")
        if len(lines) >= 16:
            lines.append("  ... (truncated)")
            break
    return "\n".join(lines)
