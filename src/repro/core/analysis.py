"""Model-free structural analysis of schedules.

Where :mod:`repro.models` prices algorithms with (α, β, γ) constants and
:mod:`repro.simnet` with full hardware detail, this module extracts the
two *machine-independent* quantities every such cost decomposes over:

* :func:`critical_path_rounds` — the longest dependency chain of
  messages (the coefficient of α in any model: no machine can finish the
  collective in fewer sequential message latencies);
* :func:`critical_path_bytes` — the largest amount of data any single
  dependency chain must move (a lower bound on the β coefficient).

Both are computed by running the schedule on degenerate single-feature
machines (α = 1, β = 0 and α = 0, β = 1 with a single serializing port),
reusing the simulator as the dependency-graph evaluator, so the analysis
can never disagree with the execution semantics.

These are the numbers the paper's models print as ``log_k(p)`` and
``(k-1)·n·log_k(p)`` — here measured from the schedule itself, which is
how the test suite pins each algorithm's structure against its model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ScheduleError
from ..simnet.machine import MachineSpec
from ..simnet.simulate import simulate
from .schedule import RecvOp, Schedule, SendOp

__all__ = [
    "critical_path_rounds",
    "critical_path_bytes",
    "dependency_rounds",
    "volume_profile",
    "VolumeProfile",
]


def _degenerate_machine(p: int, *, alpha: float, beta: float) -> MachineSpec:
    return MachineSpec(
        name=f"analysis-{p}",
        nodes=max(p, 1),
        ppn=1,
        alpha_inter=alpha,
        beta_inter=beta,
        nic_ports=1,
        alpha_intra=alpha,
        beta_intra=beta,
    )


def critical_path_rounds(schedule: Schedule) -> int:
    """Length of the longest message dependency chain.

    Equals the α coefficient of the schedule's ideal cost: e.g. a
    k-nomial bcast on ``k^m`` ranks yields ``m``; a ring allgather yields
    ``p - 1``.

    >>> from repro.core.knomial import knomial_bcast
    >>> critical_path_rounds(knomial_bcast(27, 3))
    3
    """
    if schedule.nranks == 1:
        return 0
    machine = _degenerate_machine(schedule.nranks, alpha=1.0, beta=0.0)
    # With β = 0 and zero overheads, every message costs exactly one time
    # unit and unrelated messages overlap freely: the makespan *is* the
    # longest chain.
    return round(simulate(schedule, machine, 0).time)


def critical_path_bytes(schedule: Schedule, nbytes: int) -> int:
    """Serialized data volume on the heaviest single-port path.

    Run with α = 0 and β = 1 per byte on single-port nodes: the makespan
    is the number of bytes the most-loaded serialization chain moves —
    the β coefficient of the single-port models (e.g. ``(k-1)·n·log_k p``
    for a k-nomial bcast).
    """
    if nbytes < 0:
        raise ScheduleError(f"nbytes must be >= 0, got {nbytes}")
    if schedule.nranks == 1:
        return 0
    machine = _degenerate_machine(schedule.nranks, alpha=0.0, beta=1.0)
    return round(simulate(schedule, machine, nbytes).time)


def dependency_rounds(schedule: Schedule) -> int:
    """Longest message dependency chain, computed without the simulator.

    The purely static counterpart of :func:`critical_path_rounds`: a
    longest-path walk over the message DAG (each message is one edge of
    unit depth, each step completes at the max of its predecessor step
    and its incoming messages), evaluated in eager completion order.
    The two agree on every executable schedule — the property test suite
    pins that — but this one is usable from static analysis contexts
    (:mod:`repro.check`) that must not spin up the DES engine.

    Raises :class:`~repro.errors.ScheduleError` on schedules that cannot
    complete under eager semantics (run the deadlock check first).

    >>> from repro.core.knomial import knomial_bcast
    >>> dependency_rounds(knomial_bcast(27, 3))
    3
    """
    p = schedule.nranks
    programs = schedule.programs
    if p == 1:
        return 0

    # FIFO matching per (src, dst) channel: the n-th send matches the
    # n-th recv.  recv (rank, step, op_idx) -> (src_rank, src_step).
    sends: Dict[tuple, list] = {}
    recvs: Dict[tuple, list] = {}
    for prog in programs:
        for step_idx, step in enumerate(prog.steps):
            for op_idx, op in enumerate(step.ops):
                if isinstance(op, SendOp):
                    sends.setdefault((prog.rank, op.peer), []).append(step_idx)
                elif isinstance(op, RecvOp):
                    recvs.setdefault((op.peer, prog.rank), []).append(
                        (prog.rank, step_idx, op_idx)
                    )
    match: Dict[tuple, tuple] = {}
    for channel, rr in recvs.items():
        ss = sends.get(channel, [])
        if len(ss) < len(rr):
            raise ScheduleError(
                f"{schedule.describe()}: channel {channel} has "
                f"{len(rr)} recvs but only {len(ss)} sends"
            )
        for (r_rank, r_step, r_idx), s_step in zip(rr, ss):
            match[(r_rank, r_step, r_idx)] = (channel[0], s_step)

    # done[r][j] = depth after rank r completes step j.  A message
    # starts once BOTH endpoints have posted (the simulator's transfer
    # rule: rendezvous timing, eager completion) and flies for one unit:
    # arrival = max(sender entered its step, receiver entered its step)
    # + 1.  Evaluate in the eager fixpoint order, which is a topological
    # order of the step DAG.
    done = [[0] * len(programs[r].steps) for r in range(p)]
    pc = [0] * p
    lengths = [len(programs[r].steps) for r in range(p)]
    remaining = sum(1 for r in range(p) if lengths[r])
    changed = True
    while remaining and changed:
        changed = False
        for rank in range(p):
            while pc[rank] < lengths[rank]:
                step_idx = pc[rank]
                step = programs[rank].steps[step_idx]
                start = done[rank][step_idx - 1] if step_idx else 0
                depth = start
                ready = True
                for op_idx, op in enumerate(step.ops):
                    if not isinstance(op, RecvOp):
                        continue
                    src_rank, src_step = match[(rank, step_idx, op_idx)]
                    if pc[src_rank] < src_step:
                        ready = False
                        break
                    posted_at = done[src_rank][src_step - 1] if src_step else 0
                    depth = max(depth, max(posted_at, start) + 1)
                if not ready:
                    break
                done[rank][step_idx] = depth
                pc[rank] += 1
                changed = True
                if pc[rank] == lengths[rank]:
                    remaining -= 1
    if remaining:
        raise ScheduleError(
            f"{schedule.describe()}: schedule cannot complete under eager "
            f"semantics (ranks {[r for r in range(p) if pc[r] < lengths[r]]} "
            f"stuck) — run repro.check's deadlock pass for the diagnosis"
        )
    return max((row[-1] for row in done if row), default=0)


@dataclass(frozen=True)
class VolumeProfile:
    """Per-rank traffic totals for one schedule at one buffer size."""

    sent_bytes: Dict[int, int]
    received_bytes: Dict[int, int]
    messages_sent: Dict[int, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def max_rank_sent(self) -> int:
        return max(self.sent_bytes.values(), default=0)

    @property
    def max_rank_received(self) -> int:
        return max(self.received_bytes.values(), default=0)


def volume_profile(schedule: Schedule, nbytes: int) -> VolumeProfile:
    """Static per-rank send/receive accounting (no simulation)."""
    blocks = schedule.block_map(nbytes)
    sent: Dict[int, int] = {r: 0 for r in range(schedule.nranks)}
    received: Dict[int, int] = {r: 0 for r in range(schedule.nranks)}
    msgs: Dict[int, int] = {r: 0 for r in range(schedule.nranks)}
    for prog in schedule.programs:
        for _, op in prog.iter_ops():
            if isinstance(op, SendOp):
                size = blocks.bytes_of(op.blocks)
                sent[prog.rank] += size
                msgs[prog.rank] += 1
                received[op.peer] += size
    return VolumeProfile(
        sent_bytes=sent, received_bytes=received, messages_sent=msgs
    )
