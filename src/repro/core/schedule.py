"""Schedule intermediate representation (IR) for collective algorithms.

Every collective algorithm in this package compiles to an explicit,
static, per-rank *program*: a sequence of :class:`Step` objects, where each
step posts a set of nonblocking operations concurrently and then waits for
all of them (the ``isend``/``irecv``/``waitall`` idiom the paper's MPICH
implementations use to exploit multi-port NICs and message buffering,
§II-B2).

The IR is deliberately tiny — three operation kinds cover every algorithm
in the paper:

* :class:`SendOp` — send the named blocks to a peer.
* :class:`RecvOp` — receive the named blocks from a peer; with
  ``reduce=True`` the incoming data is combined into the local blocks with
  the collective's reduction operator instead of overwriting them.
* :class:`CopyOp` — local block-to-block copy (used by e.g. gather roots
  placing their own contribution, and Bruck-style rotations).

Semantics contract shared by all executors and the simulator:

1. All ops inside one step are posted concurrently; the step completes when
   all complete ("waitall").
2. Send data is snapshotted when the step *starts* (nonblocking send
   semantics: later local writes don't alter in-flight messages).
3. Messages between a given (src, dst) pair match in FIFO order across the
   whole program (MPI non-overtaking rule on a single tag/communicator).
4. Reduction receives are applied in the order they appear within the step,
   making floating-point results deterministic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ScheduleError
from .blocks import BlockMap

__all__ = [
    "SendOp",
    "RecvOp",
    "CopyOp",
    "Op",
    "Step",
    "RankProgram",
    "Schedule",
    "ScheduleStats",
]


@dataclass(frozen=True)
class SendOp:
    """Send ``blocks`` to ``peer``.

    ``blocks`` is an ordered tuple of block ids; the wire message is their
    concatenation in that order.  The matching :class:`RecvOp` must name
    block tuples of identical total size (ids may differ only for
    ``reduce`` receives of re-homed partials; for plain copies they must
    match element-for-element so positional semantics hold).
    """

    peer: int
    blocks: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ScheduleError("SendOp must carry at least one block")
        if len(set(self.blocks)) != len(self.blocks):
            raise ScheduleError(f"SendOp carries duplicate blocks: {self.blocks}")


@dataclass(frozen=True)
class RecvOp:
    """Receive ``blocks`` from ``peer``.

    With ``reduce=False`` the payload overwrites the local blocks.  With
    ``reduce=True`` it is combined into them with the collective's
    reduction operator (the receiving rank pays the γ·bytes compute cost in
    the simulator).
    """

    peer: int
    blocks: Tuple[int, ...]
    reduce: bool = False

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ScheduleError("RecvOp must name at least one block")
        if len(set(self.blocks)) != len(self.blocks):
            raise ScheduleError(f"RecvOp names duplicate blocks: {self.blocks}")


@dataclass(frozen=True)
class CopyOp:
    """Local copy of block ``src`` into block ``dst`` (no network traffic)."""

    src: int
    dst: int


Op = Union[SendOp, RecvOp, CopyOp]


@dataclass(frozen=True)
class Step:
    """A set of operations posted concurrently, then waited on together."""

    ops: Tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ScheduleError("Step must contain at least one op")

    @property
    def sends(self) -> Tuple[SendOp, ...]:
        return tuple(op for op in self.ops if isinstance(op, SendOp))

    @property
    def recvs(self) -> Tuple[RecvOp, ...]:
        return tuple(op for op in self.ops if isinstance(op, RecvOp))

    @property
    def copies(self) -> Tuple[CopyOp, ...]:
        return tuple(op for op in self.ops if isinstance(op, CopyOp))


@dataclass
class RankProgram:
    """The ordered list of steps one rank executes."""

    rank: int
    steps: List[Step] = field(default_factory=list)

    def add(self, *ops: Op) -> None:
        """Append a step made of ``ops`` (convenience builder)."""
        self.steps.append(Step(tuple(ops)))

    def add_step(self, ops: Sequence[Op]) -> None:
        """Append a step from a sequence of ops; empty sequences are ignored.

        Algorithms frequently build op lists conditionally (e.g. "send to
        children that exist"); tolerating empty lists here keeps their code
        free of boilerplate guards.
        """
        ops = tuple(ops)
        if ops:
            self.steps.append(Step(ops))

    def iter_ops(self) -> Iterator[Tuple[int, Op]]:
        """Yield ``(step_index, op)`` over the whole program."""
        for i, step in enumerate(self.steps):
            for op in step.ops:
                yield i, op


@dataclass
class Schedule:
    """A complete collective schedule: one program per rank plus metadata.

    Attributes
    ----------
    collective:
        One of ``bcast | reduce | gather | scatter | allgather | allreduce
        | reduce_scatter``.
    algorithm:
        Human-readable algorithm name (e.g. ``"knomial"``); radix is stored
        separately in ``k``.
    nranks:
        Number of participating processes.
    nblocks:
        Granularity of the block partition this schedule assumes.  Whole
        buffer tree algorithms use 1, scatter/ring-family use ``nranks``.
    root:
        Root rank for rooted collectives, ``None`` otherwise.
    k:
        Radix / group-size parameter, ``None`` for fixed algorithms.
    """

    collective: str
    algorithm: str
    nranks: int
    nblocks: int
    programs: List[RankProgram]
    root: Optional[int] = None
    k: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ScheduleError(f"nranks must be >= 1, got {self.nranks}")
        if len(self.programs) != self.nranks:
            raise ScheduleError(
                f"expected {self.nranks} rank programs, got {len(self.programs)}"
            )
        for r, prog in enumerate(self.programs):
            if prog.rank != r:
                raise ScheduleError(f"program {r} has rank {prog.rank}")
        self._check_ranges()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def block_map(self, total: int) -> BlockMap:
        """Partition ``total`` units (bytes or elements) into this
        schedule's blocks."""
        return BlockMap(total, self.nblocks)

    def program(self, rank: int) -> RankProgram:
        """The per-rank step program executed by ``rank``."""
        return self.programs[rank]

    def describe(self) -> str:
        """One-line human description used in reports and tracebacks."""
        bits = [self.collective, self.algorithm, f"p={self.nranks}"]
        if self.k is not None:
            bits.append(f"k={self.k}")
        if self.root is not None:
            bits.append(f"root={self.root}")
        return " ".join(bits)

    def fingerprint(self) -> str:
        """Stable content hash over every step of every rank program.

        Two schedules with equal fingerprints are step-for-step identical
        (same ops, same order, same metadata-bearing parameters).  The
        schedule cache's key→content contract and the golden cost tests
        are checked against this.
        """
        # Accumulate-then-hash-once feeds sha256 the exact byte stream
        # the incremental form did (hash of a concatenation is chunking-
        # independent), at roughly half the wall clock — this runs on
        # every disk-store load, where it is the dominant cost.
        parts = [
            f"{self.collective}|{self.algorithm}|{self.nranks}|"
            f"{self.nblocks}|{self.root}|{self.k}"
        ]
        add = parts.append
        for prog in self.programs:
            add("|P")
            for step in prog.steps:
                add("|S")
                for op in step.ops:
                    if isinstance(op, SendOp):
                        add(f"|s{op.peer}:{','.join(map(str, op.blocks))}")
                    elif isinstance(op, RecvOp):
                        add(
                            f"|r{op.peer}:{','.join(map(str, op.blocks))}"
                            f":{int(op.reduce)}"
                        )
                    else:
                        add(f"|c{op.src}:{op.dst}")
        return hashlib.sha256("".join(parts).encode()).hexdigest()

    def stats(self) -> "ScheduleStats":
        """Aggregate message/step statistics (topology-agnostic)."""
        total_msgs = 0
        total_block_units = 0
        max_steps = 0
        max_concurrency = 0
        reduce_msgs = 0
        for prog in self.programs:
            max_steps = max(max_steps, len(prog.steps))
            for step in prog.steps:
                sends = step.sends
                recvs = step.recvs
                total_msgs += len(sends)
                max_concurrency = max(max_concurrency, len(sends) + len(recvs))
                for s in sends:
                    total_block_units += len(s.blocks)
                reduce_msgs += sum(1 for r in recvs if r.reduce)
        return ScheduleStats(
            messages=total_msgs,
            blocks_sent=total_block_units,
            max_steps=max_steps,
            max_concurrent_ops=max_concurrency,
            reduce_receives=reduce_msgs,
        )

    # ------------------------------------------------------------------
    # Internal validation
    # ------------------------------------------------------------------

    def _check_ranges(self) -> None:
        for prog in self.programs:
            for _, op in prog.iter_ops():
                if isinstance(op, (SendOp, RecvOp)):
                    if not 0 <= op.peer < self.nranks:
                        raise ScheduleError(
                            f"rank {prog.rank}: peer {op.peer} out of range "
                            f"(p={self.nranks})"
                        )
                    if op.peer == prog.rank:
                        raise ScheduleError(
                            f"rank {prog.rank}: self-communication is not allowed"
                        )
                    bad = [b for b in op.blocks if not 0 <= b < self.nblocks]
                    if bad:
                        raise ScheduleError(
                            f"rank {prog.rank}: blocks {bad} out of range "
                            f"(nblocks={self.nblocks})"
                        )
                elif isinstance(op, CopyOp):
                    for b in (op.src, op.dst):
                        if not 0 <= b < self.nblocks:
                            raise ScheduleError(
                                f"rank {prog.rank}: copy block {b} out of range"
                            )


@dataclass(frozen=True)
class ScheduleStats:
    """Summary statistics of a schedule (see :meth:`Schedule.stats`)."""

    messages: int
    blocks_sent: int
    max_steps: int
    max_concurrent_ops: int
    reduce_receives: int
