"""K-nomial tree collective algorithms (paper §III).

A k-nomial tree generalizes the binomial tree: at every level a node hands
off to ``k - 1`` children simultaneously instead of one, shrinking the tree
depth from ``log2(p)`` to ``log_k(p)`` at the price of ``k - 1`` concurrent
messages per level.  The concurrency is expressed in the schedule IR as a
single :class:`~repro.core.schedule.Step` holding all ``k - 1`` operations,
which the simulator maps onto NIC ports and per-message injection overhead
— exactly the multi-port/message-buffering interplay the paper identifies
as the mechanism behind the generalization (§II-B2).

Tree structure (relative ranks, root = 0): scanning masks ``1, k, k², …``,
a node ``r`` attaches to parent ``r - (r mod m·k)`` at the first mask ``m``
where ``r mod (m·k) != 0``.  Its children at each mask ``m' < M`` (its own
attach mask) are ``r + i·m'`` for ``i = 1 … k-1``.  With ``k = 2`` this is
exactly MPICH's binomial tree, which is how the fixed-radix baseline is
produced (see :mod:`repro.core.registry`).

The module provides the four rooted primitives (bcast, reduce, gather,
scatter) plus the composite allgather (= gather + bcast) and allreduce
(= reduce + bcast) the paper's Table I lists, matching cost models (2)–(3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ScheduleError
from .primitives import (
    absolute_rank,
    all_blocks,
    check_radix,
    check_root,
    compose,
    empty_programs,
    relative_rank,
)
from .schedule import Op, RankProgram, RecvOp, Schedule, SendOp

__all__ = [
    "knomial_attach_mask",
    "knomial_parent",
    "knomial_children",
    "knomial_subtree",
    "knomial_bcast",
    "knomial_reduce",
    "knomial_gather",
    "knomial_scatter",
    "knomial_allgather",
    "knomial_allreduce",
]


# ----------------------------------------------------------------------
# Tree structure
# ----------------------------------------------------------------------

def knomial_attach_mask(relr: int, p: int, k: int) -> int:
    """Mask at which relative rank ``relr`` attaches to its parent.

    For the root this is the smallest power of ``k`` that reaches ``p``
    (i.e. one level above every real child), which makes the children
    enumeration below uniform for root and non-root nodes.
    """
    check_radix(k)
    mask = 1
    while mask < p:
        if relr % (mask * k) != 0:
            return mask
        mask *= k
    return mask


def knomial_parent(relr: int, p: int, k: int) -> Optional[int]:
    """Relative parent of ``relr`` in the k-nomial tree, ``None`` for root.

    >>> [knomial_parent(r, 9, 3) for r in range(9)]
    [None, 0, 0, 0, 3, 3, 0, 6, 6]
    """
    if relr == 0:
        return None
    mask = knomial_attach_mask(relr, p, k)
    return relr - (relr % (mask * k))


def knomial_children(relr: int, p: int, k: int) -> List[Tuple[int, int]]:
    """Children of ``relr`` as ``(child_relrank, mask)``, largest mask first.

    Largest-mask-first is the bcast send order: the child that roots the
    deepest subtree gets its data earliest, minimizing the critical path —
    the same ordering MPICH's binomial broadcast uses.

    >>> knomial_children(0, 9, 3)
    [(3, 3), (6, 3), (1, 1), (2, 1)]
    """
    attach = knomial_attach_mask(relr, p, k)
    children = []
    mask = 1
    masks = []
    while mask < attach and mask < p:
        masks.append(mask)
        mask *= k
    for m in reversed(masks):
        for i in range(1, k):
            c = relr + i * m
            if c < p:
                children.append((c, m))
    return children


def knomial_subtree(relr: int, p: int, k: int) -> Tuple[int, int]:
    """Half-open relative-rank interval ``[relr, stop)`` of the subtree.

    A node attached at mask ``M`` owns the contiguous relative ranks
    ``[relr, relr + M)``, clipped to ``p`` — the interval its gather
    contribution covers and its scatter delivery must fill.

    >>> knomial_subtree(3, 9, 3)
    (3, 6)
    >>> knomial_subtree(0, 9, 3)
    (0, 9)
    """
    attach = knomial_attach_mask(relr, p, k)
    if relr == 0:
        # Root's interval covers everything; attach may overshoot p.
        while attach < p:
            attach *= k
        return 0, p
    return relr, min(relr + attach, p)


def _subtree_blocks(relr: int, p: int, k: int, root: int) -> Tuple[int, ...]:
    """Absolute block ids covered by ``relr``'s subtree (blocks are indexed
    by absolute rank for gather/scatter semantics)."""
    lo, hi = knomial_subtree(relr, p, k)
    return tuple(sorted(absolute_rank(x, root, p) for x in range(lo, hi)))


# ----------------------------------------------------------------------
# Rooted primitives
# ----------------------------------------------------------------------

def knomial_bcast(p: int, k: int, *, root: int = 0, nblocks: int = 1) -> Schedule:
    """K-nomial broadcast: cost model ``log_k(p)·α + (k-1)·n·log_k(p)·β``.

    ``nblocks`` lets composite algorithms broadcast an already-partitioned
    buffer (e.g. the bcast phase of a k-nomial allgather); every message
    still carries the whole buffer.
    """
    check_radix(k)
    check_root(root, p)
    payload = all_blocks(nblocks)
    programs = empty_programs(p)
    for rank in range(p):
        relr = relative_rank(rank, root, p)
        prog = programs[rank]
        parent = knomial_parent(relr, p, k)
        if parent is not None:
            prog.add(RecvOp(peer=absolute_rank(parent, root, p), blocks=payload))
        # One step per tree level, k-1 concurrent sends per step.
        level_ops: List[Op] = []
        current_mask: Optional[int] = None
        for child, mask in knomial_children(relr, p, k):
            if current_mask is not None and mask != current_mask:
                prog.add_step(level_ops)
                level_ops = []
            current_mask = mask
            level_ops.append(
                SendOp(peer=absolute_rank(child, root, p), blocks=payload)
            )
        prog.add_step(level_ops)
    return Schedule(
        collective="bcast",
        algorithm="knomial" if k != 2 else "binomial",
        nranks=p,
        nblocks=nblocks,
        programs=programs,
        root=root,
        k=k,
    )


def knomial_reduce(p: int, k: int, *, root: int = 0, nblocks: int = 1) -> Schedule:
    """K-nomial reduction: children's partials stream up the tree.

    Each node absorbs its ``k - 1`` same-level children in one concurrent
    step (paying ``(k-1)(β + γ)n`` per level, model (3)), smallest mask
    first so near leaves unblock earliest, then forwards its partial to its
    parent.
    """
    check_radix(k)
    check_root(root, p)
    payload = all_blocks(nblocks)
    programs = empty_programs(p)
    for rank in range(p):
        relr = relative_rank(rank, root, p)
        prog = programs[rank]
        attach = knomial_attach_mask(relr, p, k)
        mask = 1
        while mask < attach and mask < p:
            ops: List[Op] = []
            for i in range(1, k):
                child = relr + i * mask
                if child < p:
                    ops.append(
                        RecvOp(
                            peer=absolute_rank(child, root, p),
                            blocks=payload,
                            reduce=True,
                        )
                    )
            prog.add_step(ops)
            mask *= k
        parent = knomial_parent(relr, p, k)
        if parent is not None:
            prog.add(SendOp(peer=absolute_rank(parent, root, p), blocks=payload))
    return Schedule(
        collective="reduce",
        algorithm="knomial" if k != 2 else "binomial",
        nranks=p,
        nblocks=nblocks,
        programs=programs,
        root=root,
        k=k,
    )


def knomial_gather(p: int, k: int, *, root: int = 0) -> Schedule:
    """K-nomial gather (Fig. 1/2 of the paper): block ``b`` = rank ``b``'s data.

    Identical tree walk to :func:`knomial_reduce`, but payloads are the
    children's whole subtree intervals instead of reduced partials, so the
    data volume grows toward the root: cost ``log_k(p)·α + n·(p-1)/p·β``.
    """
    check_radix(k)
    check_root(root, p)
    programs = empty_programs(p)
    for rank in range(p):
        relr = relative_rank(rank, root, p)
        prog = programs[rank]
        attach = knomial_attach_mask(relr, p, k)
        mask = 1
        while mask < attach and mask < p:
            ops: List[Op] = []
            for i in range(1, k):
                child = relr + i * mask
                if child < p:
                    ops.append(
                        RecvOp(
                            peer=absolute_rank(child, root, p),
                            blocks=_subtree_blocks(child, p, k, root),
                        )
                    )
            prog.add_step(ops)
            mask *= k
        parent = knomial_parent(relr, p, k)
        if parent is not None:
            prog.add(
                SendOp(
                    peer=absolute_rank(parent, root, p),
                    blocks=_subtree_blocks(relr, p, k, root),
                )
            )
    return Schedule(
        collective="gather",
        algorithm="knomial" if k != 2 else "binomial",
        nranks=p,
        nblocks=p,
        programs=programs,
        root=root,
        k=k,
    )


def knomial_scatter(p: int, k: int, *, root: int = 0) -> Schedule:
    """K-nomial scatter: the exact reverse of :func:`knomial_gather`.

    Used standalone and as the first phase of scatter-allgather broadcasts
    (classic MPICH "van de Geijn" bcast and our recursive-multiplying and
    k-ring bcasts).
    """
    check_radix(k)
    check_root(root, p)
    programs = empty_programs(p)
    for rank in range(p):
        relr = relative_rank(rank, root, p)
        prog = programs[rank]
        parent = knomial_parent(relr, p, k)
        if parent is not None:
            prog.add(
                RecvOp(
                    peer=absolute_rank(parent, root, p),
                    blocks=_subtree_blocks(relr, p, k, root),
                )
            )
        level_ops: List[Op] = []
        current_mask: Optional[int] = None
        for child, mask in knomial_children(relr, p, k):
            if current_mask is not None and mask != current_mask:
                prog.add_step(level_ops)
                level_ops = []
            current_mask = mask
            level_ops.append(
                SendOp(
                    peer=absolute_rank(child, root, p),
                    blocks=_subtree_blocks(child, p, k, root),
                )
            )
        prog.add_step(level_ops)
    return Schedule(
        collective="scatter",
        algorithm="knomial" if k != 2 else "binomial",
        nranks=p,
        nblocks=p,
        programs=programs,
        root=root,
        k=k,
    )


# ----------------------------------------------------------------------
# Composites (paper eq. (2)/(3): allgather = gather ∘ bcast,
# allreduce = reduce ∘ bcast)
# ----------------------------------------------------------------------

def knomial_allgather(p: int, k: int) -> Schedule:
    """K-nomial allgather: gather to rank 0, then k-nomial bcast of the
    assembled buffer (model (3): ``log_k(p)·α + (k-1)n(log_k p + (p-1)/p)β``)."""
    gather = knomial_gather(p, k, root=0)
    bcast = knomial_bcast(p, k, root=0, nblocks=p)
    sched = compose("allgather", gather.algorithm, [gather, bcast], k=k)
    sched.root = None
    return sched


def knomial_allreduce(p: int, k: int) -> Schedule:
    """K-nomial allreduce: reduce to rank 0, then k-nomial bcast of the
    result (model (3))."""
    reduce_ = knomial_reduce(p, k, root=0, nblocks=1)
    bcast = knomial_bcast(p, k, root=0, nblocks=1)
    sched = compose("allreduce", reduce_.algorithm, [reduce_, bcast], k=k)
    sched.root = None
    return sched
