"""Recursive doubling and recursive multiplying algorithms (paper §IV).

Recursive doubling is the classic pairwise butterfly: in round ``i`` each
process exchanges its accumulated state with a partner ``2^i`` apart,
finishing in ``log2(p)`` rounds.  The paper's *recursive multiplying*
generalization exchanges with ``k - 1`` partners per round (a k-way
butterfly), finishing in ``log_k(p)`` rounds at the price of ``k - 1``
concurrent messages per process per round — load the multi-port NIC model
in :mod:`repro.simnet` turns into the empirical optimum ``k ≈ #ports``
(paper Fig. 8b).

Process counts that are not powers of ``k`` are handled in two layers,
mirroring the corner-case engineering the paper reports (§VI-A):

1. **Mixed-radix core.**  Rather than insisting on ``k^m`` processes, the
   butterfly runs on the largest ``q ≤ p`` whose prime factors are all
   ``≤ k`` (a "k-smooth" core), with a per-round radix schedule chosen
   greedily as the largest divisor ``≤ k``.  E.g. ``p=12, k=4`` runs rounds
   of radix 4 then 3 with *no* folding at all.
2. **Fold/unfold remainder.**  The ``p - q`` leftover processes fold their
   contribution onto a core partner in a pre-step and receive the final
   result in a post-step — the standard MPICH non-power-of-two treatment,
   generalized.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ScheduleError
from .knomial import knomial_scatter
from .primitives import check_radix, compose, empty_programs
from .schedule import Op, RankProgram, RecvOp, Schedule, SendOp

__all__ = [
    "smooth_core",
    "radix_schedule",
    "recursive_multiplying_allreduce",
    "recursive_multiplying_allgather",
    "recursive_multiplying_bcast",
    "recursive_doubling_allreduce",
    "recursive_doubling_allgather",
    "recursive_doubling_bcast",
]


# ----------------------------------------------------------------------
# Geometry: smooth cores and mixed-radix round schedules
# ----------------------------------------------------------------------

def _is_smooth(n: int, k: int) -> bool:
    """True if every prime factor of ``n`` is ``<= k``."""
    f = 2
    while f * f <= n:
        if n % f == 0:
            if f > k:
                return False
            while n % f == 0:
                n //= f
        f += 1
    return n <= k


def smooth_core(p: int, k: int) -> int:
    """Largest ``q <= p`` whose prime factors are all ``<= k``.

    This is the butterfly core size; the remaining ``p - q`` ranks fold.

    >>> smooth_core(15, 4)
    12
    >>> smooth_core(17, 4)
    16
    >>> smooth_core(9, 3)
    9
    """
    check_radix(k)
    if p < 1:
        raise ScheduleError(f"p must be >= 1, got {p}")
    q = p
    while q > 1 and not _is_smooth(q, k):
        q -= 1
    return q


def radix_schedule(q: int, k: int) -> Tuple[int, ...]:
    """Per-round radices for a k-smooth core ``q``: greedily the largest
    divisor ``<= k`` each round, so rounds are as few and as wide as the
    radix budget allows.

    >>> radix_schedule(12, 4)
    (4, 3)
    >>> radix_schedule(8, 2)
    (2, 2, 2)
    >>> radix_schedule(1, 4)
    ()
    """
    radices: List[int] = []
    rem = q
    while rem > 1:
        f = 0
        for cand in range(min(k, rem), 1, -1):
            if rem % cand == 0:
                f = cand
                break
        if f == 0:
            raise ScheduleError(f"{q} is not {k}-smooth")
        radices.append(f)
        rem //= f
    return tuple(radices)


def _fold_partners(p: int, q: int) -> Dict[int, List[int]]:
    """Map each core rank to the folded ranks it absorbs.

    Folded rank ``r`` (``q <= r < p``) partners with core rank
    ``(r - q) % q``; a core rank can absorb several folded ranks when
    ``p - q > q``.
    """
    partners: Dict[int, List[int]] = {}
    for r in range(q, p):
        partners.setdefault((r - q) % q, []).append(r)
    return partners


def _butterfly_groups(rank: int, stride: int, radix: int) -> List[int]:
    """Partners of ``rank`` in a butterfly round: the other ``radix - 1``
    members of its group (ranks sharing all mixed-radix digits except the
    current one)."""
    digit = (rank // stride) % radix
    base = rank - digit * stride
    return [base + j * stride for j in range(radix) if j != digit]


# ----------------------------------------------------------------------
# Allreduce
# ----------------------------------------------------------------------

def recursive_multiplying_allreduce(p: int, k: int) -> Schedule:
    """Recursive multiplying allreduce (model (6):
    ``log_k(p)·(α + (β+γ)(k-1)n)``).

    Every round each core rank sends its running partial to its ``k - 1``
    group partners and reduce-receives theirs — all ``2(k-1)`` operations
    posted concurrently in one step.  Contribution sets across a group are
    disjoint by construction, so reductions never double-count (checked by
    the symbolic validator for every geometry the tests sweep).
    """
    check_radix(k)
    programs = empty_programs(p)
    q = smooth_core(p, k)
    folds = _fold_partners(p, q)
    payload = (0,)

    # Fold: remainder ranks contribute to their core partner.
    for core, folded in folds.items():
        programs[core].add_step(
            [RecvOp(peer=f, blocks=payload, reduce=True) for f in folded]
        )
        for f in folded:
            programs[f].add(SendOp(peer=core, blocks=payload))

    # Mixed-radix butterfly on the core.
    stride = 1
    for radix in radix_schedule(q, k):
        for rank in range(q):
            partners = _butterfly_groups(rank, stride, radix)
            ops: List[Op] = [SendOp(peer=t, blocks=payload) for t in partners]
            ops += [RecvOp(peer=t, blocks=payload, reduce=True) for t in partners]
            programs[rank].add_step(ops)
        stride *= radix

    # Unfold: core partners return the final result.
    for core, folded in folds.items():
        programs[core].add_step([SendOp(peer=f, blocks=payload) for f in folded])
        for f in folded:
            programs[f].add(RecvOp(peer=core, blocks=payload))

    return Schedule(
        collective="allreduce",
        algorithm="recursive_multiplying" if k != 2 else "recursive_doubling",
        nranks=p,
        nblocks=1,
        programs=programs,
        k=k,
        meta={"core": q, "folded": p - q, "radices": radix_schedule(q, k)},
    )


# ----------------------------------------------------------------------
# Allgather
# ----------------------------------------------------------------------

def recursive_multiplying_allgather(p: int, k: int) -> Schedule:
    """Recursive multiplying allgather (model (6):
    ``α·log_k(p) + β·n·(p-1)/p``).

    Block sets multiply by the round radix each round; folded ranks park
    their block with a core partner up front and receive the complete
    buffer at the end (one extra α + βn on each side, the MPICH
    non-power-of-two trade).
    """
    check_radix(k)
    programs = empty_programs(p)
    q = smooth_core(p, k)
    folds = _fold_partners(p, q)

    # Fold: remainder ranks park their block with the core partner.
    for core, folded in folds.items():
        programs[core].add_step([RecvOp(peer=f, blocks=(f,)) for f in folded])
        for f in folded:
            programs[f].add(SendOp(peer=core, blocks=(f,)))

    # Track each core rank's accumulated block set through the butterfly so
    # receive ops can name exactly the blocks their partner holds.
    sets: List[Tuple[int, ...]] = [
        tuple(sorted([c] + folds.get(c, []))) for c in range(q)
    ]
    stride = 1
    for radix in radix_schedule(q, k):
        new_sets: List[Tuple[int, ...]] = list(sets)
        for rank in range(q):
            partners = _butterfly_groups(rank, stride, radix)
            ops: List[Op] = [SendOp(peer=t, blocks=sets[rank]) for t in partners]
            ops += [RecvOp(peer=t, blocks=sets[t]) for t in partners]
            programs[rank].add_step(ops)
            merged = set(sets[rank])
            for t in partners:
                merged.update(sets[t])
            new_sets[rank] = tuple(sorted(merged))
        sets = new_sets
        stride *= radix

    # Unfold: folded ranks receive the assembled buffer.  Each folded rank
    # kept its own block locally (sending is non-destructive), so the core
    # partner omits it — a small bandwidth saving, and essential for the
    # reduce-scatter dual: re-delivering a block the receiver contributed
    # would double-count that contribution under time reversal.
    every = tuple(range(p))
    for core, folded in folds.items():
        if sets[core] != every:
            raise ScheduleError(
                f"internal error: core rank {core} holds {sets[core]}"
            )
        programs[core].add_step(
            [
                SendOp(peer=f, blocks=tuple(b for b in every if b != f))
                for f in folded
            ]
        )
        for f in folded:
            programs[f].add(
                RecvOp(peer=core, blocks=tuple(b for b in every if b != f))
            )

    return Schedule(
        collective="allgather",
        algorithm="recursive_multiplying" if k != 2 else "recursive_doubling",
        nranks=p,
        nblocks=p,
        programs=programs,
        k=k,
        meta={"core": q, "folded": p - q, "radices": radix_schedule(q, k)},
    )


# ----------------------------------------------------------------------
# Bcast (scatter + allgather, the multi-phase structure the paper calls
# out as its longest MPICH implementation)
# ----------------------------------------------------------------------

def recursive_multiplying_bcast(p: int, k: int, *, root: int = 0) -> Schedule:
    """Recursive multiplying broadcast: k-nomial scatter of the root's
    buffer followed by a recursive multiplying allgather (model (6) groups
    both phases: ``α·log_k p + β·n·(p-1)/p``)."""
    check_radix(k)
    scatter = knomial_scatter(p, k, root=root)
    allgather = recursive_multiplying_allgather(p, k)
    sched = compose(
        "bcast",
        "recursive_multiplying" if k != 2 else "recursive_doubling",
        [scatter, allgather],
        root=root,
        k=k,
    )
    return sched


# ----------------------------------------------------------------------
# Fixed-radix baselines: recursive doubling is exactly radix 2
# ----------------------------------------------------------------------

def recursive_doubling_allreduce(p: int) -> Schedule:
    """Classic recursive doubling allreduce (model (4)) — radix-2 special
    case of :func:`recursive_multiplying_allreduce`."""
    return recursive_multiplying_allreduce(p, 2)


def recursive_doubling_allgather(p: int) -> Schedule:
    """Classic recursive doubling allgather (model (4))."""
    return recursive_multiplying_allgather(p, 2)


def recursive_doubling_bcast(p: int, *, root: int = 0) -> Schedule:
    """Classic MPICH medium-message broadcast: binomial scatter +
    recursive doubling allgather."""
    return recursive_multiplying_bcast(p, 2, root=root)
