"""Symbolic verification of collective schedules.

Rather than moving bytes, the validator tracks, for every ``(rank, block)``
slot, the *contribution set*: which ranks' original inputs are folded into
the data currently held there.  This single abstraction covers every
collective the paper implements:

* For movement collectives (bcast, gather, scatter, allgather) a valid
  block always carries exactly its originating rank's singleton set, and
  the postcondition checks the right singleton landed in the right slot.
* For reduction collectives (reduce, allreduce, reduce_scatter) partial
  sums union their contribution sets; the postcondition requires the full
  set ``{0..p-1}``.  Unions must be *disjoint* — overlapping contributions
  would double-count inputs under non-idempotent operators such as SUM,
  which is precisely the class of corner-case bug the paper reports
  spending the most engineering effort on (§VI-A).

Because verification is symbolic it is fast enough to sweep thousands of
``(collective, algorithm, p, k, root)`` combinations in the property-based
test suite, catching structural bugs data tests at a handful of sizes would
miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ValidationError
from .runner import RunResult, run_schedule
from .schedule import CopyOp, RecvOp, Schedule, SendOp

__all__ = ["verify", "initial_state", "postcondition_errors", "ValidationReport"]

Content = Optional[FrozenSet[int]]


def initial_state(schedule: Schedule) -> List[List[Content]]:
    """The symbolic pre-state of each collective.

    Returns ``state[rank][block]`` where ``None`` means the slot holds
    garbage and ``frozenset(S)`` means it holds the combination of the
    original inputs of ranks in ``S``.
    """
    p, nb, root = schedule.nranks, schedule.nblocks, schedule.root
    coll = schedule.collective
    state: List[List[Content]] = [[None] * nb for _ in range(p)]
    if coll in ("bcast", "scatter"):
        if root is None:
            raise ValidationError(f"{coll} schedule must define a root")
        for b in range(nb):
            state[root][b] = frozenset({root})
    elif coll in ("gather", "allgather"):
        if nb != p:
            raise ValidationError(
                f"{coll} schedules must use nblocks == nranks, got {nb} != {p}"
            )
        for r in range(p):
            state[r][r] = frozenset({r})
    elif coll in ("reduce", "allreduce", "reduce_scatter", "barrier"):
        for r in range(p):
            for b in range(nb):
                state[r][b] = frozenset({r})
    elif coll == "alltoall":
        if nb != p * p:
            raise ValidationError(
                f"alltoall schedules must use nblocks == nranks², got "
                f"{nb} != {p * p}"
            )
        for r in range(p):
            for d in range(p):
                state[r][r * p + d] = frozenset({r})
    else:
        raise ValidationError(f"unknown collective {coll!r}")
    return state


def postcondition_errors(
    schedule: Schedule, state: List[List[Content]]
) -> List[str]:
    """Check the final symbolic state against the collective's contract."""
    p, nb, root = schedule.nranks, schedule.nblocks, schedule.root
    coll = schedule.collective
    full = frozenset(range(p))
    errors: List[str] = []

    def expect(rank: int, block: int, want: FrozenSet[int]) -> None:
        got = state[rank][block]
        if got != want:
            errors.append(
                f"rank {rank} block {block}: expected contributions "
                f"{sorted(want)}, got "
                f"{'garbage' if got is None else sorted(got)}"
            )

    if coll == "bcast":
        for r in range(p):
            for b in range(nb):
                expect(r, b, frozenset({root}))
    elif coll == "scatter":
        for r in range(p):
            expect(r, r if nb == p else 0, frozenset({root}))
    elif coll == "gather":
        for b in range(nb):
            expect(root, b, frozenset({b}))
    elif coll == "allgather":
        for r in range(p):
            for b in range(nb):
                expect(r, b, frozenset({b}))
    elif coll == "reduce":
        for b in range(nb):
            expect(root, b, full)
    elif coll in ("allreduce", "barrier"):
        # A barrier is an allreduce of membership: every rank must have
        # transitively heard from every other before it may exit.
        for r in range(p):
            for b in range(nb):
                expect(r, b, full)
    elif coll == "reduce_scatter":
        if nb != p:
            errors.append(f"reduce_scatter needs nblocks == nranks, got {nb}")
        else:
            for r in range(p):
                expect(r, r, full)
    elif coll == "alltoall":
        for d in range(p):
            for s_rank in range(p):
                expect(d, s_rank * p + d, frozenset({s_rank}))
    else:
        errors.append(f"unknown collective {coll!r}")
    return errors


class _SymbolicModel:
    """Contribution-set data model plugged into the generic runner."""

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.state = initial_state(schedule)

    def snapshot(self, rank: int, op: SendOp) -> Tuple[Content, ...]:
        payload = tuple(self.state[rank][b] for b in op.blocks)
        for b, content in zip(op.blocks, payload):
            if content is None:
                raise ValidationError(
                    f"{self.schedule.describe()}: rank {rank} sends garbage "
                    f"block {b} to rank {op.peer}"
                )
        return payload

    def apply_recv(
        self, rank: int, op: RecvOp, payload: Tuple[Content, ...]
    ) -> None:
        for b, content in zip(op.blocks, payload):
            if op.reduce:
                local = self.state[rank][b]
                if local is None:
                    raise ValidationError(
                        f"{self.schedule.describe()}: rank {rank} reduces "
                        f"into garbage block {b}"
                    )
                assert content is not None  # snapshot() already checked
                overlap = local & content
                if overlap and not self.schedule.meta.get("idempotent_only"):
                    raise ValidationError(
                        f"{self.schedule.describe()}: rank {rank} block {b} "
                        f"would double-count contributions {sorted(overlap)} "
                        f"(local {sorted(local)} ∪ incoming {sorted(content)})"
                    )
                self.state[rank][b] = local | content
            else:
                self.state[rank][b] = content

    def apply_copy(self, rank: int, op: CopyOp) -> None:
        src = self.state[rank][op.src]
        if src is None:
            raise ValidationError(
                f"{self.schedule.describe()}: rank {rank} copies garbage "
                f"block {op.src} to {op.dst}"
            )
        self.state[rank][op.dst] = src


@dataclass
class ValidationReport:
    """Result of a successful verification run."""

    schedule: str
    delivered_messages: int
    progress_passes: int


def verify(schedule: Schedule) -> ValidationReport:
    """Symbolically execute ``schedule`` and check its postcondition.

    Raises :class:`~repro.errors.ValidationError` (semantic violation) or
    :class:`~repro.errors.ExecutionError` (deadlock / unmatched messages)
    on failure; returns a :class:`ValidationReport` on success.
    """
    model = _SymbolicModel(schedule)
    result: RunResult = run_schedule(schedule, model)
    errors = postcondition_errors(schedule, model.state)
    if errors:
        preview = "\n".join("  " + e for e in errors[:12])
        more = f"\n  ... and {len(errors) - 12} more" if len(errors) > 12 else ""
        raise ValidationError(
            f"{schedule.describe()}: postcondition failed:\n{preview}{more}"
        )
    return ValidationReport(
        schedule=schedule.describe(),
        delivered_messages=result.delivered_messages,
        progress_passes=result.progress_passes,
    )
