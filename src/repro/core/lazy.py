"""Lazy generator programs: closed-form per-rank schedules that never
materialize ``p`` step lists.

The builders in :mod:`repro.core` construct every rank's program
explicitly — fine at the acceptance grid's p ≤ 128, fatal at the paper's
p-regime (a p=4096 ring allgather is ~33 million IR ops; p=10⁶ is out of
the question).  But the algorithms whose large-p behavior the paper
actually plots are *rank-symmetric*: every rank runs the same program up
to a peer/block relabeling, so the whole schedule is determined by rank
0's program plus the relabeling group.  A :class:`LazySchedule` stores
exactly that — a closed-form table generator per rank and the symmetry
maps — and produces:

* ``program(rank)`` / ``materialize()`` — the explicit IR on demand
  (small p only; used by the faithfulness tests, which pin the generator
  formulas to the real builders' output);
* ``classes(machine, nbytes)`` — a single-class
  :class:`~repro.compile.classes.RankClasses` for the collapsed engine
  (:mod:`repro.simnet.collapsed`), built in O(ops of one rank) without
  compiling anything, after *verifying* the claimed symmetry with probe
  ranks: the generated tables of sampled ranks must equal rank 0's
  tables pushed through the relabeling maps.

Scope: the closed forms cover the ring family (``allgather``,
``reduce_scatter``, ``allreduce``) and ``recursive_doubling`` allreduce
at p = 2^m — the symmetric algorithms with, respectively, the paper's
bandwidth-optimal and latency-optimal large-p behavior.  Butterfly
radices k > 2 are deliberately excluded: their per-rank partner *order*
depends on the rank's digit, so their ranks are not relabelings of each
other (the partition refinement in :func:`repro.compile.classes.classify`
discovers the same fact and refines them to p classes).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ClassAnalysisError, ScheduleError
from .blocks import BlockMap

__all__ = ["LazySchedule", "lookup", "LAZY_FAMILIES"]

# Op codes, mirroring repro.compile.program (imported lazily there to
# keep core/ free of upward imports at module load).
_SEND = 0
_RECV = 1
_REDUCE_RECV = 2

#: Cap on ``materialize()``: schedules whose explicit IR would exceed
#: this op count refuse to expand (the caller asked for the one thing
#: lazy schedules exist to avoid).
_MATERIALIZE_MAX_OPS = 4_000_000


class _Tables:
    """One rank's flat program: single-block ops in raw steps."""

    __slots__ = ("kinds", "peers", "block", "steps_raw")

    def __init__(self, kinds: np.ndarray, peers: np.ndarray,
                 block: np.ndarray, steps_raw: np.ndarray) -> None:
        self.kinds = kinds          # int8 per op
        self.peers = peers          # int32 per op
        self.block = block          # int32 per op (single block payload)
        self.steps_raw = steps_raw  # int32 [nsteps+1]


class LazySchedule:
    """A rank-symmetric schedule defined by closed-form per-rank tables.

    Duck-types the :class:`~repro.core.schedule.Schedule` surface the
    simulator dispatch needs (``nranks``, ``nblocks``, ``root``, ``k``,
    ``describe``, ``fingerprint``, ``block_map``) plus the lazy hooks:
    ``is_lazy`` marks it for :func:`repro.simnet.simulate.simulate`,
    ``classes()`` feeds the collapsed engine directly, and
    ``materialize()`` expands to a real :class:`Schedule` via the
    registry builder when a run needs the materialized engine.
    """

    is_lazy = True

    def __init__(
        self,
        collective: str,
        algorithm: str,
        nranks: int,
        nblocks: int,
        *,
        k: Optional[int],
        tables: Callable[[int], _Tables],
        sigma: Callable[[np.ndarray, int], np.ndarray],
        tau: Callable[[np.ndarray, int], np.ndarray],
    ) -> None:
        self.collective = collective
        self.algorithm = algorithm
        self.nranks = nranks
        self.nblocks = nblocks
        self.root: Optional[int] = None
        self.k = k
        self._tables = tables
        self._sigma = sigma  # peer relabeling: rank r's peers = sigma(rank 0's, r)
        self._tau = tau      # block relabeling, same shape
        self._classes_cache: Dict[int, "RankClasses"] = {}

    # -- Schedule surface --------------------------------------------------

    def describe(self) -> str:
        """One-line description, matching :meth:`Schedule.describe`."""
        bits = [self.collective, self.algorithm, f"p={self.nranks}"]
        if self.k is not None:
            bits.append(f"k={self.k}")
        return " ".join(bits) + " (lazy)"

    def fingerprint(self) -> str:
        """Content hash over the parameters and rank 0's generated tables."""
        t = self._tables(0)
        h = hashlib.sha256()
        h.update(
            f"lazy|{self.collective}|{self.algorithm}|{self.nranks}|"
            f"{self.nblocks}|{self.root}|{self.k}".encode()
        )
        for arr, dt in ((t.kinds, "<i1"), (t.peers, "<i4"),
                        (t.block, "<i4"), (t.steps_raw, "<i4")):
            h.update(np.ascontiguousarray(arr, dtype=dt).tobytes())
        return h.hexdigest()

    def block_map(self, total: int) -> BlockMap:
        """The MPICH block partition for ``total`` bytes."""
        return BlockMap(total, self.nblocks)

    # -- Explicit IR (small p) ---------------------------------------------

    def program(self, rank: int):
        """Rank ``rank``'s explicit :class:`~repro.core.schedule.RankProgram`."""
        from .schedule import RankProgram, RecvOp, SendOp

        t = self._tables(rank)
        prog = RankProgram(rank)
        kinds = t.kinds.tolist()
        peers = t.peers.tolist()
        block = t.block.tolist()
        bounds = t.steps_raw.tolist()
        for s in range(len(bounds) - 1):
            ops = []
            for i in range(bounds[s], bounds[s + 1]):
                if kinds[i] == _SEND:
                    ops.append(SendOp(peer=peers[i], blocks=(block[i],)))
                else:
                    ops.append(RecvOp(
                        peer=peers[i],
                        blocks=(block[i],),
                        reduce=kinds[i] == _REDUCE_RECV,
                    ))
            prog.add_step(ops)
        return prog

    def materialize(self):
        """The equivalent explicit :class:`Schedule`, via the registry
        builder — refused above ``_MATERIALIZE_MAX_OPS`` total ops."""
        t = self._tables(0)
        est = len(t.kinds) * self.nranks
        if est > _MATERIALIZE_MAX_OPS:
            raise ScheduleError(
                f"{self.describe()}: ~{est} ops is too large to "
                f"materialize; use the collapsed engine"
            )
        from .registry import build_schedule

        return build_schedule(self.collective, self.algorithm, self.nranks)

    # -- Collapsed-engine feed ---------------------------------------------

    def classes(self, machine, nbytes: int):
        """Single-class :class:`~repro.compile.classes.RankClasses`.

        Verifies eligibility (:func:`machine_asymmetry`, no dragonfly
        grouping — group boundaries would give boundary ranks different
        link classes), uniform block sizes (``nbytes % nblocks == 0`` —
        otherwise members move different byte counts per op), and the
        claimed rank symmetry via probe ranks.  Raises
        :class:`~repro.errors.ClassAnalysisError` on any violation, which
        the engine dispatcher converts into a materialized fallback.
        """
        from ..compile.classes import (
            LINK_INTER,
            ClassProgram,
            RankClasses,
            link_profile,
            machine_asymmetry,
        )

        p = self.nranks
        reason = machine_asymmetry(machine)
        if reason is not None:
            raise ClassAnalysisError(f"{machine.name}: {reason}")
        if machine.nranks != p:
            raise ClassAnalysisError(
                f"{machine.name} hosts {machine.nranks} ranks but the "
                f"schedule needs {p}"
            )
        _, npg = link_profile(machine)
        if npg:
            raise ClassAnalysisError(
                "dragonfly grouping gives boundary ranks different link "
                "classes; single-class symmetry does not hold"
            )
        residue = nbytes % self.nblocks
        if residue:
            raise ClassAnalysisError(
                f"nbytes={nbytes} is not a multiple of {self.nblocks} "
                f"blocks; non-uniform block sizes break rank symmetry"
            )
        cached = self._classes_cache.get(residue)
        if cached is not None:
            return cached

        t0 = self._tables(0)
        self._verify_symmetry(t0)
        send_target = self._send_targets(t0)

        nops = len(t0.kinds)
        feed: List[Tuple[Tuple[bool, int], ...]] = []
        bounds = t0.steps_raw.tolist()
        kinds_list = t0.kinds.tolist()
        for s in range(len(bounds) - 1):
            feed.append(tuple(
                (kinds_list[i] == _SEND, i)
                for i in range(bounds[s], bounds[s + 1])
            ))
        cls = ClassProgram(
            rep=0,
            size=p,
            kinds=t0.kinds,
            nblk=np.ones(nops, dtype=np.int32),
            nlarge=np.zeros(nops, dtype=np.int32),
            link=np.full(nops, LINK_INTER, dtype=np.int8),
            feed=tuple(feed),
            send_target=tuple(send_target),
        )
        out = RankClasses(
            nranks=p,
            nblocks=self.nblocks,
            residue=residue,
            labels=np.zeros(p, dtype=np.int32),
            classes=(cls,),
        )
        self._classes_cache[residue] = out
        return out

    def _verify_symmetry(self, t0: _Tables) -> None:
        """Probe ranks must equal rank 0's tables under the relabeling."""
        p = self.nranks
        probes = sorted({1, 2, 3, p // 2, p // 2 + 1, p - 2, p - 1}
                        & set(range(1, p)))
        for r in probes:
            tr = self._tables(r)
            if not (
                np.array_equal(tr.kinds, t0.kinds)
                and np.array_equal(tr.steps_raw, t0.steps_raw)
                and np.array_equal(tr.peers, self._sigma(t0.peers, r))
                and np.array_equal(tr.block, self._tau(t0.block, r))
            ):
                raise ClassAnalysisError(
                    f"{self.describe()}: rank {r} is not a relabeling of "
                    f"rank 0 — generator symmetry violated"
                )

    def _send_targets(self, t0: _Tables):
        """Redirect each rank-0 send to its FIFO-matched recv op index.

        For send op ``j`` to peer ``t``, the real message lands at the
        FIFO position of rank 0's sends on channel (0→t) among t's
        receives from 0; by the verified symmetry that op index is the
        same at every class member, so the collapsed engine can deliver
        it to the representative's own recv op.  The resulting targets
        must cover rank 0's receives exactly once.
        """
        kinds = t0.kinds.tolist()
        peers = t0.peers.tolist()
        peer_recv_from_0: Dict[int, List[int]] = {}
        for t in set(peers):
            tt = self._tables(t)
            t_kinds = tt.kinds
            t_peers = tt.peers
            idx = np.nonzero((t_kinds != _SEND) & (t_peers == 0))[0]
            peer_recv_from_0[t] = idx.tolist()
        fifo_pos: Dict[int, int] = {}
        send_target: List[Optional[Tuple[int, int]]] = [None] * len(kinds)
        covered = set()
        for j, kind in enumerate(kinds):
            if kind != _SEND:
                continue
            t = peers[j]
            pos = fifo_pos.get(t, 0)
            fifo_pos[t] = pos + 1
            matches = peer_recv_from_0[t]
            if pos >= len(matches):
                raise ClassAnalysisError(
                    f"{self.describe()}: send op {j} to {t} has no "
                    f"matching receive"
                )
            tj = int(matches[pos])
            if tj in covered:
                raise ClassAnalysisError(
                    f"{self.describe()}: recv op {tj} matched twice"
                )
            covered.add(tj)
            send_target[j] = (0, tj)
        recv_ops = {j for j, kind in enumerate(kinds) if kind != _SEND}
        if covered != recv_ops:
            raise ClassAnalysisError(
                f"{self.describe()}: sends cover {len(covered)} of "
                f"{len(recv_ops)} receive ops"
            )
        return send_target


# ----------------------------------------------------------------------
# Closed-form generators.  Formulas are pinned to the real builders by
# tests/test_lazy.py (program-for-program equality at small p).
# ----------------------------------------------------------------------


def _ring_allgather_tables(p: int) -> Callable[[int], _Tables]:
    # Step t (t = 1..p-1) of rank r: send block (r-t+1)%p to (r+1)%p,
    # then recv block (r-t)%p from (r-1)%p — kring_allgather's intra
    # epoch with one group of size p.
    def tables(r: int) -> _Tables:
        t = np.arange(1, p, dtype=np.int64)
        nsteps = p - 1
        kinds = np.tile(np.array([_SEND, _RECV], dtype=np.int8), nsteps)
        peers = np.empty(2 * nsteps, dtype=np.int32)
        peers[0::2] = (r + 1) % p
        peers[1::2] = (r - 1) % p
        block = np.empty(2 * nsteps, dtype=np.int32)
        block[0::2] = (r - t + 1) % p
        block[1::2] = (r - t) % p
        steps_raw = np.arange(0, 2 * nsteps + 1, 2, dtype=np.int32)
        return _Tables(kinds, peers, block, steps_raw)

    return tables


def _ring_reduce_scatter_tables(p: int) -> Callable[[int], _Tables]:
    # Time-reversed dual of the ring allgather (dualize_allgather):
    # steps run t = p-1 down to 1; flipped receives become sends first:
    # send block (r-t)%p to (r-1)%p, then reduce-recv block (r-t+1)%p
    # from (r+1)%p.
    def tables(r: int) -> _Tables:
        t = np.arange(p - 1, 0, -1, dtype=np.int64)
        nsteps = p - 1
        kinds = np.tile(np.array([_SEND, _REDUCE_RECV], dtype=np.int8), nsteps)
        peers = np.empty(2 * nsteps, dtype=np.int32)
        peers[0::2] = (r - 1) % p
        peers[1::2] = (r + 1) % p
        block = np.empty(2 * nsteps, dtype=np.int32)
        block[0::2] = (r - t) % p
        block[1::2] = (r - t + 1) % p
        steps_raw = np.arange(0, 2 * nsteps + 1, 2, dtype=np.int32)
        return _Tables(kinds, peers, block, steps_raw)

    return tables


def _concat_tables(first, second) -> Callable[[int], _Tables]:
    def tables(r: int) -> _Tables:
        a, b = first(r), second(r)
        return _Tables(
            np.concatenate([a.kinds, b.kinds]),
            np.concatenate([a.peers, b.peers]),
            np.concatenate([a.block, b.block]),
            np.concatenate([
                a.steps_raw,
                b.steps_raw[1:] + a.steps_raw[-1],
            ]).astype(np.int32),
        )

    return tables


def _recursive_doubling_allreduce_tables(p: int) -> Callable[[int], _Tables]:
    # Round i (stride 2^i) of rank r: send block 0 to r XOR stride, then
    # reduce-recv block 0 from the same partner — the radix-2 butterfly
    # with no fold (p is a power of two by construction).
    m = p.bit_length() - 1

    def tables(r: int) -> _Tables:
        strides = 1 << np.arange(m, dtype=np.int64)
        kinds = np.tile(np.array([_SEND, _REDUCE_RECV], dtype=np.int8), m)
        peers = np.empty(2 * m, dtype=np.int32)
        partners = np.bitwise_xor(r, strides)
        peers[0::2] = partners
        peers[1::2] = partners
        block = np.zeros(2 * m, dtype=np.int32)
        steps_raw = np.arange(0, 2 * m + 1, 2, dtype=np.int32)
        return _Tables(kinds, peers, block, steps_raw)

    return tables


def _shift_sigma(p: int):
    return lambda arr, r: ((arr.astype(np.int64) + r) % p).astype(arr.dtype)


def _xor_sigma(p: int):
    return lambda arr, r: np.bitwise_xor(arr.astype(np.int64), r).astype(arr.dtype)


def _identity_tau(p: int):
    return lambda arr, r: arr


#: (collective, algorithm) pairs :func:`lookup` can generate.
LAZY_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("allgather", "ring"),
    ("reduce_scatter", "ring"),
    ("allreduce", "ring"),
    ("allreduce", "recursive_doubling"),
)


def lookup(
    collective: str,
    algorithm: str,
    p: int,
    *,
    k: Optional[int] = None,
    root: Optional[int] = None,
) -> Optional[LazySchedule]:
    """A :class:`LazySchedule` for the request, or ``None`` if out of scope.

    Scope: :data:`LAZY_FAMILIES` at ``p >= 2`` (plus ``p`` a power of two
    for recursive doubling), default radix and root only — everything
    else returns ``None`` and the caller builds the schedule normally.

    >>> lookup("allgather", "ring", 8).describe()
    'allgather ring p=8 (lazy)'
    >>> lookup("allgather", "ring", 8, root=3) is None
    True
    >>> lookup("allreduce", "recursive_doubling", 12) is None
    True
    """
    if (collective, algorithm) not in LAZY_FAMILIES:
        return None
    if p < 2 or k is not None or root not in (None, 0):
        return None
    shift, tau = _shift_sigma(p), _identity_tau(p)
    if (collective, algorithm) == ("allgather", "ring"):
        return LazySchedule(collective, algorithm, p, p, k=None,
                            tables=_ring_allgather_tables(p),
                            sigma=shift, tau=shift)
    if (collective, algorithm) == ("reduce_scatter", "ring"):
        return LazySchedule(collective, algorithm, p, p, k=None,
                            tables=_ring_reduce_scatter_tables(p),
                            sigma=shift, tau=shift)
    if (collective, algorithm) == ("allreduce", "ring"):
        return LazySchedule(collective, algorithm, p, p, k=None,
                            tables=_concat_tables(
                                _ring_reduce_scatter_tables(p),
                                _ring_allgather_tables(p),
                            ),
                            sigma=shift, tau=shift)
    # allreduce / recursive_doubling: p must be a power of two (the
    # registry builder folds odd remainders, which breaks symmetry).
    if p & (p - 1):
        return None
    return LazySchedule(collective, algorithm, p, 1, k=2,
                        tables=_recursive_doubling_allreduce_tables(p),
                        sigma=_xor_sigma(p), tau=tau)
