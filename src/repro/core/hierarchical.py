"""Hierarchical (two-level) collectives — the Hasanov-style composition.

The paper's k-ring is one answer to heterogeneous intranode/internode
links; the other production answer — and the hierarchical strategy the
paper cites as its inspiration ([17], Hasanov et al.) — is explicit
two-level composition: reduce within each node to a leader over the fast
fabric, run the internode collective among leaders only, then broadcast
within each node.  This module builds that composition out of the
library's existing kernels via a general *rank remapping* primitive, so
any registered nblocks-1 allreduce can serve as the leader-level
algorithm (including the generalized ones, radix and all).

The ablation benchmark ``bench_hierarchical.py`` pits this against k-ring
and flat recursive multiplying on the 8-process-per-node Frontier model —
the three-way comparison the paper's §II-B3 discussion implies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ScheduleError
from .knomial import knomial_bcast, knomial_reduce
from .primitives import compose, empty_programs
from .registry import build_schedule, info
from .schedule import RankProgram, RecvOp, Schedule, SendOp

__all__ = ["remap_ranks", "hierarchical_allreduce"]


def remap_ranks(
    schedule: Schedule, mapping: Sequence[int], nranks: int
) -> Schedule:
    """Embed a schedule built for a small group into a larger rank space.

    ``mapping[i]`` is the global rank playing the schedule's rank ``i``;
    unmapped global ranks get empty programs.  Everything else (blocks,
    op structure) is preserved, which is what makes two-level composition
    a pure reuse of the existing single-level builders.
    """
    if len(mapping) != schedule.nranks:
        raise ScheduleError(
            f"mapping covers {len(mapping)} ranks but schedule has "
            f"{schedule.nranks}"
        )
    if len(set(mapping)) != len(mapping):
        raise ScheduleError("rank mapping must be injective")
    for g in mapping:
        if not 0 <= g < nranks:
            raise ScheduleError(f"mapped rank {g} out of range for {nranks}")

    programs = empty_programs(nranks)
    for local, prog in enumerate(schedule.programs):
        target = RankProgram(rank=mapping[local])
        for step in prog.steps:
            ops = []
            for op in step.ops:
                if isinstance(op, SendOp):
                    ops.append(SendOp(peer=mapping[op.peer], blocks=op.blocks))
                elif isinstance(op, RecvOp):
                    ops.append(
                        RecvOp(
                            peer=mapping[op.peer],
                            blocks=op.blocks,
                            reduce=op.reduce,
                        )
                    )
                else:
                    ops.append(op)
            target.add_step(ops)
        programs[mapping[local]] = target
    return Schedule(
        collective=schedule.collective,
        algorithm=schedule.algorithm,
        nranks=nranks,
        nblocks=schedule.nblocks,
        programs=programs,
        root=mapping[schedule.root] if schedule.root is not None else None,
        k=schedule.k,
        meta={**schedule.meta, "remapped_from": schedule.nranks},
    )


def hierarchical_allreduce(
    p: int,
    ppn: int,
    *,
    intra_k: int = 2,
    leader_algorithm: str = "recursive_multiplying",
    leader_k: Optional[int] = None,
) -> Schedule:
    """Two-level allreduce: intranode k-nomial reduce → internode
    allreduce among node leaders → intranode k-nomial bcast.

    ``leader_algorithm`` may be any registered whole-buffer allreduce
    (``recursive_doubling``, ``recursive_multiplying``, ``knomial``,
    ``binomial``); block-partitioned ones (ring family, Rabenseifner)
    use a different block geometry and are rejected.
    """
    if p < 1 or ppn < 1:
        raise ScheduleError(f"need p >= 1 and ppn >= 1, got {p}, {ppn}")
    if p % ppn != 0:
        raise ScheduleError(
            f"hierarchical composition needs ppn | p ({ppn} does not "
            f"divide {p})"
        )
    nodes = p // ppn
    entry = info("allreduce", leader_algorithm)
    if leader_k is None:
        leader_k = entry.default_k if entry.takes_k else None

    phases: List[Schedule] = []

    # Phase 1: each node's members reduce onto their leader (local rank 0).
    if ppn > 1:
        local_reduce = knomial_reduce(ppn, intra_k, root=0)
        node_programs = empty_programs(p)
        for node in range(nodes):
            members = list(range(node * ppn, (node + 1) * ppn))
            embedded = remap_ranks(local_reduce, members, p)
            for r in members:
                node_programs[r] = embedded.programs[r]
        phases.append(
            Schedule(
                collective="allreduce",  # phase typing; composed below
                algorithm="hierarchical",
                nranks=p,
                nblocks=1,
                programs=node_programs,
            )
        )

    # Phase 2: leaders run the internode allreduce.
    if nodes > 1:
        outer = build_schedule("allreduce", leader_algorithm, nodes, k=leader_k)
        if outer.nblocks != 1:
            raise ScheduleError(
                f"leader algorithm {leader_algorithm!r} partitions the "
                f"buffer (nblocks={outer.nblocks}); hierarchical "
                f"composition needs a whole-buffer allreduce"
            )
        leaders = [node * ppn for node in range(nodes)]
        phases.append(remap_ranks(outer, leaders, p))

    # Phase 3: leaders broadcast the result within their nodes.
    if ppn > 1:
        local_bcast = knomial_bcast(ppn, intra_k, root=0)
        node_programs = empty_programs(p)
        for node in range(nodes):
            members = list(range(node * ppn, (node + 1) * ppn))
            embedded = remap_ranks(local_bcast, members, p)
            for r in members:
                node_programs[r] = embedded.programs[r]
        phases.append(
            Schedule(
                collective="allreduce",
                algorithm="hierarchical",
                nranks=p,
                nblocks=1,
                programs=node_programs,
            )
        )

    if not phases:  # p == 1
        return Schedule(
            collective="allreduce",
            algorithm="hierarchical",
            nranks=1,
            nblocks=1,
            programs=empty_programs(1),
        )
    sched = compose(
        "allreduce",
        "hierarchical",
        phases,
        k=leader_k,
        meta={
            "ppn": ppn,
            "intra_k": intra_k,
            "leader_algorithm": leader_algorithm,
        },
    )
    return sched
